//! Round-trip checks of the trace exporters.
//!
//! The Chrome trace-event JSON emitted by `chrome_trace_json` must be
//! (a) valid JSON, (b) globally sorted by timestamp — Perfetto rejects
//! files whose `ts` go backwards in array order — and (c) balanced in its
//! duration ("B"/"E") phase events per thread. The derived metrics must
//! account for every SPM access: each class's reuse-distance histogram
//! totals exactly `hits + misses` as counted by the engine's own cache.
//!
//! The JSON validator below is a deliberately tiny recursive-descent
//! parser (the workspace is dependency-free by design) — it accepts the
//! JSON the exporter can produce, and rejects structural damage.

use igo_core::{chrome_trace_json, trace_layer_backward, SimOptions, Technique};
use igo_npu_sim::NpuConfig;
use igo_tensor::{GemmShape, TensorClass};

// ---------------------------------------------------------------------
// Minimal JSON parser (validation + the few lookups the tests need).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(text: &'a str) -> Result<Json, String> {
        let mut p = Parser::new(text);
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input came from a String,
                    // so boundaries are valid).
                    let s =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

fn sample_traces() -> Vec<igo_core::LayerTrace> {
    let options = SimOptions::sequential();
    vec![
        trace_layer_backward(
            "conv,\"quoted\"",
            GemmShape::new(300, 200, 180),
            1.0,
            &NpuConfig::small_edge(),
            Technique::Rearrangement,
            false,
            &options,
        ),
        trace_layer_backward(
            "fc",
            GemmShape::new(512, 256, 256),
            1.0,
            &NpuConfig::large_server(2),
            Technique::Interleaving,
            false,
            &options,
        ),
    ]
}

#[test]
fn chrome_trace_round_trips_as_valid_json() {
    let traces = sample_traces();
    let json = chrome_trace_json(&traces);
    let doc = Parser::parse(&json).expect("exporter must emit valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(
        events.len() > traces.len() * 4,
        "trace is suspiciously empty"
    );
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    for e in events {
        assert!(e.get("ph").is_some(), "event without phase: {e:?}");
        assert!(e.get("ts").and_then(Json::as_num).is_some());
        assert!(e.get("pid").and_then(Json::as_num).is_some());
        assert!(e.get("tid").and_then(Json::as_num).is_some());
    }
}

#[test]
fn chrome_trace_timestamps_are_monotonic() {
    let json = chrome_trace_json(&sample_traces());
    let doc = Parser::parse(&json).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let mut last = f64::NEG_INFINITY;
    for e in events {
        let ts = e.get("ts").and_then(Json::as_num).unwrap();
        assert!(
            ts >= last,
            "timestamps must be non-decreasing in array order ({ts} after {last})"
        );
        last = ts;
    }
}

#[test]
fn chrome_trace_phase_events_are_balanced() {
    let json = chrome_trace_json(&sample_traces());
    let doc = Parser::parse(&json).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    // Per (pid, tid): every "E" closes an open "B", and nothing stays open.
    let mut depth: std::collections::HashMap<(u64, u64), i64> = std::collections::HashMap::new();
    let mut saw_phases = false;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        if ph != "B" && ph != "E" {
            continue;
        }
        saw_phases = true;
        let key = (
            e.get("pid").and_then(Json::as_num).unwrap() as u64,
            e.get("tid").and_then(Json::as_num).unwrap() as u64,
        );
        let d = depth.entry(key).or_insert(0);
        if ph == "B" {
            *d += 1;
        } else {
            *d -= 1;
            assert!(*d >= 0, "E without matching B on thread {key:?}");
        }
    }
    assert!(saw_phases, "trace must contain dX/dW phase events");
    for (key, d) in depth {
        assert_eq!(d, 0, "unclosed B event(s) on thread {key:?}");
    }
}

/// Every SPM access the engine's cache counted must land in exactly one
/// reuse-distance histogram bucket: per class and in total, histogram
/// totals equal `hits + misses` from the engine's own cache statistics.
#[test]
fn reuse_histograms_account_for_every_cache_access() {
    let trace = trace_layer_backward(
        "layer",
        GemmShape::new(384, 256, 320),
        1.0,
        &NpuConfig::small_edge(),
        Technique::Interleaving,
        false,
        &SimOptions::sequential(),
    );
    for core in &trace.cores {
        let mut histogram_total = 0;
        let mut hits = 0;
        for class in TensorClass::ALL {
            let m = core.metrics.class(class);
            assert_eq!(
                m.histogram.total(),
                m.accesses,
                "{}: histogram must bucket every access",
                class.label()
            );
            assert!(m.hits <= m.accesses);
            histogram_total += m.histogram.total();
            hits += m.hits;
        }
        // The engine's report carries the cache's own hit/miss counters;
        // the recorder-derived histograms must agree with them exactly.
        assert_eq!(
            histogram_total,
            core.report.spm_accesses(),
            "histogram total != cache hits + misses"
        );
        assert_eq!(hits, core.report.spm_hits, "hit count diverged");
    }
}
