//! Golden determinism tests for the optimized simulation pipeline.
//!
//! The pipeline's performance features — worker-pool parallelism, layer
//! memoization, lower-bound candidate pruning (`SimOptions`) — must be
//! invisible in the results: every zoo model, on both Table-3 NPU
//! configurations, has to produce *bit-identical* reports (cycles,
//! per-class traffic, scheduler decisions) on the optimized path and on
//! the plain sequential reference path. A forced 3-worker pool exercises
//! real cross-thread reductions even on a single-CPU machine.

use igo_core::{
    simulate_layer_backward_with, simulate_model_with, trace_layer_backward, ModelReport,
    SimOptions, Technique,
};
use igo_npu_sim::{Engine, EngineScratch, EventLog, NpuConfig};
use igo_tensor::GemmShape;
use igo_workloads::{zoo, ModelId};

/// Optimized options with a pool forced larger than one worker, so the
/// deterministic-reduction claim is tested with real threads everywhere.
const OPTIMIZED: SimOptions = SimOptions {
    parallel: true,
    memoize: true,
    prune: true,
    workers: 3,
    analytic_fast_path: true,
    capacity_profile: true,
};

/// Every distinct zoo model (the union of the server and edge suites).
fn all_zoo_models() -> Vec<ModelId> {
    let mut ids: Vec<ModelId> = Vec::new();
    for id in zoo::SERVER_SUITE.iter().chain(zoo::EDGE_SUITE.iter()) {
        if !ids.contains(id) {
            ids.push(*id);
        }
    }
    ids
}

fn assert_identical(seq: &ModelReport, opt: &ModelReport) {
    assert_eq!(
        seq.layers.len(),
        opt.layers.len(),
        "{}: layer count diverged",
        seq.model
    );
    for (l, r) in seq.layers.iter().zip(&opt.layers) {
        assert_eq!(
            l.forward, r.forward,
            "{}/{}: forward report diverged",
            seq.model, l.name
        );
        assert_eq!(
            l.backward, r.backward,
            "{}/{}: backward report diverged",
            seq.model, l.name
        );
        assert_eq!(
            l.decision, r.decision,
            "{}/{}: scheduler decision diverged",
            seq.model, l.name
        );
        assert_eq!(l.multiplicity, r.multiplicity);
    }
    assert_eq!(seq.total_cycles(), opt.total_cycles());
    assert_eq!(seq.total_traffic(), opt.total_traffic());
    assert_eq!(seq.backward_traffic(), opt.backward_traffic());
}

/// Run every zoo model under `technique` on `config`, sequential vs
/// optimized, and demand bit-identical reports. A small batch keeps the
/// sequential reference affordable without shrinking the candidate space.
fn golden_sweep(config: &NpuConfig, batch: u64, technique: Technique) {
    for id in all_zoo_models() {
        let model = zoo::model(id, batch);
        let seq = simulate_model_with(&model, config, technique, &SimOptions::sequential());
        let opt = simulate_model_with(&model, config, technique, &OPTIMIZED);
        assert_identical(&seq, &opt);
        // A second optimized run is served from the warm cache and must
        // still match.
        let warm = simulate_model_with(&model, config, technique, &OPTIMIZED);
        assert_identical(&seq, &warm);
    }
}

#[test]
fn zoo_partitioning_is_bit_identical_on_edge_config() {
    golden_sweep(&NpuConfig::small_edge(), 1, Technique::DataPartitioning);
}

#[test]
fn zoo_partitioning_is_bit_identical_on_server_config() {
    golden_sweep(
        &NpuConfig::large_single_core(),
        1,
        Technique::DataPartitioning,
    );
}

#[test]
fn zoo_baseline_is_bit_identical_on_server_config() {
    golden_sweep(&NpuConfig::large_single_core(), 1, Technique::Baseline);
}

/// The recorder hook must be invisible when off *and* when on: the
/// default engine path (a `NullRecorder`, whose `ENABLED = false` compiles
/// every instrumentation block out) and a fully recording [`EventLog`] run
/// must both produce the exact report the engine produced before the hook
/// existed.
#[test]
fn recorder_leaves_engine_reports_bit_identical() {
    use igo_core::{BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
    use igo_npu_sim::Schedule;

    for config in [NpuConfig::small_edge(), NpuConfig::large_single_core()] {
        let engine = Engine::new(&config);
        let policy = TilePolicy::for_config(&config);
        for order in [
            BackwardOrder::Baseline,
            BackwardOrder::Interleaved,
            BackwardOrder::DxMajor,
            BackwardOrder::DwMajor,
        ] {
            let mut s = Schedule::new("golden");
            let tensors = LayerTensors::register(&mut s, "layer");
            BackwardBuilder::new(GemmShape::new(384, 192, 320), policy, tensors)
                .emit(order, false, &mut s);
            let plain = engine.run(&s);
            let mut log = EventLog::new();
            let recorded = engine.run_recorded(&s, &mut EngineScratch::new(), &mut log);
            assert_eq!(plain, recorded, "{order:?}: recording changed the report");
            assert!(!log.events.is_empty());
            // Re-running through the null path after a recorded run must
            // still be bit-identical (no state leaks between runs).
            assert_eq!(plain, engine.run(&s), "{order:?}: replay diverged");
        }
    }
}

/// The traced front-end re-derives the pipeline's decision and reports
/// without perturbing either — decisions and reports stay bit-identical
/// whether or not a recorder observed the run.
#[test]
fn traced_pipeline_is_bit_identical_to_untraced() {
    let options = SimOptions::sequential();
    for config in [NpuConfig::small_edge(), NpuConfig::large_server(2)] {
        for technique in [
            Technique::Baseline,
            Technique::Interleaving,
            Technique::DataPartitioning,
        ] {
            let gemm = GemmShape::new(448, 256, 384);
            let (report, decision) =
                simulate_layer_backward_with(gemm, 1.0, &config, technique, false, &options);
            let trace =
                trace_layer_backward("layer", gemm, 1.0, &config, technique, false, &options);
            assert_eq!(trace.decision, decision, "{technique:?}: decision diverged");
            assert_eq!(trace.report, report, "{technique:?}: report diverged");
        }
    }
}

#[test]
fn multicore_partitioning_is_bit_identical() {
    // The multi-core execution model (per-core schedules plus reduction)
    // goes through its own candidate path; cover it on two cores.
    let config = NpuConfig::large_server(2);
    for id in [ModelId::Ncf, ModelId::BertTiny] {
        let model = zoo::model(id, 4);
        let seq = simulate_model_with(
            &model,
            &config,
            Technique::DataPartitioning,
            &SimOptions::sequential(),
        );
        let opt = simulate_model_with(&model, &config, Technique::DataPartitioning, &OPTIMIZED);
        assert_identical(&seq, &opt);
    }
}
