//! Golden determinism tests for the optimized simulation pipeline.
//!
//! The pipeline's performance features — worker-pool parallelism, layer
//! memoization, lower-bound candidate pruning (`SimOptions`) — must be
//! invisible in the results: every zoo model, on both Table-3 NPU
//! configurations, has to produce *bit-identical* reports (cycles,
//! per-class traffic, scheduler decisions) on the optimized path and on
//! the plain sequential reference path. A forced 3-worker pool exercises
//! real cross-thread reductions even on a single-CPU machine.

use igo_core::{simulate_model_with, ModelReport, SimOptions, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::{zoo, ModelId};

/// Optimized options with a pool forced larger than one worker, so the
/// deterministic-reduction claim is tested with real threads everywhere.
const OPTIMIZED: SimOptions = SimOptions {
    parallel: true,
    memoize: true,
    prune: true,
    workers: 3,
};

/// Every distinct zoo model (the union of the server and edge suites).
fn all_zoo_models() -> Vec<ModelId> {
    let mut ids: Vec<ModelId> = Vec::new();
    for id in zoo::SERVER_SUITE.iter().chain(zoo::EDGE_SUITE.iter()) {
        if !ids.contains(id) {
            ids.push(*id);
        }
    }
    ids
}

fn assert_identical(seq: &ModelReport, opt: &ModelReport) {
    assert_eq!(
        seq.layers.len(),
        opt.layers.len(),
        "{}: layer count diverged",
        seq.model
    );
    for (l, r) in seq.layers.iter().zip(&opt.layers) {
        assert_eq!(
            l.forward, r.forward,
            "{}/{}: forward report diverged",
            seq.model, l.name
        );
        assert_eq!(
            l.backward, r.backward,
            "{}/{}: backward report diverged",
            seq.model, l.name
        );
        assert_eq!(
            l.decision, r.decision,
            "{}/{}: scheduler decision diverged",
            seq.model, l.name
        );
        assert_eq!(l.multiplicity, r.multiplicity);
    }
    assert_eq!(seq.total_cycles(), opt.total_cycles());
    assert_eq!(seq.total_traffic(), opt.total_traffic());
    assert_eq!(seq.backward_traffic(), opt.backward_traffic());
}

/// Run every zoo model under `technique` on `config`, sequential vs
/// optimized, and demand bit-identical reports. A small batch keeps the
/// sequential reference affordable without shrinking the candidate space.
fn golden_sweep(config: &NpuConfig, batch: u64, technique: Technique) {
    for id in all_zoo_models() {
        let model = zoo::model(id, batch);
        let seq = simulate_model_with(&model, config, technique, &SimOptions::sequential());
        let opt = simulate_model_with(&model, config, technique, &OPTIMIZED);
        assert_identical(&seq, &opt);
        // A second optimized run is served from the warm cache and must
        // still match.
        let warm = simulate_model_with(&model, config, technique, &OPTIMIZED);
        assert_identical(&seq, &warm);
    }
}

#[test]
fn zoo_partitioning_is_bit_identical_on_edge_config() {
    golden_sweep(&NpuConfig::small_edge(), 1, Technique::DataPartitioning);
}

#[test]
fn zoo_partitioning_is_bit_identical_on_server_config() {
    golden_sweep(
        &NpuConfig::large_single_core(),
        1,
        Technique::DataPartitioning,
    );
}

#[test]
fn zoo_baseline_is_bit_identical_on_server_config() {
    golden_sweep(&NpuConfig::large_single_core(), 1, Technique::Baseline);
}

#[test]
fn multicore_partitioning_is_bit_identical() {
    // The multi-core execution model (per-core schedules plus reduction)
    // goes through its own candidate path; cover it on two cores.
    let config = NpuConfig::large_server(2);
    for id in [ModelId::Ncf, ModelId::BertTiny] {
        let model = zoo::model(id, 4);
        let seq = simulate_model_with(
            &model,
            &config,
            Technique::DataPartitioning,
            &SimOptions::sequential(),
        );
        let opt = simulate_model_with(&model, &config, Technique::DataPartitioning, &OPTIMIZED);
        assert_identical(&seq, &opt);
    }
}
