//! Property-based invariants of the schedule transformations: whatever
//! the shape, the paper's reorderings must never change the computation —
//! only the memory behaviour.

use igo_core::{
    partition::{partition_backward, PartitionScheme},
    BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy,
};
use igo_npu_sim::{Engine, NpuConfig, Schedule, ScheduleOp};
use igo_tensor::{GemmShape, TensorClass};
use proptest::prelude::*;
use std::collections::HashSet;

fn policy() -> TilePolicy {
    TilePolicy::for_config(&NpuConfig::large_single_core())
}

fn build(gemm: GemmShape, order: BackwardOrder) -> Schedule {
    let mut s = Schedule::new("prop");
    let tensors = LayerTensors::register(&mut s, "l");
    BackwardBuilder::new(gemm, policy(), tensors).emit(order, false, &mut s);
    s
}

/// Collect the set of (class, coord) accumulator tiles a schedule writes.
fn result_tiles(s: &Schedule) -> HashSet<(TensorClass, u32, u32)> {
    s.ops()
        .iter()
        .filter_map(|op| match op {
            ScheduleOp::Gemm(g) => g.acc.map(|a| {
                (
                    s.class_of(a.key.tensor),
                    a.key.coord.r,
                    a.key.coord.c,
                )
            }),
            _ => None,
        })
        .collect()
}

const ORDERS: [BackwardOrder; 4] = [
    BackwardOrder::Baseline,
    BackwardOrder::Interleaved,
    BackwardOrder::DxMajor,
    BackwardOrder::DwMajor,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every ordering performs exactly the backward MACs of the layer.
    #[test]
    fn orders_preserve_macs(
        m in 1u64..2000,
        k in 1u64..1500,
        n in 1u64..1500,
    ) {
        let gemm = GemmShape::new(m, k, n);
        for order in ORDERS {
            let s = build(gemm, order);
            prop_assert_eq!(
                s.total_macs(),
                gemm.backward_macs(),
                "{:?} on {}",
                order,
                gemm
            );
        }
    }

    /// Every ordering covers exactly the same result tiles (full dX and
    /// dW grids, nothing else).
    #[test]
    fn orders_cover_identical_results(
        m in 1u64..1200,
        k in 1u64..900,
        n in 1u64..900,
    ) {
        let gemm = GemmShape::new(m, k, n);
        let reference = result_tiles(&build(gemm, BackwardOrder::Baseline));
        let dx_tiles = gemm.dx_grid(policy().tile).num_tiles();
        let dw_tiles = gemm.dw_grid(policy().tile).num_tiles();
        prop_assert_eq!(reference.len() as u64, dx_tiles + dw_tiles);
        for order in ORDERS {
            prop_assert_eq!(
                result_tiles(&build(gemm, order)),
                reference.clone(),
                "{:?}",
                order
            );
        }
    }

    /// Simulated traffic never underruns the compulsory minimum: every
    /// distinct operand tile fetched at least once, every result tile
    /// written at least once.
    #[test]
    fn traffic_respects_compulsory_bounds(
        m in 64u64..1200,
        k in 64u64..900,
        n in 64u64..900,
    ) {
        let gemm = GemmShape::new(m, k, n);
        let config = NpuConfig::large_single_core();
        let engine = Engine::new(&config);
        for order in ORDERS {
            let s = build(gemm, order);
            let r = engine.run(&s);
            prop_assert!(
                r.traffic.read_total() >= s.unique_operand_bytes(),
                "{:?}: reads {} < unique operands {}",
                order,
                r.traffic.read_total(),
                s.unique_operand_bytes()
            );
            let results =
                gemm.dx_dims().bytes(policy().dtype) + gemm.dw_dims().bytes(policy().dtype);
            prop_assert!(
                r.traffic.write_total() >= results,
                "{:?}: writes {} < results {}",
                order,
                r.traffic.write_total(),
                results
            );
        }
    }

    /// Partitioning preserves MACs and the reduction matches the scheme.
    #[test]
    fn partitions_preserve_macs(
        m in 8u64..800,
        k in 8u64..600,
        n in 8u64..600,
        parts in 2u64..5,
    ) {
        let gemm = GemmShape::new(m, k, n);
        let mut proto = Schedule::new("p");
        let tensors = LayerTensors::register(&mut proto, "l");
        for scheme in PartitionScheme::ALL {
            let p = partition_backward(
                &proto,
                tensors,
                gemm,
                policy(),
                scheme,
                parts,
                BackwardOrder::Interleaved,
                false,
            );
            let macs: u64 = p.schedules.iter().map(|s| s.total_macs()).sum();
            prop_assert_eq!(macs, gemm.backward_macs(), "{}", scheme);
            match scheme {
                PartitionScheme::IfmapSharing => prop_assert!(p.reduction.is_none()),
                _ => prop_assert!(p.reduction.is_some()),
            }
        }
    }

    /// The interleaved schedule always reads no more dY bytes than the
    /// barrier-separated baseline.
    #[test]
    fn interleaving_never_inflates_dy(
        m in 64u64..1500,
        k in 64u64..800,
        n in 64u64..800,
    ) {
        let gemm = GemmShape::new(m, k, n);
        let config = NpuConfig::large_single_core();
        let engine = Engine::new(&config);
        let base = engine.run(&build(gemm, BackwardOrder::Baseline));
        let inter = engine.run(&build(gemm, BackwardOrder::Interleaved));
        prop_assert!(
            inter.traffic.read(TensorClass::OutGrad)
                <= base.traffic.read(TensorClass::OutGrad),
            "dY reads: inter {} vs base {}",
            inter.traffic.read(TensorClass::OutGrad),
            base.traffic.read(TensorClass::OutGrad)
        );
    }
}
