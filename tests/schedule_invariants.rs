//! Sampled invariants of the schedule transformations: whatever the shape,
//! the paper's reorderings must never change the computation — only the
//! memory behaviour. (Deterministic SplitMix64 sampling in place of a
//! property-based sweep, so the suite runs with no external dependencies.)

use igo_core::{
    partition::{partition_backward, PartitionScheme},
    BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy,
};
use igo_npu_sim::{Engine, NpuConfig, Schedule, ScheduleOp};
use igo_tensor::{GemmShape, SplitMix64, TensorClass};
use std::collections::HashSet;

fn policy() -> TilePolicy {
    TilePolicy::for_config(&NpuConfig::large_single_core())
}

fn build(gemm: GemmShape, order: BackwardOrder) -> Schedule {
    let mut s = Schedule::new("prop");
    let tensors = LayerTensors::register(&mut s, "l");
    BackwardBuilder::new(gemm, policy(), tensors).emit(order, false, &mut s);
    s
}

/// Collect the set of (class, coord) accumulator tiles a schedule writes.
fn result_tiles(s: &Schedule) -> HashSet<(TensorClass, u32, u32)> {
    s.ops()
        .iter()
        .filter_map(|op| match op {
            ScheduleOp::Gemm(g) => g
                .acc
                .map(|a| (s.class_of(a.key.tensor), a.key.coord.r, a.key.coord.c)),
            _ => None,
        })
        .collect()
}

const ORDERS: [BackwardOrder; 4] = [
    BackwardOrder::Baseline,
    BackwardOrder::Interleaved,
    BackwardOrder::DxMajor,
    BackwardOrder::DwMajor,
];

fn sample(rng: &mut SplitMix64, m: (u64, u64), k: (u64, u64), n: (u64, u64)) -> GemmShape {
    GemmShape::new(
        rng.range_u64(m.0, m.1),
        rng.range_u64(k.0, k.1),
        rng.range_u64(n.0, n.1),
    )
}

/// Every ordering performs exactly the backward MACs of the layer.
#[test]
fn orders_preserve_macs() {
    let mut rng = SplitMix64::new(0xA1);
    for _ in 0..24 {
        let gemm = sample(&mut rng, (1, 2000), (1, 1500), (1, 1500));
        for order in ORDERS {
            let s = build(gemm, order);
            assert_eq!(
                s.total_macs(),
                gemm.backward_macs(),
                "{:?} on {}",
                order,
                gemm
            );
        }
    }
}

/// Every ordering covers exactly the same result tiles (full dX and dW
/// grids, nothing else).
#[test]
fn orders_cover_identical_results() {
    let mut rng = SplitMix64::new(0xA2);
    for _ in 0..24 {
        let gemm = sample(&mut rng, (1, 1200), (1, 900), (1, 900));
        let reference = result_tiles(&build(gemm, BackwardOrder::Baseline));
        let dx_tiles = gemm.dx_grid(policy().tile).num_tiles();
        let dw_tiles = gemm.dw_grid(policy().tile).num_tiles();
        assert_eq!(reference.len() as u64, dx_tiles + dw_tiles);
        for order in ORDERS {
            assert_eq!(result_tiles(&build(gemm, order)), reference, "{:?}", order);
        }
    }
}

/// Simulated traffic never underruns the compulsory minimum: every
/// distinct operand tile fetched at least once, every result tile
/// written at least once.
#[test]
fn traffic_respects_compulsory_bounds() {
    let config = NpuConfig::large_single_core();
    let engine = Engine::new(&config);
    let mut rng = SplitMix64::new(0xA3);
    for _ in 0..24 {
        let gemm = sample(&mut rng, (64, 1200), (64, 900), (64, 900));
        for order in ORDERS {
            let s = build(gemm, order);
            let r = engine.run(&s);
            assert!(
                r.traffic.read_total() >= s.unique_operand_bytes(),
                "{:?}: reads {} < unique operands {}",
                order,
                r.traffic.read_total(),
                s.unique_operand_bytes()
            );
            let results =
                gemm.dx_dims().bytes(policy().dtype) + gemm.dw_dims().bytes(policy().dtype);
            assert!(
                r.traffic.write_total() >= results,
                "{:?}: writes {} < results {}",
                order,
                r.traffic.write_total(),
                results
            );
        }
    }
}

/// Partitioning preserves MACs and the reduction matches the scheme.
#[test]
fn partitions_preserve_macs() {
    let mut rng = SplitMix64::new(0xA4);
    for _ in 0..24 {
        let gemm = sample(&mut rng, (8, 800), (8, 600), (8, 600));
        let parts = rng.range_u64(2, 5);
        let mut proto = Schedule::new("p");
        let tensors = LayerTensors::register(&mut proto, "l");
        for scheme in PartitionScheme::ALL {
            let p = partition_backward(
                &proto,
                tensors,
                gemm,
                policy(),
                scheme,
                parts,
                BackwardOrder::Interleaved,
                false,
            );
            let macs: u64 = p.schedules.iter().map(|s| s.total_macs()).sum();
            assert_eq!(macs, gemm.backward_macs(), "{}", scheme);
            match scheme {
                PartitionScheme::IfmapSharing => assert!(p.reduction.is_none()),
                _ => assert!(p.reduction.is_some()),
            }
        }
    }
}

/// The interleaved schedule always reads no more dY bytes than the
/// barrier-separated baseline.
#[test]
fn interleaving_never_inflates_dy() {
    let config = NpuConfig::large_single_core();
    let engine = Engine::new(&config);
    let mut rng = SplitMix64::new(0xA5);
    for _ in 0..24 {
        let gemm = sample(&mut rng, (64, 1500), (64, 800), (64, 800));
        let base = engine.run(&build(gemm, BackwardOrder::Baseline));
        let inter = engine.run(&build(gemm, BackwardOrder::Interleaved));
        assert!(
            inter.traffic.read(TensorClass::OutGrad) <= base.traffic.read(TensorClass::OutGrad),
            "dY reads: inter {} vs base {}",
            inter.traffic.read(TensorClass::OutGrad),
            base.traffic.read(TensorClass::OutGrad)
        );
    }
}
