//! Cross-crate integration tests: workloads -> core transformations ->
//! simulator, end to end.

use igo::prelude::*;
use igo_core::Technique;

fn dy_heavy_model() -> Model {
    use igo_workloads::Layer;
    let batch = 8;
    Model::new(
        ModelId::Resnet50,
        "dy-heavy",
        batch,
        vec![
            Layer::conv("stem", ConvShape::new(batch, 3, 112, 112, 64, 3, 2, 1)),
            Layer::conv("expand", ConvShape::new(batch, 64, 56, 56, 256, 1, 1, 0)).times(3),
            Layer::conv("reduce", ConvShape::new(batch, 256, 56, 56, 64, 1, 1, 0)).times(3),
        ],
        0,
    )
}

#[test]
fn full_ladder_improves_dy_heavy_model_on_both_configs() {
    for config in [NpuConfig::small_edge(), NpuConfig::large_single_core()] {
        let model = dy_heavy_model();
        let base = simulate_model(&model, &config, Technique::Baseline);
        let ours = simulate_model(&model, &config, Technique::DataPartitioning);
        assert!(
            ours.total_cycles() < base.total_cycles(),
            "{}: {} !< {}",
            config.name,
            ours.total_cycles(),
            base.total_cycles()
        );
        // The paper's mechanism: the improvement comes from dY traffic.
        let dy_base = base.backward_traffic().read(TensorClass::OutGrad);
        let dy_ours = ours.backward_traffic().read(TensorClass::OutGrad);
        assert!(dy_ours < dy_base, "{}: dY reads must shrink", config.name);
    }
}

#[test]
fn forward_pass_is_technique_independent() {
    let config = NpuConfig::large_single_core();
    let model = dy_heavy_model();
    let a = simulate_model(&model, &config, Technique::Baseline);
    let b = simulate_model(&model, &config, Technique::DataPartitioning);
    assert_eq!(a.forward_cycles(), b.forward_cycles());
}

#[test]
fn compute_work_is_invariant_across_techniques() {
    let config = NpuConfig::small_edge();
    let model = dy_heavy_model();
    let reference = simulate_model(&model, &config, Technique::Baseline);
    for technique in [
        Technique::Interleaving,
        Technique::Rearrangement,
        Technique::RearrangementOracle,
    ] {
        let r = simulate_model(&model, &config, technique);
        for (a, b) in reference.layers.iter().zip(&r.layers) {
            assert_eq!(
                a.backward.macs, b.backward.macs,
                "{technique}: layer {} changed its math",
                a.name
            );
        }
    }
}

#[test]
fn every_zoo_model_simulates_on_its_target_config() {
    // Smoke coverage: each Table 4 entry builds and runs the baseline on
    // the configuration the paper evaluates it with.
    let edge = NpuConfig::small_edge();
    let server = NpuConfig::large_single_core();
    for id in igo_workloads::zoo::EDGE_SUITE {
        let model = zoo::model(id, edge.default_batch());
        let r = simulate_model(&model, &edge, Technique::Baseline);
        assert!(r.total_cycles() > 0, "{id} on edge");
    }
    for id in igo_workloads::zoo::SERVER_SUITE {
        let model = zoo::model(id, server.default_batch());
        let r = simulate_model(&model, &server, Technique::Baseline);
        assert!(r.total_cycles() > 0, "{id} on server");
    }
}

#[test]
fn multicore_beats_single_core_in_absolute_time() {
    // More cores, more bandwidth, bigger batch: a step with 4x the batch
    // on 4 cores should take less than 4x the single-core time of a
    // 1x-batch step (weak scaling sanity).
    let single = NpuConfig::large_single_core();
    let quad = NpuConfig::large_server(4);
    let model_1 = zoo::model(ModelId::Resnet50, single.default_batch());
    let model_4 = zoo::model(ModelId::Resnet50, quad.default_batch());
    let t1 = simulate_model(&model_1, &single, Technique::Baseline).total_cycles();
    let t4 = simulate_model(&model_4, &quad, Technique::Baseline).total_cycles();
    assert!(
        t4 < 4 * t1,
        "quad-core with 4x batch must beat 4x single-core time: {t4} vs {}",
        4 * t1
    );
}

#[test]
fn bandwidth_starvation_increases_gains() {
    // Figure 15's mechanism as an invariant: cutting bandwidth must not
    // shrink the relative benefit of the techniques.
    let model = dy_heavy_model();
    let full = NpuConfig::large_single_core();
    let quarter = NpuConfig::large_single_core().with_bandwidth_scale(0.25);
    let gain = |config: &NpuConfig| {
        let base = simulate_model(&model, config, Technique::DataPartitioning)
            .normalized_to(&simulate_model(&model, config, Technique::Baseline));
        1.0 - base
    };
    let g_full = gain(&full);
    let g_quarter = gain(&quarter);
    assert!(
        g_quarter >= g_full - 0.01,
        "gains at 0.25x BW ({g_quarter:.3}) should not collapse vs 1x ({g_full:.3})"
    );
}

#[test]
fn report_traffic_is_self_consistent() {
    let config = NpuConfig::small_edge();
    let model = dy_heavy_model();
    let r = simulate_model(&model, &config, Technique::Baseline);
    let bwd = r.backward_traffic();
    let total = r.total_traffic();
    assert!(total.total() >= bwd.total());
    assert!(bwd.read(TensorClass::OutGrad) > 0);
    // Results must be written out: dX and dW traffic exists.
    assert!(bwd.write(TensorClass::InGrad) > 0);
    assert!(bwd.write(TensorClass::WGrad) > 0);
}
