//! Integration tests pinning the paper's qualitative claims — the *shape*
//! of every reproduced result. These are the assertions EXPERIMENTS.md is
//! built on: who wins, in which direction sensitivities move, and where
//! the mechanisms bite. (Absolute magnitudes are recorded, not asserted;
//! see EXPERIMENTS.md for the paper-vs-measured table.)

use igo::prelude::*;
use igo_core::Technique;
use igo_tensor::GemmShape;

fn edge_suite_subset() -> Vec<Model> {
    // A fast, representative subset for CI-speed assertions.
    [ModelId::Resnet50, ModelId::MobileNet, ModelId::BertTiny]
        .into_iter()
        .map(|id| zoo::model(id, 4))
        .collect()
}

fn mean_normalized(models: &[Model], config: &NpuConfig, technique: Technique) -> f64 {
    let mut sum = 0.0;
    for model in models {
        let base = simulate_model(model, config, Technique::Baseline);
        sum += simulate_model(model, config, technique).normalized_to(&base);
    }
    sum / models.len() as f64
}

#[test]
fn figure12_full_stack_wins_on_both_configs() {
    let edge = NpuConfig::small_edge();
    let models = edge_suite_subset();
    let part = mean_normalized(&models, &edge, Technique::DataPartitioning);
    assert!(part < 1.0, "edge full stack must win on average: {part:.3}");

    let server = NpuConfig::large_single_core();
    let models: Vec<Model> = [ModelId::Resnet50, ModelId::GoogleNet, ModelId::Ncf]
        .into_iter()
        .map(|id| zoo::model(id, 8))
        .collect();
    let part = mean_normalized(&models, &server, Technique::DataPartitioning);
    assert!(
        part < 1.0,
        "server full stack must win on average: {part:.3}"
    );
}

#[test]
fn figure12_ladder_is_cumulative_on_average() {
    let config = NpuConfig::small_edge();
    let models = edge_suite_subset();
    let rearr = mean_normalized(&models, &config, Technique::Rearrangement);
    let part = mean_normalized(&models, &config, Technique::DataPartitioning);
    assert!(
        part <= rearr + 1e-9,
        "+DataPartitioning ({part:.3}) must not lose to +Rearrangement ({rearr:.3})"
    );
}

#[test]
fn figure5_dy_dominates_backward_reads() {
    // Paper: dY is ~51% of backward reads on the large NPU.
    let config = NpuConfig::large_single_core();
    let model = zoo::model(ModelId::Resnet50, 8);
    let t = simulate_model(&model, &config, Technique::Baseline).backward_traffic();
    let ratio = t.read_ratio(TensorClass::OutGrad);
    assert!(
        (0.3..0.85).contains(&ratio),
        "dY read share out of the paper's regime: {ratio:.2}"
    );
}

#[test]
fn figure6_ideal_reuse_speedup_larger_on_small_npu() {
    // Paper: 1.70x on the small NPU vs 1.43x on the large one — less SPM,
    // more to gain.
    let model_small = zoo::model(ModelId::Resnet50, 4);
    let model_large = zoo::model(ModelId::Resnet50, 8);
    let speedup = |model: &Model, config: &NpuConfig| {
        let base = simulate_model(model, config, Technique::Baseline);
        let ideal = simulate_model(model, config, Technique::IdealDyReuse);
        base.total_cycles() as f64 / ideal.total_cycles() as f64
    };
    let s_small = speedup(&model_small, &NpuConfig::small_edge());
    let s_large = speedup(&model_large, &NpuConfig::large_single_core());
    assert!(s_small > 1.0 && s_large > 1.0);
    assert!(
        s_small > s_large,
        "small NPU should gain more: {s_small:.3} vs {s_large:.3}"
    );
}

#[test]
fn figure15_gains_grow_as_bandwidth_shrinks() {
    let model = zoo::model(ModelId::Resnet50, 8);
    let norm = |scale: f64| {
        let config = NpuConfig::large_single_core().with_bandwidth_scale(scale);
        let base = simulate_model(&model, &config, Technique::Baseline);
        simulate_model(&model, &config, Technique::DataPartitioning).normalized_to(&base)
    };
    let at_full = norm(1.0);
    let at_quarter = norm(0.25);
    assert!(
        at_quarter <= at_full + 0.01,
        "quarter-bandwidth gains must not shrink: {at_quarter:.3} vs {at_full:.3}"
    );
}

#[test]
fn figure16_batch_size_does_not_flip_the_result() {
    // Paper: improvements are flat in batch size.
    for batch in [8u64, 16, 32] {
        let config = NpuConfig::large_single_core().with_batch_per_core(batch);
        let model = zoo::model(ModelId::Resnet50, batch);
        let base = simulate_model(&model, &config, Technique::Baseline);
        let ours = simulate_model(&model, &config, Technique::DataPartitioning);
        assert!(
            ours.normalized_to(&base) < 1.0,
            "batch {batch}: full stack must still win"
        );
    }
}

#[test]
fn first_layer_never_interleaved() {
    let config = NpuConfig::large_single_core();
    let model = zoo::model(ModelId::YoloV2Tiny, 8);
    let r = simulate_model(&model, &config, Technique::Rearrangement);
    // First layer's backward is the dW-only pass: exactly M*K*N MACs.
    let first = &r.layers[0];
    assert_eq!(first.backward.macs, model.layers[0].gemm.macs());
}

#[test]
fn algorithm1_matches_paper_examples() {
    use igo_core::select_order;
    use igo_tensor::TraversalOrder;
    // Square-ish -> plain interleaving; K-dominant -> dWmajor;
    // M-dominant shallow conv -> dXmajor.
    assert_eq!(
        select_order(GemmShape::new(512, 512, 512)),
        TraversalOrder::Traditional
    );
    assert_eq!(
        select_order(GemmShape::new(392, 4608, 512)),
        TraversalOrder::DwMajor
    );
    assert_eq!(
        select_order(GemmShape::new(100_352, 147, 64)),
        TraversalOrder::DxMajor
    );
}
