//! Tier-1 smoke for the differential fuzz-audit subsystem.
//!
//! Runs a fixed-seed audit batch (the same entry point as
//! `igo-sim audit`) and asserts it is clean, then proves the harness has
//! teeth: a deliberately corrupted report must trip the conservation
//! checker. Failures print the reproducer seeds so the exact case can be
//! replayed with `igo-sim audit --seed S --seeds 1`.

use igo_core::{
    check_report_conservation, run_audit, BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy,
};
use igo_npu_sim::{Engine, NpuConfig, Schedule};
use igo_tensor::GemmShape;

/// Fixed-seed audit batch: every differential, accounting, merge-legality
/// and Algorithm-1 check must pass. 48 seeds keeps the smoke under a
/// second while still covering single/multi-core, ragged shapes and every
/// technique.
#[test]
fn fixed_seed_audit_batch_is_clean() {
    let summary = run_audit(48, 0x1960);
    assert!(
        summary.passed(),
        "audit regression; rerun failing seeds {:?} with `igo-sim audit --seed S --seeds 1`\n{}",
        summary.reproducer_seeds(),
        summary.to_json()
    );
    assert_eq!(summary.cases, 48);
    assert!(summary.checks >= 5 * 48, "checks = {}", summary.checks);
}

/// The audit must not be vacuous: corrupting a genuine engine report in a
/// single accounting class has to produce a violation.
#[test]
fn audit_catches_injected_accounting_bug() {
    let config = NpuConfig::small_edge();
    let policy = TilePolicy::for_config(&config);
    let mut proto = Schedule::new("smoke");
    let tensors = LayerTensors::register(&mut proto, "layer");
    let mut schedule = proto.fork("bwd");
    BackwardBuilder::new(GemmShape::new(120, 96, 72), policy, tensors).emit(
        BackwardOrder::Interleaved,
        false,
        &mut schedule,
    );

    let clean = Engine::new(&config).run(&schedule);
    assert!(
        check_report_conservation(&schedule, &config, &clean, 0).is_empty(),
        "clean report must pass"
    );

    let mut corrupted = clean;
    corrupted.spm_misses += 1;
    let violations = check_report_conservation(&schedule, &config, &corrupted, 0);
    assert!(
        violations
            .iter()
            .any(|v| v.check == "access-conservation" || v.check == "hit-miss-mismatch"),
        "injected miscount not caught: {violations:?}"
    );
}
