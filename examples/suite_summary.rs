//! Internal calibration aid: Figure-12-style suite summary.
use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    for (config, suite) in [
        (NpuConfig::small_edge(), zoo::edge_suite(4)),
        (NpuConfig::large_single_core(), zoo::server_suite(8)),
    ] {
        println!("== {}", config.name);
        let mut means = [0.0f64; 3];
        for model in &suite {
            let base = simulate_model(model, &config, Technique::Baseline);
            let mut row = format!("{:>6}", model.id.abbr().to_string());
            for (idx, technique) in [
                Technique::Interleaving,
                Technique::Rearrangement,
                Technique::DataPartitioning,
            ]
            .into_iter()
            .enumerate()
            {
                let r = simulate_model(model, &config, technique);
                let norm = r.normalized_to(&base);
                means[idx] += norm;
                row += &format!(" {norm:>7.3}");
            }
            println!("{row}");
        }
        for m in &mut means {
            *m /= suite.len() as f64;
        }
        println!(
            "  mean: inter {:.3} ({:+.1}%), rearr {:.3} ({:+.1}%), part {:.3} ({:+.1}%)",
            means[0],
            (1.0 - means[0]) * 100.0,
            means[1],
            (1.0 - means[1]) * 100.0,
            means[2],
            (1.0 - means[2]) * 100.0
        );
    }
}
