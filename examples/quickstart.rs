//! Quickstart: simulate one training step of ResNet-50 on the paper's two
//! NPU configurations and print the Figure-12-style technique ladder.
//!
//! Run with `cargo run --release --example quickstart`.

use igo::prelude::*;
use igo_core::Technique;

fn main() {
    for config in [NpuConfig::small_edge(), NpuConfig::large_single_core()] {
        println!("== {config}");
        let model = zoo::model(ModelId::Resnet50, config.default_batch());
        println!("   model: {model}");

        let baseline = simulate_model(&model, &config, Technique::Baseline);
        println!(
            "   {:<22} {:>14} cycles  (fwd {:>5.1}% / bwd {:>5.1}%)",
            "Baseline",
            baseline.total_cycles(),
            100.0 * baseline.forward_cycles() as f64 / baseline.total_cycles() as f64,
            100.0 * baseline.backward_cycles() as f64 / baseline.total_cycles() as f64,
        );

        for technique in [
            Technique::Interleaving,
            Technique::Rearrangement,
            Technique::DataPartitioning,
        ] {
            let report = simulate_model(&model, &config, technique);
            println!(
                "   {:<22} {:>14} cycles  ({:>5.1}% faster than baseline)",
                technique.label(),
                report.total_cycles(),
                100.0 * (1.0 - report.normalized_to(&baseline)),
            );
        }

        let traffic = baseline.backward_traffic();
        println!(
            "   backward dY traffic: {:.1}% of reads, {:.1}% of all bytes",
            100.0 * traffic.read_ratio(TensorClass::OutGrad),
            100.0 * traffic.total_ratio(TensorClass::OutGrad),
        );
    }
}
