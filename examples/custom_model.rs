//! Bring your own model: define layers with the public API, simulate the
//! technique ladder, and inspect what the scheduler decided per layer.
//!
//! Run with `cargo run --release --example custom_model`.

use igo::prelude::*;
use igo_core::Technique;
use igo_workloads::Layer;

fn main() {
    // A small bespoke CNN: stem, two conv stages, a projection head.
    let batch = 4;
    let layers = vec![
        Layer::conv("stem", ConvShape::new(batch, 3, 128, 128, 32, 3, 2, 1)),
        Layer::conv("stage1", ConvShape::new(batch, 32, 64, 64, 64, 3, 1, 1)).times(2),
        Layer::conv("down1", ConvShape::new(batch, 64, 64, 64, 128, 3, 2, 1)),
        Layer::conv("stage2", ConvShape::new(batch, 128, 32, 32, 128, 3, 1, 1)).times(2),
        Layer::fc("head", batch, 128 * 16 * 16, 256),
        Layer::fc("classifier", batch, 256, 10),
    ];
    let model = Model::new(ModelId::MobileNet, "custom-cnn", batch, layers, 0);
    println!("{model}\n");

    let config = NpuConfig::small_edge();
    let base = simulate_model(&model, &config, Technique::Baseline);
    let ours = simulate_model(&model, &config, Technique::DataPartitioning);

    println!(
        "{:<12} {:>12} {:>12} {:>8}  {:<22} order",
        "layer", "base cyc", "ours cyc", "ratio", "partition"
    );
    for (b, o) in base.layers.iter().zip(&ours.layers) {
        let scheme = o
            .decision
            .partition
            .map(|(s, p)| format!("{s} x{p}"))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<12} {:>12} {:>12} {:>8.3}  {:<22} {:?}",
            b.name,
            b.backward.cycles,
            o.backward.cycles,
            o.backward.cycles as f64 / b.backward.cycles as f64,
            scheme,
            o.decision.order,
        );
    }
    println!(
        "\ntraining step: {} -> {} cycles ({:.1}% faster); backward dY share of reads: {:.1}%",
        base.total_cycles(),
        ours.total_cycles(),
        (1.0 - ours.normalized_to(&base)) * 100.0,
        base.backward_traffic().read_ratio(TensorClass::OutGrad) * 100.0,
    );
}
