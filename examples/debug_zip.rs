//! Internal debugging aid: why does chunked zip lose on a specific layer?
use igo_core::{simulate_layer_backward_ex, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::{zoo, ModelId};

fn main() {
    let config = NpuConfig::small_edge();
    for model in [
        zoo::model(ModelId::Dlrm, 4),
        zoo::model(ModelId::YoloV2Tiny, 4),
    ] {
        println!("== {}", model.name);
        for layer in &model.layers {
            let (b, _) = simulate_layer_backward_ex(
                layer.gemm,
                layer.ifmap_density,
                &config,
                Technique::Baseline,
                layer.is_first,
            );
            let (i, _) = simulate_layer_backward_ex(
                layer.gemm,
                layer.ifmap_density,
                &config,
                Technique::Interleaving,
                layer.is_first,
            );
            println!(
                "{:<12} {} base={} inter={:.3} | base reads {}KB writes {}KB vs inter reads {}KB writes {}KB | hits {} vs {}",
                layer.name,
                layer.gemm,
                b.cycles,
                i.cycles as f64 / b.cycles as f64,
                b.traffic.read_total() >> 10,
                b.traffic.write_total() >> 10,
                i.traffic.read_total() >> 10,
                i.traffic.write_total() >> 10,
                b.spm_hits,
                i.spm_hits,
            );
        }
    }
}
