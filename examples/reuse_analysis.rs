//! Make the paper's Figure 9 argument quantitative: for each schedule
//! family, what fraction of `dY` reuses actually fit in half the SPM?
//!
//! The paper: "duplicated memory traffic arises when the distance between
//! the dX and dW calculations exceeds the number of tiled computations
//! that can be loaded in half of the SPM" (§4.2). This example computes
//! that reuse-distance profile for a ResNet expansion layer on both NPU
//! configurations — no timing simulation involved, pure schedule
//! geometry.
//!
//! Run with `cargo run --release --example reuse_analysis`.

use igo::prelude::*;
use igo_core::{BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
use igo_npu_sim::{reuse_profile, Schedule};

fn main() {
    let gemm = GemmShape::new(25_088, 64, 256);
    for config in [NpuConfig::small_edge(), NpuConfig::large_single_core()] {
        let policy = TilePolicy::for_config(&config);
        let capacity = config.residency_bytes_per_core();
        println!(
            "== {} (residency {} KiB, layer {gemm})",
            config.name,
            capacity >> 10
        );
        println!(
            "{:<14} {:>10} {:>10} {:>14} {:>14}",
            "order", "dY acc", "dY reuses", "captured", "capture rate"
        );
        let mut proto = Schedule::new("reuse");
        let tensors = LayerTensors::register(&mut proto, "l");
        for (name, order) in [
            ("baseline", BackwardOrder::Baseline),
            ("interleaved", BackwardOrder::Interleaved),
            ("dXmajor", BackwardOrder::DxMajor),
            ("dWmajor", BackwardOrder::DwMajor),
        ] {
            let mut s = proto.fork(name);
            BackwardBuilder::new(gemm, policy, tensors).emit(order, false, &mut s);
            let profile = reuse_profile(&s, capacity);
            let dy = TensorClass::OutGrad;
            println!(
                "{:<14} {:>10} {:>10} {:>14} {:>13.1}%",
                name,
                profile.accesses.get(&dy).copied().unwrap_or(0),
                profile.reuses.get(&dy).copied().unwrap_or(0),
                profile
                    .reuses_within_capacity
                    .get(&dy)
                    .copied()
                    .unwrap_or(0),
                profile.capture_rate(dy) * 100.0,
            );
        }
        println!();
    }
    println!("baseline dY reuses cross the kernel barrier and are lost by construction;");
    println!("the fused orders keep the dX/dW touch pairs within SPM reach.");
}
