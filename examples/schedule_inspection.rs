//! A tour of the low-level API: build each backward schedule family for a
//! single layer by hand, run them on the simulator, and compare per-class
//! DRAM traffic — the mechanics behind every figure in the paper.
//!
//! Run with `cargo run --release --example schedule_inspection`.

use igo::prelude::*;
use igo_core::{select_order, BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
use igo_npu_sim::{Engine, Schedule};

fn main() {
    // A ResNet expansion convolution: dY-heavy, the paper's sweet spot.
    let gemm = GemmShape::new(25_088, 64, 256);
    let config = NpuConfig::large_single_core();
    let policy = TilePolicy::for_config(&config);
    let engine = Engine::new(&config);

    println!("layer {gemm} on {}", config.name);
    println!("algorithm 1 selects: {}\n", select_order(gemm));
    println!(
        "{:<14} {:>8} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "order", "ops", "cycles", "dY-read", "W-read", "X-read", "hit-rate"
    );

    let mut proto = Schedule::new("inspect");
    let tensors = LayerTensors::register(&mut proto, "layer");
    for (name, order) in [
        ("baseline", BackwardOrder::Baseline),
        ("ideal-dY", BackwardOrder::IdealDyReuse),
        ("interleaved", BackwardOrder::Interleaved),
        ("dXmajor", BackwardOrder::DxMajor),
        ("dWmajor", BackwardOrder::DwMajor),
    ] {
        let mut schedule = proto.fork(name);
        BackwardBuilder::new(gemm, policy, tensors)
            .with_ifmap_density(1.0 / 9.0)
            .emit(order, false, &mut schedule);
        let report = engine.run(&schedule);
        println!(
            "{:<14} {:>8} {:>12} {:>9}M {:>9}M {:>9}M {:>8.1}%",
            name,
            schedule.len(),
            report.cycles,
            report.traffic.read(TensorClass::OutGrad) >> 20,
            report.traffic.read(TensorClass::Weight) >> 20,
            report.traffic.read(TensorClass::Ifmap) >> 20,
            report.hit_rate() * 100.0,
        );
    }
    println!(
        "\nall orders perform the same multiply-accumulates; only the memory behaviour differs."
    );
}
