//! Internal debugging aid: per-layer technique comparison.
use igo_core::{simulate_layer_backward, Technique};
use igo_npu_sim::NpuConfig;
use igo_tensor::{GemmShape, TensorClass};
use igo_workloads::{zoo, ModelId};

fn main() {
    let config = if std::env::args().any(|a| a == "--edge") {
        NpuConfig::small_edge()
    } else {
        NpuConfig::large_single_core()
    };
    let model = zoo::model(ModelId::Resnet50, config.default_batch());
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} | baseline detail",
        "layer", "base", "inter", "rearr", "part"
    );
    for layer in &model.layers {
        let (b, _) =
            simulate_layer_backward(layer.gemm, &config, Technique::Baseline, layer.is_first);
        let (i, _) =
            simulate_layer_backward(layer.gemm, &config, Technique::Interleaving, layer.is_first);
        let (r, d) = simulate_layer_backward(
            layer.gemm,
            &config,
            Technique::Rearrangement,
            layer.is_first,
        );
        let (p, pd) = simulate_layer_backward(
            layer.gemm,
            &config,
            Technique::DataPartitioning,
            layer.is_first,
        );
        println!(
            "{:<18} {:>10} {:>10.3} {:>10.3} {:>10.3} | {} m={} misses={} dyR={}MB memb={:.2} order={:?} part={:?}",
            layer.name,
            b.cycles,
            i.cycles as f64 / b.cycles as f64,
            r.cycles as f64 / b.cycles as f64,
            p.cycles as f64 / b.cycles as f64,
            layer.gemm,
            layer.gemm.m(),
            b.spm_misses,
            b.traffic.read(TensorClass::OutGrad) / (1 << 20),
            b.memory_boundedness(),
            d.order,
            pd.partition,
        );
    }
    // One isolated shape study.
    let g = GemmShape::new(25088, 576, 64);
    for t in [
        Technique::Baseline,
        Technique::Interleaving,
        Technique::Rearrangement,
    ] {
        let (r, _) = simulate_layer_backward(g, &config, t, false);
        println!(
            "{t:<20} cycles={} mem={} comp={} reads={}MB writes={}MB hits={} misses={}",
            r.cycles,
            r.mem_cycles,
            r.compute_cycles,
            r.traffic.read_total() / (1 << 20),
            r.traffic.write_total() / (1 << 20),
            r.spm_hits,
            r.spm_misses
        );
    }
}
