//! Edge fine-tuning scenario (the paper's federated-learning motivation).
//!
//! An Ethos-class edge NPU fine-tunes the *edge* model variants locally —
//! the personalisation / federated-learning use case of §1 and §2.2, where
//! every device computes its own backward passes and only model updates
//! leave the device. Training throughput (and hence energy per round)
//! hinges on SPM reuse, which is exactly what the interleaved gradient
//! order improves.
//!
//! Run with `cargo run --release --example edge_federated`.

use igo::prelude::*;
use igo_core::Technique;

fn main() {
    let config = NpuConfig::small_edge();
    println!("federated edge device: {config}\n");

    let mut total_base = 0u64;
    let mut total_ours = 0u64;
    for id in [ModelId::BertTiny, ModelId::T5Small, ModelId::MobileNet] {
        let model = zoo::model(id, config.default_batch());
        let base = simulate_model(&model, &config, Technique::Baseline);
        let ours = simulate_model(&model, &config, Technique::DataPartitioning);
        total_base += base.total_cycles();
        total_ours += ours.total_cycles();
        println!(
            "{:<12} one local step: {:>8.2} ms -> {:>8.2} ms  ({:.1}% faster)",
            model.name,
            base.total_cycles() as f64 / config.freq_hz * 1e3,
            ours.total_cycles() as f64 / config.freq_hz * 1e3,
            (1.0 - ours.normalized_to(&base)) * 100.0,
        );

        // Federated round: 50 local steps before uploading the update.
        let steps = 50u64;
        let saved_ms = (base.total_cycles() - ours.total_cycles()) as f64 * steps as f64
            / config.freq_hz
            * 1e3;
        println!(
            "{:<12} per 50-step round: {:.0} ms of NPU time saved",
            "", saved_ms
        );
    }
    println!(
        "\nacross the three edge workloads: {:.1}% less NPU busy time per round",
        (1.0 - total_ours as f64 / total_base as f64) * 100.0
    );
}
