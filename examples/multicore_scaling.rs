//! Multi-core server scaling (the paper's §6.3 scenario).
//!
//! Scales the large NPU from one to eight cores — DRAM bandwidth, shared
//! SPM and batch size grow with the core count, as on TPUv4-style parts —
//! and compares conventional batch-parallel execution against the full
//! interleaved-gradient-order stack with per-layer partition selection.
//!
//! Run with `cargo run --release --example multicore_scaling`.

use igo::prelude::*;
use igo_core::{PartitionScheme, Technique};

fn main() {
    let id = ModelId::BertLarge;
    println!("workload: {id} (server variant)\n");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>12}",
        "cores", "batch", "baseline(ms)", "ours(ms)", "improvement"
    );
    for cores in [1u32, 2, 4, 8] {
        let config = NpuConfig::large_server(cores);
        let model = zoo::model(id, config.default_batch());
        let base = simulate_model(&model, &config, Technique::Baseline);
        let ours = simulate_model(&model, &config, Technique::DataPartitioning);
        println!(
            "{:>6} {:>10} {:>14.2} {:>14.2} {:>11.1}%",
            cores,
            config.default_batch(),
            base.total_cycles() as f64 / config.freq_hz * 1e3,
            ours.total_cycles() as f64 / config.freq_hz * 1e3,
            (1.0 - ours.normalized_to(&base)) * 100.0
        );
    }

    // What did the partition selector pick on the quad-core?
    let config = NpuConfig::large_server(4);
    let model = zoo::model(id, config.default_batch());
    let ours = simulate_model(&model, &config, Technique::DataPartitioning);
    println!("\nquad-core per-layer partitioning decisions:");
    for layer in &ours.layers {
        let scheme = layer
            .decision
            .partition
            .map(|(s, p)| format!("{s} x{p}"))
            .unwrap_or_else(|| "unpartitioned".to_owned());
        println!(
            "  {:<16} {:<24} order {:?}",
            layer.name, scheme, layer.decision.order
        );
    }
    let _ = PartitionScheme::ALL; // re-exported for users writing their own selectors
}
