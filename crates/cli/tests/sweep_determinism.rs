//! Determinism contract of `igo-sim sweep`: the emitted grid — row order,
//! every cell, and the best-technique frontier — must be byte-identical
//! for every worker count (whether capped by the global `--jobs` flag or
//! the `IGO_SIM_THREADS` environment variable) and on both execution
//! paths (the default capacity-oblivious profiled path and the
//! `--no-profile` per-grid-point fallback).

use std::path::{Path, PathBuf};
use std::process::Command;

/// Run one sweep invocation into its own output directory and return the
/// `(sweep.csv, summary.json)` contents.
fn run_sweep(
    tmp: &Path,
    tag: &str,
    jobs: Option<&str>,
    env_threads: Option<&str>,
    extra: &[&str],
) -> (String, String) {
    let out = tmp.join(tag);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_igo-sim"));
    if let Some(n) = jobs {
        cmd.args(["--jobs", n]);
    }
    if let Some(n) = env_threads {
        cmd.env("IGO_SIM_THREADS", n);
    }
    cmd.args(["sweep", "bert-tiny", "--spm", "2,4,8", "--out"])
        .arg(&out)
        .args(extra);
    let output = cmd.output().expect("spawn igo-sim");
    assert!(
        output.status.success(),
        "sweep {tag} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        std::fs::read_to_string(out.join("sweep.csv")).expect("sweep.csv"),
        std::fs::read_to_string(out.join("summary.json")).expect("summary.json"),
    )
}

/// The `"best"` frontier portion of a summary (wall time and cache
/// counters legitimately vary run to run; the frontier must not).
fn best_of(summary: &str) -> &str {
    let start = summary
        .find("\"best\":")
        .expect("summary records a best frontier");
    &summary[start..]
}

#[test]
fn sweep_grid_is_independent_of_worker_count_and_profiling_path() {
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("sweep-determinism");
    let _ = std::fs::remove_dir_all(&tmp);

    let (csv_serial, sum_serial) = run_sweep(&tmp, "jobs1", Some("1"), None, &[]);
    let (csv_pool, sum_pool) = run_sweep(&tmp, "env3", None, Some("3"), &[]);
    assert_eq!(
        csv_serial, csv_pool,
        "sweep rows changed between --jobs 1 and IGO_SIM_THREADS=3"
    );
    assert_eq!(best_of(&sum_serial), best_of(&sum_pool));

    let (csv_flat, sum_flat) = run_sweep(&tmp, "noprofile", Some("3"), None, &["--no-profile"]);
    assert_eq!(
        csv_pool, csv_flat,
        "profiled sweep diverged from the per-grid-point path"
    );
    assert_eq!(best_of(&sum_pool), best_of(&sum_flat));

    let _ = std::fs::remove_dir_all(&tmp);
}
