//! Argument parsing for `igo-sim` (dependency-free by design).

use igo_npu_sim::NpuConfig;
use igo_workloads::ModelId;

/// Accepted model abbreviations (superset of Table 4's: the size variants
/// get explicit names).
pub const MODEL_TABLE: &[(&str, ModelId)] = &[
    ("rcnn", ModelId::FasterRcnn),
    ("goo", ModelId::GoogleNet),
    ("ncf", ModelId::Ncf),
    ("res", ModelId::Resnet50),
    ("dlrm", ModelId::Dlrm),
    ("mob", ModelId::MobileNet),
    ("yolo", ModelId::YoloV5),
    ("yolo-tiny", ModelId::YoloV2Tiny),
    ("bert", ModelId::BertLarge),
    ("bert-tiny", ModelId::BertTiny),
    ("t5", ModelId::T5Large),
    ("t5-small", ModelId::T5Small),
];

/// Parse a model abbreviation.
pub fn parse_model(arg: &str) -> Option<ModelId> {
    let lower = arg.to_ascii_lowercase();
    MODEL_TABLE
        .iter()
        .find(|(abbr, _)| *abbr == lower)
        .map(|(_, id)| *id)
}

/// Parse `edge`, `server`, or `serverxN` (N in 1..=8).
pub fn parse_config(arg: &str) -> Option<NpuConfig> {
    let lower = arg.to_ascii_lowercase();
    match lower.as_str() {
        "edge" | "small" => Some(NpuConfig::small_edge()),
        "server" | "large" => Some(NpuConfig::large_single_core()),
        _ => {
            let cores: u32 = lower.strip_prefix("serverx")?.parse().ok()?;
            if (1..=8).contains(&cores) {
                Some(NpuConfig::large_server(cores))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_table_entries() {
        for (abbr, id) in MODEL_TABLE {
            assert_eq!(parse_model(abbr), Some(*id));
        }
        assert_eq!(parse_model("RES"), Some(ModelId::Resnet50));
        assert_eq!(parse_model("nope"), None);
    }

    #[test]
    fn parses_configs() {
        assert_eq!(parse_config("edge").unwrap().cores, 1);
        assert_eq!(parse_config("server").unwrap().pe.rows, 128);
        assert_eq!(parse_config("serverx4").unwrap().cores, 4);
        assert!(parse_config("serverx16").is_none());
        assert!(parse_config("gpu").is_none());
    }
}
