//! Argument parsing for `igo-sim` (dependency-free by design).

use igo_core::Technique;
use igo_npu_sim::NpuConfig;
use igo_tensor::GemmShape;
use igo_workloads::ModelId;

/// Accepted model abbreviations (superset of Table 4's: the size variants
/// get explicit names).
pub const MODEL_TABLE: &[(&str, ModelId)] = &[
    ("rcnn", ModelId::FasterRcnn),
    ("goo", ModelId::GoogleNet),
    ("ncf", ModelId::Ncf),
    ("res", ModelId::Resnet50),
    ("dlrm", ModelId::Dlrm),
    ("mob", ModelId::MobileNet),
    ("yolo", ModelId::YoloV5),
    ("yolo-tiny", ModelId::YoloV2Tiny),
    ("bert", ModelId::BertLarge),
    ("bert-tiny", ModelId::BertTiny),
    ("t5", ModelId::T5Large),
    ("t5-small", ModelId::T5Small),
];

/// Full model names (the zoo's canonical `Model::name` strings, plus the
/// common unsuffixed spellings), accepted alongside the abbreviations.
const FULL_NAME_TABLE: &[(&str, ModelId)] = &[
    ("faster-rcnn", ModelId::FasterRcnn),
    ("googlenet", ModelId::GoogleNet),
    ("resnet50", ModelId::Resnet50),
    ("mobilenet", ModelId::MobileNet),
    ("yolov5", ModelId::YoloV5),
    ("yolov5l", ModelId::YoloV5),
    ("yolov2-tiny", ModelId::YoloV2Tiny),
    ("bert-large", ModelId::BertLarge),
    ("t5-large", ModelId::T5Large),
];

/// Parse a model argument: a Table-4 abbreviation (`res`, `bert`, ...) or
/// a full model name (`resnet50`, `bert-large`, ...), case-insensitive.
pub fn parse_model(arg: &str) -> Option<ModelId> {
    let lower = arg.to_ascii_lowercase();
    MODEL_TABLE
        .iter()
        .chain(FULL_NAME_TABLE)
        .find(|(name, _)| *name == lower)
        .map(|(_, id)| *id)
}

/// Parse `edge`, `server`, or `serverxN` (N in 1..=8).
pub fn parse_config(arg: &str) -> Option<NpuConfig> {
    let lower = arg.to_ascii_lowercase();
    match lower.as_str() {
        "edge" | "small" => Some(NpuConfig::small_edge()),
        "server" | "large" => Some(NpuConfig::large_single_core()),
        _ => {
            let cores: u32 = lower.strip_prefix("serverx")?.parse().ok()?;
            if (1..=8).contains(&cores) {
                Some(NpuConfig::large_server(cores))
            } else {
                None
            }
        }
    }
}

/// Parse an ad-hoc layer shape `MxKxN` (e.g. `512x256x1024`); all three
/// dimensions must be positive. The separator is a literal `x` (either
/// case).
pub fn parse_mkn(arg: &str) -> Option<GemmShape> {
    let lower = arg.to_ascii_lowercase();
    let mut parts = lower.split('x');
    let m: u64 = parts.next()?.parse().ok()?;
    let k: u64 = parts.next()?.parse().ok()?;
    let n: u64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || m == 0 || k == 0 || n == 0 {
        return None;
    }
    Some(GemmShape::new(m, k, n))
}

/// Parse a technique name for `trace --technique`, case-insensitive.
pub fn parse_technique(arg: &str) -> Option<Technique> {
    match arg.to_ascii_lowercase().as_str() {
        "baseline" => Some(Technique::Baseline),
        "ideal" | "ideal-dy-reuse" => Some(Technique::IdealDyReuse),
        "interleaving" => Some(Technique::Interleaving),
        "rearrangement" => Some(Technique::Rearrangement),
        "oracle" | "rearrangement-oracle" => Some(Technique::RearrangementOracle),
        "partitioning" | "data-partitioning" => Some(Technique::DataPartitioning),
        _ => None,
    }
}

/// Parse a comma-separated SPM ladder in MiB (e.g. `3,6,12,24`); every
/// rung must be a positive integer. Rungs are sorted ascending and
/// deduplicated, so `24,3,3` and `3,24` name the same ladder.
pub fn parse_spm_ladder(arg: &str) -> Option<Vec<u64>> {
    let mut rungs: Vec<u64> = arg
        .split(',')
        .map(|p| p.trim().parse::<u64>().ok().filter(|&v| v > 0))
        .collect::<Option<Vec<u64>>>()?;
    rungs.sort_unstable();
    rungs.dedup();
    if rungs.is_empty() {
        None
    } else {
        Some(rungs)
    }
}

/// Parse a comma-separated technique list (names as in
/// [`parse_technique`]), e.g. `baseline,rearrangement,data-partitioning`.
pub fn parse_techniques(arg: &str) -> Option<Vec<Technique>> {
    let list: Vec<Technique> = arg
        .split(',')
        .map(|p| parse_technique(p.trim()))
        .collect::<Option<Vec<Technique>>>()?;
    if list.is_empty() {
        None
    } else {
        Some(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_table_entries() {
        for (abbr, id) in MODEL_TABLE {
            assert_eq!(parse_model(abbr), Some(*id));
        }
        assert_eq!(parse_model("RES"), Some(ModelId::Resnet50));
        assert_eq!(parse_model("nope"), None);
    }

    #[test]
    fn parses_full_model_names() {
        for (name, id) in FULL_NAME_TABLE {
            assert_eq!(parse_model(name), Some(*id));
        }
        assert_eq!(parse_model("resnet50"), Some(ModelId::Resnet50));
        assert_eq!(parse_model("BERT-Large"), Some(ModelId::BertLarge));
        assert_eq!(parse_model("faster-rcnn"), Some(ModelId::FasterRcnn));
        // Every zoo model's canonical name string must parse back to its id.
        for id in igo_workloads::zoo::SERVER_SUITE
            .iter()
            .chain(igo_workloads::zoo::EDGE_SUITE.iter())
        {
            let m = igo_workloads::zoo::model(*id, 8);
            assert_eq!(parse_model(&m.name), Some(*id), "{}", m.name);
        }
    }

    #[test]
    fn parses_mkn_shapes() {
        assert_eq!(
            parse_mkn("512x256x1024"),
            Some(GemmShape::new(512, 256, 1024))
        );
        assert_eq!(parse_mkn("4X4X4"), Some(GemmShape::new(4, 4, 4)));
        assert!(parse_mkn("512x256").is_none());
        assert!(parse_mkn("512x256x1024x8").is_none());
        assert!(parse_mkn("0x1x1").is_none());
        assert!(parse_mkn("axbxc").is_none());
    }

    #[test]
    fn parses_techniques() {
        assert_eq!(parse_technique("baseline"), Some(Technique::Baseline));
        assert_eq!(
            parse_technique("Rearrangement"),
            Some(Technique::Rearrangement)
        );
        assert_eq!(parse_technique("ideal"), Some(Technique::IdealDyReuse));
        assert_eq!(
            parse_technique("oracle"),
            Some(Technique::RearrangementOracle)
        );
        assert_eq!(
            parse_technique("data-partitioning"),
            Some(Technique::DataPartitioning)
        );
        assert!(parse_technique("magic").is_none());
    }

    #[test]
    fn parses_spm_ladders_and_technique_lists() {
        assert_eq!(parse_spm_ladder("3,6,12"), Some(vec![3, 6, 12]));
        assert_eq!(parse_spm_ladder(" 24 "), Some(vec![24]));
        // Out-of-order and repeated rungs normalize to a sorted, unique
        // ladder: the ladder is a set of capacities, not a sequence.
        assert_eq!(parse_spm_ladder("24,3,3"), Some(vec![3, 24]));
        assert_eq!(parse_spm_ladder("12,6,12,6"), Some(vec![6, 12]));
        assert!(parse_spm_ladder("3,0").is_none());
        assert!(parse_spm_ladder("3,x").is_none());
        assert!(parse_spm_ladder("").is_none());
        assert_eq!(
            parse_techniques("baseline, data-partitioning"),
            Some(vec![Technique::Baseline, Technique::DataPartitioning])
        );
        assert!(parse_techniques("baseline,magic").is_none());
    }

    #[test]
    fn parses_configs() {
        assert_eq!(parse_config("edge").unwrap().cores, 1);
        assert_eq!(parse_config("server").unwrap().pe.rows, 128);
        assert_eq!(parse_config("serverx4").unwrap().cores, 4);
        assert!(parse_config("serverx16").is_none());
        assert!(parse_config("gpu").is_none());
    }
}
