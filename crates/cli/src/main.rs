//! `igo-sim` — command-line front end for the IGO NPU training simulator.
//!
//! ```text
//! igo-sim models                              list the Table-4 zoo
//! igo-sim ladder  <model> <config>            technique ladder for one model
//! igo-sim layer   <M> <K> <N> <config>        per-order comparison of one layer
//! igo-sim sweep   <model>                     bandwidth sweep on the large NPU
//! igo-sim sweep   <model|zoo> --spm <ladder> [--techniques <list>]
//!                 [--config C] [--out DIR]
//!                 [--no-profile]              SPM × technique × model grid
//! igo-sim perf    [edge|server|all]           pipeline self-measurement
//! igo-sim audit   [--seeds N] [--seed S]      differential fuzz-audit
//! igo-sim trace   <model|MxKxN> <config> [--out DIR] [--technique T]
//! ```
//!
//! `<config>` is `edge`, `server`, or `serverxN` (N cores, 1..=8).
//! `<model>` is a Table-4 abbreviation (`res`, `goo`, `mob`, `rcnn`, `ncf`,
//! `dlrm`, `yolo`, `yolo-tiny`, `bert`, `bert-tiny`, `t5`, `t5-small`) or a
//! full model name (`resnet50`, `bert-large`, ...).
//!
//! The grid form of `sweep` fans a design-space grid — SPM capacity rungs
//! (`--spm`, MiB) × techniques × models (`zoo` sweeps the whole suite of
//! the base config) — across the worker pool, with the analytic fast-path
//! engine evaluating each point. On a single-core base config with two or
//! more rungs, each `(model, technique)` pair is profiled *once* by the
//! capacity-oblivious stack-distance profiler and every SPM rung is
//! answered from that one pass; `--no-profile` forces the per-grid-point
//! path instead (results are bit-identical either way). With `--out` it
//! writes `sweep.csv` and `summary.json`; otherwise both go to stdout.
//!
//! The global `--jobs N` flag caps the worker pool (equivalent to setting
//! `IGO_SIM_THREADS=N`); results are identical for every worker count.
//!
//! `trace` re-runs the decided backward schedules with the cycle-level
//! recorder attached and writes `trace.json` (Chrome trace-event JSON,
//! loadable in Perfetto), `metrics.csv`, `dy_reuse.csv` and
//! `dy_tiles.csv` into `--out` (default `igo-trace`); see
//! `docs/observability.md`.
//!
//! `audit` fuzzes the scheduling pipeline against the sequential reference
//! path and the engine's conservation invariants, printing a JSON summary;
//! on failure it exits non-zero and lists the reproducer seeds (rerun one
//! with `igo-sim audit --seed <seed> --seeds 1`).
//!
//! The global `--timing` flag appends one JSON line to stderr with the
//! command's wall-clock time, engine-run count and memo-cache hit rate
//! (see `igo_bench::wallclock::Timing`).

use igo_bench::wallclock::{measure, Timing};
use igo_core::{
    parallel_map, run_audit, select_order, sim_cache_stats, simulate_layer_backward,
    simulate_model, simulate_model_ladder, simulate_model_with, BackwardOrder, ModelReport,
    SimOptions, Technique, TraceExport, DEFAULT_REUSE_POINTS,
};
use igo_npu_sim::{analytic_run_count, engine_run_count, NpuConfig};
use igo_tensor::GemmShape;
use igo_workloads::{zoo, Model, ModelId};
use std::process::ExitCode;

mod parse;

use parse::{parse_config, parse_model};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  igo-sim [--timing] [--jobs N] models\n  igo-sim [--timing] [--jobs N] ladder <model> <edge|server|serverxN>\n  igo-sim [--timing] [--jobs N] layer <M> <K> <N> <edge|server>\n  igo-sim [--timing] [--jobs N] sweep <model>\n  igo-sim [--timing] [--jobs N] sweep <model|zoo> --spm <mib,..> [--techniques <t,..>] [--config <edge|server|serverxN>] [--out DIR] [--no-profile]\n  igo-sim [--timing] [--jobs N] perf [edge|server|all]\n  igo-sim [--timing] [--jobs N] audit [--seeds N] [--seed S]\n  igo-sim [--timing] [--jobs N] trace <model|MxKxN> <edge|server|serverxN> [--out DIR] [--technique T]"
    );
    ExitCode::from(2)
}

/// Strip the global `--jobs N` flag, applying it as the process-wide
/// `IGO_SIM_THREADS` default (an explicit env var loses to the flag).
/// Returns `false` on a malformed value.
fn take_jobs_flag(args: &mut Vec<String>) -> bool {
    let Some(i) = args.iter().position(|a| a == "--jobs") else {
        return true;
    };
    match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 0 => {
            std::env::set_var(igo_core::THREADS_ENV, n.to_string());
            args.drain(i..=i + 1);
            true
        }
        _ => {
            eprintln!("--jobs requires a positive integer");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let timing = args.iter().any(|a| a == "--timing");
    args.retain(|a| a != "--timing");
    if !take_jobs_flag(&mut args) {
        return usage();
    }
    let label = args.join(" ");
    let runs_before = engine_run_count();
    let cache_before = sim_cache_stats();
    let (code, wall) = measure(|| {
        // `audit`, `trace` and `sweep` parse their own flags; every other
        // command takes no flags beyond the already-consumed globals, so
        // any remaining `--` argument is an explicit error instead of
        // silently becoming a positional argument.
        if args.first().map(String::as_str) == Some("audit") {
            return cmd_audit(&args[1..]);
        }
        if args.first().map(String::as_str) == Some("trace") {
            return cmd_trace(&args[1..]);
        }
        if args.first().map(String::as_str) == Some("sweep") {
            return cmd_sweep(&args[1..]);
        }
        if let Some(flag) = args.iter().find(|a| a.starts_with("--")) {
            eprintln!("unknown flag '{flag}'");
            return usage();
        }
        match args.first().map(String::as_str) {
            Some("models") => cmd_models(),
            Some("ladder") if args.len() == 3 => cmd_ladder(&args[1], &args[2]),
            Some("layer") if args.len() == 5 => cmd_layer(&args[1..]),
            Some("perf") => {
                if args.len() > 2 {
                    eprintln!("perf takes at most one target (edge|server|all)");
                    return usage();
                }
                cmd_perf(args.get(1).map(String::as_str).unwrap_or("all"))
            }
            _ => usage(),
        }
    });
    if timing {
        let cache = sim_cache_stats();
        let t = Timing {
            label,
            wall_seconds: wall,
            layers: (cache.hits + cache.misses) - (cache_before.hits + cache_before.misses),
            engine_runs: engine_run_count() - runs_before,
            cache_hits: cache.hits - cache_before.hits,
            cache_misses: cache.misses - cache_before.misses,
        };
        eprintln!("{}", t.to_json());
    }
    code
}

/// Differential fuzz-audit: `N` seeded cases starting at base seed `S`
/// (case `i` uses seed `S + i`). Prints the JSON summary; exits non-zero
/// when any invariant is violated, with the reproducer seeds in the JSON.
fn cmd_audit(args: &[String]) -> ExitCode {
    let mut seeds: u64 = 100;
    let mut base: u64 = 1;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => seeds = n,
                _ => {
                    eprintln!("--seeds requires a positive integer");
                    return usage();
                }
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => base = s,
                None => {
                    eprintln!("--seed requires an unsigned integer");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown audit argument '{other}'");
                return usage();
            }
        }
    }
    let summary = run_audit(seeds, base);
    println!("{}", summary.to_json());
    if summary.passed() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "audit FAILED: {} violation(s); rerun a failing case with: igo-sim audit --seed <seed> --seeds 1",
            summary.violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Cycle-level trace of a model's (or one ad-hoc layer's) backward pass:
/// re-runs the decided schedules with the event recorder attached and
/// writes the Chrome trace JSON plus the three metrics CSVs to `--out`.
fn cmd_trace(args: &[String]) -> ExitCode {
    let mut out_dir = String::from("igo-trace");
    let mut technique = Technique::Rearrangement;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = dir.clone(),
                None => {
                    eprintln!("--out requires a directory");
                    return usage();
                }
            },
            "--technique" => match it.next().and_then(|v| parse::parse_technique(v)) {
                Some(t) => technique = t,
                None => {
                    eprintln!(
                        "--technique requires one of: baseline, ideal-dy-reuse, interleaving, rearrangement, rearrangement-oracle, data-partitioning"
                    );
                    return usage();
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown trace flag '{other}'");
                return usage();
            }
            _ => positional.push(arg),
        }
    }
    let [target, config_arg] = positional[..] else {
        eprintln!("trace takes exactly two positional arguments: <model|MxKxN> <config>");
        return usage();
    };
    let Some(config) = parse_config(config_arg) else {
        eprintln!("unknown config '{config_arg}'");
        return usage();
    };

    // One layer at a time: each layer's raw event stream is folded into
    // the incremental exporter and dropped before the next layer runs,
    // so whole-model traces stay within a bounded memory footprint.
    let options = SimOptions::default();
    let mut export = TraceExport::new(DEFAULT_REUSE_POINTS);
    let mut layers = 0usize;
    let mut events = 0usize;
    if let Some(id) = parse_model(target) {
        let model = zoo::model(id, config.default_batch());
        println!(
            "tracing {} on {} under {}",
            model.name,
            config.name,
            technique.label()
        );
        for layer in &model.layers {
            let trace = igo_core::trace_layer_backward(
                &layer.name,
                layer.gemm,
                layer.ifmap_density,
                &config,
                technique,
                layer.is_first,
                &options,
            );
            layers += 1;
            events += trace.event_count();
            export.add_layer(&trace);
        }
    } else if let Some(gemm) = parse::parse_mkn(target) {
        println!(
            "tracing layer {gemm} on {} under {}",
            config.name,
            technique.label()
        );
        let trace =
            igo_core::trace_layer_backward(target, gemm, 1.0, &config, technique, false, &options);
        layers = 1;
        events = trace.event_count();
        export.add_layer(&trace);
    } else {
        eprintln!("'{target}' is neither a known model nor an MxKxN layer shape");
        return usage();
    }

    let artifacts = export.finish();
    let dir = std::path::Path::new(&out_dir);
    let files = [
        ("trace.json", &artifacts.trace_json),
        ("metrics.csv", &artifacts.metrics_csv),
        ("dy_reuse.csv", &artifacts.dy_reuse_csv),
        ("dy_tiles.csv", &artifacts.dy_tiles_csv),
    ];
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create '{out_dir}': {e}");
        return ExitCode::FAILURE;
    }
    for (name, contents) in files {
        if let Err(e) = std::fs::write(dir.join(name), contents) {
            eprintln!("cannot write '{}': {e}", dir.join(name).display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "{layers} layer(s), {events} events -> {}/{{trace.json,metrics.csv,dy_reuse.csv,dy_tiles.csv}}",
        out_dir
    );
    println!("open trace.json in Perfetto (ui.perfetto.dev) or chrome://tracing");
    ExitCode::SUCCESS
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<12} {:<14} {:>10} {:>8} {:>8}",
        "abbr", "name", "params", "layers", "batch-dep"
    );
    for (abbr, id) in parse::MODEL_TABLE {
        let m = zoo::model(*id, 8);
        println!(
            "{:<12} {:<14} {:>9.1}M {:>8} {:>8}",
            abbr,
            m.name,
            m.params() as f64 / 1e6,
            m.total_layers(),
            "yes"
        );
    }
    ExitCode::SUCCESS
}

fn cmd_ladder(model_arg: &str, config_arg: &str) -> ExitCode {
    let Some(config) = parse_config(config_arg) else {
        eprintln!("unknown config '{config_arg}'");
        return usage();
    };
    let Some(id) = parse_model(model_arg) else {
        eprintln!("unknown model '{model_arg}'");
        return usage();
    };
    let model = zoo::model(id, config.default_batch());
    println!("{model} on {config}");
    let base = simulate_model(&model, &config, Technique::Baseline);
    println!(
        "{:<22} {:>14} cycles ({:.2} ms)",
        "Baseline",
        base.total_cycles(),
        base.total_cycles() as f64 / config.freq_hz * 1e3
    );
    for technique in [
        Technique::Interleaving,
        Technique::Rearrangement,
        Technique::DataPartitioning,
    ] {
        let r = simulate_model(&model, &config, technique);
        println!(
            "{:<22} {:>14} cycles ({:+.1}%)",
            technique.label(),
            r.total_cycles(),
            (1.0 - r.normalized_to(&base)) * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_layer(args: &[String]) -> ExitCode {
    let dims: Vec<u64> = args[..3].iter().filter_map(|a| a.parse().ok()).collect();
    let [m, k, n] = dims[..] else {
        eprintln!("M K N must be positive integers");
        return usage();
    };
    if m == 0 || k == 0 || n == 0 {
        eprintln!("M K N must be positive integers");
        return usage();
    }
    let Some(config) = parse_config(&args[3]) else {
        eprintln!("unknown config '{}'", args[3]);
        return usage();
    };
    let gemm = GemmShape::new(m, k, n);
    println!("layer {gemm} on {}", config.name);
    println!("algorithm 1 picks: {}", select_order(gemm));
    for (label, technique) in [
        ("baseline", Technique::Baseline),
        ("ideal dY reuse", Technique::IdealDyReuse),
        ("interleaving", Technique::Interleaving),
        ("rearrangement", Technique::Rearrangement),
        ("rearrangement(oracle)", Technique::RearrangementOracle),
        ("data partitioning", Technique::DataPartitioning),
    ] {
        let (r, d) = simulate_layer_backward(gemm, &config, technique, false);
        let decided = match technique {
            Technique::Baseline | Technique::IdealDyReuse => String::new(),
            _ => format!(
                "  [{:?}{}]",
                d.order,
                d.partition
                    .map(|(s, p)| format!(", {s} x{p}"))
                    .unwrap_or_default()
            ),
        };
        println!(
            "{:<22} {:>12} cycles, {:>6} MiB DRAM{}",
            label,
            r.cycles,
            r.traffic.total() >> 20,
            decided
        );
    }
    let _ = BackwardOrder::Baseline; // exercised via decisions above
    ExitCode::SUCCESS
}

/// `sweep` front end. The legacy one-positional form (`sweep <model>`) is
/// the Figure-15 bandwidth sweep; `zoo` or any flag selects the
/// design-space grid sweep.
fn cmd_sweep(args: &[String]) -> ExitCode {
    if let [only] = args {
        if only != "zoo" && !only.starts_with("--") {
            return sweep_bandwidth(only);
        }
    }
    sweep_grid(args)
}

/// The original bandwidth sweep (Figure 15): baseline vs data
/// partitioning on the large NPU at 1×/0.5×/0.25× DRAM bandwidth.
fn sweep_bandwidth(model_arg: &str) -> ExitCode {
    let Some(id) = parse_model(model_arg) else {
        eprintln!("unknown model '{model_arg}'");
        return usage();
    };
    println!(
        "{:<10} {:>12} {:>12} {:>12}",
        "bandwidth", "baseline", "ours", "improvement"
    );
    for scale in [1.0f64, 0.5, 0.25] {
        let config = NpuConfig::large_single_core().with_bandwidth_scale(scale);
        let model: Model = zoo::model(id, config.default_batch());
        let base = simulate_model(&model, &config, Technique::Baseline);
        let ours = simulate_model(&model, &config, Technique::DataPartitioning);
        println!(
            "{:<10} {:>12} {:>12} {:>11.1}%",
            format!("{scale}x"),
            base.total_cycles(),
            ours.total_cycles(),
            (1.0 - ours.normalized_to(&base)) * 100.0
        );
    }
    ExitCode::SUCCESS
}

/// The zoo suite that belongs to a base config (edge configs sweep the
/// edge suite, server configs the server suite).
fn suite_for(config: &NpuConfig) -> &'static [ModelId] {
    if config.pe.rows >= 100 {
        &zoo::SERVER_SUITE
    } else {
        &zoo::EDGE_SUITE
    }
}

/// Design-space grid sweep: SPM-capacity rungs × techniques × models,
/// evaluated by the analytic fast-path pipeline and emitted as
/// `sweep.csv` plus a JSON summary to `--out DIR` or stdout.
///
/// On a single-core base config with a multi-rung ladder the default path
/// fans one task per `(model, technique)` pair across the worker pool and
/// lets [`simulate_model_ladder`] answer every rung from one
/// capacity-oblivious profiling pass; `--no-profile` (or a multi-core
/// config, or a single rung) falls back to one task per grid point. Row
/// order, formats and results are identical on both paths and for every
/// worker count.
fn sweep_grid(args: &[String]) -> ExitCode {
    let mut config = NpuConfig::large_single_core();
    let mut spm_ladder: Option<Vec<u64>> = None;
    let mut techniques: Vec<Technique> = Technique::LADDER.to_vec();
    let mut out_dir: Option<String> = None;
    let mut profile = true;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--no-profile" => profile = false,
            "--config" => match it.next().and_then(|v| parse_config(v)) {
                Some(c) => config = c,
                None => {
                    eprintln!("--config requires edge, server, or serverxN");
                    return usage();
                }
            },
            "--spm" => match it.next().and_then(|v| parse::parse_spm_ladder(v)) {
                Some(l) => spm_ladder = Some(l),
                None => {
                    eprintln!("--spm requires a comma-separated list of positive MiB values");
                    return usage();
                }
            },
            "--techniques" => match it.next().and_then(|v| parse::parse_techniques(v)) {
                Some(l) => techniques = l,
                None => {
                    eprintln!("--techniques requires a comma-separated list of technique names");
                    return usage();
                }
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(dir.clone()),
                None => {
                    eprintln!("--out requires a directory");
                    return usage();
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown sweep flag '{other}'");
                return usage();
            }
            _ => positional.push(arg),
        }
    }
    let [target] = positional[..] else {
        eprintln!("sweep takes exactly one positional argument: <model|zoo>");
        return usage();
    };
    let models: Vec<Model> = if target == "zoo" {
        suite_for(&config)
            .iter()
            .map(|&id| zoo::model(id, config.default_batch()))
            .collect()
    } else if let Some(id) = parse_model(target) {
        vec![zoo::model(id, config.default_batch())]
    } else {
        eprintln!("'{target}' is neither a known model nor 'zoo'");
        return usage();
    };
    let spm_ladder = spm_ladder.unwrap_or_else(|| vec![config.spm_bytes >> 20]);

    // The grid, technique-innermost so each (spm, model) block is
    // contiguous and its first entry is that block's normalization base.
    let mut points: Vec<(u64, usize, Technique)> = Vec::new();
    for &mib in &spm_ladder {
        for mi in 0..models.len() {
            for &t in &techniques {
                points.push((mib, mi, t));
            }
        }
    }
    let runs_before = engine_run_count();
    let analytic_before = analytic_run_count();
    let cache_before = sim_cache_stats();
    let options = SimOptions::optimized();
    let use_ladder = profile && spm_ladder.len() >= 2 && config.cores == 1;
    let (reports, wall) = measure(|| {
        if use_ladder {
            // Profiled path: one task per (model, technique) pair; the
            // capacity-oblivious profiler answers every SPM rung from a
            // single schedule pass. Scatter the per-rung reports back into
            // the grid's spm-outer row order.
            let rungs: Vec<NpuConfig> = spm_ladder
                .iter()
                .map(|&mib| config.clone().with_spm_bytes(mib << 20))
                .collect();
            let mut tasks: Vec<(usize, Technique)> = Vec::new();
            for mi in 0..models.len() {
                for &t in &techniques {
                    tasks.push((mi, t));
                }
            }
            let by_task = parallel_map(&tasks, |&(mi, technique)| {
                simulate_model_ladder(&models[mi], &rungs, technique, &options)
            });
            let mut slots: Vec<Option<ModelReport>> = points.iter().map(|_| None).collect();
            for (k, per_rung) in by_task.into_iter().enumerate() {
                for (s, report) in per_rung.into_iter().enumerate() {
                    slots[s * tasks.len() + k] = Some(report);
                }
            }
            slots
                .into_iter()
                .map(|r| r.expect("ladder answered every grid point"))
                .collect()
        } else {
            parallel_map(&points, |&(mib, mi, technique)| {
                let rung = config.clone().with_spm_bytes(mib << 20);
                simulate_model_with(&models[mi], &rung, technique, &options)
            })
        }
    });

    let block = techniques.len();
    let mut csv = String::from("config,spm_mib,model,technique,cycles,dram_mib,vs_first\n");
    for (i, ((mib, mi, technique), r)) in points.iter().zip(&reports).enumerate() {
        let base_cycles = reports[i - i % block].total_cycles();
        csv.push_str(&format!(
            "{},{},{},{},{},{},{:.4}\n",
            config.name,
            mib,
            models[*mi].name,
            technique.label(),
            r.total_cycles(),
            r.total_traffic().total() >> 20,
            r.total_cycles() as f64 / base_cycles as f64,
        ));
    }

    // Per-(spm, model) winner: smallest cycle count, first listed wins ties.
    let mut best = String::new();
    for b in (0..points.len()).step_by(block.max(1)) {
        let win = (b..b + block)
            .min_by_key(|&i| (reports[i].total_cycles(), i))
            .unwrap();
        let (mib, mi, technique) = points[win];
        if !best.is_empty() {
            best.push(',');
        }
        best.push_str(&format!(
            "{{\"spm_mib\":{},\"model\":\"{}\",\"technique\":\"{}\",\"cycles\":{}}}",
            mib,
            models[mi].name,
            technique.label(),
            reports[win].total_cycles(),
        ));
    }
    let cache = sim_cache_stats();
    let summary = format!(
        "{{\"config\":\"{}\",\"grid_points\":{},\"spm_rungs\":{},\"models\":{},\"techniques\":{},\"wall_seconds\":{:.6},\"engine_runs\":{},\"analytic_runs\":{},\"cache_hits\":{},\"cache_misses\":{},\"best\":[{best}]}}",
        config.name,
        points.len(),
        spm_ladder.len(),
        models.len(),
        techniques.len(),
        wall,
        engine_run_count() - runs_before,
        analytic_run_count() - analytic_before,
        cache.hits - cache_before.hits,
        cache.misses - cache_before.misses,
    );

    match out_dir {
        Some(dir) => {
            let dir = std::path::Path::new(&dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create '{}': {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for (name, contents) in [("sweep.csv", &csv), ("summary.json", &summary)] {
                if let Err(e) = std::fs::write(dir.join(name), contents) {
                    eprintln!("cannot write '{}': {e}", dir.join(name).display());
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "{} grid points -> {}/{{sweep.csv,summary.json}} in {:.2}s",
                points.len(),
                dir.display(),
                wall
            );
        }
        None => {
            print!("{csv}");
            println!("{summary}");
        }
    }
    ExitCode::SUCCESS
}

/// Simulate the full zoo suite for `config` under data partitioning with
/// the given options, timing the sweep and attributing engine runs and
/// cache lookups to it.
fn perf_sweep(
    models: &[Model],
    config: &NpuConfig,
    options: &SimOptions,
    label: &str,
) -> (Vec<ModelReport>, Timing) {
    let runs_before = engine_run_count();
    let cache_before = sim_cache_stats();
    let (reports, wall) = measure(|| {
        models
            .iter()
            .map(|m| simulate_model_with(m, config, Technique::DataPartitioning, options))
            .collect::<Vec<_>>()
    });
    let cache = sim_cache_stats();
    let layers: u64 = models.iter().map(|m| 2 * m.layers.len() as u64).sum();
    let timing = Timing {
        label: format!("perf:{}:{label}", config.name),
        wall_seconds: wall,
        layers,
        engine_runs: engine_run_count() - runs_before,
        cache_hits: cache.hits - cache_before.hits,
        cache_misses: cache.misses - cache_before.misses,
    };
    (reports, timing)
}

/// One arm of the analytic-acceptance measurement: the full suite under
/// data partitioning across an SPM ladder, memoization disabled so every
/// layer is recomputed from scratch (a true cold-cache run — the
/// process-wide memo cache never serves a hit). Returns the reports, the
/// wall-clock seconds, and the engine/analytic run counts attributed to
/// the arm.
fn perf_ladder_arm(
    models: &[Model],
    ladder: &[NpuConfig],
    options: &SimOptions,
) -> (Vec<ModelReport>, f64, u64, u64) {
    let runs_before = engine_run_count();
    let analytic_before = analytic_run_count();
    let (reports, wall) = measure(|| {
        let mut out = Vec::with_capacity(ladder.len() * models.len());
        for rung in ladder {
            for m in models {
                out.push(simulate_model_with(
                    m,
                    rung,
                    Technique::DataPartitioning,
                    options,
                ));
            }
        }
        out
    });
    (
        reports,
        wall,
        engine_run_count() - runs_before,
        analytic_run_count() - analytic_before,
    )
}

/// The profiled counterpart of [`perf_ladder_arm`]: the same suite and
/// ladder answered by [`simulate_model_ladder`], which profiles each
/// candidate schedule once and reads every rung off the capacity curve.
/// Reports come back in the flat arm's order (rung-outer, model-inner) so
/// the two arms compare element-for-element.
fn perf_profile_arm(
    models: &[Model],
    ladder: &[NpuConfig],
    options: &SimOptions,
) -> (Vec<ModelReport>, f64, u64) {
    let analytic_before = analytic_run_count();
    let (reports, wall) = measure(|| {
        let by_model: Vec<Vec<ModelReport>> = models
            .iter()
            .map(|m| simulate_model_ladder(m, ladder, Technique::DataPartitioning, options))
            .collect();
        let mut out = Vec::with_capacity(ladder.len() * models.len());
        for s in 0..ladder.len() {
            for per_rung in &by_model {
                out.push(per_rung[s].clone());
            }
        }
        out
    });
    (reports, wall, analytic_run_count() - analytic_before)
}

/// Bit-exact comparison of two sweep results: every layer's forward and
/// backward reports (cycles, per-class traffic, counters) and the
/// scheduler decisions must match.
fn reports_identical(a: &[ModelReport], b: &[ModelReport]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.model == y.model
                && x.layers.len() == y.layers.len()
                && x.layers.iter().zip(&y.layers).all(|(l, r)| {
                    l.forward == r.forward
                        && l.backward == r.backward
                        && l.decision == r.decision
                        && l.multiplicity == r.multiplicity
                })
        })
}

/// Pipeline self-measurement: the full-zoo data-partitioning sweep on the
/// sequential reference path and twice on the optimized path (cold cache,
/// then warm); the analytic fast path versus the cycle engine over an SPM
/// ladder; and the capacity-oblivious profiler versus per-rung analytic
/// replay over the same ladder. Every arm must be bit-identical; the
/// speedups are printed for `scripts/bench.sh` to record.
fn cmd_perf(which: &str) -> ExitCode {
    let configs: Vec<NpuConfig> = match which {
        "edge" => vec![NpuConfig::small_edge()],
        "server" => vec![NpuConfig::large_single_core()],
        "all" => vec![NpuConfig::small_edge(), NpuConfig::large_single_core()],
        _ => {
            eprintln!("unknown perf target '{which}'");
            return usage();
        }
    };
    let mut ok = true;
    for config in configs {
        let suite = if config.pe.rows >= 100 {
            &zoo::SERVER_SUITE
        } else {
            &zoo::EDGE_SUITE
        };
        let models: Vec<Model> = suite
            .iter()
            .map(|&id| zoo::model(id, config.default_batch()))
            .collect();
        println!("== {} : full-zoo data-partitioning sweep ==", config.name);
        let (seq, t_seq) = perf_sweep(&models, &config, &SimOptions::sequential(), "sequential");
        let (cold, t_cold) = perf_sweep(&models, &config, &SimOptions::optimized(), "cold");
        let (warm, t_warm) = perf_sweep(&models, &config, &SimOptions::optimized(), "warm");
        for t in [&t_seq, &t_cold, &t_warm] {
            println!("{}", t.to_json());
        }
        let identical = reports_identical(&seq, &cold) && reports_identical(&seq, &warm);
        ok &= identical;
        println!(
            "bit-identical: {}   speedup cold {:.2}x   warm {:.2}x",
            if identical { "yes" } else { "NO" },
            t_seq.wall_seconds / t_cold.wall_seconds,
            t_seq.wall_seconds / t_warm.wall_seconds,
        );

        // The analytic fast path's acceptance gate: a cold-cache full-zoo
        // sweep over an SPM capacity ladder (0.5×/1×/2× of the config's
        // SPM), engine candidate evaluation vs analytic. Memoization is
        // off in BOTH arms, so the comparison is pure candidate-evaluation
        // cost; everything else (pool, pruning) is identical.
        println!(
            "== {} : analytic fast path, cold-cache SPM-ladder sweep ==",
            config.name
        );
        let ladder: Vec<NpuConfig> = [1u64, 2, 4]
            .iter()
            .map(|&num| {
                config
                    .clone()
                    .with_spm_bytes((config.spm_bytes * num / 2).max(1))
            })
            .collect();
        let engine_opts = SimOptions {
            analytic_fast_path: false,
            memoize: false,
            ..SimOptions::optimized()
        };
        let fast_opts = SimOptions {
            memoize: false,
            ..SimOptions::optimized()
        };
        let (eng, eng_wall, eng_runs, _) = perf_ladder_arm(&models, &ladder, &engine_opts);
        let (fast, fast_wall, fast_eng_runs, fast_analytic) =
            perf_ladder_arm(&models, &ladder, &fast_opts);
        let identical = reports_identical(&eng, &fast);
        ok &= identical;
        println!(
            "engine-path   {:>8.3}s  ({} engine runs)",
            eng_wall, eng_runs
        );
        println!(
            "analytic-path {:>8.3}s  ({} engine + {} analytic runs)",
            fast_wall, fast_eng_runs, fast_analytic
        );
        println!(
            "bit-identical: {}   analytic speedup {:.1}x (target >= 10x)",
            if identical { "yes" } else { "NO" },
            eng_wall / fast_wall,
        );

        // The capacity-oblivious profiler's gate: the same ladder answered
        // by one profiling pass per candidate schedule versus an
        // independent analytic replay per rung. Memoization is off in BOTH
        // arms so neither arm can be served from caches the other
        // populated; the comparison is pure profile-once vs
        // replay-per-rung cost.
        println!(
            "== {} : capacity-oblivious profiler, cold-cache SPM-ladder sweep ==",
            config.name
        );
        let flat_opts = SimOptions {
            memoize: false,
            capacity_profile: false,
            ..SimOptions::optimized()
        };
        let prof_opts = SimOptions {
            memoize: false,
            ..SimOptions::optimized()
        };
        let (flat, flat_wall, _, flat_analytic) = perf_ladder_arm(&models, &ladder, &flat_opts);
        let (prof, prof_wall, prof_analytic) = perf_profile_arm(&models, &ladder, &prof_opts);
        let identical = reports_identical(&flat, &prof);
        ok &= identical;
        println!(
            "flat-replay   {:>8.3}s  ({} analytic runs)",
            flat_wall, flat_analytic
        );
        println!(
            "profiled      {:>8.3}s  ({} analytic runs)",
            prof_wall, prof_analytic
        );
        println!(
            "bit-identical: {}   profile speedup {:.2}x",
            if identical { "yes" } else { "NO" },
            flat_wall / prof_wall,
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("optimized pipeline diverged from the sequential reference");
        ExitCode::FAILURE
    }
}

#[allow(dead_code)]
fn model_by_id(id: ModelId, batch: u64) -> Model {
    zoo::model(id, batch)
}
