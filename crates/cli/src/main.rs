//! `igo-sim` — command-line front end for the IGO NPU training simulator.
//!
//! ```text
//! igo-sim models                              list the Table-4 zoo
//! igo-sim ladder  <model> <config>            technique ladder for one model
//! igo-sim layer   <M> <K> <N> <config>        per-order comparison of one layer
//! igo-sim sweep   <model>                     bandwidth sweep on the large NPU
//! ```
//!
//! `<config>` is `edge`, `server`, or `serverxN` (N cores, 1..=8).
//! `<model>` is a Table-4 abbreviation (`res`, `goo`, `mob`, `rcnn`, `ncf`,
//! `dlrm`, `yolo`, `yolo-tiny`, `bert`, `bert-tiny`, `t5`, `t5-small`).

use igo_core::{
    select_order, simulate_layer_backward, simulate_model, BackwardOrder, Technique,
};
use igo_npu_sim::NpuConfig;
use igo_tensor::GemmShape;
use igo_workloads::{zoo, Model, ModelId};
use std::process::ExitCode;

mod parse;

use parse::{parse_config, parse_model};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  igo-sim models\n  igo-sim ladder <model> <edge|server|serverxN>\n  igo-sim layer <M> <K> <N> <edge|server>\n  igo-sim sweep <model>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("models") => cmd_models(),
        Some("ladder") if args.len() == 3 => cmd_ladder(&args[1], &args[2]),
        Some("layer") if args.len() == 5 => cmd_layer(&args[1..]),
        Some("sweep") if args.len() == 2 => cmd_sweep(&args[1]),
        _ => usage(),
    }
}

fn cmd_models() -> ExitCode {
    println!("{:<12} {:<14} {:>10} {:>8} {:>8}", "abbr", "name", "params", "layers", "batch-dep");
    for (abbr, id) in parse::MODEL_TABLE {
        let m = zoo::model(*id, 8);
        println!(
            "{:<12} {:<14} {:>9.1}M {:>8} {:>8}",
            abbr,
            m.name,
            m.params() as f64 / 1e6,
            m.total_layers(),
            "yes"
        );
    }
    ExitCode::SUCCESS
}

fn cmd_ladder(model_arg: &str, config_arg: &str) -> ExitCode {
    let Some(config) = parse_config(config_arg) else {
        eprintln!("unknown config '{config_arg}'");
        return usage();
    };
    let Some(id) = parse_model(model_arg) else {
        eprintln!("unknown model '{model_arg}'");
        return usage();
    };
    let model = zoo::model(id, config.default_batch());
    println!("{model} on {config}");
    let base = simulate_model(&model, &config, Technique::Baseline);
    println!(
        "{:<22} {:>14} cycles ({:.2} ms)",
        "Baseline",
        base.total_cycles(),
        base.total_cycles() as f64 / config.freq_hz * 1e3
    );
    for technique in [
        Technique::Interleaving,
        Technique::Rearrangement,
        Technique::DataPartitioning,
    ] {
        let r = simulate_model(&model, &config, technique);
        println!(
            "{:<22} {:>14} cycles ({:+.1}%)",
            technique.label(),
            r.total_cycles(),
            (1.0 - r.normalized_to(&base)) * 100.0
        );
    }
    ExitCode::SUCCESS
}

fn cmd_layer(args: &[String]) -> ExitCode {
    let dims: Vec<u64> = args[..3]
        .iter()
        .filter_map(|a| a.parse().ok())
        .collect();
    let [m, k, n] = dims[..] else {
        eprintln!("M K N must be positive integers");
        return usage();
    };
    if m == 0 || k == 0 || n == 0 {
        eprintln!("M K N must be positive integers");
        return usage();
    }
    let Some(config) = parse_config(&args[3]) else {
        eprintln!("unknown config '{}'", args[3]);
        return usage();
    };
    let gemm = GemmShape::new(m, k, n);
    println!("layer {gemm} on {}", config.name);
    println!("algorithm 1 picks: {}", select_order(gemm));
    for (label, technique) in [
        ("baseline", Technique::Baseline),
        ("ideal dY reuse", Technique::IdealDyReuse),
        ("interleaving", Technique::Interleaving),
        ("rearrangement", Technique::Rearrangement),
        ("rearrangement(oracle)", Technique::RearrangementOracle),
        ("data partitioning", Technique::DataPartitioning),
    ] {
        let (r, d) = simulate_layer_backward(gemm, &config, technique, false);
        let decided = match technique {
            Technique::Baseline | Technique::IdealDyReuse => String::new(),
            _ => format!(
                "  [{:?}{}]",
                d.order,
                d.partition
                    .map(|(s, p)| format!(", {s} x{p}"))
                    .unwrap_or_default()
            ),
        };
        println!(
            "{:<22} {:>12} cycles, {:>6} MiB DRAM{}",
            label,
            r.cycles,
            r.traffic.total() >> 20,
            decided
        );
    }
    let _ = BackwardOrder::Baseline; // exercised via decisions above
    ExitCode::SUCCESS
}

fn cmd_sweep(model_arg: &str) -> ExitCode {
    let Some(id) = parse_model(model_arg) else {
        eprintln!("unknown model '{model_arg}'");
        return usage();
    };
    println!("{:<10} {:>12} {:>12} {:>12}", "bandwidth", "baseline", "ours", "improvement");
    for scale in [1.0f64, 0.5, 0.25] {
        let config = NpuConfig::large_single_core().with_bandwidth_scale(scale);
        let model: Model = zoo::model(id, config.default_batch());
        let base = simulate_model(&model, &config, Technique::Baseline);
        let ours = simulate_model(&model, &config, Technique::DataPartitioning);
        println!(
            "{:<10} {:>12} {:>12} {:>11.1}%",
            format!("{scale}x"),
            base.total_cycles(),
            ours.total_cycles(),
            (1.0 - ours.normalized_to(&base)) * 100.0
        );
    }
    ExitCode::SUCCESS
}

#[allow(dead_code)]
fn model_by_id(id: ModelId, batch: u64) -> Model {
    zoo::model(id, batch)
}
