//! NPU hardware configurations.
//!
//! The paper evaluates two configurations (Table 3):
//!
//! | | Small NPU (edge) | Large NPU (server) |
//! |---|---|---|
//! | Compute unit | 1 × (45 × 45 PE) | 1–8 × (128 × 128 PE) |
//! | DRAM bandwidth | 22 GB/s | 150 GB/s per core |
//! | Frequency | 1 GHz | 1050 MHz |
//! | Scratchpad | 1 MB | 8 MB per core |
//! | Batch size | 4 | 8 per core |
//!
//! The small configuration models an ARM Ethos-N77-class edge NPU, the large
//! one a Google-TPU-class training core. For multi-core runs the paper
//! scales DRAM bandwidth, SPM capacity and batch size proportionally with
//! core count, with all cores sharing the SPM (§6.3).

/// Dimensions of one systolic processing-element array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeArray {
    /// Array rows (the reduction direction in weight-stationary dataflow).
    pub rows: u32,
    /// Array columns (the output-channel direction).
    pub cols: u32,
}

impl PeArray {
    /// Create an array shape.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(rows: u32, cols: u32) -> Self {
        assert!(rows > 0 && cols > 0, "PE array extents must be positive");
        Self { rows, cols }
    }

    /// MACs available per cycle (`rows * cols`).
    pub const fn macs_per_cycle(self) -> u64 {
        self.rows as u64 * self.cols as u64
    }
}

impl core::fmt::Display for PeArray {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{} PE", self.rows, self.cols)
    }
}

/// Off-chip memory channel parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Sustained bandwidth in bytes per second (aggregate across cores).
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed latency charged once per tile burst, in cycles.
    pub burst_latency_cycles: u64,
}

impl DramConfig {
    /// Bandwidth expressed in bytes per NPU cycle at `freq_hz`.
    pub fn bytes_per_cycle(&self, freq_hz: f64) -> f64 {
        self.bandwidth_bytes_per_sec / freq_hz
    }
}

/// A complete NPU configuration.
///
/// Use the presets ([`NpuConfig::small_edge`], [`NpuConfig::large_server`])
/// for the paper's Table 3, or build a custom config and adjust fields via
/// the `with_*` methods (used by the bandwidth/batch sweeps of Figures 15
/// and 16).
#[derive(Debug, Clone, PartialEq)]
pub struct NpuConfig {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Number of NPU cores (each with its own systolic array).
    pub cores: u32,
    /// Systolic array per core.
    pub pe: PeArray,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Total SPM capacity in bytes (shared by all cores).
    pub spm_bytes: u64,
    /// DRAM channel (aggregate bandwidth).
    pub dram: DramConfig,
    /// Per-core batch size (the paper's batch scales with core count).
    pub batch_per_core: u64,
}

impl NpuConfig {
    /// Table 3 "Small NPU": edge-class, ARM Ethos-N77-like.
    /// 45×45 PE, 22 GB/s, 1 GHz, 1 MB SPM, batch 4.
    pub fn small_edge() -> Self {
        Self {
            name: "small-npu".to_owned(),
            cores: 1,
            pe: PeArray::new(45, 45),
            freq_hz: 1.0e9,
            spm_bytes: 1 << 20,
            dram: DramConfig {
                bandwidth_bytes_per_sec: 22.0e9,
                burst_latency_cycles: 20,
            },
            batch_per_core: 4,
        }
    }

    /// Table 3 "Large NPU" with a single core: server-class, TPU-like.
    /// 128×128 PE, 150 GB/s per core, 1.05 GHz, 8 MB SPM per core, batch 8.
    pub fn large_server(cores: u32) -> Self {
        assert!(
            (1..=8).contains(&cores),
            "the paper's large NPU spans 1-8 cores, got {cores}"
        );
        Self {
            name: format!("large-npu-x{cores}"),
            cores,
            pe: PeArray::new(128, 128),
            freq_hz: 1.05e9,
            spm_bytes: (8u64 << 20) * cores as u64,
            dram: DramConfig {
                bandwidth_bytes_per_sec: 150.0e9 * cores as f64,
                burst_latency_cycles: 20,
            },
            batch_per_core: 8,
        }
    }

    /// Convenience: the single-core large NPU.
    pub fn large_single_core() -> Self {
        Self::large_server(1)
    }

    /// Total batch size for this configuration (`batch_per_core × cores`).
    pub fn default_batch(&self) -> u64 {
        self.batch_per_core * self.cores as u64
    }

    /// SPM capacity available to one core (even slice of the shared SPM).
    pub fn spm_bytes_per_core(&self) -> u64 {
        self.spm_bytes / self.cores as u64
    }

    /// DRAM bandwidth available to one core, bytes per cycle.
    pub fn dram_bytes_per_cycle_per_core(&self) -> f64 {
        self.dram.bytes_per_cycle(self.freq_hz) / self.cores as f64
    }

    /// Aggregate DRAM bandwidth, bytes per cycle.
    pub fn dram_bytes_per_cycle_total(&self) -> f64 {
        self.dram.bytes_per_cycle(self.freq_hz)
    }

    /// Scale the DRAM bandwidth by `factor` (Figure 15 uses 0.5× and 0.25×).
    #[must_use]
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        self.dram.bandwidth_bytes_per_sec *= factor;
        self.name = format!("{}-bw{factor}x", self.name);
        self
    }

    /// Override the per-core batch size (Figure 16 uses 8/16/32).
    #[must_use]
    pub fn with_batch_per_core(mut self, batch: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.batch_per_core = batch;
        self
    }

    /// Override the SPM capacity.
    #[must_use]
    pub fn with_spm_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "SPM capacity must be positive");
        self.spm_bytes = bytes;
        self
    }

    /// Peak MAC throughput of the whole NPU, MACs per cycle.
    pub fn peak_macs_per_cycle(&self) -> u64 {
        self.pe.macs_per_cycle() * self.cores as u64
    }

    /// The residency capacity the schedule-visible half of the SPM offers on
    /// one core. Double buffering dedicates the other half to in-flight
    /// prefetches (paper §4.2: a tile is re-fetched when its reuse distance
    /// "exceeds the number of tiled computations that can be loaded in half
    /// of the SPM").
    pub fn residency_bytes_per_core(&self) -> u64 {
        self.spm_bytes_per_core() / 2
    }
}

impl core::fmt::Display for NpuConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} cores x {} @ {:.2} GHz, SPM {} KiB, DRAM {:.1} GB/s",
            self.name,
            self.cores,
            self.pe,
            self.freq_hz / 1e9,
            self.spm_bytes / 1024,
            self.dram.bandwidth_bytes_per_sec / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_small_npu() {
        let c = NpuConfig::small_edge();
        assert_eq!(c.pe, PeArray::new(45, 45));
        assert_eq!(c.spm_bytes, 1024 * 1024);
        assert_eq!(c.default_batch(), 4);
        assert!((c.dram_bytes_per_cycle_total() - 22.0).abs() < 1e-9);
    }

    #[test]
    fn table3_large_npu() {
        let c = NpuConfig::large_single_core();
        assert_eq!(c.pe, PeArray::new(128, 128));
        assert_eq!(c.spm_bytes, 8 * 1024 * 1024);
        assert_eq!(c.default_batch(), 8);
        // 150 GB/s at 1.05 GHz is ~142.9 bytes/cycle.
        assert!((c.dram_bytes_per_cycle_total() - 150.0e9 / 1.05e9).abs() < 1e-6);
    }

    #[test]
    fn multicore_scales_resources() {
        let c = NpuConfig::large_server(4);
        assert_eq!(c.spm_bytes, 4 * 8 * 1024 * 1024);
        assert_eq!(c.default_batch(), 32);
        assert_eq!(c.spm_bytes_per_core(), 8 * 1024 * 1024);
        // Per-core bandwidth stays 150 GB/s.
        let single = NpuConfig::large_single_core();
        assert!(
            (c.dram_bytes_per_cycle_per_core() - single.dram_bytes_per_cycle_per_core()).abs()
                < 1e-9
        );
    }

    #[test]
    fn bandwidth_scale() {
        let c = NpuConfig::large_single_core().with_bandwidth_scale(0.5);
        assert!((c.dram.bandwidth_bytes_per_sec - 75.0e9).abs() < 1.0);
        assert!(c.name.contains("bw0.5x"));
    }

    #[test]
    fn residency_is_half_spm() {
        let c = NpuConfig::small_edge();
        assert_eq!(c.residency_bytes_per_core(), 512 * 1024);
    }

    #[test]
    #[should_panic(expected = "1-8 cores")]
    fn too_many_cores_panics() {
        let _ = NpuConfig::large_server(16);
    }

    #[test]
    fn batch_override() {
        let c = NpuConfig::large_single_core().with_batch_per_core(32);
        assert_eq!(c.default_batch(), 32);
    }

    #[test]
    fn display_mentions_name() {
        assert!(NpuConfig::small_edge().to_string().contains("small-npu"));
    }
}
