//! Cycle-level NPU simulator substrate for the IGO reproduction.
//!
//! The paper evaluates its dataflow transformations on "a cycle-level
//! simulator for DNN training on NPUs, building upon SCALE-Sim" (§6.1). The
//! authors' simulator is not public, so this crate implements that class of
//! simulator from scratch with the modelling assumptions the paper states:
//!
//! * all layers execute as **tiled GEMMs** (convolutions after im2col);
//! * operands are staged in a software-managed **scratchpad memory (SPM)**
//!   with **double buffering** — half the SPM holds live tiles while the
//!   other half receives prefetches, so a tile survives in SPM only if its
//!   reuse distance fits in half the capacity (§4.2);
//! * compute is a **weight-stationary systolic array**;
//! * off-chip **DRAM** is a flat-bandwidth channel with a per-burst latency.
//!
//! The interface between schedulers and the machine is a [`Schedule`]: a
//! stream of tile operations, each naming the operand tiles it reads, an
//! optional accumulator tile it read-modify-writes, and the tile-GEMM it
//! performs. The paper's *baseline*, *interleaved*, *dXmajor* / *dWmajor*
//! and *partitioned* dataflows are all just different streams over the same
//! machine — exactly the paper's claim that the techniques are pure code
//! transformations "requiring no modifications to the hardware design".
//!
//! # Example
//!
//! ```
//! use igo_npu_sim::{Engine, NpuConfig, Schedule, TileOp};
//! use igo_tensor::{GemmShape, TensorClass, TileCoord};
//!
//! let config = NpuConfig::large_single_core();
//! let mut schedule = Schedule::new("demo");
//! let dy = schedule.add_tensor(TensorClass::OutGrad, "dY");
//! let w = schedule.add_tensor(TensorClass::Weight, "W");
//! let dx = schedule.add_tensor(TensorClass::InGrad, "dX");
//! let t = TileCoord::new(0, 0);
//! let tile_bytes = 128 * 128 * 4;
//! schedule.push_gemm(
//!     TileOp::new(GemmShape::new(128, 128, 128))
//!         .read(dy, t, tile_bytes)
//!         .read(w, t, tile_bytes)
//!         .accumulate(dx, t, tile_bytes),
//! );
//! let report = Engine::new(&config).run(&schedule);
//! assert!(report.cycles > 0);
//! assert_eq!(report.traffic.read_total(), 2 * tile_bytes);
//! ```

pub mod analysis;
pub mod analytic;
pub mod config;
pub mod energy;
pub mod engine;
pub mod multicore;
pub mod opt;
pub mod recorder;
pub mod spm;
pub mod stackdist;
pub mod stats;
pub mod systolic;
pub mod trace;

pub use analysis::{reuse_distances, reuse_profile, Reuse, ReuseProfile};
pub use analytic::{
    analytic_run_count, compute_sum, grid_sum, AnalyticCollector, AnalyticReport, AnalyticScratch,
    Axis, BoundAccum, Exactness, GridSum, ReplayOptCache,
};
pub use config::{DramConfig, NpuConfig, PeArray};
pub use energy::{EnergyModel, EnergyReport};
pub use engine::{engine_run_count, Engine, EngineScratch, Replacement};
pub use multicore::{
    reduction_cycles, replay_multicore, replay_multicore_bounded, replay_sequential_partitions,
    replay_sequential_partitions_bounded, run_multicore, run_multicore_with_scratch,
    run_sequential_partitions, run_sequential_partitions_with_scratch, sequential_combined,
    MultiCoreReport,
};
pub use opt::{DenseOptCache, OptCache};
pub use recorder::{
    AccessKind, ClassMetrics, DyReusePoint, EventLog, NullRecorder, Phase, Recorder,
    ReuseHistogram, RunMetrics, TileStats, TraceEvent, REUSE_BUCKETS,
};
pub use spm::SpmCache;
pub use stackdist::{replay_ladder, CapacityProfile, LadderScratch};
pub use stats::{SimReport, Traffic};
pub use systolic::SystolicModel;
pub use trace::{
    Schedule, ScheduleOp, ScheduleSink, StreamOp, TensorId, TileAccessSpec, TileKey, TileOp,
    TileOpSpec,
};
