//! Weight-stationary systolic-array timing model.
//!
//! This is the SCALE-Sim-family analytical model for a tile GEMM
//! `A(tm,tk) × B(tk,tn)` on an `R × C` array:
//!
//! * the `tk × tn` stationary operand is mapped onto the array in
//!   `⌈tk/R⌉ · ⌈tn/C⌉` *folds*;
//! * each fold streams the `tm` moving rows through the array while the
//!   *next* fold's weights load into the PEs' shadow registers (TPU-style
//!   in-PE weight double buffering), so a fold costs `max(tm, R)` cycles;
//!
//! Total: `folds × max(tm, R)` cycles per tile GEMM; the initial fill of
//! the very first fold hides behind the previous tile operation. Pipeline
//! fill/drain of the skewed wavefront is overlapped across consecutive
//! tile operations (the array never sits idle between back-to-back
//! GEMMs), so it does not appear per tile. The model is deliberately
//! simple — the paper's findings hinge on the *memory* system, and all
//! compared schedules perform the identical set of tile GEMMs, so any
//! monotone compute model preserves the comparisons.

use crate::config::PeArray;
use igo_tensor::GemmShape;
/// Analytical compute-time model for one systolic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicModel {
    pe: PeArray,
}

impl SystolicModel {
    /// Model an `R × C` array.
    pub fn new(pe: PeArray) -> Self {
        Self { pe }
    }

    /// The array being modelled.
    pub fn pe(&self) -> PeArray {
        self.pe
    }

    /// Number of weight folds needed for a `tk × tn` stationary operand.
    pub fn folds(&self, tk: u64, tn: u64) -> u64 {
        tk.div_ceil(self.pe.rows as u64) * tn.div_ceil(self.pe.cols as u64)
    }

    /// Cycles to execute the tile GEMM `tile` (`m×k · k×n`).
    ///
    /// ```
    /// use igo_npu_sim::{SystolicModel, PeArray};
    /// use igo_tensor::GemmShape;
    ///
    /// let m = SystolicModel::new(PeArray::new(128, 128));
    /// // One fold: stream 128 rows (the weight fill is hidden).
    /// assert_eq!(m.tile_cycles(GemmShape::new(128, 128, 128)), 128);
    /// // Four folds for a 256x256 stationary operand.
    /// assert_eq!(m.tile_cycles(GemmShape::new(128, 256, 256)), 4 * 128);
    /// ```
    pub fn tile_cycles(&self, tile: GemmShape) -> u64 {
        let r = self.pe.rows as u64;
        self.folds(tile.k(), tile.n()) * tile.m().max(r)
    }

    /// Utilisation of the array for this tile: useful MACs over
    /// `cycles × R × C`. Always in `(0, 1]`.
    pub fn utilization(&self, tile: GemmShape) -> f64 {
        let cycles = self.tile_cycles(tile);
        tile.macs() as f64 / (cycles as f64 * self.pe.macs_per_cycle() as f64)
    }

    /// The minimum cycles any schedule needs for `total_macs` multiply-
    /// accumulates — the compute roofline used in report sanity checks.
    pub fn roofline_cycles(&self, total_macs: u64) -> u64 {
        total_macs.div_ceil(self.pe.macs_per_cycle())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_tensor::SplitMix64;

    fn model() -> SystolicModel {
        SystolicModel::new(PeArray::new(128, 128))
    }

    #[test]
    fn single_fold_small_tile() {
        // Anything with k<=R, n<=C is one fold.
        let m = model();
        assert_eq!(m.folds(1, 1), 1);
        assert_eq!(m.folds(128, 128), 1);
        assert_eq!(m.folds(129, 128), 2);
        assert_eq!(m.folds(129, 129), 4);
    }

    #[test]
    fn cycles_scale_with_moving_rows() {
        let m = model();
        let short = m.tile_cycles(GemmShape::new(8, 128, 128));
        let tall = m.tile_cycles(GemmShape::new(1024, 128, 128));
        // Below R=128 rows, a fold is pinned at the R-cycle weight load.
        assert_eq!(short, 128);
        assert_eq!(tall, 1024);
    }

    #[test]
    fn utilization_peaks_for_full_tiles() {
        let m = model();
        let full = m.utilization(GemmShape::new(4096, 128, 128));
        let tiny = m.utilization(GemmShape::new(8, 8, 8));
        assert!(
            full > 0.99,
            "large-m full tile should be near peak, got {full}"
        );
        assert!(tiny < 0.01, "tiny tile wastes the array, got {tiny}");
    }

    #[test]
    fn small_edge_array_model() {
        let m = SystolicModel::new(PeArray::new(45, 45));
        // One fold: stream 45 rows.
        assert_eq!(m.tile_cycles(GemmShape::new(45, 45, 45)), 45);
    }

    #[test]
    fn roofline_lower_bounds_tile_cycles() {
        let m = model();
        let t = GemmShape::new(512, 256, 384);
        assert!(m.tile_cycles(t) >= m.roofline_cycles(t.macs()));
    }

    /// Compute time is monotone in every dimension.
    #[test]
    fn cycles_monotone() {
        let model = model();
        let mut rng = SplitMix64::new(0x5157);
        for _ in 0..128 {
            let (m1, k1, n1) = (
                rng.range_u64(1, 600),
                rng.range_u64(1, 600),
                rng.range_u64(1, 600),
            );
            let base = model.tile_cycles(GemmShape::new(m1, k1, n1));
            assert!(model.tile_cycles(GemmShape::new(m1 + 1, k1, n1)) >= base);
            assert!(model.tile_cycles(GemmShape::new(m1, k1 + 1, n1)) >= base);
            assert!(model.tile_cycles(GemmShape::new(m1, k1, n1 + 1)) >= base);
        }
    }

    /// Utilisation never exceeds 1.
    #[test]
    fn utilization_bounded() {
        let model = model();
        let mut rng = SplitMix64::new(0x0717);
        for _ in 0..128 {
            let u = model.utilization(GemmShape::new(
                rng.range_u64(1, 2000),
                rng.range_u64(1, 500),
                rng.range_u64(1, 500),
            ));
            assert!(u > 0.0 && u <= 1.0);
        }
    }
}
