//! Tile-operation streams: the contract between schedulers and the machine.
//!
//! A [`Schedule`] is an ordered stream of [`ScheduleOp`]s over a set of
//! registered tensors. A [`TileOp`] is one tiled GEMM: it *reads* operand
//! tiles, optionally *accumulates* into a result tile (read-modify-write in
//! SPM), and performs a tile-GEMM of given dimensions on the systolic array.
//! A [`StreamOp`] models non-GEMM data movement (e.g. cross-partition
//! gradient reduction, element-wise activation backward) as a pure
//! bandwidth cost.
//!
//! Schedules are *declarative* about data: the engine derives all DRAM
//! traffic from tile residency, so two schedules performing the same tile
//! GEMMs in different orders — the whole point of the paper — cost the same
//! compute but different memory traffic.

use igo_tensor::{GemmShape, TensorClass, TileCoord};
use std::sync::Arc;
/// Opaque identifier of one tensor within a [`Schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(u32);

impl TensorId {
    /// Build from a raw index (for tests and serialisation).
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

/// A tile of one tensor: the unit of SPM residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileKey {
    /// The tensor this tile belongs to.
    pub tensor: TensorId,
    /// Grid coordinates within the tensor.
    pub coord: TileCoord,
}

/// One tile access (operand read or accumulator touch) with its byte size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileAccess {
    /// Which tile.
    pub key: TileKey,
    /// Clipped tile size in bytes.
    pub bytes: u64,
}

/// One tiled GEMM operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TileOp {
    /// Operand tiles read by this op.
    pub reads: Vec<TileAccess>,
    /// Result tile this op accumulates into, if any.
    pub acc: Option<TileAccess>,
    /// Dimensions of the tile GEMM performed.
    pub compute: GemmShape,
}

impl TileOp {
    /// Start building a tile op that performs `compute`.
    pub fn new(compute: GemmShape) -> Self {
        Self {
            reads: Vec::with_capacity(2),
            acc: None,
            compute,
        }
    }

    /// Add an operand tile read.
    #[must_use]
    pub fn read(mut self, tensor: TensorId, coord: TileCoord, bytes: u64) -> Self {
        self.reads.push(TileAccess {
            key: TileKey { tensor, coord },
            bytes,
        });
        self
    }

    /// Set the accumulator tile.
    ///
    /// # Panics
    ///
    /// Panics if an accumulator was already set.
    #[must_use]
    pub fn accumulate(mut self, tensor: TensorId, coord: TileCoord, bytes: u64) -> Self {
        assert!(self.acc.is_none(), "tile op already has an accumulator");
        self.acc = Some(TileAccess {
            key: TileKey { tensor, coord },
            bytes,
        });
        self
    }

    /// Total operand bytes named by this op (independent of residency).
    pub fn operand_bytes(&self) -> u64 {
        self.reads.iter().map(|r| r.bytes).sum()
    }

    /// MACs performed.
    pub fn macs(&self) -> u64 {
        self.compute.macs()
    }
}

/// One tile access of a [`TileOpSpec`]: like [`TileAccess`] but with the
/// tensor and coordinate kept separate so the spec stays `Copy` and cheap
/// to produce in the schedule builders' hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileAccessSpec {
    /// The tensor the tile belongs to.
    pub tensor: TensorId,
    /// Grid coordinates within the tensor.
    pub coord: TileCoord,
    /// Clipped tile size in bytes.
    pub bytes: u64,
}

impl TileAccessSpec {
    /// The `(tensor, coord)` pair as a [`TileKey`].
    pub fn key(&self) -> TileKey {
        TileKey {
            tensor: self.tensor,
            coord: self.coord,
        }
    }
}

/// A `Copy` description of one tiled GEMM, produced by schedule builders
/// and consumed by a [`ScheduleSink`]. A [`Schedule`] sink materialises it
/// as a [`TileOp`] (heap-allocated read list); the analytic collector
/// consumes it without any allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileOpSpec {
    /// Up to two operand reads, filled front-to-back.
    pub reads: [Option<TileAccessSpec>; 2],
    /// The accumulator tile, if any.
    pub acc: Option<TileAccessSpec>,
    /// Dimensions of the tile GEMM performed.
    pub compute: GemmShape,
}

impl TileOpSpec {
    /// Start building a spec that performs `compute`.
    pub fn new(compute: GemmShape) -> Self {
        Self {
            reads: [None, None],
            acc: None,
            compute,
        }
    }

    /// Add an operand tile read (order-preserving).
    ///
    /// # Panics
    ///
    /// Panics if both read slots are already taken.
    #[must_use]
    pub fn read(mut self, tensor: TensorId, coord: TileCoord, bytes: u64) -> Self {
        let spec = TileAccessSpec {
            tensor,
            coord,
            bytes,
        };
        if self.reads[0].is_none() {
            self.reads[0] = Some(spec);
        } else if self.reads[1].is_none() {
            self.reads[1] = Some(spec);
        } else {
            panic!("tile op spec already has two reads");
        }
        self
    }

    /// Set the accumulator tile.
    ///
    /// # Panics
    ///
    /// Panics if an accumulator was already set.
    #[must_use]
    pub fn accumulate(mut self, tensor: TensorId, coord: TileCoord, bytes: u64) -> Self {
        assert!(
            self.acc.is_none(),
            "tile op spec already has an accumulator"
        );
        self.acc = Some(TileAccessSpec {
            tensor,
            coord,
            bytes,
        });
        self
    }

    /// Materialise as a [`TileOp`], preserving read order exactly.
    pub fn to_tile_op(&self) -> TileOp {
        let mut op = TileOp::new(self.compute);
        for r in self.reads.iter().flatten() {
            op = op.read(r.tensor, r.coord, r.bytes);
        }
        if let Some(a) = self.acc {
            op = op.accumulate(a.tensor, a.coord, a.bytes);
        }
        op
    }
}

/// Receiver of a schedule builder's op stream.
///
/// The backward/forward builders in `igo-core` are generic over this trait:
/// emitting into a [`Schedule`] materialises the stream for the cycle
/// engine, while emitting into the analytic collector
/// ([`crate::analytic::AnalyticCollector`]) evaluates the same stream
/// without building per-op heap structures. Both receivers see the ops in
/// the identical order with identical contents, which is what makes the
/// analytic replay bit-exact.
pub trait ScheduleSink {
    /// Receive one tiled GEMM.
    fn gemm(&mut self, op: &TileOpSpec);
    /// Receive a pure data-movement op.
    fn stream(&mut self, op: StreamOp);
    /// Receive a kernel boundary.
    fn barrier(&mut self);
}

impl ScheduleSink for Schedule {
    fn gemm(&mut self, op: &TileOpSpec) {
        self.push_gemm(op.to_tile_op());
    }

    fn stream(&mut self, op: StreamOp) {
        self.push_stream(op);
    }

    fn barrier(&mut self) {
        self.push_barrier();
    }
}

/// A pure data-movement operation (no compute): used for cross-partition
/// reductions and element-wise passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOp {
    /// Traffic class for accounting.
    pub class: TensorClass,
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
}

/// One element of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleOp {
    /// A tiled GEMM.
    Gemm(TileOp),
    /// Pure data movement.
    Stream(StreamOp),
    /// A kernel boundary: dirty results are flushed and SPM residency is
    /// invalidated. Sequentially launched operations (the baseline's two
    /// gradient GEMMs, XLA-style) are separated by barriers — data staged
    /// by one kernel is not available to the next, which is exactly the
    /// lost-reuse opportunity the interleaving transformation recovers.
    Barrier,
}

#[derive(Debug, Clone, PartialEq)]
struct TensorInfo {
    class: TensorClass,
    name: String,
}

/// An ordered stream of operations over registered tensors.
///
/// The tensor table is behind an [`Arc`]: forking a schedule (the partition
/// builders create one fork per partition) shares the table instead of
/// cloning it, and only a post-fork `add_tensor`/`extend_from` pays for a
/// copy-on-write.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    name: String,
    tensors: Arc<Vec<TensorInfo>>,
    ops: Vec<ScheduleOp>,
}

impl Schedule {
    /// Create an empty schedule.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tensors: Arc::new(Vec::new()),
            ops: Vec::new(),
        }
    }

    /// The schedule's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Share this schedule's tensor table with a new, empty schedule
    /// (an `Arc` bump, not a copy).
    ///
    /// Partition schedules must be built from forks of one parent so that a
    /// tensor shared between partitions keeps a single identity: tiles of
    /// the shared tensor then hit in SPM across partition boundaries, while
    /// per-partition slices (different coordinates) stay distinct.
    pub fn fork(&self, name: impl Into<String>) -> Schedule {
        Schedule {
            name: name.into(),
            tensors: Arc::clone(&self.tensors),
            ops: Vec::new(),
        }
    }

    /// Register a tensor and get its id.
    pub fn add_tensor(&mut self, class: TensorClass, name: impl Into<String>) -> TensorId {
        let id = TensorId(self.tensors.len() as u32);
        Arc::make_mut(&mut self.tensors).push(TensorInfo {
            class,
            name: name.into(),
        });
        id
    }

    /// Traffic class of a registered tensor.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this schedule.
    pub fn class_of(&self, id: TensorId) -> TensorClass {
        self.tensors[id.0 as usize].class
    }

    /// Name of a registered tensor.
    pub fn tensor_name(&self, id: TensorId) -> &str {
        &self.tensors[id.0 as usize].name
    }

    /// Number of registered tensors.
    pub fn num_tensors(&self) -> usize {
        self.tensors.len()
    }

    /// Append a tile GEMM.
    pub fn push_gemm(&mut self, op: TileOp) {
        debug_assert!(
            op.reads
                .iter()
                .map(|r| r.key.tensor)
                .chain(op.acc.iter().map(|a| a.key.tensor))
                .all(|t| (t.0 as usize) < self.tensors.len()),
            "tile op references unregistered tensor"
        );
        self.ops.push(ScheduleOp::Gemm(op));
    }

    /// Append a pure data-movement op.
    pub fn push_stream(&mut self, op: StreamOp) {
        self.ops.push(ScheduleOp::Stream(op));
    }

    /// Append a kernel boundary (see [`ScheduleOp::Barrier`]).
    pub fn push_barrier(&mut self) {
        self.ops.push(ScheduleOp::Barrier);
    }

    /// The operation stream.
    pub fn ops(&self) -> &[ScheduleOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total MACs across all tile GEMMs — invariant under reordering, so
    /// every transformation of a schedule must preserve this.
    pub fn total_macs(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                ScheduleOp::Gemm(g) => g.macs(),
                ScheduleOp::Stream(_) | ScheduleOp::Barrier => 0,
            })
            .sum()
    }

    /// Total bytes named by operand reads, ignoring residency (an upper
    /// bound on read traffic).
    pub fn named_read_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                ScheduleOp::Gemm(g) => g.operand_bytes(),
                ScheduleOp::Stream(s) => s.read_bytes,
                ScheduleOp::Barrier => 0,
            })
            .sum()
    }

    /// Append the ops of a schedule that shares this schedule's tensor
    /// table verbatim (a fellow fork of the same, fully registered parent).
    /// Tile identities are preserved, so residency carries across the
    /// boundary — this is how sequential single-core partitions are chained.
    ///
    /// # Panics
    ///
    /// Panics if the tensor tables differ.
    pub fn append_compatible(&mut self, other: &Schedule) {
        assert!(
            Arc::ptr_eq(&self.tensors, &other.tensors) || self.tensors == other.tensors,
            "append_compatible requires identical tensor tables"
        );
        self.ops.extend(other.ops.iter().cloned());
    }

    /// Append all ops (and remap tensors) of `other` onto `self`,
    /// returning nothing; used to chain per-partition schedules into one
    /// sequential single-core stream.
    pub fn extend_from(&mut self, other: &Schedule) {
        let base = self.tensors.len() as u32;
        Arc::make_mut(&mut self.tensors).extend(other.tensors.iter().cloned());
        for op in &other.ops {
            match op {
                ScheduleOp::Gemm(g) => {
                    let mut g = g.clone();
                    for r in &mut g.reads {
                        r.key.tensor = TensorId(r.key.tensor.0 + base);
                    }
                    if let Some(a) = &mut g.acc {
                        a.key.tensor = TensorId(a.key.tensor.0 + base);
                    }
                    self.ops.push(ScheduleOp::Gemm(g));
                }
                ScheduleOp::Stream(s) => self.ops.push(ScheduleOp::Stream(*s)),
                ScheduleOp::Barrier => self.ops.push(ScheduleOp::Barrier),
            }
        }
    }

    /// Iterate over distinct tile keys read as operands, with the bytes of
    /// each (first occurrence wins). Useful for footprint statistics.
    pub fn unique_operand_bytes(&self) -> u64 {
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for op in &self.ops {
            if let ScheduleOp::Gemm(g) = op {
                for r in &g.reads {
                    if seen.insert(r.key) {
                        total += r.bytes;
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schedule() -> Schedule {
        let mut s = Schedule::new("t");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let w = s.add_tensor(TensorClass::Weight, "W");
        let dx = s.add_tensor(TensorClass::InGrad, "dX");
        for j in 0..4 {
            s.push_gemm(
                TileOp::new(GemmShape::new(16, 16, 16))
                    .read(dy, TileCoord::new(0, j), 1024)
                    .read(w, TileCoord::new(j, 0), 1024)
                    .accumulate(dx, TileCoord::new(0, 0), 1024),
            );
        }
        s
    }

    #[test]
    fn tensor_registration_round_trips() {
        let s = demo_schedule();
        assert_eq!(s.num_tensors(), 3);
        assert_eq!(s.class_of(TensorId::from_raw(0)), TensorClass::OutGrad);
        assert_eq!(s.tensor_name(TensorId::from_raw(1)), "W");
    }

    #[test]
    fn macs_sum_over_ops() {
        let s = demo_schedule();
        assert_eq!(s.total_macs(), 4 * 16 * 16 * 16);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn named_vs_unique_reads() {
        let s = demo_schedule();
        // 4 ops x 2 reads x 1 KiB named; all 8 keys distinct.
        assert_eq!(s.named_read_bytes(), 8 * 1024);
        assert_eq!(s.unique_operand_bytes(), 8 * 1024);
    }

    #[test]
    fn extend_remaps_tensor_ids() {
        let mut a = demo_schedule();
        let b = demo_schedule();
        a.extend_from(&b);
        assert_eq!(a.num_tensors(), 6);
        assert_eq!(a.len(), 8);
        // The second half's tile keys must not collide with the first's.
        assert_eq!(a.unique_operand_bytes(), 16 * 1024);
        assert_eq!(a.total_macs(), 2 * 4 * 16 * 16 * 16);
    }

    #[test]
    fn stream_ops_carry_traffic_only() {
        let mut s = Schedule::new("r");
        s.push_stream(StreamOp {
            class: TensorClass::WGrad,
            read_bytes: 100,
            write_bytes: 50,
        });
        assert_eq!(s.total_macs(), 0);
        assert_eq!(s.named_read_bytes(), 100);
    }

    #[test]
    fn fork_shares_tensor_table_without_copying() {
        let s = demo_schedule();
        let f = s.fork("child");
        assert!(Arc::ptr_eq(&s.tensors, &f.tensors), "fork must share");
        assert_eq!(f.num_tensors(), s.num_tensors());
        assert!(f.is_empty());
    }

    #[test]
    fn post_fork_registration_copies_on_write() {
        let s = demo_schedule();
        let mut f = s.fork("child");
        let extra = f.add_tensor(TensorClass::Partial, "spill");
        assert_eq!(f.num_tensors(), 4);
        assert_eq!(s.num_tensors(), 3, "parent untouched");
        assert_eq!(f.class_of(extra), TensorClass::Partial);
    }

    #[test]
    #[should_panic(expected = "already has an accumulator")]
    fn double_accumulator_panics() {
        let mut s = Schedule::new("x");
        let t = s.add_tensor(TensorClass::InGrad, "dX");
        let _ = TileOp::new(GemmShape::new(1, 1, 1))
            .accumulate(t, TileCoord::new(0, 0), 4)
            .accumulate(t, TileCoord::new(0, 1), 4);
    }
}
