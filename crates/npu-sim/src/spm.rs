//! Software-managed scratchpad memory (SPM) residency model.
//!
//! NPU scratchpads are explicitly managed by the compiler, not a hardware
//! cache; but for *traffic accounting* the compiler-managed residency of a
//! tile stream is equivalent to an LRU cache over tiles with the capacity of
//! the schedule-visible SPM half (the other half is the double-buffer
//! landing zone). This is exactly the model the paper uses to reason about
//! reuse: "duplicated memory traffic arises when the distance between the
//! dX and dW calculations exceeds the number of tiled computations that can
//! be loaded in half of the SPM" (§4.2).
//!
//! [`SpmCache`] therefore implements a byte-capacity LRU keyed by
//! [`TileKey`]. It distinguishes *clean* operand tiles (evicted silently)
//! from *dirty* accumulator tiles (evicted with a write-back, re-fetched
//! with a read on the next touch) — which is how the "intermediate result"
//! spill traffic of the dXmajor/dWmajor reorderings (§4.3) emerges without
//! any special-casing in the schedulers. Write-backs are reported with the
//! victim's identity so the engine can attribute the bytes to the right
//! tensor class.

use crate::trace::TileKey;
use std::collections::{BTreeMap, HashMap, HashSet};

/// What happened on a tile access.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Bytes fetched from DRAM for this access (0 on a hit or fresh alloc).
    pub fetched_bytes: u64,
    /// Dirty tiles this access evicted, each written back to DRAM.
    pub writebacks: Vec<(TileKey, u64)>,
    /// True if the tile was already resident.
    pub hit: bool,
}

impl AccessOutcome {
    /// Total write-back bytes of this access.
    pub fn writeback_bytes(&self) -> u64 {
        self.writebacks.iter().map(|(_, b)| b).sum()
    }
}

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    dirty: bool,
    tick: u64,
}

/// Byte-capacity LRU over tiles, with dirty-accumulator tracking.
#[derive(Debug, Clone)]
pub struct SpmCache {
    capacity: u64,
    used: u64,
    high_water: u64,
    tick: u64,
    entries: HashMap<TileKey, Entry>,
    lru: BTreeMap<u64, TileKey>,
    /// Accumulator tiles that have been spilled at least once: the next
    /// touch must re-fetch the partial sums from DRAM.
    spilled: HashSet<TileKey>,
    hits: u64,
    misses: u64,
}

impl SpmCache {
    /// Create a cache with `capacity` bytes of residency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "SPM residency capacity must be positive");
        Self {
            capacity,
            used: 0,
            high_water: 0,
            tick: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            spilled: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Residency capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Highest residency (bytes) ever observed — the SPM occupancy
    /// high-water mark. Survives [`SpmCache::clear`] so it spans kernel
    /// boundaries within one run.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Number of resident tiles.
    pub fn resident_tiles(&self) -> usize {
        self.entries.len()
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Access an operand tile (read-only). A miss fetches `bytes` from DRAM.
    ///
    /// Tiles larger than the whole cache bypass residency: they are streamed
    /// (fetched on every touch, never cached), matching how a compiler
    /// handles an operand block that cannot fit.
    pub fn read(&mut self, key: TileKey, bytes: u64) -> AccessOutcome {
        self.touch(key, bytes, false)
    }

    /// Access an accumulator tile (read-modify-write in SPM).
    ///
    /// The first touch allocates the tile (no DRAM read). If the tile was
    /// previously evicted, its partial sums must be re-fetched. The entry is
    /// marked dirty; eviction will write it back.
    pub fn accumulate(&mut self, key: TileKey, bytes: u64) -> AccessOutcome {
        self.touch(key, bytes, true)
    }

    fn touch(&mut self, key: TileKey, bytes: u64, dirty: bool) -> AccessOutcome {
        if let Some(entry) = self.entries.get_mut(&key) {
            // A tile may legitimately change size between touches (e.g. a
            // ragged-edge tile revisited by a chained partition segment).
            // The residency accounting must follow the resize in *all*
            // build profiles — a stale `entry.bytes` would silently corrupt
            // `used` (and with it every eviction decision downstream).
            let old_bytes = entry.bytes;
            let old_tick = entry.tick;
            entry.bytes = bytes;
            self.tick += 1;
            entry.tick = self.tick;
            entry.dirty |= dirty;
            self.lru.remove(&old_tick);
            self.lru.insert(self.tick, key);
            self.hits += 1;
            self.used = self.used - old_bytes + bytes;
            // If the tile grew past what fits, evict LRU victims until the
            // residency is legal again. The freshly touched entry carries
            // the newest tick, so it is only evicted if it alone no longer
            // fits — in which case it falls back to streaming like any
            // oversized tile.
            let writebacks = if self.used > self.capacity {
                self.make_room(0)
            } else {
                Vec::new()
            };
            self.high_water = self.high_water.max(self.used);
            return AccessOutcome {
                fetched_bytes: 0,
                writebacks,
                hit: true,
            };
        }

        self.misses += 1;
        // A fresh accumulator allocation needs no DRAM read; a re-touched
        // (previously spilled) accumulator and any operand tile must be
        // fetched.
        let fetched = if dirty && !self.spilled.contains(&key) {
            0
        } else {
            bytes
        };

        if bytes > self.capacity {
            // Streaming bypass: never resident. A dirty bypass tile is
            // written straight through.
            let writebacks = if dirty {
                self.spilled.insert(key);
                vec![(key, bytes)]
            } else {
                Vec::new()
            };
            return AccessOutcome {
                fetched_bytes: fetched,
                writebacks,
                hit: false,
            };
        }

        let writebacks = self.make_room(bytes);
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                bytes,
                dirty,
                tick: self.tick,
            },
        );
        self.lru.insert(self.tick, key);
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        AccessOutcome {
            fetched_bytes: fetched,
            writebacks,
            hit: false,
        }
    }

    /// Evict LRU entries until `bytes` fit; returns the dirty victims.
    fn make_room(&mut self, bytes: u64) -> Vec<(TileKey, u64)> {
        let mut writebacks = Vec::new();
        while self.used + bytes > self.capacity {
            let (&tick, &key) = self
                .lru
                .iter()
                .next()
                .expect("cache accounting broken: used > 0 but LRU empty");
            self.lru.remove(&tick);
            let entry = self
                .entries
                .remove(&key)
                .expect("LRU/entry map out of sync");
            self.used -= entry.bytes;
            if entry.dirty {
                writebacks.push((key, entry.bytes));
                self.spilled.insert(key);
            }
        }
        writebacks
    }

    /// Flush all dirty entries (end of schedule): returns the dirty tiles
    /// written back. Entries stay resident but become clean, so residency
    /// carries across chained schedule segments.
    pub fn flush(&mut self) -> Vec<(TileKey, u64)> {
        let mut writebacks = Vec::new();
        for (key, entry) in self.entries.iter_mut() {
            if entry.dirty {
                writebacks.push((*key, entry.bytes));
                entry.dirty = false;
                self.spilled.insert(*key);
            }
        }
        writebacks
    }

    /// Drop everything without write-backs and forget spill history (used
    /// between independent layers, where results have already been flushed).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.spilled.clear();
        self.used = 0;
    }

    /// Whether `key` is currently resident.
    pub fn contains(&self, key: &TileKey) -> bool {
        self.entries.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TensorId;
    use igo_tensor::TileCoord;

    fn key(t: u32, r: u32, c: u32) -> TileKey {
        TileKey {
            tensor: TensorId::from_raw(t),
            coord: TileCoord::new(r, c),
        }
    }

    #[test]
    fn read_miss_then_hit() {
        let mut spm = SpmCache::new(1000);
        let k = key(0, 0, 0);
        let first = spm.read(k, 400);
        assert!(!first.hit);
        assert_eq!(first.fetched_bytes, 400);
        let second = spm.read(k, 400);
        assert!(second.hit);
        assert_eq!(second.fetched_bytes, 0);
        assert_eq!(spm.hits(), 1);
        assert_eq!(spm.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut spm = SpmCache::new(1000);
        spm.read(key(0, 0, 0), 400);
        spm.read(key(0, 0, 1), 400);
        // Touch tile 0 so tile 1 becomes LRU.
        spm.read(key(0, 0, 0), 400);
        // Inserting a third 400-byte tile evicts tile 1.
        spm.read(key(0, 0, 2), 400);
        assert!(spm.contains(&key(0, 0, 0)));
        assert!(!spm.contains(&key(0, 0, 1)));
        assert!(spm.contains(&key(0, 0, 2)));
    }

    #[test]
    fn fresh_accumulator_needs_no_fetch() {
        let mut spm = SpmCache::new(1000);
        let out = spm.accumulate(key(1, 0, 0), 300);
        assert!(!out.hit);
        assert_eq!(out.fetched_bytes, 0);
        assert!(out.writebacks.is_empty());
    }

    #[test]
    fn spilled_accumulator_costs_writeback_then_refetch() {
        let mut spm = SpmCache::new(1000);
        let acc = key(1, 0, 0);
        spm.accumulate(acc, 600); // fresh: no fetch
                                  // A 600-byte read forces the dirty accumulator out.
        let evicting = spm.read(key(0, 0, 0), 600);
        assert_eq!(evicting.writebacks, vec![(acc, 600)]);
        // Re-touching the accumulator must now re-fetch the partials.
        let retouch = spm.accumulate(acc, 600);
        assert_eq!(retouch.fetched_bytes, 600);
    }

    #[test]
    fn clean_eviction_is_silent() {
        let mut spm = SpmCache::new(500);
        spm.read(key(0, 0, 0), 400);
        let out = spm.read(key(0, 0, 1), 400);
        assert!(out.writebacks.is_empty());
    }

    #[test]
    fn flush_writes_dirty_only() {
        let mut spm = SpmCache::new(1000);
        spm.accumulate(key(1, 0, 0), 300);
        spm.read(key(0, 0, 0), 300);
        let flushed = spm.flush();
        assert_eq!(flushed, vec![(key(1, 0, 0), 300)]);
        // Entries stay resident, now clean: a second flush writes nothing.
        assert_eq!(spm.resident_tiles(), 2);
        assert!(spm.flush().is_empty());
    }

    #[test]
    fn oversized_tile_streams_through() {
        let mut spm = SpmCache::new(100);
        let out = spm.read(key(0, 0, 0), 400);
        assert_eq!(out.fetched_bytes, 400);
        assert!(!spm.contains(&key(0, 0, 0)));
        // Every touch re-fetches.
        let again = spm.read(key(0, 0, 0), 400);
        assert_eq!(again.fetched_bytes, 400);
        // Oversized dirty tile: write-through.
        let acc = spm.accumulate(key(1, 0, 0), 400);
        assert_eq!(acc.writeback_bytes(), 400);
    }

    #[test]
    fn used_never_exceeds_capacity() {
        let mut spm = SpmCache::new(1024);
        for i in 0..100u32 {
            spm.read(key(0, 0, i), 100);
            assert!(spm.used() <= spm.capacity());
        }
    }

    #[test]
    fn accumulate_hit_marks_dirty() {
        let mut spm = SpmCache::new(1000);
        let k = key(1, 0, 0);
        spm.read(k, 200); // resident, clean
        spm.accumulate(k, 200); // hit, now dirty
        assert_eq!(spm.flush(), vec![(k, 200)]);
    }

    #[test]
    fn clear_forgets_spill_history() {
        let mut spm = SpmCache::new(100);
        let acc = key(1, 0, 0);
        spm.accumulate(acc, 400); // oversized dirty: spilled
        spm.clear();
        let fresh = spm.accumulate(acc, 50);
        assert_eq!(fresh.fetched_bytes, 0, "clear() must reset spill history");
    }

    #[test]
    fn multi_eviction_reports_every_dirty_victim() {
        let mut spm = SpmCache::new(1000);
        spm.accumulate(key(1, 0, 0), 400);
        spm.accumulate(key(1, 0, 1), 400);
        let out = spm.read(key(0, 0, 0), 900);
        assert_eq!(out.writeback_bytes(), 800);
        assert_eq!(out.writebacks.len(), 2);
    }

    #[test]
    fn resize_keeps_residency_accounting_exact() {
        // Regression for the tile-resize hazard: a resident tile re-touched
        // with a different size must adjust `used` in every build profile.
        let mut spm = SpmCache::new(1000);
        let k = key(0, 0, 0);
        spm.read(k, 400);
        assert_eq!(spm.used(), 400);
        // Shrink: frees space.
        let shrink = spm.read(k, 100);
        assert!(shrink.hit);
        assert_eq!(spm.used(), 100);
        // Grow within capacity.
        spm.read(key(0, 0, 1), 500);
        let grow = spm.read(k, 300);
        assert!(grow.hit);
        assert_eq!(spm.used(), 800);
        // Grow past capacity: the *other* (older) tile is evicted.
        let burst = spm.read(k, 900);
        assert!(burst.hit);
        assert!(!spm.contains(&key(0, 0, 1)));
        assert_eq!(spm.used(), 900);
        assert!(spm.used() <= spm.capacity());
        // Grow past the whole capacity: the tile itself falls out too.
        let dirty_grow = spm.accumulate(k, 1200);
        assert!(dirty_grow.hit);
        assert_eq!(dirty_grow.writebacks, vec![(k, 1200)]);
        assert_eq!(spm.used(), 0);
        assert!(!spm.contains(&k));
        // ... and is treated as spilled on the next touch.
        assert_eq!(spm.accumulate(k, 100).fetched_bytes, 100);
    }

    /// Executable reference model: a plain `Vec`-backed LRU with the same
    /// stated semantics (front = least recent; resize follows the touch;
    /// oversized tiles stream; dirty evictions write back and mark the
    /// tile spilled).
    struct RefLru {
        capacity: u64,
        entries: Vec<(TileKey, u64, bool)>,
        spilled: std::collections::HashSet<TileKey>,
        hits: u64,
        misses: u64,
    }

    impl RefLru {
        fn new(capacity: u64) -> Self {
            Self {
                capacity,
                entries: Vec::new(),
                spilled: std::collections::HashSet::new(),
                hits: 0,
                misses: 0,
            }
        }

        fn used(&self) -> u64 {
            self.entries.iter().map(|(_, b, _)| b).sum()
        }

        fn evict_while_over(&mut self, incoming: u64) -> Vec<(TileKey, u64)> {
            let mut writebacks = Vec::new();
            while self.used() + incoming > self.capacity {
                let (k, b, dirty) = self.entries.remove(0);
                if dirty {
                    writebacks.push((k, b));
                    self.spilled.insert(k);
                }
            }
            writebacks
        }

        fn touch(&mut self, key: TileKey, bytes: u64, dirty: bool) -> AccessOutcome {
            if let Some(i) = self.entries.iter().position(|(k, _, _)| *k == key) {
                let (k, _, was_dirty) = self.entries.remove(i);
                self.entries.push((k, bytes, was_dirty || dirty));
                self.hits += 1;
                let writebacks = self.evict_while_over(0);
                return AccessOutcome {
                    fetched_bytes: 0,
                    writebacks,
                    hit: true,
                };
            }
            self.misses += 1;
            let fetched = if dirty && !self.spilled.contains(&key) {
                0
            } else {
                bytes
            };
            if bytes > self.capacity {
                let writebacks = if dirty {
                    self.spilled.insert(key);
                    vec![(key, bytes)]
                } else {
                    Vec::new()
                };
                return AccessOutcome {
                    fetched_bytes: fetched,
                    writebacks,
                    hit: false,
                };
            }
            let writebacks = self.evict_while_over(bytes);
            self.entries.push((key, bytes, dirty));
            AccessOutcome {
                fetched_bytes: fetched,
                writebacks,
                hit: false,
            }
        }

        fn flush(&mut self) -> Vec<(TileKey, u64)> {
            let mut writebacks = Vec::new();
            for (k, b, dirty) in self.entries.iter_mut() {
                if *dirty {
                    writebacks.push((*k, *b));
                    *dirty = false;
                    self.spilled.insert(*k);
                }
            }
            writebacks
        }

        fn clear(&mut self) {
            self.entries.clear();
            self.spilled.clear();
        }
    }

    /// Property test: on seeded random access streams — mixed reads and
    /// accumulates over a small tile pool with varying (and occasionally
    /// oversized) tile sizes, interleaved with flushes and clears — the
    /// cache must agree access-by-access with the reference model, never
    /// exceed capacity, and only ever re-fetch a dirty tile after a
    /// write-back of that same tile.
    #[test]
    fn seeded_streams_match_reference_model() {
        let mut rng = igo_tensor::SplitMix64::new(0x5EED_CAFE);
        for round in 0..64 {
            let capacity = rng.range_u64(3, 12) * 100;
            let mut spm = SpmCache::new(capacity);
            let mut reference = RefLru::new(capacity);
            let mut written_back: std::collections::HashSet<TileKey> =
                std::collections::HashSet::new();
            let ops = rng.range_u64(50, 400);
            for _ in 0..ops {
                match rng.range_u64(0, 20) {
                    0 => {
                        let mut got = spm.flush();
                        let mut want = reference.flush();
                        got.sort_unstable_by_key(|(k, _)| *k);
                        want.sort_unstable_by_key(|(k, _)| *k);
                        assert_eq!(got, want, "flush diverged in round {round}");
                        for (k, _) in &got {
                            written_back.insert(*k);
                        }
                    }
                    1 => {
                        spm.clear();
                        reference.clear();
                        // Spill history is gone: dirty re-touches are fresh
                        // allocations again, so the pairing set resets too.
                        written_back.clear();
                    }
                    _ => {
                        let k = key(rng.range_u64(0, 3) as u32, 0, rng.range_u64(0, 5) as u32);
                        let bytes = rng.range_u64(1, 15) * 100;
                        let dirty = rng.range_u64(0, 2) == 1;
                        let got = spm.touch(k, bytes, dirty);
                        let want = reference.touch(k, bytes, dirty);
                        assert_eq!(got, want, "access diverged in round {round}");
                        if dirty && got.fetched_bytes > 0 {
                            assert!(
                                written_back.contains(&k),
                                "dirty re-fetch of {k:?} without prior write-back"
                            );
                        }
                        for (victim, _) in &got.writebacks {
                            written_back.insert(*victim);
                        }
                    }
                }
                assert!(spm.used() <= spm.capacity(), "round {round}");
                assert_eq!(spm.used(), reference.used(), "round {round}");
                assert_eq!(spm.resident_tiles(), reference.entries.len());
                assert_eq!(spm.hits(), reference.hits);
                assert_eq!(spm.misses(), reference.misses);
            }
        }
    }
}
