//! First-order energy model.
//!
//! The paper motivates SPM reuse with throughput *and power efficiency*
//! (§2.1): a DRAM access costs two orders of magnitude more energy than an
//! SPM access, so every eliminated off-chip transfer is an energy win even
//! when bandwidth is not the bottleneck. This module turns a [`SimReport`]
//! into picojoules using the standard 45/22-nm-era accelerator constants
//! (Horowitz ISSCC'14 ballpark):
//!
//! | component | default |
//! |---|---|
//! | DRAM transfer | 160 pJ/byte (LPDDR-class edge) / 40 pJ/byte (HBM-class server) |
//! | SPM access | 1.2 pJ/byte |
//! | MAC (fp32) | 4.6 pJ |
//! | static/leakage | per-cycle constant |
//!
//! Because every technique performs the same MACs, energy differences come
//! almost entirely from the DRAM term — making the energy ladder an even
//! stronger version of the time ladder on bandwidth-rich machines.

use crate::config::NpuConfig;
use crate::stats::SimReport;
/// Energy cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Picojoules per DRAM byte moved (read or write).
    pub pj_per_dram_byte: f64,
    /// Picojoules per SPM byte staged to the array.
    pub pj_per_spm_byte: f64,
    /// Picojoules per multiply-accumulate.
    pub pj_per_mac: f64,
    /// Static (leakage + clocking) picojoules per cycle.
    pub pj_static_per_cycle: f64,
}

impl EnergyModel {
    /// Edge-device constants: LPDDR4-class DRAM, small SPM.
    pub fn edge() -> Self {
        Self {
            pj_per_dram_byte: 160.0,
            pj_per_spm_byte: 1.2,
            pj_per_mac: 4.6,
            pj_static_per_cycle: 50.0,
        }
    }

    /// Server constants: HBM-class DRAM (far cheaper per byte), bigger
    /// static floor.
    pub fn server() -> Self {
        Self {
            pj_per_dram_byte: 40.0,
            pj_per_spm_byte: 1.2,
            pj_per_mac: 4.6,
            pj_static_per_cycle: 400.0,
        }
    }

    /// Pick edge/server constants to match a configuration.
    pub fn for_config(config: &NpuConfig) -> Self {
        if config.pe.rows < 100 {
            Self::edge()
        } else {
            Self::server()
        }
    }

    /// Estimate the energy of one simulated report.
    pub fn estimate(&self, report: &SimReport) -> EnergyReport {
        EnergyReport {
            dram_pj: report.traffic.total() as f64 * self.pj_per_dram_byte,
            spm_pj: report.spm_bytes_touched as f64 * self.pj_per_spm_byte,
            compute_pj: report.macs as f64 * self.pj_per_mac,
            static_pj: report.cycles as f64 * self.pj_static_per_cycle,
        }
    }
}

/// Energy of one simulated run, by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Off-chip transfer energy.
    pub dram_pj: f64,
    /// On-chip staging energy.
    pub spm_pj: f64,
    /// Arithmetic energy.
    pub compute_pj: f64,
    /// Leakage/clocking energy over the makespan.
    pub static_pj: f64,
}

impl EnergyReport {
    /// Total picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.spm_pj + self.compute_pj + self.static_pj
    }

    /// Total in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1e9
    }

    /// Fraction of the energy spent on DRAM transfers.
    pub fn dram_fraction(&self) -> f64 {
        if self.total_pj() == 0.0 {
            0.0
        } else {
            self.dram_pj / self.total_pj()
        }
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &EnergyReport) {
        self.dram_pj += other.dram_pj;
        self.spm_pj += other.spm_pj;
        self.compute_pj += other.compute_pj;
        self.static_pj += other.static_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Traffic;
    use igo_tensor::TensorClass;

    fn report(dram_bytes: u64, spm_bytes: u64, macs: u64, cycles: u64) -> SimReport {
        let mut traffic = Traffic::new();
        traffic.add_read(TensorClass::OutGrad, dram_bytes);
        SimReport {
            cycles,
            traffic,
            macs,
            spm_bytes_touched: spm_bytes,
            ..Default::default()
        }
    }

    #[test]
    fn components_add_up() {
        let m = EnergyModel::edge();
        let e = m.estimate(&report(1000, 5000, 200, 100));
        assert!((e.dram_pj - 160_000.0).abs() < 1e-9);
        assert!((e.spm_pj - 6_000.0).abs() < 1e-9);
        assert!((e.compute_pj - 920.0).abs() < 1e-9);
        assert!((e.static_pj - 5_000.0).abs() < 1e-9);
        assert!((e.total_pj() - 171_920.0).abs() < 1e-9);
    }

    #[test]
    fn dram_dominates_on_edge_for_low_reuse() {
        let m = EnergyModel::edge();
        let e = m.estimate(&report(1 << 20, 1 << 20, 1 << 20, 1 << 12));
        assert!(e.dram_fraction() > 0.9);
    }

    #[test]
    fn config_dispatch() {
        let edge = EnergyModel::for_config(&NpuConfig::small_edge());
        let server = EnergyModel::for_config(&NpuConfig::large_single_core());
        assert!(edge.pj_per_dram_byte > server.pj_per_dram_byte);
    }

    #[test]
    fn less_traffic_means_less_energy() {
        let m = EnergyModel::server();
        let high = m.estimate(&report(2000, 100, 10, 10));
        let low = m.estimate(&report(1000, 100, 10, 10));
        assert!(low.total_pj() < high.total_pj());
    }

    #[test]
    fn report_add_accumulates() {
        let m = EnergyModel::edge();
        let mut a = m.estimate(&report(10, 10, 10, 10));
        let b = m.estimate(&report(20, 20, 20, 20));
        let before = a.total_pj();
        a.add(&b);
        assert!((a.total_pj() - before - b.total_pj()).abs() < 1e-9);
    }
}
