//! Simulation reports and per-class DRAM traffic accounting.

use igo_tensor::TensorClass;
fn class_index(class: TensorClass) -> usize {
    TensorClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("TensorClass::ALL covers all classes")
}

/// DRAM traffic broken down by tensor class and direction, in bytes.
///
/// Figure 5 of the paper reports exactly this decomposition ("the ratio of
/// dY traffic compared to all read and write data").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    reads: [u64; 7],
    writes: [u64; 7],
}

impl Traffic {
    /// Zero traffic.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `bytes` read from DRAM for tensors of `class`.
    pub fn add_read(&mut self, class: TensorClass, bytes: u64) {
        self.reads[class_index(class)] += bytes;
    }

    /// Record `bytes` written to DRAM for tensors of `class`.
    pub fn add_write(&mut self, class: TensorClass, bytes: u64) {
        self.writes[class_index(class)] += bytes;
    }

    /// Bytes read for `class`.
    pub fn read(&self, class: TensorClass) -> u64 {
        self.reads[class_index(class)]
    }

    /// Bytes written for `class`.
    pub fn write(&self, class: TensorClass) -> u64 {
        self.writes[class_index(class)]
    }

    /// Total bytes read.
    pub fn read_total(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total bytes written.
    pub fn write_total(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Total bytes moved in either direction.
    pub fn total(&self) -> u64 {
        self.read_total() + self.write_total()
    }

    /// Fraction of *read* traffic belonging to `class` (Figure 5's
    /// "Read Ratio"). Returns 0 when there is no read traffic.
    pub fn read_ratio(&self, class: TensorClass) -> f64 {
        let total = self.read_total();
        if total == 0 {
            0.0
        } else {
            self.read(class) as f64 / total as f64
        }
    }

    /// Fraction of *all* traffic belonging to `class` (Figure 5's
    /// "Read+Write Ratio").
    pub fn total_ratio(&self, class: TensorClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.read(class) + self.write(class)) as f64 / total as f64
        }
    }

    /// Traffic multiplied by an integer factor (identical repeated
    /// executions, e.g. layer multiplicity or convolution groups).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> Traffic {
        let mut out = *self;
        for i in 0..7 {
            out.reads[i] *= factor;
            out.writes[i] *= factor;
        }
        out
    }

    /// Merge another traffic record into this one.
    pub fn merge(&mut self, other: &Traffic) {
        for i in 0..7 {
            self.reads[i] += other.reads[i];
            self.writes[i] += other.writes[i];
        }
    }
}

impl core::fmt::Display for Traffic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "reads {} B / writes {} B",
            self.read_total(),
            self.write_total()
        )?;
        for class in TensorClass::ALL {
            let (r, w) = (self.read(class), self.write(class));
            if r > 0 || w > 0 {
                write!(f, "; {}: r{} w{}", class.label(), r, w)?;
            }
        }
        Ok(())
    }
}

/// Result of running one schedule on one core.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimReport {
    /// Total execution cycles (makespan of compute and memory timelines).
    pub cycles: u64,
    /// Sum of tile-GEMM compute cycles (serial compute occupancy).
    pub compute_cycles: u64,
    /// Sum of memory-channel busy cycles.
    pub mem_cycles: u64,
    /// Per-class DRAM traffic.
    pub traffic: Traffic,
    /// SPM hits across all tile accesses.
    pub spm_hits: u64,
    /// SPM misses across all tile accesses.
    pub spm_misses: u64,
    /// Number of tile GEMM operations executed.
    pub gemm_ops: u64,
    /// Total MACs performed.
    pub macs: u64,
    /// Bytes moved between SPM and the systolic array (every tile access,
    /// hit or miss) — the on-chip side of the energy model.
    pub spm_bytes_touched: u64,
}

impl SimReport {
    /// Merge a report for a subsequent schedule segment executed serially on
    /// the same core: cycles add, traffic and counters accumulate.
    pub fn chain(&mut self, other: &SimReport) {
        self.cycles += other.cycles;
        self.compute_cycles += other.compute_cycles;
        self.mem_cycles += other.mem_cycles;
        self.traffic.merge(&other.traffic);
        self.spm_hits += other.spm_hits;
        self.spm_misses += other.spm_misses;
        self.gemm_ops += other.gemm_ops;
        self.macs += other.macs;
        self.spm_bytes_touched += other.spm_bytes_touched;
    }

    /// This report repeated `factor` times back-to-back (identical layer
    /// instances or convolution groups): everything multiplies.
    #[must_use]
    pub fn scaled(&self, factor: u64) -> SimReport {
        SimReport {
            cycles: self.cycles * factor,
            compute_cycles: self.compute_cycles * factor,
            mem_cycles: self.mem_cycles * factor,
            traffic: self.traffic.scaled(factor),
            spm_hits: self.spm_hits * factor,
            spm_misses: self.spm_misses * factor,
            gemm_ops: self.gemm_ops * factor,
            macs: self.macs * factor,
            spm_bytes_touched: self.spm_bytes_touched * factor,
        }
    }

    /// Total SPM tile accesses (hits plus misses). Conservation invariant:
    /// this must equal the number of tile accesses in the schedule's
    /// flattened access stream.
    pub fn spm_accesses(&self) -> u64 {
        self.spm_hits + self.spm_misses
    }

    /// SPM hit rate over all tile accesses; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.spm_hits + self.spm_misses;
        if total == 0 {
            0.0
        } else {
            self.spm_hits as f64 / total as f64
        }
    }

    /// Wall-clock seconds at `freq_hz`.
    pub fn seconds(&self, freq_hz: f64) -> f64 {
        self.cycles as f64 / freq_hz
    }

    /// Fraction of the makespan the memory channel is busy — close to 1 for
    /// memory-bound layers (the paper's Figure 13 population).
    pub fn memory_boundedness(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_per_class_accounting() {
        let mut t = Traffic::new();
        t.add_read(TensorClass::OutGrad, 100);
        t.add_read(TensorClass::OutGrad, 50);
        t.add_read(TensorClass::Weight, 150);
        t.add_write(TensorClass::InGrad, 200);
        assert_eq!(t.read(TensorClass::OutGrad), 150);
        assert_eq!(t.read_total(), 300);
        assert_eq!(t.write_total(), 200);
        assert_eq!(t.total(), 500);
        assert!((t.read_ratio(TensorClass::OutGrad) - 0.5).abs() < 1e-12);
        assert!((t.total_ratio(TensorClass::OutGrad) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_traffic_ratios_are_zero() {
        let t = Traffic::new();
        assert_eq!(t.read_ratio(TensorClass::OutGrad), 0.0);
        assert_eq!(t.total_ratio(TensorClass::OutGrad), 0.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = Traffic::new();
        a.add_read(TensorClass::Ifmap, 10);
        let mut b = Traffic::new();
        b.add_read(TensorClass::Ifmap, 5);
        b.add_write(TensorClass::WGrad, 7);
        a.merge(&b);
        assert_eq!(a.read(TensorClass::Ifmap), 15);
        assert_eq!(a.write(TensorClass::WGrad), 7);
    }

    #[test]
    fn report_chain_accumulates() {
        let mut a = SimReport {
            cycles: 100,
            compute_cycles: 60,
            mem_cycles: 90,
            spm_hits: 3,
            spm_misses: 1,
            gemm_ops: 4,
            macs: 1000,
            ..Default::default()
        };
        let b = SimReport {
            cycles: 50,
            compute_cycles: 30,
            mem_cycles: 45,
            spm_hits: 1,
            spm_misses: 1,
            gemm_ops: 2,
            macs: 500,
            ..Default::default()
        };
        a.chain(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.gemm_ops, 6);
        assert_eq!(a.macs, 1500);
        assert!((a.hit_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_uses_frequency() {
        let r = SimReport {
            cycles: 1_000_000,
            ..Default::default()
        };
        assert!((r.seconds(1.0e9) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn memory_boundedness_bounds() {
        let r = SimReport {
            cycles: 100,
            mem_cycles: 80,
            ..Default::default()
        };
        assert!((r.memory_boundedness() - 0.8).abs() < 1e-12);
        assert_eq!(SimReport::default().memory_boundedness(), 0.0);
    }
}
