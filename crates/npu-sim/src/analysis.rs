//! Schedule analysis: reuse distances and per-tensor access statistics.
//!
//! The paper's central quantity is the *reuse distance* of a `dY` tile —
//! "duplicated memory traffic arises when the distance between the dX and
//! dW calculations exceeds the number of tiled computations that can be
//! loaded in half of the SPM" (§4.2). This module computes exactly that,
//! for any schedule, without running the timing simulation:
//!
//! * [`reuse_distances`] — for every repeated tile access, the number of
//!   distinct tile-bytes touched since the previous access to the same
//!   tile (the stack distance, i.e. the smallest capacity at which the
//!   access would hit under OPT/LRU for that single tile).
//! * [`ReuseProfile`] — a per-tensor-class digest: access counts, reuse
//!   counts, and how many reuses fit within a given capacity.
//!
//! These tools power the `schedule_inspection` example and make the
//! paper's Figure 9 argument ("T0 is already evicted before the
//! subsequent computation") checkable for any concrete layer.

use crate::trace::{Schedule, ScheduleOp, TileKey};
use igo_tensor::TensorClass;
use std::collections::HashMap;

/// One repeated access and its stack distance in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reuse {
    /// The tile being re-accessed.
    pub key: TileKey,
    /// Traffic class of the tile's tensor.
    pub class: TensorClass,
    /// Distinct tile bytes touched since the previous access to `key`
    /// (inclusive of nothing; 0 means back-to-back accesses).
    pub stack_distance_bytes: u64,
}

/// Compute the stack distance of every repeated access in `schedule`.
///
/// Uses the classic two-pass algorithm over the flattened access stream;
/// `Barrier` ops reset all history (reuse never crosses a kernel
/// boundary, matching the engine).
pub fn reuse_distances(schedule: &Schedule) -> Vec<Reuse> {
    // Flatten accesses.
    let mut stream: Vec<Option<(TileKey, u64)>> = Vec::new();
    for op in schedule.ops() {
        match op {
            ScheduleOp::Gemm(g) => {
                for r in &g.reads {
                    stream.push(Some((r.key, r.bytes)));
                }
                if let Some(a) = &g.acc {
                    stream.push(Some((a.key, a.bytes)));
                }
            }
            ScheduleOp::Barrier => stream.push(None),
            ScheduleOp::Stream(_) => {}
        }
    }

    let mut last_pos: HashMap<TileKey, usize> = HashMap::new();
    let mut out = Vec::new();
    for (pos, access) in stream.iter().enumerate() {
        let Some((key, _)) = access else {
            last_pos.clear();
            continue;
        };
        if let Some(&prev) = last_pos.get(key) {
            // Distinct tiles touched strictly between prev and pos.
            let mut seen: HashMap<TileKey, u64> = HashMap::new();
            for access in stream[prev + 1..pos].iter().flatten() {
                seen.insert(access.0, access.1);
            }
            seen.remove(key);
            out.push(Reuse {
                key: *key,
                class: schedule.class_of(key.tensor),
                stack_distance_bytes: seen.values().sum(),
            });
        }
        last_pos.insert(*key, pos);
    }
    out
}

/// Per-class digest of a schedule's reuse behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseProfile {
    /// Total tile accesses per class.
    pub accesses: HashMap<TensorClass, u64>,
    /// Repeated accesses (reuses) per class.
    pub reuses: HashMap<TensorClass, u64>,
    /// Reuses whose stack distance fits within the profiled capacity.
    pub reuses_within_capacity: HashMap<TensorClass, u64>,
    /// The capacity the profile was computed against, in bytes.
    pub capacity_bytes: u64,
}

impl ReuseProfile {
    /// Fraction of a class's reuses that a `capacity_bytes` SPM can
    /// actually capture (1.0 when the class has no reuses).
    pub fn capture_rate(&self, class: TensorClass) -> f64 {
        let total = self.reuses.get(&class).copied().unwrap_or(0);
        if total == 0 {
            return 1.0;
        }
        let hit = self
            .reuses_within_capacity
            .get(&class)
            .copied()
            .unwrap_or(0);
        hit as f64 / total as f64
    }
}

/// Profile `schedule` against an SPM residency of `capacity_bytes`.
pub fn reuse_profile(schedule: &Schedule, capacity_bytes: u64) -> ReuseProfile {
    let mut profile = ReuseProfile {
        capacity_bytes,
        ..Default::default()
    };
    for op in schedule.ops() {
        if let ScheduleOp::Gemm(g) = op {
            for r in &g.reads {
                *profile
                    .accesses
                    .entry(schedule.class_of(r.key.tensor))
                    .or_insert(0) += 1;
            }
            if let Some(a) = &g.acc {
                *profile
                    .accesses
                    .entry(schedule.class_of(a.key.tensor))
                    .or_insert(0) += 1;
            }
        }
    }
    for reuse in reuse_distances(schedule) {
        *profile.reuses.entry(reuse.class).or_insert(0) += 1;
        if reuse.stack_distance_bytes <= capacity_bytes {
            *profile
                .reuses_within_capacity
                .entry(reuse.class)
                .or_insert(0) += 1;
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TensorId, TileOp};
    use igo_tensor::{GemmShape, TileCoord};

    fn tile_op(s: &mut Schedule, tensor: TensorId, c: u32, bytes: u64) {
        s.push_gemm(TileOp::new(GemmShape::new(4, 4, 4)).read(tensor, TileCoord::new(0, c), bytes));
    }

    #[test]
    fn back_to_back_reuse_has_zero_distance() {
        let mut s = Schedule::new("r");
        let t = s.add_tensor(TensorClass::OutGrad, "dY");
        tile_op(&mut s, t, 0, 100);
        tile_op(&mut s, t, 0, 100);
        let reuses = reuse_distances(&s);
        assert_eq!(reuses.len(), 1);
        assert_eq!(reuses[0].stack_distance_bytes, 0);
    }

    #[test]
    fn distance_counts_distinct_intervening_bytes() {
        let mut s = Schedule::new("r");
        let t = s.add_tensor(TensorClass::OutGrad, "dY");
        tile_op(&mut s, t, 0, 100); // A
        tile_op(&mut s, t, 1, 60); // B
        tile_op(&mut s, t, 1, 60); // B again (doesn't double-count)
        tile_op(&mut s, t, 2, 40); // C
        tile_op(&mut s, t, 0, 100); // A reused: distance = |B| + |C| = 100
        let reuses = reuse_distances(&s);
        let a_reuse = reuses.last().unwrap();
        assert_eq!(a_reuse.stack_distance_bytes, 100);
    }

    #[test]
    fn barrier_resets_history() {
        let mut s = Schedule::new("r");
        let t = s.add_tensor(TensorClass::OutGrad, "dY");
        tile_op(&mut s, t, 0, 100);
        s.push_barrier();
        tile_op(&mut s, t, 0, 100);
        assert!(
            reuse_distances(&s).is_empty(),
            "reuse across a kernel boundary is not a reuse"
        );
    }

    #[test]
    fn profile_capture_rate() {
        let mut s = Schedule::new("p");
        let t = s.add_tensor(TensorClass::OutGrad, "dY");
        // A ... (500 bytes of other tiles) ... A  -> distance 500.
        tile_op(&mut s, t, 0, 100);
        for c in 1..6 {
            tile_op(&mut s, t, c, 100);
        }
        tile_op(&mut s, t, 0, 100);
        let small = reuse_profile(&s, 200);
        let large = reuse_profile(&s, 1000);
        assert!(small.capture_rate(TensorClass::OutGrad) < 1.0);
        assert_eq!(large.capture_rate(TensorClass::OutGrad), 1.0);
        assert_eq!(small.accesses[&TensorClass::OutGrad], 7);
    }

    #[test]
    fn classes_without_reuse_capture_trivially() {
        let mut s = Schedule::new("p");
        let t = s.add_tensor(TensorClass::Weight, "W");
        tile_op(&mut s, t, 0, 10);
        let p = reuse_profile(&s, 1);
        assert_eq!(p.capture_rate(TensorClass::Weight), 1.0);
        assert_eq!(p.capture_rate(TensorClass::OutGrad), 1.0);
    }
}
