//! Capacity-oblivious OPT ladder profiler.
//!
//! Design-space sweeps evaluate the *same* schedule at many SPM capacity
//! rungs. A naive sweep pays one full [`AnalyticCollector::replay`] per
//! rung — and most of that replay is capacity-independent: the next-use
//! oracle back-scan, the per-region footprints and compulsory-traffic
//! floors, the op walk, the systolic tile-cycle sums. [`replay_ladder`]
//! factors all of that out and advances every rung's residency model and
//! timelines in a *single pass* over the compacted 16-byte access stream;
//! each rung's result is bit-identical to a solo replay at that capacity
//! (fuzz-asserted in `core::audit`).
//!
//! The back-scan also pre-resolves the **no-eviction path** outright: for
//! each barrier region it records which first touches fetch, the region's
//! exact traffic, and its flush write-back, so any rung whose residency
//! covers the region's footprint settles the whole region from shared
//! aggregates without ever touching its replacement state (an all-fits
//! rung never even pays its cache reset). Only rungs the region overflows
//! walk their per-access OPT state — the one part of the replay that is
//! genuinely capacity-dependent.
//!
//! [`CapacityProfile`] packages one such pass as a reusable artifact: the
//! exact fetch / write-back / traffic / cycle curve at the profiled rungs
//! (tagged [`Exactness::Exact`]) plus a capacity-*independent* compulsory
//! floor that answers any other capacity as an admissible
//! [`Exactness::LowerBound`].
//!
//! Why not a per-access stack-distance histogram (the classic Mattson
//! one-pass trick)? The engine's residency model is OPT **with bypass**
//! (an incoming tile whose next use is the farthest is streamed without
//! displacing anything) plus dirty-accumulator spill/refetch accounting —
//! and that combination does not satisfy the stack-inclusion property: an
//! access can hit at a small capacity yet miss at a larger one, because
//! bypass decisions flip as capacity grows. A histogram of "smallest
//! hitting capacity" is therefore unsound for this machine; the ladder
//! replay keeps per-rung replacement state instead and shares everything
//! that provably *is* capacity-oblivious.

use crate::analytic::{
    bump_analytic_runs, AnalyticCollector, AnalyticReport, Exactness, OpRec, ReplayOptCache,
    BARRIER_ID, BYTES_MASK, DIRTY_BIT, NO_USE,
};
use crate::engine::{Engine, Replacement};
use crate::stats::{SimReport, Traffic};
use igo_tensor::GemmShape;

/// Reusable working memory for [`replay_ladder`]: the ladder twin of
/// [`crate::AnalyticScratch`], plus one [`ReplayOptCache`] per rung.
#[derive(Debug, Default)]
pub struct LadderScratch {
    next_use: Vec<u32>,
    last_seen: Vec<u32>,
    writebacks: Vec<(u32, u64)>,
    touched: Vec<(u32, u32)>,
    tile_flags: Vec<u8>,
    /// Per barrier region: distinct-tile footprint in bytes (a rung whose
    /// residency is at least this runs the region on the no-eviction path).
    footprints: Vec<u64>,
    /// Per barrier region: admissible DRAM floor as (bytes, bursts).
    region_floor: Vec<(u64, u64)>,
    /// `region_mem_suffix[i]` = summed floor mem-time of regions after `i`.
    region_mem_suffix: Vec<f64>,
    /// Per stream position: `1` iff this access is its tile's first touch
    /// of the region *and* fetches from DRAM on the no-eviction path (the
    /// tile is not created on-chip by a dirty first write).
    first_fetch: Vec<u8>,
    /// Per barrier region: the exact DRAM traffic of the region on the
    /// no-eviction path (first-touch reads plus barrier-flush writes).
    region_traffic: Vec<Traffic>,
    /// Per barrier region: `(accesses, misses, flush write bytes)` on the
    /// no-eviction path.
    region_stats: Vec<(u64, u64, u64)>,
    caches: Vec<ReplayOptCache>,
}

impl LadderScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Capacity-independent facts of one schedule, gathered by the shared
/// back-scan and op walk: the compulsory floor of [`CapacityProfile`].
#[derive(Debug, Clone, Default)]
struct FloorAccum {
    traffic: Traffic,
    mem_bytes: u64,
    bursts: u64,
    stream_time: f64,
    misses: u64,
    accesses: u64,
    spm_bytes_touched: u64,
    compute_cycles: u64,
    gemm_ops: u64,
    macs: u64,
}

impl FloorAccum {
    fn finish(&self, engine: &Engine) -> AnalyticReport {
        let mem_time = self.mem_bytes as f64 / engine.bytes_per_cycle()
            + (self.bursts * engine.burst_latency()) as f64
            + self.stream_time;
        AnalyticReport {
            report: SimReport {
                cycles: (self.compute_cycles as f64).max(mem_time).ceil() as u64,
                compute_cycles: self.compute_cycles,
                mem_cycles: mem_time.ceil() as u64,
                traffic: self.traffic,
                spm_hits: self.accesses - self.misses,
                spm_misses: self.misses,
                gemm_ops: self.gemm_ops,
                macs: self.macs,
                spm_bytes_touched: self.spm_bytes_touched,
            },
            exactness: Exactness::LowerBound,
        }
    }
}

/// Per-rung replay state: the rung's residency model plus its two
/// timelines and traffic ledger. One instance per ladder capacity.
struct RungState<'a> {
    cache: &'a mut ReplayOptCache,
    capacity: u64,
    limit: Option<f64>,
    alive: bool,
    /// The current barrier region's footprint fits this rung: the rung
    /// rides the shared no-eviction aggregates and never touches `cache`.
    region_fits: bool,
    /// `cache` has been reset for this pass. Deferred to the rung's first
    /// eviction-path region, so an all-fits rung never pays the reset.
    cache_ready: bool,
    /// Hits/misses accumulated by fits regions (the cache counts the rest).
    extra_hits: u64,
    extra_misses: u64,
    mem_free: f64,
    compute_free: f64,
    mem_busy: f64,
    traffic: Traffic,
}

/// Evaluate one collected schedule at every capacity of an SPM ladder in
/// a single pass over the access stream.
///
/// `capacities` are per-rung SPM *residency* bytes (the engine's
/// [`Engine::residency_bytes`] for each rung's configuration), strictly
/// ascending; `engine` supplies the capacity-independent machine
/// parameters (systolic array, DRAM bandwidth, burst latency). `cutoffs`
/// mirrors [`AnalyticCollector::replay_bounded`]'s cycle cutoff per rung:
/// a rung returns `None` as soon as its replay provably exceeds its
/// cutoff, and a completed rung's report is bit-identical to a solo
/// `replay_bounded` at that capacity.
///
/// The whole ladder counts as **one** analytic run — that is the point.
///
/// # Panics
///
/// Panics if `engine` is configured with LRU replacement, if
/// `capacities` is empty or not strictly ascending, or if `cutoffs` has a
/// different length than `capacities`.
pub fn replay_ladder(
    collector: &AnalyticCollector,
    engine: &Engine,
    capacities: &[u64],
    cutoffs: &[Option<u64>],
    scratch: &mut LadderScratch,
) -> Vec<Option<AnalyticReport>> {
    ladder_pass(collector, engine, capacities, cutoffs, scratch).0
}

/// The shared implementation behind [`replay_ladder`] and
/// [`CapacityProfile::compute`]: per-rung exact reports plus the
/// capacity-independent floor accumulator.
fn ladder_pass(
    collector: &AnalyticCollector,
    engine: &Engine,
    capacities: &[u64],
    cutoffs: &[Option<u64>],
    scratch: &mut LadderScratch,
) -> (Vec<Option<AnalyticReport>>, FloorAccum) {
    assert_eq!(
        engine.replacement(),
        Replacement::Opt,
        "ladder replay models OPT replacement only"
    );
    assert!(!capacities.is_empty(), "ladder needs at least one rung");
    assert!(
        capacities.windows(2).all(|w| w[0] < w[1]),
        "ladder capacities must be strictly ascending"
    );
    assert_eq!(
        cutoffs.len(),
        capacities.len(),
        "one cutoff slot per ladder rung"
    );
    let stream = collector.stream();
    let ops = collector.ops();
    let dense_class = collector.dense_class();
    assert!(
        stream.len() < NO_USE as usize,
        "access stream overflows the u32 position space"
    );
    bump_analytic_runs();

    let LadderScratch {
        next_use,
        last_seen,
        writebacks,
        touched,
        tile_flags,
        footprints,
        region_floor,
        region_mem_suffix,
        first_fetch,
        region_traffic,
        region_stats,
        caches,
    } = scratch;
    writebacks.clear();
    let mut floor = FloorAccum::default();

    // Shared back-scan: identical to the solo replay's next-use oracle,
    // but capacity-oblivious — it records each region's distinct-tile
    // footprint instead of a per-capacity fits flag, attributes the
    // compulsory floor per traffic class for the profile, and
    // pre-resolves the whole no-eviction path (which first touches fetch,
    // what the region's exact traffic and flush write-back are) so rungs
    // the region fits never walk their residency model at all.
    next_use.clear();
    next_use.resize(stream.len(), NO_USE);
    last_seen.clear();
    last_seen.resize(dense_class.len(), NO_USE);
    tile_flags.clear();
    tile_flags.resize(dense_class.len(), 0);
    first_fetch.clear();
    first_fetch.resize(stream.len(), 0);
    touched.clear();
    footprints.clear();
    region_floor.clear();
    region_traffic.clear();
    region_stats.clear();
    let mut footprint = 0u64;
    let mut region_accesses = 0u64;
    let end_region = |footprint: u64,
                      region_accesses: u64,
                      touched: &mut Vec<(u32, u32)>,
                      tile_flags: &mut [u8],
                      last_seen: &mut [u32],
                      first_fetch: &mut [u8],
                      footprints: &mut Vec<u64>,
                      region_floor: &mut Vec<(u64, u64)>,
                      region_traffic: &mut Vec<Traffic>,
                      region_stats: &mut Vec<(u64, u64, u64)>,
                      floor: &mut FloorAccum| {
        footprints.push(footprint);
        let mut floor_bytes = 0u64;
        let mut floor_bursts = 0u64;
        let mut traffic = Traffic::new();
        let mut write_bytes = 0u64;
        for &(id, bytes) in touched.iter() {
            let flags = tile_flags[id as usize];
            if flags & 1 == 0 {
                floor_bytes += bytes as u64;
                floor_bursts += 1;
                floor
                    .traffic
                    .add_read(dense_class[id as usize], bytes as u64);
                traffic.add_read(dense_class[id as usize], bytes as u64);
                // `last_seen` still holds the tile's earliest position:
                // this first touch fetches on the no-eviction path.
                first_fetch[last_seen[id as usize] as usize] = 1;
            }
            if flags & 2 != 0 {
                floor_bytes += bytes as u64;
                floor
                    .traffic
                    .add_write(dense_class[id as usize], bytes as u64);
                traffic.add_write(dense_class[id as usize], bytes as u64);
                write_bytes += bytes as u64;
            }
            tile_flags[id as usize] = 0;
            last_seen[id as usize] = NO_USE;
        }
        floor.misses += touched.len() as u64;
        region_stats.push((region_accesses, touched.len() as u64, write_bytes));
        region_traffic.push(traffic);
        touched.clear();
        region_floor.push((floor_bytes, floor_bursts));
    };
    for pos in (0..stream.len()).rev() {
        let rec = &stream[pos];
        if rec.id == BARRIER_ID {
            end_region(
                footprint,
                region_accesses,
                touched,
                tile_flags,
                last_seen,
                first_fetch,
                footprints,
                region_floor,
                region_traffic,
                region_stats,
                &mut floor,
            );
            footprint = 0;
            region_accesses = 0;
        } else {
            let bytes = rec.bytes_dirty & BYTES_MASK;
            let later = last_seen[rec.id as usize];
            if later != NO_USE {
                next_use[pos] = later;
            } else {
                footprint += bytes as u64;
                touched.push((rec.id, bytes));
            }
            last_seen[rec.id as usize] = pos as u32;
            let dirty = (rec.bytes_dirty >> 31) as u8;
            let flags = &mut tile_flags[rec.id as usize];
            *flags = dirty | (*flags & 2) | (dirty << 1);
            floor.accesses += 1;
            region_accesses += 1;
            floor.spm_bytes_touched += bytes as u64;
        }
    }
    end_region(
        footprint,
        region_accesses,
        touched,
        tile_flags,
        last_seen,
        first_fetch,
        footprints,
        region_floor,
        region_traffic,
        region_stats,
        &mut floor,
    );
    footprints.reverse();
    region_floor.reverse();
    region_traffic.reverse();
    region_stats.reverse();
    for (bytes, bursts) in region_floor.iter() {
        floor.mem_bytes += bytes;
        floor.bursts += bursts;
    }

    let systolic = engine.systolic();
    let bytes_per_cycle = engine.bytes_per_cycle();
    let burst_latency = engine.burst_latency();

    // Exact compute totals (shared by every rung) and, when any rung is
    // bounded, the remaining-compute / region-floor-suffix abort oracles
    // — computed once, read per rung against its own cutoff.
    let mut remaining_compute = 0u64;
    {
        let mut memo: Option<(GemmShape, u64)> = None;
        for op in ops {
            match op {
                OpRec::Gemm { compute, .. } => {
                    remaining_compute += match memo {
                        Some((shape, cycles)) if shape == *compute => cycles,
                        _ => {
                            let cycles = systolic.tile_cycles(*compute);
                            memo = Some((*compute, cycles));
                            cycles
                        }
                    };
                    floor.gemm_ops += 1;
                    floor.macs += compute.macs();
                }
                OpRec::Stream(s) => {
                    let bytes = s.read_bytes + s.write_bytes;
                    if s.read_bytes > 0 {
                        floor.traffic.add_read(s.class, s.read_bytes);
                    }
                    if s.write_bytes > 0 {
                        floor.traffic.add_write(s.class, s.write_bytes);
                    }
                    if bytes > 0 {
                        floor.stream_time += bytes as f64 / bytes_per_cycle + burst_latency as f64;
                    }
                }
                OpRec::Barrier => {}
            }
        }
    }
    floor.compute_cycles = remaining_compute;
    region_mem_suffix.clear();
    region_mem_suffix.resize(region_floor.len(), 0.0);
    let mut floor_acc = 0.0f64;
    for i in (0..region_floor.len()).rev() {
        region_mem_suffix[i] = floor_acc;
        let (bytes, bursts) = region_floor[i];
        floor_acc += bytes as f64 / bytes_per_cycle + (bursts * burst_latency) as f64;
    }

    if caches.len() < capacities.len() {
        caches.resize_with(capacities.len(), ReplayOptCache::default);
    }
    let num_tiles = dense_class.len();
    let stream_len = stream.len();
    let mut rungs: Vec<RungState> = caches
        .iter_mut()
        .zip(capacities.iter().zip(cutoffs))
        .map(|(cache, (&capacity, &cutoff))| {
            let limit = cutoff.map(|c| (c + 1) as f64);
            // Pre-replay rejection, exactly as the solo bounded replay:
            // the whole-schedule floor already beats the cutoff.
            let alive = match limit {
                Some(l) => floor_acc < l && (remaining_compute as f64) < l,
                None => true,
            };
            RungState {
                cache,
                capacity,
                limit,
                alive,
                region_fits: footprints[0] <= capacity,
                cache_ready: false,
                extra_hits: 0,
                extra_misses: 0,
                mem_free: 0.0,
                compute_free: 0.0,
                mem_busy: 0.0,
                traffic: Traffic::new(),
            }
        })
        .collect();

    let mut last_shape: Option<(GemmShape, u64)> = None;
    let bounded = rungs.iter().any(|r| r.limit.is_some());
    let mut remaining = remaining_compute;

    let mut region = 0usize;
    let mut pos = 0usize;
    'walk: for op in ops {
        match op {
            OpRec::Gemm { accesses, compute } => {
                let end = pos + *accesses as usize;
                let cycles = match last_shape {
                    Some((shape, cycles)) if shape == *compute => cycles,
                    _ => {
                        let cycles = systolic.tile_cycles(*compute);
                        last_shape = Some((*compute, cycles));
                        cycles
                    }
                };
                if bounded {
                    remaining -= cycles;
                }
                // The no-eviction outcome of this op — computed from the
                // pre-resolved first-fetch marks at most once, then shared
                // by every rung the region fits.
                let mut fits_agg: Option<(u64, u64)> = None;
                for rung in rungs.iter_mut() {
                    if !rung.alive {
                        continue;
                    }
                    let (fetched, writeback, bursts) = if rung.region_fits {
                        let (fetch, bursts) = *fits_agg.get_or_insert_with(|| {
                            let mut fetch = 0u64;
                            let mut bursts = 0u64;
                            for (a, &ff) in stream[pos..end].iter().zip(&first_fetch[pos..end]) {
                                if ff != 0 {
                                    fetch += (a.bytes_dirty & BYTES_MASK) as u64;
                                    bursts += 1;
                                }
                            }
                            (fetch, bursts)
                        });
                        (fetch, 0u64, bursts)
                    } else {
                        if !rung.cache_ready {
                            rung.cache.reset(rung.capacity, num_tiles, stream_len);
                            rung.cache_ready = true;
                        }
                        let mut fetched = 0u64;
                        let mut writeback = 0u64;
                        let mut bursts = 0u64;
                        for (a, &nu) in stream[pos..end].iter().zip(&next_use[pos..end]) {
                            let bytes = a.bytes_dirty & BYTES_MASK;
                            let dirty = a.bytes_dirty & DIRTY_BIT != 0;
                            let got = rung
                                .cache
                                .access(a.id, a.rank, bytes, dirty, nu, writebacks);
                            if got > 0 {
                                rung.traffic.add_read(dense_class[a.id as usize], got);
                                fetched += got;
                                bursts += 1;
                            }
                            if !writebacks.is_empty() {
                                for (vid, vbytes) in writebacks.drain(..) {
                                    rung.traffic.add_write(dense_class[vid as usize], vbytes);
                                    writeback += vbytes;
                                }
                            }
                        }
                        (fetched, writeback, bursts)
                    };
                    let move_bytes = fetched + writeback;
                    if move_bytes > 0 {
                        let mem_time = move_bytes as f64 / bytes_per_cycle
                            + (bursts.max(1) * burst_latency) as f64;
                        rung.mem_free += mem_time;
                        rung.mem_busy += mem_time;
                    }
                    let data_ready = if move_bytes > 0 { rung.mem_free } else { 0.0 };
                    let issue = rung.compute_free.max(data_ready);
                    rung.compute_free = issue + cycles as f64;
                    if let Some(limit) = rung.limit {
                        if rung.mem_free + region_mem_suffix[region] >= limit
                            || rung.compute_free + remaining as f64 >= limit
                        {
                            rung.alive = false;
                        }
                    }
                }
                pos = end;
                if rungs.iter().all(|r| !r.alive) {
                    break 'walk;
                }
            }
            OpRec::Stream(s) => {
                let bytes = s.read_bytes + s.write_bytes;
                for rung in rungs.iter_mut() {
                    if !rung.alive {
                        continue;
                    }
                    if s.read_bytes > 0 {
                        rung.traffic.add_read(s.class, s.read_bytes);
                    }
                    if s.write_bytes > 0 {
                        rung.traffic.add_write(s.class, s.write_bytes);
                    }
                    if bytes > 0 {
                        let mem_time = bytes as f64 / bytes_per_cycle + burst_latency as f64;
                        rung.mem_free += mem_time;
                        rung.mem_busy += mem_time;
                    }
                }
            }
            OpRec::Barrier => {
                for rung in rungs.iter_mut() {
                    if !rung.alive {
                        continue;
                    }
                    if rung.region_fits {
                        // The whole region ran on the shared no-eviction
                        // aggregates: settle its exact traffic, hit/miss
                        // counts and flush write-back in one step.
                        let (accesses, misses, write_bytes) = region_stats[region];
                        rung.traffic.merge(&region_traffic[region]);
                        rung.extra_hits += accesses - misses;
                        rung.extra_misses += misses;
                        if write_bytes > 0 {
                            let mem_time =
                                write_bytes as f64 / bytes_per_cycle + burst_latency as f64;
                            rung.mem_free += mem_time;
                            rung.mem_busy += mem_time;
                        }
                    } else {
                        rung.cache.flush(writebacks);
                        if !writebacks.is_empty() {
                            let mut bytes = 0u64;
                            for (vid, vbytes) in writebacks.drain(..) {
                                rung.traffic.add_write(dense_class[vid as usize], vbytes);
                                bytes += vbytes;
                            }
                            let mem_time = bytes as f64 / bytes_per_cycle + burst_latency as f64;
                            rung.mem_free += mem_time;
                            rung.mem_busy += mem_time;
                        }
                        rung.cache.clear();
                    }
                    rung.mem_free = rung.mem_free.max(rung.compute_free);
                }
                region += 1;
                let fits_floor = footprints[region];
                for rung in rungs.iter_mut() {
                    rung.region_fits = fits_floor <= rung.capacity;
                }
                pos += 1; // consume the barrier sentinel
            }
        }
    }

    let reports = rungs
        .into_iter()
        .map(|mut rung| {
            if !rung.alive {
                return None;
            }
            // Settle the final region (no barrier follows it): aggregates
            // for a fits region, a flush of remaining dirty accumulators
            // on the eviction path.
            if rung.region_fits {
                let (accesses, misses, write_bytes) = region_stats[region];
                rung.traffic.merge(&region_traffic[region]);
                rung.extra_hits += accesses - misses;
                rung.extra_misses += misses;
                if write_bytes > 0 {
                    let mem_time = write_bytes as f64 / bytes_per_cycle + burst_latency as f64;
                    rung.mem_free += mem_time;
                    rung.mem_busy += mem_time;
                }
            } else {
                rung.cache.flush(writebacks);
                if !writebacks.is_empty() {
                    let mut bytes = 0u64;
                    for (vid, vbytes) in writebacks.drain(..) {
                        rung.traffic.add_write(dense_class[vid as usize], vbytes);
                        bytes += vbytes;
                    }
                    let mem_time = bytes as f64 / bytes_per_cycle + burst_latency as f64;
                    rung.mem_free += mem_time;
                    rung.mem_busy += mem_time;
                }
            }
            let (cache_hits, cache_misses) = if rung.cache_ready {
                (rung.cache.hits(), rung.cache.misses())
            } else {
                (0, 0)
            };
            Some(AnalyticReport {
                report: SimReport {
                    cycles: rung.mem_free.max(rung.compute_free).ceil() as u64,
                    compute_cycles: floor.compute_cycles,
                    mem_cycles: rung.mem_busy.ceil() as u64,
                    traffic: rung.traffic,
                    spm_hits: cache_hits + rung.extra_hits,
                    spm_misses: cache_misses + rung.extra_misses,
                    gemm_ops: floor.gemm_ops,
                    macs: floor.macs,
                    spm_bytes_touched: floor.spm_bytes_touched,
                },
                exactness: Exactness::Exact,
            })
        })
        .collect();
    (reports, floor)
}

/// The per-schedule artifact of one ladder pass: exact reports at the
/// profiled capacity rungs plus a capacity-independent compulsory floor
/// that answers every other capacity as an admissible lower bound.
#[derive(Debug, Clone)]
pub struct CapacityProfile {
    rungs: Vec<(u64, AnalyticReport)>,
    floor: AnalyticReport,
}

impl CapacityProfile {
    /// Profile `collector`'s schedule at `capacities` (ascending SPM
    /// residency bytes) in one pass. Every rung is evaluated exactly; see
    /// [`replay_ladder`] for the machine-parameter contract.
    pub fn compute(
        collector: &AnalyticCollector,
        engine: &Engine,
        capacities: &[u64],
        scratch: &mut LadderScratch,
    ) -> Self {
        let cutoffs = vec![None; capacities.len()];
        let (reports, floor) = ladder_pass(collector, engine, capacities, &cutoffs, scratch);
        let rungs = capacities
            .iter()
            .zip(reports)
            .map(|(&c, r)| (c, r.expect("unbounded ladder replay always completes")))
            .collect();
        Self {
            rungs,
            floor: floor.finish(engine),
        }
    }

    /// The profiled `(residency_bytes, exact report)` points, ascending.
    pub fn rungs(&self) -> &[(u64, AnalyticReport)] {
        &self.rungs
    }

    /// The capacity-independent compulsory floor ([`Exactness::LowerBound`]).
    pub fn floor(&self) -> &AnalyticReport {
        &self.floor
    }

    /// Answer one capacity in O(log rungs): [`Exactness::Exact`] when
    /// `capacity` is a profiled rung, otherwise the admissible
    /// capacity-independent floor tagged [`Exactness::LowerBound`].
    pub fn query(&self, capacity: u64) -> AnalyticReport {
        match self.rungs.binary_search_by_key(&capacity, |&(c, _)| c) {
            Ok(i) => self.rungs[i].1,
            Err(_) => self.floor,
        }
    }

    /// The cumulative traffic curve: per rung, `(residency_bytes,
    /// fetched_bytes, written_back_bytes, total_traffic_bytes, cycles)`.
    pub fn curve(&self) -> impl Iterator<Item = (u64, u64, u64, u64, u64)> + '_ {
        self.rungs.iter().map(|&(c, r)| {
            (
                c,
                r.report.traffic.read_total(),
                r.report.traffic.write_total(),
                r.report.traffic.total(),
                r.report.cycles,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::AnalyticScratch;
    use crate::config::PeArray;
    use crate::trace::{Schedule, ScheduleSink, TileOpSpec};
    use crate::SystolicModel;
    use igo_tensor::{GemmShape, MatrixDims, TensorClass, TileCoord, TileGrid, TileShape};

    fn engine(residency: u64) -> Engine {
        Engine::with_params(
            SystolicModel::new(PeArray::new(16, 16)),
            16.0,
            10,
            residency,
        )
    }

    /// A stream with reuse, accumulators, and a mid-stream barrier —
    /// enough structure to exercise hits, evictions, bypass, spills,
    /// write-backs and the flush paths at small capacities.
    fn collect_demo(c: &mut AnalyticCollector) -> Schedule {
        let mut s = Schedule::new("ladder-demo");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let dx = s.add_tensor(TensorClass::InGrad, "dX");
        let w = s.add_tensor(TensorClass::Weight, "W");
        let grid = TileGrid::new(MatrixDims::new(96, 96), TileShape::square(16));
        c.register_tensor(dy, TensorClass::OutGrad, &grid);
        c.register_tensor(dx, TensorClass::InGrad, &grid);
        c.register_tensor(w, TensorClass::Weight, &grid);
        let shape = GemmShape::new(16, 16, 16);
        let mut n = 0u32;
        for i in 0..6u32 {
            for j in 0..6u32 {
                let op = TileOpSpec::new(shape)
                    .read(dy, TileCoord::new(i, j), 1024)
                    .read(w, TileCoord::new(j, (i + j) % 6), 1024)
                    .accumulate(dx, TileCoord::new(j, i), 1024);
                if n == 20 {
                    ScheduleSink::barrier(&mut s);
                    c.barrier();
                }
                ScheduleSink::gemm(&mut s, &op);
                c.gemm(&op);
                n += 1;
            }
        }
        s
    }

    #[test]
    fn ladder_matches_solo_replay_at_every_rung() {
        let mut c = AnalyticCollector::new();
        let _ = collect_demo(&mut c);
        // From "almost nothing stays resident" to "everything fits".
        let capacities: Vec<u64> = vec![2048, 3 * 1024, 7 * 1024, 40 * 1024, 1 << 20];
        let cutoffs = vec![None; capacities.len()];
        let base = engine(1 << 20);
        let ladder = replay_ladder(&c, &base, &capacities, &cutoffs, &mut LadderScratch::new());
        let mut scratch = AnalyticScratch::new();
        for (&cap, got) in capacities.iter().zip(&ladder) {
            let solo = c.replay(&engine(cap), &mut scratch);
            let got = got.expect("unbounded rung completes");
            assert_eq!(got.report, solo.report, "capacity {cap} diverged");
            assert_eq!(got.exactness, Exactness::Exact);
        }
    }

    #[test]
    fn ladder_matches_engine_at_every_rung() {
        let mut c = AnalyticCollector::new();
        let s = collect_demo(&mut c);
        let capacities: Vec<u64> = vec![2048, 7 * 1024, 1 << 20];
        let cutoffs = vec![None; capacities.len()];
        let ladder = replay_ladder(
            &c,
            &engine(1 << 20),
            &capacities,
            &cutoffs,
            &mut LadderScratch::new(),
        );
        for (&cap, got) in capacities.iter().zip(&ladder) {
            let expected = engine(cap).run(&s);
            assert_eq!(got.unwrap().report, expected, "capacity {cap} vs engine");
        }
    }

    #[test]
    fn cutoffs_reject_only_provably_worse_rungs() {
        let mut c = AnalyticCollector::new();
        let _ = collect_demo(&mut c);
        let capacities: Vec<u64> = vec![2048, 7 * 1024, 1 << 20];
        let base = engine(1 << 20);
        let none = vec![None; capacities.len()];
        let exact = replay_ladder(&c, &base, &capacities, &none, &mut LadderScratch::new());
        let true_cycles: Vec<u64> = exact.iter().map(|r| r.unwrap().report.cycles).collect();
        // Any cutoff vector must behave exactly like one solo bounded
        // replay per rung: same accept/reject decision, same report.
        let mut scratch = AnalyticScratch::new();
        let cutoff_vectors: Vec<Vec<Option<u64>>> = vec![
            true_cycles.iter().map(|&cy| Some(cy)).collect(),
            true_cycles.iter().map(|&cy| Some(cy / 2)).collect(),
            true_cycles.iter().map(|&cy| Some(cy * 2)).collect(),
            vec![Some(1), None, Some(true_cycles[2])],
            vec![Some(0), Some(0), Some(0)],
        ];
        for cutoffs in &cutoff_vectors {
            let ladder = replay_ladder(&c, &base, &capacities, cutoffs, &mut LadderScratch::new());
            for ((&cap, &cutoff), got) in capacities.iter().zip(cutoffs).zip(&ladder) {
                let solo = c.replay_bounded(&engine(cap), &mut scratch, cutoff);
                match (got, solo) {
                    (Some(g), Some(s)) => {
                        assert_eq!(g.report, s.report, "capacity {cap} cutoff {cutoff:?}")
                    }
                    (None, None) => {}
                    (g, s) => panic!(
                        "capacity {cap} cutoff {cutoff:?}: ladder {:?} vs solo {:?}",
                        g.is_some(),
                        s.is_some()
                    ),
                }
            }
        }
        // Tight cutoffs reject rungs outright.
        let dead = replay_ladder(
            &c,
            &base,
            &capacities,
            &[Some(0), Some(0), Some(0)],
            &mut LadderScratch::new(),
        );
        assert!(dead.iter().all(|r| r.is_none()));
    }

    #[test]
    fn profile_is_exact_on_rungs_and_admissible_off_rung() {
        let mut c = AnalyticCollector::new();
        let _ = collect_demo(&mut c);
        let capacities: Vec<u64> = vec![2048, 7 * 1024, 40 * 1024];
        let base = engine(1 << 20);
        let profile = CapacityProfile::compute(&c, &base, &capacities, &mut LadderScratch::new());
        let mut scratch = AnalyticScratch::new();
        for &cap in &capacities {
            let q = profile.query(cap);
            assert_eq!(q.exactness, Exactness::Exact);
            assert_eq!(q.report, c.replay(&engine(cap), &mut scratch).report);
        }
        // Off-rung queries fall back to the capacity-independent floor,
        // which must be admissible against an exact replay at any capacity.
        for off in [1024u64, 5 * 1024, 9 * 1024, 1 << 21] {
            let q = profile.query(off);
            assert_eq!(q.exactness, Exactness::LowerBound);
            let exact = c.replay(&engine(off), &mut scratch).report;
            assert!(q.report.cycles <= exact.cycles, "cycles floor at {off}");
            assert!(q.report.mem_cycles <= exact.mem_cycles);
            assert!(q.report.traffic.total() <= exact.traffic.total());
            assert!(q.report.spm_misses <= exact.spm_misses);
            assert!(q.report.spm_hits >= exact.spm_hits);
            assert_eq!(q.report.compute_cycles, exact.compute_cycles);
            assert_eq!(q.report.gemm_ops, exact.gemm_ops);
            assert_eq!(q.report.macs, exact.macs);
            assert_eq!(q.report.spm_bytes_touched, exact.spm_bytes_touched);
        }
    }

    #[test]
    fn one_ladder_pass_counts_as_one_analytic_run() {
        let mut c = AnalyticCollector::new();
        let _ = collect_demo(&mut c);
        let before = crate::analytic_run_count();
        let _ = replay_ladder(
            &c,
            &engine(1 << 20),
            &[2048, 7 * 1024, 1 << 20],
            &[None, None, None],
            &mut LadderScratch::new(),
        );
        assert_eq!(crate::analytic_run_count(), before + 1);
    }

    #[test]
    fn profile_curve_is_monotone_in_capacity() {
        let mut c = AnalyticCollector::new();
        let _ = collect_demo(&mut c);
        let profile = CapacityProfile::compute(
            &c,
            &engine(1 << 20),
            &[2048, 3 * 1024, 7 * 1024, 40 * 1024, 1 << 20],
            &mut LadderScratch::new(),
        );
        let curve: Vec<_> = profile.curve().collect();
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(
                w[1].3 <= w[0].3,
                "total traffic must not grow with capacity: {curve:?}"
            );
        }
    }
}
