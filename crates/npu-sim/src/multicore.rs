//! Multi-core execution and sequential partition chaining.
//!
//! §6.3 of the paper evaluates 1–8 core NPUs in which "DRAM bandwidth, SPM
//! size, and batch size increase proportionally with the growth in the
//! number of cores, with all cores sharing the SPM". We model that as:
//!
//! * each core runs its own [`Engine`] over its partition's schedule, with
//!   an even slice of the shared SPM and an even share of the aggregate
//!   DRAM bandwidth;
//! * the step time is the slowest core's makespan plus, for partitioning
//!   schemes that need it, a cross-partition **reduction** of the partial
//!   gradient tensors at aggregate bandwidth (weight-sharing partitioning
//!   accumulates `dW` partials; dY-sharing accumulates `dX`; ifmap-sharing
//!   needs none — §5).
//!
//! [`run_sequential_partitions`] is the single-core analogue: the
//! partition schedules (compatible forks of one parent) are concatenated
//! and executed as one stream, so SPM residency — including the shared
//! tensor's tiles — carries across partition boundaries, plus the same
//! reduction traffic.

use crate::analytic::{AnalyticCollector, AnalyticScratch};
use crate::config::NpuConfig;
use crate::engine::{Engine, EngineScratch};
use crate::stats::{SimReport, Traffic};
use crate::trace::{Schedule, StreamOp};

/// Result of a multi-core step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiCoreReport {
    /// Per-core reports (one combined report for the sequential case).
    pub core_reports: Vec<SimReport>,
    /// Cycles spent in the cross-partition reduction (0 when none needed).
    pub reduction_cycles: u64,
    /// Step makespan: slowest core plus reduction.
    pub cycles: u64,
    /// Aggregate DRAM traffic of all cores plus the reduction.
    pub traffic: Traffic,
}

impl MultiCoreReport {
    /// Total MACs across cores.
    pub fn macs(&self) -> u64 {
        self.core_reports.iter().map(|r| r.macs).sum()
    }

    /// The step collapsed into one [`SimReport`]: the step makespan and
    /// aggregate traffic, with the per-core counters summed.
    pub fn combined(&self) -> SimReport {
        let mut out = SimReport {
            cycles: self.cycles,
            traffic: self.traffic,
            ..Default::default()
        };
        for r in &self.core_reports {
            out.compute_cycles += r.compute_cycles;
            out.mem_cycles += r.mem_cycles;
            out.spm_hits += r.spm_hits;
            out.spm_misses += r.spm_misses;
            out.gemm_ops += r.gemm_ops;
            out.macs += r.macs;
            out.spm_bytes_touched += r.spm_bytes_touched;
        }
        out
    }
}

/// Cycles the cross-partition reduction alone would take on `config` (no
/// traffic accounting) — the exact term [`run_multicore`] adds to the
/// slowest core. Used by analytical candidate lower bounds.
pub fn reduction_cycles(config: &NpuConfig, reduction: Option<StreamOp>) -> u64 {
    let mut scratch = Traffic::new();
    reduction_cost(config, reduction, &mut scratch)
}

fn reduction_cost(config: &NpuConfig, reduction: Option<StreamOp>, traffic: &mut Traffic) -> u64 {
    match reduction {
        None => 0,
        Some(op) => {
            let bytes = op.read_bytes + op.write_bytes;
            if bytes == 0 {
                return 0;
            }
            if op.read_bytes > 0 {
                traffic.add_read(op.class, op.read_bytes);
            }
            if op.write_bytes > 0 {
                traffic.add_write(op.class, op.write_bytes);
            }
            (bytes as f64 / config.dram_bytes_per_cycle_total()
                + config.dram.burst_latency_cycles as f64)
                .ceil() as u64
        }
    }
}

/// Collapse one inner (concatenated-segments) report plus the reduction
/// into a combined [`SimReport`] — exactly what
/// [`run_sequential_partitions`]'s `.combined()` yields, without
/// re-running the segments. Used by the capacity-ladder pipeline, which
/// replays the inner stream once per SPM rung and pays the
/// (capacity-independent) reduction afterwards.
pub fn sequential_combined(
    config: &NpuConfig,
    inner: SimReport,
    reduction: Option<StreamOp>,
) -> SimReport {
    let mut traffic = inner.traffic;
    let reduction_cycles = reduction_cost(config, reduction, &mut traffic);
    SimReport {
        cycles: inner.cycles + reduction_cycles,
        traffic,
        ..inner
    }
}

/// Run one schedule per core concurrently.
///
/// `per_core.len()` may be smaller than `config.cores` (idle cores), but
/// not larger.
///
/// # Panics
///
/// Panics if more schedules than cores are supplied.
pub fn run_multicore(
    config: &NpuConfig,
    per_core: &[Schedule],
    reduction: Option<StreamOp>,
) -> MultiCoreReport {
    run_multicore_with_scratch(config, per_core, reduction, &mut EngineScratch::new())
}

/// [`run_multicore`] reusing `scratch`'s buffers across the per-core engine
/// runs (the cores are simulated one after another, so one scratch serves
/// them all).
///
/// # Panics
///
/// Panics if more schedules than cores are supplied.
pub fn run_multicore_with_scratch(
    config: &NpuConfig,
    per_core: &[Schedule],
    reduction: Option<StreamOp>,
    scratch: &mut EngineScratch,
) -> MultiCoreReport {
    assert!(
        per_core.len() <= config.cores as usize,
        "{} schedules for {} cores",
        per_core.len(),
        config.cores
    );
    let engine = Engine::new(config);
    let core_reports: Vec<SimReport> = per_core
        .iter()
        .map(|s| engine.run_with_scratch(s, scratch))
        .collect();
    let mut traffic = Traffic::new();
    for r in &core_reports {
        traffic.merge(&r.traffic);
    }
    let slowest = core_reports.iter().map(|r| r.cycles).max().unwrap_or(0);
    let reduction_cycles = reduction_cost(config, reduction, &mut traffic);
    MultiCoreReport {
        core_reports,
        reduction_cycles,
        cycles: slowest + reduction_cycles,
        traffic,
    }
}

/// Run partition segments back-to-back on a single core (one concatenated
/// stream, so residency crosses segment boundaries), then pay the
/// reduction.
///
/// # Panics
///
/// Panics if the segments' tensor tables differ (they must be compatible
/// forks of one parent — see [`Schedule::append_compatible`]).
pub fn run_sequential_partitions(
    config: &NpuConfig,
    segments: &[Schedule],
    reduction: Option<StreamOp>,
) -> MultiCoreReport {
    run_sequential_partitions_with_scratch(config, segments, reduction, &mut EngineScratch::new())
}

/// [`run_sequential_partitions`] reusing `scratch`'s buffers.
///
/// # Panics
///
/// Panics if the segments' tensor tables differ (they must be compatible
/// forks of one parent — see [`Schedule::append_compatible`]).
pub fn run_sequential_partitions_with_scratch(
    config: &NpuConfig,
    segments: &[Schedule],
    reduction: Option<StreamOp>,
    scratch: &mut EngineScratch,
) -> MultiCoreReport {
    let engine = Engine::new(config);
    let report = match segments {
        [] => SimReport::default(),
        [single] => engine.run_with_scratch(single, scratch),
        [first, rest @ ..] => {
            let mut combined = first.clone();
            for s in rest {
                combined.append_compatible(s);
            }
            engine.run_with_scratch(&combined, scratch)
        }
    };
    let mut traffic = report.traffic;
    let reduction_cycles = reduction_cost(config, reduction, &mut traffic);
    MultiCoreReport {
        core_reports: vec![report],
        reduction_cycles,
        cycles: report.cycles + reduction_cycles,
        traffic,
    }
}

/// [`run_multicore`] over analytic collectors instead of materialised
/// schedules: each core's stream is replayed exactly, then the combine
/// math (aggregate traffic, slowest core, reduction) is applied verbatim,
/// so the result is bit-identical to running the equivalent schedules.
///
/// # Panics
///
/// Panics if more collectors than cores are supplied.
pub fn replay_multicore(
    config: &NpuConfig,
    per_core: &[AnalyticCollector],
    reduction: Option<StreamOp>,
    scratch: &mut AnalyticScratch,
) -> MultiCoreReport {
    replay_multicore_bounded(config, per_core, reduction, scratch, None)
        .expect("unbounded replay always completes")
}

/// [`replay_multicore`] with an optional cycle `cutoff`: returns `None` as
/// soon as any core's replay proves the combined cycle count (slowest core
/// plus reduction) must exceed `cutoff` — any single core exceeding the
/// post-reduction budget is enough, since the makespan takes the maximum.
pub fn replay_multicore_bounded(
    config: &NpuConfig,
    per_core: &[AnalyticCollector],
    reduction: Option<StreamOp>,
    scratch: &mut AnalyticScratch,
    cutoff: Option<u64>,
) -> Option<MultiCoreReport> {
    assert!(
        per_core.len() <= config.cores as usize,
        "{} collectors for {} cores",
        per_core.len(),
        config.cores
    );
    let inner_cutoff = match cutoff {
        // A budget smaller than the reduction alone is unmeetable.
        Some(c) => Some(c.checked_sub(reduction_cycles(config, reduction))?),
        None => None,
    };
    let engine = Engine::new(config);
    let mut core_reports: Vec<SimReport> = Vec::with_capacity(per_core.len());
    for c in per_core {
        core_reports.push(c.replay_bounded(&engine, scratch, inner_cutoff)?.report);
    }
    let mut traffic = Traffic::new();
    for r in &core_reports {
        traffic.merge(&r.traffic);
    }
    let slowest = core_reports.iter().map(|r| r.cycles).max().unwrap_or(0);
    let reduction_cycles = reduction_cost(config, reduction, &mut traffic);
    Some(MultiCoreReport {
        core_reports,
        reduction_cycles,
        cycles: slowest + reduction_cycles,
        traffic,
    })
}

/// [`run_sequential_partitions`] over one analytic collector holding the
/// partitions' streams emitted back-to-back (the collector-side equivalent
/// of [`Schedule::append_compatible`] concatenation — no barrier between
/// segments, so residency crosses partition boundaries exactly as in the
/// engine path).
pub fn replay_sequential_partitions(
    config: &NpuConfig,
    combined: &AnalyticCollector,
    reduction: Option<StreamOp>,
    scratch: &mut AnalyticScratch,
) -> MultiCoreReport {
    replay_sequential_partitions_bounded(config, combined, reduction, scratch, None)
        .expect("unbounded replay always completes")
}

/// [`replay_sequential_partitions`] with an optional cycle `cutoff`; see
/// [`replay_multicore_bounded`].
pub fn replay_sequential_partitions_bounded(
    config: &NpuConfig,
    combined: &AnalyticCollector,
    reduction: Option<StreamOp>,
    scratch: &mut AnalyticScratch,
    cutoff: Option<u64>,
) -> Option<MultiCoreReport> {
    let inner_cutoff = match cutoff {
        Some(c) => Some(c.checked_sub(reduction_cycles(config, reduction))?),
        None => None,
    };
    let engine = Engine::new(config);
    let report = combined
        .replay_bounded(&engine, scratch, inner_cutoff)?
        .report;
    let mut traffic = report.traffic;
    let reduction_cycles = reduction_cost(config, reduction, &mut traffic);
    Some(MultiCoreReport {
        core_reports: vec![report],
        reduction_cycles,
        cycles: report.cycles + reduction_cycles,
        traffic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TileOp;
    use igo_tensor::{GemmShape, TensorClass, TileCoord};

    fn schedule(tiles: u32) -> Schedule {
        let mut s = Schedule::new("part");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..tiles {
            s.push_gemm(TileOp::new(GemmShape::new(128, 128, 128)).read(
                dy,
                TileCoord::new(0, j),
                128 * 128 * 4,
            ));
        }
        s
    }

    #[test]
    fn multicore_takes_slowest_core() {
        let config = NpuConfig::large_server(2);
        let fast = schedule(2);
        let slow = schedule(20);
        let r = run_multicore(&config, &[fast, slow], None);
        assert_eq!(r.core_reports.len(), 2);
        assert_eq!(
            r.cycles,
            r.core_reports.iter().map(|c| c.cycles).max().unwrap()
        );
        assert!(r.core_reports[0].cycles < r.core_reports[1].cycles);
    }

    #[test]
    fn reduction_adds_cycles_and_traffic() {
        let config = NpuConfig::large_server(2);
        let parts = [schedule(4), schedule(4)];
        let without = run_multicore(&config, &parts, None);
        let with = run_multicore(
            &config,
            &parts,
            Some(StreamOp {
                class: TensorClass::WGrad,
                read_bytes: 1 << 20,
                write_bytes: 1 << 20,
            }),
        );
        assert!(with.cycles > without.cycles);
        assert_eq!(with.traffic.read(TensorClass::WGrad), 1 << 20);
        assert!(with.reduction_cycles > 0);
    }

    #[test]
    fn idle_cores_allowed() {
        let config = NpuConfig::large_server(4);
        let r = run_multicore(&config, &[schedule(4)], None);
        assert_eq!(r.core_reports.len(), 1);
        assert!(r.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "schedules for")]
    fn too_many_schedules_panics() {
        let config = NpuConfig::large_single_core();
        let _ = run_multicore(&config, &[schedule(1), schedule(1)], None);
    }

    #[test]
    fn sequential_partitions_accumulate_time() {
        let config = NpuConfig::large_single_core();
        let parts = [schedule(400), schedule(400)];
        let seq = run_sequential_partitions(&config, &parts, None);
        let single = run_sequential_partitions(&config, &parts[..1], None);
        assert!(seq.cycles > single.cycles);
    }

    #[test]
    fn sequential_partitions_share_residency() {
        // Two identical small segments (same tensor table, same tile
        // keys): the second pass re-hits the first pass's tiles, so total
        // traffic equals a single segment's.
        let config = NpuConfig::large_single_core();
        let parts = [schedule(4), schedule(4)];
        let seq = run_sequential_partitions(&config, &parts, None);
        let single = run_sequential_partitions(&config, &parts[..1], None);
        assert_eq!(
            seq.traffic.read_total(),
            single.traffic.read_total(),
            "second segment must hit in SPM"
        );
    }

    #[test]
    fn empty_reduction_is_free() {
        let config = NpuConfig::large_single_core();
        let r = run_sequential_partitions(
            &config,
            &[schedule(1)],
            Some(StreamOp {
                class: TensorClass::InGrad,
                read_bytes: 0,
                write_bytes: 0,
            }),
        );
        assert_eq!(r.reduction_cycles, 0);
    }

    #[test]
    fn combined_sums_per_core_counters() {
        let config = NpuConfig::large_server(2);
        let parts = [schedule(4), schedule(6)];
        let reduction = Some(StreamOp {
            class: TensorClass::WGrad,
            read_bytes: 1 << 16,
            write_bytes: 1 << 16,
        });
        let mc = run_multicore(&config, &parts, reduction);
        let c = mc.combined();
        assert_eq!(c.cycles, mc.cycles);
        assert_eq!(c.traffic, mc.traffic);
        assert_eq!(c.macs, mc.macs());
        assert_eq!(
            c.gemm_ops,
            mc.core_reports.iter().map(|r| r.gemm_ops).sum::<u64>()
        );
        assert_eq!(reduction_cycles(&config, reduction), mc.reduction_cycles);
        assert_eq!(reduction_cycles(&config, None), 0);
    }

    #[test]
    fn empty_segments_are_free() {
        let config = NpuConfig::large_single_core();
        let r = run_sequential_partitions(&config, &[], None);
        assert_eq!(r.cycles, 0);
    }
}
