//! Closed-form / fast-replay analytical model of the cycle engine.
//!
//! Design-space sweeps dominate simulator usage (SCALE-Sim ships an
//! analytical estimation mode next to its cycle-accurate one for exactly
//! this reason), and most of the cycle engine's per-layer cost is
//! *mechanical*: materialising a [`crate::Schedule`] (one heap-allocated
//! [`crate::TileOp`] per tile GEMM), interning every tile access through a
//! hash map, and only then walking the timelines. This module removes that
//! overhead in two tiers, each tagged with an explicit [`Exactness`]:
//!
//! * **[`Exactness::Exact`] — allocation-free replay.** An
//!   [`AnalyticCollector`] implements [`ScheduleSink`], so the schedule
//!   builders emit the *identical* op stream into a flat structure-of-arrays
//!   buffer with tile ids computed arithmetically from grid coordinates
//!   (`base + r·cols + c`) instead of interned through a hash map.
//!   [`AnalyticCollector::replay`] then advances the same two timelines as
//!   [`crate::Engine::run`], in the same floating-point operation order,
//!   over a Belady replacement model ([`ReplayOptCache`]) whose eviction
//!   decisions are provably identical to [`crate::opt::DenseOptCache`]'s
//!   (same `(next_use, TileKey)` victim ordering, same bypass rule, same
//!   write-back accounting) but implemented with a position-indexed victim
//!   bitset instead of a `BTreeSet`. The resulting [`SimReport`] is
//!   bit-identical to the engine's — fuzz-asserted in `core::audit`.
//!
//! * **[`Exactness::LowerBound`] — closed form, no emission at all.** For
//!   candidate pruning, [`BoundAccum`] assembles an admissible lower bound
//!   directly from grid extents: exact compute cycles / MAC / op counts
//!   (the tile-cycle sum is separable over the three grid axes, see
//!   [`compute_sum`]), compulsory per-class DRAM traffic (each distinct
//!   tile whose first touch in a barrier-delimited region is a clean read
//!   must be fetched; every accumulator is written back at least once), a
//!   per-burst latency floor, and optional *capacity window* terms (for any
//!   contiguous access window, bytes touched beyond the SPM capacity must
//!   be transferred — the partial-result spill floor of the fused orders).
//!   Every field is provably on the optimistic side of the engine's report;
//!   the audit asserts admissibility case by case.
//!
//! The per-order composition of these pieces (which tensors live in which
//! region, fused-sweep window geometry, partitioned-candidate merging)
//! lives in `igo-core`'s `bound` module, next to the schedule builders it
//! mirrors.

use crate::engine::{Engine, Replacement};
use crate::stats::{SimReport, Traffic};
use crate::trace::{ScheduleSink, StreamOp, TensorId, TileOpSpec};
use igo_tensor::{DataType, GemmShape, TensorClass, TileCoord, TileGrid};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How an analytic result relates to the cycle engine's report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// Bit-identical to [`Engine::run`] on the same op stream.
    Exact,
    /// Admissible: cycles, traffic and miss count never exceed the
    /// engine's; hit count never falls below it; compute cycles, op and
    /// MAC counts are exact.
    LowerBound,
}

/// An analytic evaluation: the estimated report plus its exactness tag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticReport {
    /// The estimated (or exact) simulation report.
    pub report: SimReport,
    /// How `report` relates to the engine's.
    pub exactness: Exactness,
}

/// Process-wide count of analytic replays, the fast-path twin of
/// [`crate::engine_run_count`]: a replay is a full evaluation of a layer
/// schedule that did *not* consume an engine run.
static ANALYTIC_RUNS: AtomicU64 = AtomicU64::new(0);

/// Total [`AnalyticCollector::replay`] invocations so far in this process.
pub fn analytic_run_count() -> u64 {
    ANALYTIC_RUNS.load(Ordering::Relaxed)
}

/// Count one analytic run. The ladder profiler ([`crate::stackdist`])
/// evaluates a whole capacity ladder per pass and charges it as a single
/// run — that collapse is exactly what the counter is meant to expose.
pub(crate) fn bump_analytic_runs() {
    ANALYTIC_RUNS.fetch_add(1, Ordering::Relaxed);
}

/// Sentinel dense id marking a kernel boundary in the collected stream
/// (mirrors the engine's flattened-stream sentinel).
pub(crate) const BARRIER_ID: u32 = u32::MAX;

/// Flag bit of [`AccessRec::bytes_dirty`] marking an accumulator touch.
pub(crate) const DIRTY_BIT: u32 = 1 << 31;

/// Byte-count mask of [`AccessRec::bytes_dirty`].
pub(crate) const BYTES_MASK: u32 = DIRTY_BIT - 1;

/// "Not used again" sentinel of the next-use oracle.
pub(crate) const NO_USE: u32 = u32::MAX;

/// One recorded tile access, packed to 16 bytes so replay streams a
/// cache line per four accesses.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AccessRec {
    /// Victim-ordering rank: `(tensor_raw << 32) | (r·cols + c)`. Because
    /// [`crate::trace::TileKey`]'s derived order is lexicographic
    /// `(tensor, r, c)` and `c < cols` within a tensor, this packing is
    /// order-isomorphic to the key — so heap tie-breaks on `rank` match
    /// the engine's tie-breaks on `TileKey` exactly.
    pub(crate) rank: u64,
    /// Dense tile id (`base + r·cols + c`), or [`BARRIER_ID`].
    pub(crate) id: u32,
    /// Access bytes (`< 2^31`, asserted at emission) with [`DIRTY_BIT`]
    /// flagging accumulator touches.
    pub(crate) bytes_dirty: u32,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum OpRec {
    /// A tile GEMM with `accesses` consecutive entries in the access stream.
    Gemm { accesses: u32, compute: GemmShape },
    /// Pure data movement.
    Stream(StreamOp),
    /// Kernel boundary (owns one sentinel entry in the access stream).
    Barrier,
}

/// Per-tensor entry of the dense tile-id registry.
#[derive(Debug, Clone, Copy)]
struct TensorEntry {
    base: u32,
    cols: u32,
}

/// A [`ScheduleSink`] that records the op stream into flat buffers for
/// [`AnalyticCollector::replay`], with no per-op heap allocation.
///
/// Tensors must be registered (with their tile-grid extents) before any of
/// their tiles are emitted; the schedule builders know every grid they
/// touch, so registration is a handful of calls per layer.
#[derive(Debug, Default)]
pub struct AnalyticCollector {
    tensors: Vec<Option<TensorEntry>>,
    /// Dense id → traffic class (for write-back attribution).
    dense_class: Vec<TensorClass>,
    stream: Vec<AccessRec>,
    ops: Vec<OpRec>,
}

impl AnalyticCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all recorded state but keep the allocations (hot-loop reuse).
    pub fn clear(&mut self) {
        self.tensors.clear();
        self.dense_class.clear();
        self.stream.clear();
        self.ops.clear();
    }

    /// Number of recorded schedule ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The packed access stream, for the ladder profiler's shared pass.
    pub(crate) fn stream(&self) -> &[AccessRec] {
        &self.stream
    }

    /// The recorded op stream.
    pub(crate) fn ops(&self) -> &[OpRec] {
        &self.ops
    }

    /// Dense tile id → traffic class.
    pub(crate) fn dense_class(&self) -> &[TensorClass] {
        &self.dense_class
    }

    /// Register `tensor` with the extents of `grid` so its tiles map to
    /// dense ids. Re-registering the same tensor is a checked no-op;
    /// registering tensors that are never touched is harmless.
    pub fn register_tensor(&mut self, tensor: TensorId, class: TensorClass, grid: &TileGrid) {
        let raw = tensor.raw() as usize;
        if self.tensors.len() <= raw {
            self.tensors.resize(raw + 1, None);
        }
        if let Some(entry) = &self.tensors[raw] {
            debug_assert_eq!(entry.cols, grid.cols(), "re-registration must agree");
            return;
        }
        let tiles = grid.num_tiles();
        let base = self.dense_class.len() as u64;
        assert!(
            base + tiles < BARRIER_ID as u64,
            "tile registry overflows the dense id space"
        );
        self.tensors[raw] = Some(TensorEntry {
            base: base as u32,
            cols: grid.cols(),
        });
        self.dense_class
            .extend(std::iter::repeat_n(class, tiles as usize));
    }

    fn push_access(&mut self, tensor: TensorId, coord: TileCoord, bytes: u64, dirty: bool) {
        let entry = self.tensors[tensor.raw() as usize]
            .as_ref()
            .expect("tensor touched before registration");
        let offset = coord.r * entry.cols + coord.c;
        assert!(bytes < DIRTY_BIT as u64, "tile access exceeds 2 GiB");
        self.stream.push(AccessRec {
            rank: ((tensor.raw() as u64) << 32) | offset as u64,
            id: entry.base + offset,
            bytes_dirty: bytes as u32 | if dirty { DIRTY_BIT } else { 0 },
        });
    }
}

impl ScheduleSink for AnalyticCollector {
    fn gemm(&mut self, op: &TileOpSpec) {
        let mut accesses = 0u32;
        for r in op.reads.iter().flatten() {
            self.push_access(r.tensor, r.coord, r.bytes, false);
            accesses += 1;
        }
        if let Some(a) = &op.acc {
            self.push_access(a.tensor, a.coord, a.bytes, true);
            accesses += 1;
        }
        self.ops.push(OpRec::Gemm {
            accesses,
            compute: op.compute,
        });
    }

    fn stream(&mut self, op: StreamOp) {
        self.ops.push(OpRec::Stream(op));
    }

    fn barrier(&mut self) {
        self.stream.push(AccessRec {
            rank: 0,
            id: BARRIER_ID,
            bytes_dirty: 0,
        });
        self.ops.push(OpRec::Barrier);
    }
}

/// Per-tile replacement state, packed to 12 bytes: the slot array is the
/// replay loop's only randomly-indexed memory, so its footprint bounds the
/// loop's cache behaviour.
#[derive(Debug, Clone, Copy, Default)]
struct ReplaySlot {
    bytes: u32,
    next_use: u32,
    dirty: bool,
    resident: bool,
    spilled: bool,
}

/// Belady replacement with eviction decisions identical to
/// [`crate::opt::DenseOptCache`] but backed by a position-indexed victim
/// bitset instead of an ordered set.
///
/// The `BTreeSet` variant pays two ordered-set operations per *hit*
/// (remove the old `(next_use, key)` entry, insert the new one). The key
/// observation here is that a next-use value is a *stream position*, and
/// any position is the next use of at most one tile — so "resident tile
/// with the farthest finite next use" is simply the highest set bit of a
/// bitset indexed by position, and a hit is two O(1) bit flips. Residents
/// with *no* further use in their region ([`NO_USE`]) outrank every finite
/// position and are tie-broken by tile key, exactly matching the ordered
/// set's `(next_use, key)` maximum — they sit in a small max-heap keyed by
/// the packed rank. Victim selection — including the bypass rule — is
/// therefore bit-identical to `DenseOptCache`'s.
#[derive(Debug, Default)]
pub struct ReplayOptCache {
    capacity: u64,
    used: u64,
    slots: Vec<ReplaySlot>,
    /// Bit `p` set iff some resident tile's current next-use is stream
    /// position `p`.
    live_bits: Vec<u64>,
    /// Stream position → resident tile id; valid only where the
    /// corresponding `live_bits` bit is set.
    by_next_use: Vec<u32>,
    /// Residents with no further use in their region, max packed rank
    /// first — they outrank every finite-next-use resident as victims.
    dead: BinaryHeap<(u64, u32)>,
    /// Upper bound on the highest set bit of `live_bits`.
    max_hint: u32,
    hits: u64,
    misses: u64,
}

impl ReplayOptCache {
    /// Prepare for a run over `num_tiles` dense ids with `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: u64, num_tiles: usize, stream_len: usize) {
        assert!(capacity > 0, "SPM residency capacity must be positive");
        self.capacity = capacity;
        self.used = 0;
        self.slots.clear();
        self.slots.resize(num_tiles, ReplaySlot::default());
        self.live_bits.clear();
        self.live_bits.resize(stream_len.div_ceil(64), 0);
        // Stale contents are fine — entries are read only under a set bit.
        self.by_next_use.resize(stream_len, 0);
        self.dead.clear();
        self.max_hint = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Register `pos` as the next use of resident tile `id`.
    #[inline]
    fn set_live(&mut self, pos: u32, id: u32) {
        self.live_bits[(pos >> 6) as usize] |= 1u64 << (pos & 63);
        self.by_next_use[pos as usize] = id;
        if pos > self.max_hint {
            self.max_hint = pos;
        }
    }

    /// Drop the registration of position `pos`.
    #[inline]
    fn clear_live(&mut self, pos: u32) {
        self.live_bits[(pos >> 6) as usize] &= !(1u64 << (pos & 63));
    }

    /// The eviction victim — the resident maximising `(next_use, key)` —
    /// as `(next_use, id)`, without removing it. The caller must ensure a
    /// resident exists (`used > 0`).
    fn peek_victim(&mut self) -> (u32, u32) {
        if let Some(&(_, id)) = self.dead.peek() {
            return (NO_USE, id);
        }
        let mut w = (self.max_hint >> 6) as usize;
        loop {
            let word = self.live_bits[w];
            if word != 0 {
                let pos = ((w as u32) << 6) | (63 - word.leading_zeros());
                self.max_hint = pos;
                return (pos, self.by_next_use[pos as usize]);
            }
            debug_assert!(w > 0, "used > 0 implies a resident victim");
            w -= 1;
        }
    }

    fn evict(&mut self, victim_next: u32, id: u32, writebacks: &mut Vec<(u32, u64)>) {
        if victim_next == NO_USE {
            self.dead.pop();
        } else {
            self.clear_live(victim_next);
        }
        let victim = &mut self.slots[id as usize];
        debug_assert!(victim.resident, "victim index/slot state out of sync");
        debug_assert_eq!(victim.next_use, victim_next, "stale victim registration");
        victim.resident = false;
        self.used -= victim.bytes as u64;
        if victim.dirty {
            writebacks.push((id, victim.bytes as u64));
            victim.spilled = true;
        }
    }

    /// Access tile `id`; semantics identical to `DenseOptCache::access`.
    /// `rank` is the packed `TileKey` order (see `AccessRec::rank`).
    pub fn access(
        &mut self,
        id: u32,
        rank: u64,
        bytes: u32,
        dirty: bool,
        next_use: u32,
        writebacks: &mut Vec<(u32, u64)>,
    ) -> u64 {
        let slot = &mut self.slots[id as usize];
        if slot.resident {
            // A tile's bytes are constant across accesses (the schedule
            // emits one size per tile), so a hit leaves `used` unchanged and
            // the capacity invariant (`used <= capacity` after every access)
            // cannot break here — no eviction check is needed. This access
            // *is* the tile's registered next use (the oracle pointed
            // here), so the old registration is retired and the new
            // next-use position registered: two O(1) bit flips.
            debug_assert_eq!(slot.bytes, bytes, "a tile's access bytes are constant");
            let old = slot.next_use;
            debug_assert_ne!(old, NO_USE, "a dead resident cannot be accessed again");
            slot.next_use = next_use;
            slot.dirty |= dirty;
            self.hits += 1;
            self.clear_live(old);
            if next_use == NO_USE {
                self.dead.push((rank, id));
            } else {
                self.set_live(next_use, id);
            }
            return 0;
        }

        self.misses += 1;
        let fetched = if dirty && !slot.spilled {
            0
        } else {
            bytes as u64
        };

        let mut admitted = bytes as u64 <= self.capacity;
        while admitted && self.used + bytes as u64 > self.capacity {
            let (victim_next, victim_id) = self.peek_victim();
            if victim_next <= next_use {
                admitted = false;
                break;
            }
            self.evict(victim_next, victim_id, writebacks);
        }

        let slot = &mut self.slots[id as usize];
        if admitted {
            slot.resident = true;
            slot.bytes = bytes;
            slot.dirty = dirty;
            slot.next_use = next_use;
            self.used += bytes as u64;
            if next_use == NO_USE {
                self.dead.push((rank, id));
            } else {
                self.set_live(next_use, id);
            }
        } else if dirty {
            writebacks.push((id, bytes as u64));
            slot.spilled = true;
        }
        fetched
    }

    /// [`Self::access`] specialised to a barrier region whose distinct-tile
    /// footprint fits in `capacity`: no eviction can ever fire (residency
    /// grows monotonically and tops out at the footprint), so the next-use
    /// oracle, the victim index, and all capacity checks are dead weight —
    /// a first touch admits unconditionally and every later touch is a
    /// hit. The victim index is left untouched; the barrier `clear` that
    /// ends the region resets it before any bounded-path access can
    /// observe it.
    pub(crate) fn access_unbounded(&mut self, id: u32, bytes: u32, dirty: bool) -> u64 {
        let slot = &mut self.slots[id as usize];
        if slot.resident {
            slot.dirty |= dirty;
            self.hits += 1;
            0
        } else {
            self.misses += 1;
            let fetched = if dirty && !slot.spilled {
                0
            } else {
                bytes as u64
            };
            slot.resident = true;
            slot.bytes = bytes;
            slot.dirty = dirty;
            fetched
        }
    }

    /// Drop all residency and forget spill history (kernel boundary).
    ///
    /// The victim bitset needs no reset: the next-use oracle never chains
    /// across a barrier, so every resident's final pre-barrier access
    /// already retired its registration (and moved it to `dead`).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = ReplaySlot {
                next_use: slot.next_use,
                ..ReplaySlot::default()
            };
        }
        debug_assert!(
            self.live_bits.iter().all(|&w| w == 0),
            "no next-use registration survives a barrier"
        );
        self.dead.clear();
        self.max_hint = 0;
        self.used = 0;
    }

    /// Flush all dirty residents into `writebacks` (they stay resident but
    /// become clean). Write-back *order* differs from `DenseOptCache`
    /// (dense-id order instead of eviction order) — irrelevant to the
    /// report, whose flush accounting is a commutative sum.
    pub fn flush(&mut self, writebacks: &mut Vec<(u32, u64)>) {
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if slot.resident && slot.dirty {
                writebacks.push((id as u32, slot.bytes as u64));
                slot.dirty = false;
                slot.spilled = true;
            }
        }
    }
}

/// Reusable replay working memory (next-use oracle, write-back buffer,
/// replacement state) — the analytic twin of [`crate::EngineScratch`].
#[derive(Debug, Default)]
pub struct AnalyticScratch {
    next_use: Vec<u32>,
    last_seen: Vec<u32>,
    writebacks: Vec<(u32, u64)>,
    /// Per barrier region: does the region's distinct-tile footprint fit
    /// in SPM (enabling the no-eviction access path)?
    region_fits: Vec<bool>,
    /// Tiles sighted in the current region during the back-scan, with their
    /// bytes — drives the per-region floor and the `last_seen` reset.
    touched: Vec<(u32, u32)>,
    /// Per tile, current-region dirtiness: bit 0 = the earliest access seen
    /// so far is dirty, bit 1 = any access is dirty.
    tile_flags: Vec<u8>,
    /// Per barrier region: admissible DRAM floor as (bytes, bursts) —
    /// compulsory clean-first-touch fetches plus one write-back per
    /// ever-dirty tile.
    region_floor: Vec<(u64, u64)>,
    /// `region_mem_suffix[i]` = summed floor mem-time of regions after `i`.
    region_mem_suffix: Vec<f64>,
    opt: ReplayOptCache,
}

impl AnalyticScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnalyticCollector {
    /// Replay the collected op stream against `engine`'s machine model and
    /// return the report, tagged [`Exactness::Exact`]: the timelines are
    /// advanced by the same floating-point operations in the same order as
    /// [`Engine::run`], and the replacement model makes identical
    /// decisions, so the report is bit-identical to running the engine on
    /// the materialised [`crate::Schedule`].
    ///
    /// # Panics
    ///
    /// Panics if `engine` is configured with LRU replacement — the replay
    /// models the compiler-managed (Belady) SPM only; callers must fall
    /// back to [`Engine::run`] for the LRU ablation.
    pub fn replay(&self, engine: &Engine, scratch: &mut AnalyticScratch) -> AnalyticReport {
        self.replay_bounded(engine, scratch, None)
            .expect("unbounded replay always completes")
    }

    /// [`Self::replay`] with an optional cycle `cutoff`: returns `None` as
    /// soon as the replayed stream provably exceeds `cutoff` cycles, which
    /// lets candidate selection abandon dominated candidates mid-replay.
    ///
    /// The abort test is conservative in both directions of the timeline
    /// race: `mem_free` only grows, and the compute timeline must still
    /// serialise every remaining tile GEMM (their exact cycle total is
    /// pre-summed), so `max(mem_free, compute_free + remaining)` never
    /// exceeds the final cycle count. A one-cycle guard band absorbs the
    /// float rounding of the `compute_free + remaining` sum, so `None` is
    /// returned only when the true cycles strictly exceed `cutoff` —
    /// a completed replay is bit-identical to [`Self::replay`]'s.
    pub fn replay_bounded(
        &self,
        engine: &Engine,
        scratch: &mut AnalyticScratch,
        cutoff: Option<u64>,
    ) -> Option<AnalyticReport> {
        assert_eq!(
            engine.replacement(),
            Replacement::Opt,
            "analytic replay models OPT replacement only"
        );
        assert!(
            self.stream.len() < NO_USE as usize,
            "access stream overflows the u32 position space"
        );
        ANALYTIC_RUNS.fetch_add(1, Ordering::Relaxed);
        let AnalyticScratch {
            next_use,
            last_seen,
            writebacks,
            region_fits,
            touched,
            tile_flags,
            region_floor,
            region_mem_suffix,
            opt,
        } = scratch;
        writebacks.clear();
        let capacity = engine.residency_bytes();

        // Next-use oracle over the collected stream: identical back-scan to
        // the engine's (barrier sentinels cut reuse), over dense ids that
        // were computed arithmetically instead of interned. The same scan
        // sums each region's distinct-tile footprint (a tile's bytes are
        // counted at its last use in the region) to decide per region
        // whether the no-eviction access path applies, and an admissible
        // per-region DRAM floor: every clean first touch must fetch its
        // bytes (residency is dropped at each barrier), and every
        // ever-dirty tile must be written back at least once (by eviction,
        // admission bypass, or the barrier flush).
        next_use.clear();
        next_use.resize(self.stream.len(), NO_USE);
        last_seen.clear();
        last_seen.resize(self.dense_class.len(), NO_USE);
        tile_flags.clear();
        tile_flags.resize(self.dense_class.len(), 0);
        touched.clear();
        region_fits.clear();
        region_floor.clear();
        let mut footprint = 0u64;
        let end_region = |footprint: u64,
                          touched: &mut Vec<(u32, u32)>,
                          tile_flags: &mut [u8],
                          last_seen: &mut [u32],
                          region_fits: &mut Vec<bool>,
                          region_floor: &mut Vec<(u64, u64)>| {
            region_fits.push(footprint <= capacity);
            let mut floor_bytes = 0u64;
            let mut floor_bursts = 0u64;
            for &(id, bytes) in touched.iter() {
                let flags = tile_flags[id as usize];
                if flags & 1 == 0 {
                    floor_bytes += bytes as u64;
                    floor_bursts += 1;
                }
                if flags & 2 != 0 {
                    floor_bytes += bytes as u64;
                }
                tile_flags[id as usize] = 0;
                last_seen[id as usize] = NO_USE;
            }
            touched.clear();
            region_floor.push((floor_bytes, floor_bursts));
        };
        for pos in (0..self.stream.len()).rev() {
            let rec = &self.stream[pos];
            if rec.id == BARRIER_ID {
                end_region(
                    footprint,
                    touched,
                    tile_flags,
                    last_seen,
                    region_fits,
                    region_floor,
                );
                footprint = 0;
            } else {
                let bytes = rec.bytes_dirty & BYTES_MASK;
                let later = last_seen[rec.id as usize];
                if later != NO_USE {
                    next_use[pos] = later;
                } else {
                    footprint += bytes as u64;
                    touched.push((rec.id, bytes));
                }
                last_seen[rec.id as usize] = pos as u32;
                // Bit 0 tracks the earliest (forward-order) access's
                // dirtiness — overwritten at each step of the backward
                // scan, so the last write wins; bit 1 accumulates.
                let dirty = (rec.bytes_dirty >> 31) as u8;
                let flags = &mut tile_flags[rec.id as usize];
                *flags = dirty | (*flags & 2) | (dirty << 1);
            }
        }
        end_region(
            footprint,
            touched,
            tile_flags,
            last_seen,
            region_fits,
            region_floor,
        );
        region_fits.reverse();
        region_floor.reverse();

        let systolic = engine.systolic();
        let bytes_per_cycle = engine.bytes_per_cycle();
        let burst_latency = engine.burst_latency();

        // Exact cycles the compute timeline still owes — the admissible
        // floor behind the early abort — and the per-region DRAM floor
        // suffix sums (both only needed when bounded).
        let cutoff_plus = cutoff.map(|c| (c + 1) as f64);
        let mut remaining_compute = 0u64;
        region_mem_suffix.clear();
        if let Some(limit) = cutoff_plus {
            let mut memo: Option<(GemmShape, u64)> = None;
            for op in &self.ops {
                if let OpRec::Gemm { compute, .. } = op {
                    remaining_compute += match memo {
                        Some((shape, cycles)) if shape == *compute => cycles,
                        _ => {
                            let cycles = systolic.tile_cycles(*compute);
                            memo = Some((*compute, cycles));
                            cycles
                        }
                    };
                }
            }
            // region_mem_suffix[i] = floor mem-time of regions strictly
            // after i; the running total over all regions is a pre-replay
            // floor that can reject the candidate before any cache work.
            region_mem_suffix.resize(region_floor.len(), 0.0);
            let mut acc = 0.0f64;
            for i in (0..region_floor.len()).rev() {
                region_mem_suffix[i] = acc;
                let (bytes, bursts) = region_floor[i];
                acc += bytes as f64 / bytes_per_cycle + (bursts * burst_latency) as f64;
            }
            if acc >= limit || remaining_compute as f64 >= limit {
                return None;
            }
        }

        opt.reset(capacity, self.dense_class.len(), self.stream.len());

        let mut traffic = Traffic::new();
        let mut mem_free: f64 = 0.0;
        let mut compute_free: f64 = 0.0;
        let mut compute_cycles_total: u64 = 0;
        let mut mem_busy_total: f64 = 0.0;
        let mut gemm_ops: u64 = 0;
        let mut macs: u64 = 0;
        let mut spm_bytes_touched: u64 = 0;
        // Consecutive ops overwhelmingly share a tile shape: memoize the
        // last systolic evaluation.
        let mut last_shape: Option<(GemmShape, u64)> = None;

        let mut region = 0usize;
        let mut fits = region_fits[0];
        let mut pos = 0usize;
        for op in &self.ops {
            match op {
                OpRec::Gemm { accesses, compute } => {
                    let mut fetched = 0u64;
                    let mut writeback = 0u64;
                    let mut bursts = 0u64;
                    let end = pos + *accesses as usize;
                    for (a, &nu) in self.stream[pos..end].iter().zip(&next_use[pos..end]) {
                        let bytes = a.bytes_dirty & BYTES_MASK;
                        let dirty = a.bytes_dirty & DIRTY_BIT != 0;
                        spm_bytes_touched += bytes as u64;
                        let got = if fits {
                            opt.access_unbounded(a.id, bytes, dirty)
                        } else {
                            opt.access(a.id, a.rank, bytes, dirty, nu, writebacks)
                        };
                        if got > 0 {
                            traffic.add_read(self.dense_class[a.id as usize], got);
                            fetched += got;
                            bursts += 1;
                        }
                        if !writebacks.is_empty() {
                            for (vid, vbytes) in writebacks.drain(..) {
                                traffic.add_write(self.dense_class[vid as usize], vbytes);
                                writeback += vbytes;
                            }
                        }
                    }
                    pos = end;

                    let move_bytes = fetched + writeback;
                    if move_bytes > 0 {
                        let mem_time = move_bytes as f64 / bytes_per_cycle
                            + (bursts.max(1) * burst_latency) as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }

                    let cycles = match last_shape {
                        Some((shape, cycles)) if shape == *compute => cycles,
                        _ => {
                            let cycles = systolic.tile_cycles(*compute);
                            last_shape = Some((*compute, cycles));
                            cycles
                        }
                    };
                    let data_ready = if move_bytes > 0 { mem_free } else { 0.0 };
                    let issue = compute_free.max(data_ready);
                    compute_free = issue + cycles as f64;
                    compute_cycles_total += cycles;
                    gemm_ops += 1;
                    macs += compute.macs();
                    if let Some(limit) = cutoff_plus {
                        remaining_compute -= cycles;
                        if mem_free + region_mem_suffix[region] >= limit
                            || compute_free + remaining_compute as f64 >= limit
                        {
                            return None;
                        }
                    }
                }
                OpRec::Stream(s) => {
                    if s.read_bytes > 0 {
                        traffic.add_read(s.class, s.read_bytes);
                    }
                    if s.write_bytes > 0 {
                        traffic.add_write(s.class, s.write_bytes);
                    }
                    let bytes = s.read_bytes + s.write_bytes;
                    if bytes > 0 {
                        let mem_time = bytes as f64 / bytes_per_cycle + burst_latency as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }
                }
                OpRec::Barrier => {
                    opt.flush(writebacks);
                    if !writebacks.is_empty() {
                        let mut bytes = 0u64;
                        for (vid, vbytes) in writebacks.drain(..) {
                            traffic.add_write(self.dense_class[vid as usize], vbytes);
                            bytes += vbytes;
                        }
                        let mem_time = bytes as f64 / bytes_per_cycle + burst_latency as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }
                    opt.clear();
                    mem_free = mem_free.max(compute_free);
                    region += 1;
                    fits = region_fits[region];
                    pos += 1; // consume the barrier sentinel
                }
            }
        }

        // Final flush of remaining dirty accumulators.
        opt.flush(writebacks);
        if !writebacks.is_empty() {
            let mut bytes = 0u64;
            for (vid, vbytes) in writebacks.drain(..) {
                traffic.add_write(self.dense_class[vid as usize], vbytes);
                bytes += vbytes;
            }
            let mem_time = bytes as f64 / bytes_per_cycle + burst_latency as f64;
            mem_free += mem_time;
            mem_busy_total += mem_time;
        }

        Some(AnalyticReport {
            report: SimReport {
                cycles: mem_free.max(compute_free).ceil() as u64,
                compute_cycles: compute_cycles_total,
                mem_cycles: mem_busy_total.ceil() as u64,
                traffic,
                spm_hits: opt.hits(),
                spm_misses: opt.misses(),
                gemm_ops,
                macs,
                spm_bytes_touched,
            },
            exactness: Exactness::Exact,
        })
    }
}

/// Closed-form byte/tile totals of one tensor's tile grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSum {
    /// Distinct tiles in the grid.
    pub tiles: u64,
    /// Total bytes across all tiles (after any density scaling).
    pub bytes: u64,
}

/// Closed-form [`GridSum`] of `grid` at `dtype`: the four corner cases
/// (full/edge row × full/edge column) cover every tile, so the sum is four
/// multiplications regardless of grid size. `density` applies the raw-layout
/// scaling `max(ceil(bytes · d), 4)` per tile, matching the builders.
pub fn grid_sum(grid: &TileGrid, dtype: DataType, density: Option<f64>) -> GridSum {
    let (rows, cols) = (grid.rows(), grid.cols());
    let scale = |raw: u64| -> u64 {
        match density {
            Some(d) => ((raw as f64 * d).ceil() as u64).max(4),
            None => raw,
        }
    };
    let corner = |r: u32, c: u32| scale(grid.tile_bytes(TileCoord::new(r, c), dtype));
    let (fr, fc) = (rows as u64 - 1, cols as u64 - 1);
    let bytes = fr * fc * corner(0, 0)
        + fr * corner(0, cols - 1)
        + fc * corner(rows - 1, 0)
        + corner(rows - 1, cols - 1);
    GridSum {
        tiles: grid.num_tiles(),
        bytes,
    }
}

/// One grid axis for [`compute_sum`]: `count` tiles of extent `full`, the
/// last of extent `last` (equal to `full` when the axis divides evenly).
#[derive(Debug, Clone, Copy)]
pub struct Axis {
    /// Tile count along the axis (≥ 1).
    pub count: u64,
    /// Extent of every tile but the last.
    pub full: u64,
    /// Extent of the last tile.
    pub last: u64,
}

impl Axis {
    /// Sum `f` over all tiles of the axis.
    fn sum(&self, f: impl Fn(u64) -> u64) -> u64 {
        (self.count - 1) * f(self.full) + f(self.last)
    }
}

/// Exact total systolic cycles of the `count_m × count_k × count_n` tile
/// GEMM family whose per-op shape is `(m_i, k_j, n_l)`: the tile-cycle
/// formula `⌈k/R⌉·⌈n/C⌉·max(m,R)` is a product of per-axis factors, so the
/// triple sum factorises into three axis sums.
pub fn compute_sum(engine: &Engine, m: Axis, k: Axis, n: Axis) -> u64 {
    let pe = engine.systolic().pe();
    let (rows, cols) = (pe.rows as u64, pe.cols as u64);
    m.sum(|v| v.max(rows)) * k.sum(|v| v.div_ceil(rows)) * n.sum(|v| v.div_ceil(cols))
}

/// Accumulates the closed-form lower-bound terms of one candidate
/// execution; [`BoundAccum::finish`] assembles the admissible
/// [`AnalyticReport`].
#[derive(Debug, Clone, Default)]
pub struct BoundAccum {
    /// Exact serial compute cycles.
    pub compute_cycles: u64,
    /// Compulsory per-class traffic (reads: clean first touches per
    /// region; writes: accumulator totals).
    pub traffic: Traffic,
    /// Memory-channel bytes floor (≥ compulsory; may include capacity
    /// window terms that cannot be attributed to a class).
    pub mem_bytes: u64,
    /// Guaranteed fetch bursts (distinct clean first touches per region)
    /// plus non-empty stream ops — each costs one burst latency.
    pub bursts: u64,
    /// Extra cycles serialised after the overlapped timelines (e.g.
    /// cross-partition reductions, added exactly as the pipeline does).
    pub serial_cycles: u64,
    /// Compulsory-miss floor (every distinct tile per region).
    pub misses: u64,
    /// Exact total tile accesses.
    pub accesses: u64,
    /// Exact tile-GEMM count.
    pub gemm_ops: u64,
    /// Exact MAC count.
    pub macs: u64,
    /// Exact SPM bytes touched (sum of all access bytes).
    pub spm_bytes_touched: u64,
}

impl BoundAccum {
    /// Merge another accumulator (independent schedule parts executed
    /// back-to-back on one core).
    pub fn merge(&mut self, other: &BoundAccum) {
        self.compute_cycles += other.compute_cycles;
        self.traffic.merge(&other.traffic);
        self.mem_bytes += other.mem_bytes;
        self.bursts += other.bursts;
        self.serial_cycles += other.serial_cycles;
        self.misses += other.misses;
        self.accesses += other.accesses;
        self.gemm_ops += other.gemm_ops;
        self.macs += other.macs;
        self.spm_bytes_touched += other.spm_bytes_touched;
    }

    /// The cycle lower bound alone (for candidate pruning).
    pub fn cycles(&self, engine: &Engine) -> u64 {
        let mem = (self.mem_bytes as f64 / engine.bytes_per_cycle()
            + (self.bursts * engine.burst_latency()) as f64)
            .ceil() as u64;
        self.compute_cycles.max(mem) + self.serial_cycles
    }

    /// Assemble the admissible report.
    pub fn finish(&self, engine: &Engine) -> AnalyticReport {
        let mem_cycles = (self.mem_bytes as f64 / engine.bytes_per_cycle()
            + (self.bursts * engine.burst_latency()) as f64)
            .ceil() as u64;
        AnalyticReport {
            report: SimReport {
                cycles: self.cycles(engine),
                compute_cycles: self.compute_cycles,
                mem_cycles,
                traffic: self.traffic,
                spm_hits: self.accesses - self.misses,
                spm_misses: self.misses,
                gemm_ops: self.gemm_ops,
                macs: self.macs,
                spm_bytes_touched: self.spm_bytes_touched,
            },
            exactness: Exactness::LowerBound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeArray;
    use crate::trace::Schedule;
    use crate::SystolicModel;

    fn engine() -> Engine {
        Engine::with_params(SystolicModel::new(PeArray::new(16, 16)), 16.0, 10, 4000)
    }

    /// Emit the same op stream into a Schedule and a collector; the replay
    /// must match the engine bit for bit.
    #[test]
    fn replay_matches_engine_on_handwritten_stream() {
        let mut s = Schedule::new("t");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let dx = s.add_tensor(TensorClass::InGrad, "dX");
        let mut c = AnalyticCollector::new();
        let grid = TileGrid::new(
            igo_tensor::MatrixDims::new(64, 64),
            igo_tensor::TileShape::square(16),
        );
        c.register_tensor(dy, TensorClass::OutGrad, &grid);
        c.register_tensor(dx, TensorClass::InGrad, &grid);

        let shape = GemmShape::new(16, 16, 16);
        let mut ops: Vec<TileOpSpec> = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                ops.push(
                    TileOpSpec::new(shape)
                        .read(dy, TileCoord::new(i, j), 1024)
                        .accumulate(dx, TileCoord::new(j, i), 1024),
                );
            }
        }
        // A barrier in the middle exercises flush/clear and the sentinel.
        for (n, op) in ops.iter().enumerate() {
            if n == 7 {
                ScheduleSink::barrier(&mut s);
                c.barrier();
            }
            ScheduleSink::gemm(&mut s, op);
            c.gemm(op);
        }

        let e = engine();
        let expected = e.run(&s);
        let got = c.replay(&e, &mut AnalyticScratch::new());
        assert_eq!(got.exactness, Exactness::Exact);
        assert_eq!(got.report, expected);
    }

    #[test]
    fn replay_counts_are_tracked() {
        let before = analytic_run_count();
        let c = AnalyticCollector::new();
        let _ = c.replay(&engine(), &mut AnalyticScratch::new());
        assert!(analytic_run_count() > before);
    }

    #[test]
    fn grid_sum_matches_exhaustive_iteration() {
        let grid = TileGrid::new(
            igo_tensor::MatrixDims::new(130, 65),
            igo_tensor::TileShape::square(16),
        );
        let dtype = DataType::F32;
        for density in [None, Some(0.37)] {
            let mut bytes = 0u64;
            for r in 0..grid.rows() {
                for c in 0..grid.cols() {
                    let raw = grid.tile_bytes(TileCoord::new(r, c), dtype);
                    bytes += match density {
                        Some(d) => ((raw as f64 * d).ceil() as u64).max(4),
                        None => raw,
                    };
                }
            }
            let s = grid_sum(&grid, dtype, density);
            assert_eq!(s.bytes, bytes);
            assert_eq!(s.tiles, grid.num_tiles());
        }
    }

    #[test]
    fn compute_sum_matches_per_op_totals() {
        let e = engine();
        // 3x2x2 tile family with ragged edges in every axis.
        let m = Axis {
            count: 3,
            full: 16,
            last: 5,
        };
        let k = Axis {
            count: 2,
            full: 16,
            last: 9,
        };
        let n = Axis {
            count: 2,
            full: 16,
            last: 1,
        };
        let mut expected = 0u64;
        for mi in [16u64, 16, 5] {
            for kj in [16u64, 9] {
                for nl in [16u64, 1] {
                    expected += e.systolic().tile_cycles(GemmShape::new(mi, kj, nl));
                }
            }
        }
        assert_eq!(compute_sum(&e, m, k, n), expected);
    }
}
