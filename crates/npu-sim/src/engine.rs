//! Double-buffered tile-stream execution engine.
//!
//! The engine walks a [`Schedule`] op by op, resolving each named tile
//! access against an SPM residency model to obtain the actual DRAM
//! traffic, and advances two timelines:
//!
//! * the **memory timeline** — the DRAM channel transfers each op's misses
//!   (and eviction write-backs) serially, in op order, running freely
//!   ahead of compute. This is the standard perfect-double-buffering
//!   assumption of SCALE-Sim-class simulators: the prefetch half of the
//!   SPM keeps the channel busy whenever there is future work.
//! * the **compute timeline** — the systolic array executes tile GEMMs
//!   serially; an op starts when its data has landed and the previous op
//!   has finished.
//!
//! The makespan is the later finish time of the two timelines.
//!
//! Because an NPU scratchpad is *compiler-managed* and the whole schedule
//! is known ahead of time, the default residency model is Belady's OPT
//! ([`crate::opt::OptCache`]) over the schedule's access stream. LRU
//! ([`crate::SpmCache`]) is available as an ablation via
//! [`Engine::with_replacement`].

use crate::config::NpuConfig;
use crate::opt::OptCache;
use crate::spm::{AccessOutcome, SpmCache};
use crate::stats::{SimReport, Traffic};
use crate::systolic::SystolicModel;
use crate::trace::{Schedule, ScheduleOp, TileKey};

/// SPM residency policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Belady's optimal replacement — the compiler-managed-SPM model
    /// (default).
    #[default]
    Opt,
    /// Least-recently-used — a hardware-cache-style ablation.
    Lru,
}

enum CacheImpl {
    Opt(OptCache),
    Lru(SpmCache),
}

impl CacheImpl {
    fn access(&mut self, key: TileKey, bytes: u64, dirty: bool, next_use: usize) -> AccessOutcome {
        match self {
            CacheImpl::Opt(c) => c.access(key, bytes, dirty, next_use),
            CacheImpl::Lru(c) => {
                if dirty {
                    c.accumulate(key, bytes)
                } else {
                    c.read(key, bytes)
                }
            }
        }
    }

    fn flush(&mut self) -> Vec<(TileKey, u64)> {
        match self {
            CacheImpl::Opt(c) => c.flush(),
            CacheImpl::Lru(c) => c.flush(),
        }
    }

    fn clear(&mut self) {
        match self {
            CacheImpl::Opt(c) => c.clear(),
            CacheImpl::Lru(c) => c.clear(),
        }
    }

    fn hits(&self) -> u64 {
        match self {
            CacheImpl::Opt(c) => c.hits(),
            CacheImpl::Lru(c) => c.hits(),
        }
    }

    fn misses(&self) -> u64 {
        match self {
            CacheImpl::Opt(c) => c.misses(),
            CacheImpl::Lru(c) => c.misses(),
        }
    }
}

/// Executes schedules on one NPU core.
#[derive(Debug, Clone)]
pub struct Engine {
    systolic: SystolicModel,
    bytes_per_cycle: f64,
    burst_latency: u64,
    residency_bytes: u64,
    replacement: Replacement,
}

impl Engine {
    /// Engine for one core of `config` (per-core SPM slice and bandwidth
    /// share), with OPT replacement.
    pub fn new(config: &NpuConfig) -> Self {
        Self {
            systolic: SystolicModel::new(config.pe),
            bytes_per_cycle: config.dram_bytes_per_cycle_per_core(),
            burst_latency: config.dram.burst_latency_cycles,
            residency_bytes: config.residency_bytes_per_core().max(1),
            replacement: Replacement::Opt,
        }
    }

    /// Engine with explicit parameters (used by sweeps and tests).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth or residency is non-positive.
    pub fn with_params(
        systolic: SystolicModel,
        bytes_per_cycle: f64,
        burst_latency: u64,
        residency_bytes: u64,
    ) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(residency_bytes > 0, "residency must be positive");
        Self {
            systolic,
            bytes_per_cycle,
            burst_latency,
            residency_bytes,
            replacement: Replacement::Opt,
        }
    }

    /// Switch the residency model (LRU is the hardware-cache ablation).
    #[must_use]
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// The compute model in use.
    pub fn systolic(&self) -> &SystolicModel {
        &self.systolic
    }

    /// SPM residency bytes this engine simulates.
    pub fn residency_bytes(&self) -> u64 {
        self.residency_bytes
    }

    /// Run `schedule` on a cold SPM and report.
    pub fn run(&self, schedule: &Schedule) -> SimReport {
        // Pre-pass: flatten the access stream and compute, for every
        // access, the position of the next access to the same tile (the
        // oracle knowledge a compiler has when allocating SPM). Barriers
        // appear as `None` sentinels: reuse never crosses a kernel
        // boundary.
        let mut stream: Vec<Option<(TileKey, u64, bool)>> = Vec::new();
        let mut op_access_start: Vec<usize> = Vec::with_capacity(schedule.len());
        for op in schedule.ops() {
            op_access_start.push(stream.len());
            match op {
                ScheduleOp::Gemm(g) => {
                    for r in &g.reads {
                        stream.push(Some((r.key, r.bytes, false)));
                    }
                    if let Some(a) = &g.acc {
                        stream.push(Some((a.key, a.bytes, true)));
                    }
                }
                ScheduleOp::Barrier => stream.push(None),
                ScheduleOp::Stream(_) => {}
            }
        }
        let mut next_use = vec![usize::MAX; stream.len()];
        {
            let mut last: std::collections::HashMap<TileKey, usize> =
                std::collections::HashMap::new();
            for (pos, access) in stream.iter().enumerate().rev() {
                match access {
                    Some((key, _, _)) => {
                        if let Some(&later) = last.get(key) {
                            next_use[pos] = later;
                        }
                        last.insert(*key, pos);
                    }
                    None => last.clear(),
                }
            }
        }

        let mut cache = match self.replacement {
            Replacement::Opt => CacheImpl::Opt(OptCache::new(self.residency_bytes)),
            Replacement::Lru => CacheImpl::Lru(SpmCache::new(self.residency_bytes)),
        };

        let mut traffic = Traffic::new();
        let mut mem_free: f64 = 0.0;
        let mut compute_free: f64 = 0.0;
        let mut compute_cycles_total: u64 = 0;
        let mut mem_busy_total: f64 = 0.0;
        let mut gemm_ops: u64 = 0;
        let mut macs: u64 = 0;
        let mut spm_bytes_touched: u64 = 0;

        let charge_writebacks = |traffic: &mut Traffic, victims: &[(TileKey, u64)]| -> u64 {
            let mut total = 0;
            for (victim, bytes) in victims {
                traffic.add_write(schedule.class_of(victim.tensor), *bytes);
                total += bytes;
            }
            total
        };

        for (op_idx, op) in schedule.ops().iter().enumerate() {
            match op {
                ScheduleOp::Gemm(g) => {
                    let start = op_access_start[op_idx];
                    let mut fetched = 0u64;
                    let mut writeback = 0u64;
                    let mut bursts = 0u64;
                    let n_accesses = g.reads.len() + usize::from(g.acc.is_some());
                    for pos in start..start + n_accesses {
                        let (key, bytes, dirty) =
                            stream[pos].expect("gemm access slots are never barriers");
                        spm_bytes_touched += bytes;
                        let out = cache.access(key, bytes, dirty, next_use[pos]);
                        if out.fetched_bytes > 0 {
                            traffic.add_read(schedule.class_of(key.tensor), out.fetched_bytes);
                            fetched += out.fetched_bytes;
                            bursts += 1;
                        }
                        writeback += charge_writebacks(&mut traffic, &out.writebacks);
                    }

                    // Memory timeline: free-running, serial in op order.
                    let move_bytes = fetched + writeback;
                    if move_bytes > 0 {
                        let mem_time = move_bytes as f64 / self.bytes_per_cycle
                            + (bursts.max(1) * self.burst_latency) as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }

                    // Compute timeline: wait for the array and, if this op
                    // needed transfers, for its data.
                    let cycles = self.systolic.tile_cycles(g.compute);
                    let data_ready = if move_bytes > 0 { mem_free } else { 0.0 };
                    compute_free = compute_free.max(data_ready) + cycles as f64;
                    compute_cycles_total += cycles;
                    gemm_ops += 1;
                    macs += g.macs();
                }
                ScheduleOp::Stream(s) => {
                    if s.read_bytes > 0 {
                        traffic.add_read(s.class, s.read_bytes);
                    }
                    if s.write_bytes > 0 {
                        traffic.add_write(s.class, s.write_bytes);
                    }
                    let bytes = s.read_bytes + s.write_bytes;
                    if bytes > 0 {
                        let mem_time =
                            bytes as f64 / self.bytes_per_cycle + self.burst_latency as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }
                }
                ScheduleOp::Barrier => {
                    // Kernel boundary: flush dirty results, drop residency.
                    // The next kernel cannot start its loads before the
                    // previous kernel's compute has finished.
                    let flushed = cache.flush();
                    if !flushed.is_empty() {
                        let bytes = charge_writebacks(&mut traffic, &flushed);
                        let mem_time =
                            bytes as f64 / self.bytes_per_cycle + self.burst_latency as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }
                    cache.clear();
                    mem_free = mem_free.max(compute_free);
                }
            }
        }

        // Flush remaining dirty results (final accumulator tiles) to DRAM.
        let flushed = cache.flush();
        if !flushed.is_empty() {
            let bytes = charge_writebacks(&mut traffic, &flushed);
            let mem_time = bytes as f64 / self.bytes_per_cycle + self.burst_latency as f64;
            mem_free += mem_time;
            mem_busy_total += mem_time;
        }

        SimReport {
            cycles: mem_free.max(compute_free).ceil() as u64,
            compute_cycles: compute_cycles_total,
            mem_cycles: mem_busy_total.ceil() as u64,
            traffic,
            spm_hits: cache.hits(),
            spm_misses: cache.misses(),
            gemm_ops,
            macs,
            spm_bytes_touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{StreamOp, TileOp};
    use igo_tensor::{GemmShape, TensorClass, TileCoord};

    fn tiny_engine(residency: u64) -> Engine {
        Engine::with_params(
            SystolicModel::new(crate::config::PeArray::new(16, 16)),
            16.0, // bytes per cycle
            10,   // burst latency
            residency,
        )
    }

    #[test]
    fn single_op_timing() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("one");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(dy, TileCoord::new(0, 0), 1600));
        let r = e.run(&s);
        // mem: 1600/16 + 10 = 110 cycles; compute: one 16-row fold.
        assert_eq!(r.mem_cycles, 110);
        assert_eq!(r.compute_cycles, 16);
        assert_eq!(r.cycles, 110 + 16);
        assert_eq!(r.traffic.read(TensorClass::OutGrad), 1600);
        assert_eq!(r.gemm_ops, 1);
    }

    #[test]
    fn repeated_reads_hit_spm() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("reuse");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for _ in 0..5 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, 0),
                1600,
            ));
        }
        let r = e.run(&s);
        assert_eq!(r.traffic.read_total(), 1600, "only the first read misses");
        assert_eq!(r.spm_hits, 4);
        assert_eq!(r.spm_misses, 1);
    }

    #[test]
    fn opt_retains_loop_working_set() {
        // Loop over 3 tiles with room for 2: OPT keeps hitting on part of
        // the working set instead of missing every access like LRU.
        let mut s = Schedule::new("loop");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for round in 0..10 {
            let j = round % 3;
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let opt = tiny_engine(3300).run(&s);
        let lru = tiny_engine(3300)
            .with_replacement(Replacement::Lru)
            .run(&s);
        assert!(opt.spm_hits > 0);
        assert_eq!(lru.spm_hits, 0, "LRU thrashes the cyclic pattern");
        assert!(opt.traffic.read_total() < lru.traffic.read_total());
    }

    #[test]
    fn accumulator_flush_charged_to_result_class() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("acc");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let dx = s.add_tensor(TensorClass::InGrad, "dX");
        for j in 0..4 {
            s.push_gemm(
                TileOp::new(GemmShape::new(16, 16, 16))
                    .read(dy, TileCoord::new(0, j), 1600)
                    .accumulate(dx, TileCoord::new(0, 0), 1600),
            );
        }
        let r = e.run(&s);
        assert_eq!(r.traffic.write(TensorClass::InGrad), 1600);
        assert_eq!(r.traffic.write_total(), 1600);
        assert_eq!(r.traffic.read(TensorClass::InGrad), 0);
    }

    #[test]
    fn memory_runs_ahead_of_compute() {
        // Two ops: with a free-running memory pipeline the second load
        // overlaps the first compute entirely.
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("dbuf");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..2 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let r = e.run(&s);
        // mem: 110 + 110 = 220; compute starts at 220 (data-bound), +16.
        assert_eq!(r.cycles, 220 + 16);
    }

    #[test]
    fn compute_bound_when_data_resident() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("cb");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for _ in 0..10 {
            s.push_gemm(TileOp::new(GemmShape::new(512, 16, 16)).read(
                dy,
                TileCoord::new(0, 0),
                1600,
            ));
        }
        let r = e.run(&s);
        // One 110-cycle load, then 10 x 512-cycle GEMMs back-to-back.
        assert_eq!(r.cycles, 110 + 10 * 512);
    }

    #[test]
    fn memory_bound_schedule_tracks_traffic() {
        let e = Engine::with_params(
            SystolicModel::new(crate::config::PeArray::new(16, 16)),
            1.0,
            0,
            1 << 20,
        );
        let mut s = Schedule::new("mb");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..10 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let r = e.run(&s);
        assert!(r.cycles >= 16_000, "must at least stream all bytes");
        assert!(r.memory_boundedness() > 0.95);
    }

    #[test]
    fn stream_ops_cost_bandwidth() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("stream");
        s.push_stream(StreamOp {
            class: TensorClass::WGrad,
            read_bytes: 800,
            write_bytes: 800,
        });
        let r = e.run(&s);
        assert_eq!(r.traffic.read(TensorClass::WGrad), 800);
        assert_eq!(r.traffic.write(TensorClass::WGrad), 800);
        assert_eq!(r.cycles, 1600 / 16 + 10);
    }

    #[test]
    fn empty_schedule_is_free() {
        let e = tiny_engine(1000);
        let r = e.run(&Schedule::new("empty"));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.traffic.total(), 0);
    }

    #[test]
    fn opt_pins_accumulator_and_streams_operands() {
        // Residency of one tile: the reused dirty dW accumulator is worth
        // keeping; the never-reused dY tiles are bypassed. The compiler-
        // managed SPM gets this right where LRU would thrash.
        let e = tiny_engine(1600);
        let mut s = Schedule::new("spill");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let dw = s.add_tensor(TensorClass::WGrad, "dW");
        for j in 0..2 {
            s.push_gemm(
                TileOp::new(GemmShape::new(16, 16, 16))
                    .read(dy, TileCoord::new(0, j), 1600)
                    .accumulate(dw, TileCoord::new(0, 0), 1600),
            );
        }
        let r = e.run(&s);
        // Both dY tiles are fetched; dW is written exactly once, at flush,
        // and never re-fetched.
        assert_eq!(r.traffic.read(TensorClass::OutGrad), 2 * 1600);
        assert_eq!(r.traffic.write(TensorClass::WGrad), 1600);
        assert_eq!(r.traffic.read(TensorClass::WGrad), 0);
    }

    #[test]
    fn lru_and_opt_agree_on_compulsory_misses() {
        // A scan with no reuse: both models fetch everything exactly once.
        let mut s = Schedule::new("scan");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..20 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let opt = tiny_engine(5000).run(&s);
        let lru = tiny_engine(5000).with_replacement(Replacement::Lru).run(&s);
        assert_eq!(opt.traffic.read_total(), 20 * 1600);
        assert_eq!(lru.traffic.read_total(), 20 * 1600);
    }
}
