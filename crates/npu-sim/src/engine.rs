//! Double-buffered tile-stream execution engine.
//!
//! The engine walks a [`Schedule`] op by op, resolving each named tile
//! access against an SPM residency model to obtain the actual DRAM
//! traffic, and advances two timelines:
//!
//! * the **memory timeline** — the DRAM channel transfers each op's misses
//!   (and eviction write-backs) serially, in op order, running freely
//!   ahead of compute. This is the standard perfect-double-buffering
//!   assumption of SCALE-Sim-class simulators: the prefetch half of the
//!   SPM keeps the channel busy whenever there is future work.
//! * the **compute timeline** — the systolic array executes tile GEMMs
//!   serially; an op starts when its data has landed and the previous op
//!   has finished.
//!
//! The makespan is the later finish time of the two timelines.
//!
//! Because an NPU scratchpad is *compiler-managed* and the whole schedule
//! is known ahead of time, the default residency model is Belady's OPT
//! ([`crate::opt::OptCache`]) over the schedule's access stream. LRU
//! ([`crate::SpmCache`]) is available as an ablation via
//! [`Engine::with_replacement`].

use crate::config::NpuConfig;
use crate::opt::DenseOptCache;
use crate::recorder::{AccessKind, NullRecorder, Phase, Recorder, TraceEvent};
use crate::spm::SpmCache;
use crate::stats::{SimReport, Traffic};
use crate::systolic::SystolicModel;
use crate::trace::{Schedule, ScheduleOp, TileKey};
use igo_tensor::TensorClass;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// SPM residency policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Belady's optimal replacement — the compiler-managed-SPM model
    /// (default).
    #[default]
    Opt,
    /// Least-recently-used — a hardware-cache-style ablation.
    Lru,
}

/// Process-wide count of `Engine` runs, for the `--timing` self-measurement
/// harness (how many full schedule simulations the sweep actually executed,
/// after memoization and pruning).
static ENGINE_RUNS: AtomicU64 = AtomicU64::new(0);

/// Total `Engine::run`/`run_with_scratch` invocations so far in this
/// process. Monotonic; sample before and after a workload to attribute runs.
pub fn engine_run_count() -> u64 {
    ENGINE_RUNS.load(Ordering::Relaxed)
}

/// Sentinel id marking a kernel boundary in the flattened access stream.
const BARRIER_ID: u32 = u32::MAX;

/// Reusable engine working memory: the flattened access stream, the interned
/// tile-id table, the next-use oracle and the residency model's slot
/// storage. One scratch serves any number of `run_with_scratch` calls;
/// buffers are cleared, not reallocated, between runs, which removes every
/// per-run heap allocation from the simulate-and-select hot loop.
#[derive(Default)]
pub struct EngineScratch {
    /// TileKey → dense id, built once per run.
    intern: HashMap<TileKey, u32>,
    /// Dense id → TileKey (for replacement-order tie-breaking).
    keys: Vec<TileKey>,
    /// Dense id → traffic class, memoized from the schedule's tensor table.
    classes: Vec<TensorClass>,
    /// Flattened accesses: `(dense id, bytes, dirty)`; barriers appear as
    /// `(BARRIER_ID, 0, false)` sentinels.
    stream: Vec<(u32, u64, bool)>,
    /// Stream position of each op's first access.
    op_access_start: Vec<usize>,
    /// Per-access position of the next access to the same tile.
    next_use: Vec<usize>,
    /// Dense id → latest stream position seen (next-use back-scan state).
    last_seen: Vec<usize>,
    /// Eviction write-back landing buffer, drained after every access.
    writebacks: Vec<(u32, u64)>,
    /// Reusable Belady replacement state.
    opt: DenseOptCache,
}

impl EngineScratch {
    /// A fresh scratch. Equivalent to `EngineScratch::default()`.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Executes schedules on one NPU core.
#[derive(Debug, Clone)]
pub struct Engine {
    systolic: SystolicModel,
    bytes_per_cycle: f64,
    burst_latency: u64,
    residency_bytes: u64,
    replacement: Replacement,
}

impl Engine {
    /// Engine for one core of `config` (per-core SPM slice and bandwidth
    /// share), with OPT replacement.
    pub fn new(config: &NpuConfig) -> Self {
        Self {
            systolic: SystolicModel::new(config.pe),
            bytes_per_cycle: config.dram_bytes_per_cycle_per_core(),
            burst_latency: config.dram.burst_latency_cycles,
            residency_bytes: config.residency_bytes_per_core().max(1),
            replacement: Replacement::Opt,
        }
    }

    /// Engine with explicit parameters (used by sweeps and tests).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth or residency is non-positive.
    pub fn with_params(
        systolic: SystolicModel,
        bytes_per_cycle: f64,
        burst_latency: u64,
        residency_bytes: u64,
    ) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(residency_bytes > 0, "residency must be positive");
        Self {
            systolic,
            bytes_per_cycle,
            burst_latency,
            residency_bytes,
            replacement: Replacement::Opt,
        }
    }

    /// Switch the residency model (LRU is the hardware-cache ablation).
    #[must_use]
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// The compute model in use.
    pub fn systolic(&self) -> &SystolicModel {
        &self.systolic
    }

    /// SPM residency bytes this engine simulates.
    pub fn residency_bytes(&self) -> u64 {
        self.residency_bytes
    }

    /// DRAM bandwidth in bytes per cycle (per core). Exposed so external
    /// checkers can recompute memory-timeline costs independently.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Per-burst DRAM latency in cycles.
    pub fn burst_latency(&self) -> u64 {
        self.burst_latency
    }

    /// The residency replacement policy in use.
    pub fn replacement(&self) -> Replacement {
        self.replacement
    }

    /// Run `schedule` on a cold SPM and report. Convenience wrapper that
    /// allocates a fresh [`EngineScratch`]; hot loops should hold one
    /// scratch and call [`Engine::run_with_scratch`].
    pub fn run(&self, schedule: &Schedule) -> SimReport {
        let mut scratch = EngineScratch::new();
        self.run_with_scratch(schedule, &mut scratch)
    }

    /// Analytical lower bound on [`Engine::run`]'s makespan for `schedule`,
    /// without simulating residency. Sound for both replacement policies:
    /// the returned value never exceeds the simulated `cycles`.
    ///
    /// The bound is `max(compute, memory)` where *compute* is the serial
    /// systolic time of every tile GEMM and *memory* is the channel time of
    /// the compulsory traffic alone: within each barrier-delimited segment,
    /// each distinct tile whose first access is a clean read is fetched at
    /// least once, each tile that is ever written is written back at least
    /// once, and stream ops always move their bytes. On top of the byte
    /// time, every compulsory fetch and every non-empty stream op costs at
    /// least one DRAM burst latency: the engine charges `bursts × latency`
    /// per tile op (one burst per fetched access) and one latency per
    /// stream op, so counting each distinct clean first touch once per
    /// segment stays under the simulated total.
    pub fn lower_bound(&self, schedule: &Schedule) -> u64 {
        self.lower_bound_concat(std::slice::from_ref(schedule))
    }

    /// [`Engine::lower_bound`] for `segments` executed back-to-back as one
    /// stream (the single-core sequential-partition execution model, where
    /// SPM residency crosses segment boundaries).
    pub fn lower_bound_concat(&self, segments: &[Schedule]) -> u64 {
        struct SegTile {
            bytes: u64,
            first_clean: bool,
            written: bool,
        }
        let mut compute: u64 = 0;
        let mut bytes_lb: u64 = 0;
        let mut bursts_lb: u64 = 0;
        let mut seen: HashMap<TileKey, SegTile> = HashMap::new();
        fn drain_segment(
            seen: &mut HashMap<TileKey, SegTile>,
            bytes_lb: &mut u64,
            bursts: &mut u64,
        ) {
            for (_, t) in seen.drain() {
                if t.first_clean {
                    *bytes_lb += t.bytes;
                    if t.bytes > 0 {
                        *bursts += 1;
                    }
                }
                if t.written {
                    *bytes_lb += t.bytes;
                }
            }
        }
        let touch = |seen: &mut HashMap<TileKey, SegTile>, key, bytes, dirty: bool| {
            seen.entry(key)
                .and_modify(|t| {
                    t.written |= dirty;
                    t.bytes = t.bytes.min(bytes);
                })
                .or_insert(SegTile {
                    bytes,
                    first_clean: !dirty,
                    written: dirty,
                });
        };
        for s in segments {
            for op in s.ops() {
                match op {
                    ScheduleOp::Gemm(g) => {
                        compute += self.systolic.tile_cycles(g.compute);
                        for r in &g.reads {
                            touch(&mut seen, r.key, r.bytes, false);
                        }
                        if let Some(a) = &g.acc {
                            touch(&mut seen, a.key, a.bytes, true);
                        }
                    }
                    ScheduleOp::Stream(st) => {
                        let bytes = st.read_bytes + st.write_bytes;
                        bytes_lb += bytes;
                        if bytes > 0 {
                            bursts_lb += 1;
                        }
                    }
                    ScheduleOp::Barrier => drain_segment(&mut seen, &mut bytes_lb, &mut bursts_lb),
                }
            }
        }
        drain_segment(&mut seen, &mut bytes_lb, &mut bursts_lb);
        let mem = (bytes_lb as f64 / self.bytes_per_cycle + (bursts_lb * self.burst_latency) as f64)
            .ceil() as u64;
        compute.max(mem)
    }

    /// Run `schedule` on a cold SPM, reusing `scratch`'s buffers.
    pub fn run_with_scratch(&self, schedule: &Schedule, scratch: &mut EngineScratch) -> SimReport {
        self.run_recorded(schedule, scratch, &mut NullRecorder)
    }

    /// [`Engine::run_with_scratch`] with an event [`Recorder`] attached.
    ///
    /// The report is bit-identical to the unrecorded run: recording sites
    /// only *observe* the timelines and residency model, never steer them,
    /// and with [`NullRecorder`] they are compiled out entirely (this is
    /// the function `run_with_scratch` monomorphises to).
    pub fn run_recorded<R: Recorder>(
        &self,
        schedule: &Schedule,
        scratch: &mut EngineScratch,
        recorder: &mut R,
    ) -> SimReport {
        ENGINE_RUNS.fetch_add(1, Ordering::Relaxed);
        let EngineScratch {
            intern,
            keys,
            classes,
            stream,
            op_access_start,
            next_use,
            last_seen,
            writebacks,
            opt,
        } = scratch;
        intern.clear();
        keys.clear();
        classes.clear();
        stream.clear();
        op_access_start.clear();
        writebacks.clear();

        // Pre-pass: flatten the access stream, interning each distinct tile
        // to a dense id (one hash lookup per access; every later pass is
        // pure array indexing), and record each op's first access slot.
        // Barriers appear as sentinels: reuse never crosses a kernel
        // boundary.
        {
            let mut intern_id = |key: TileKey| -> u32 {
                *intern.entry(key).or_insert_with(|| {
                    let id = keys.len() as u32;
                    keys.push(key);
                    classes.push(schedule.class_of(key.tensor));
                    id
                })
            };
            for op in schedule.ops() {
                op_access_start.push(stream.len());
                match op {
                    ScheduleOp::Gemm(g) => {
                        for r in &g.reads {
                            stream.push((intern_id(r.key), r.bytes, false));
                        }
                        if let Some(a) = &g.acc {
                            stream.push((intern_id(a.key), a.bytes, true));
                        }
                    }
                    ScheduleOp::Barrier => stream.push((BARRIER_ID, 0, false)),
                    ScheduleOp::Stream(_) => {}
                }
            }
        }

        // Next-use oracle: for every access, the position of the next
        // access to the same tile (the knowledge a compiler has when
        // allocating SPM) — a dense back-scan over interned ids.
        next_use.clear();
        next_use.resize(stream.len(), usize::MAX);
        last_seen.clear();
        last_seen.resize(keys.len(), usize::MAX);
        for pos in (0..stream.len()).rev() {
            let (id, _, _) = stream[pos];
            if id == BARRIER_ID {
                last_seen.fill(usize::MAX);
            } else {
                let later = last_seen[id as usize];
                if later != usize::MAX {
                    next_use[pos] = later;
                }
                last_seen[id as usize] = pos;
            }
        }

        let mut lru = match self.replacement {
            Replacement::Opt => {
                opt.reset(self.residency_bytes, keys.len());
                None
            }
            Replacement::Lru => Some(SpmCache::new(self.residency_bytes)),
        };

        let mut traffic = Traffic::new();
        let mut mem_free: f64 = 0.0;
        let mut compute_free: f64 = 0.0;
        let mut compute_cycles_total: u64 = 0;
        let mut mem_busy_total: f64 = 0.0;
        let mut gemm_ops: u64 = 0;
        let mut macs: u64 = 0;
        let mut spm_bytes_touched: u64 = 0;
        // Phase tracking (recording only): which interleaved sub-stream
        // (dX / dW / other) the compute timeline is currently in.
        let mut cur_phase: Option<Phase> = None;

        for (op_idx, op) in schedule.ops().iter().enumerate() {
            match op {
                ScheduleOp::Gemm(g) => {
                    let start = op_access_start[op_idx];
                    // Memory-timeline cycle the op's transfers start at —
                    // the stamp for every memory-side event of this op.
                    let op_mem_start = mem_free.round() as u64;
                    let mut fetched = 0u64;
                    let mut writeback = 0u64;
                    let mut bursts = 0u64;
                    let n_accesses = g.reads.len() + usize::from(g.acc.is_some());
                    for pos in start..start + n_accesses {
                        let (id, bytes, dirty) = stream[pos];
                        debug_assert_ne!(id, BARRIER_ID, "gemm slots are never barriers");
                        spm_bytes_touched += bytes;
                        let (got, was_hit) = match &mut lru {
                            None => {
                                let hits_before = if R::ENABLED { opt.hits() } else { 0 };
                                let got = opt.access(
                                    id,
                                    keys[id as usize],
                                    bytes,
                                    dirty,
                                    next_use[pos],
                                    writebacks,
                                );
                                (got, R::ENABLED && opt.hits() > hits_before)
                            }
                            Some(c) => {
                                let key = keys[id as usize];
                                let out = if dirty {
                                    c.accumulate(key, bytes)
                                } else {
                                    c.read(key, bytes)
                                };
                                writebacks
                                    .extend(out.writebacks.iter().map(|(k, b)| (intern[k], *b)));
                                (out.fetched_bytes, out.hit)
                            }
                        };
                        if got > 0 {
                            traffic.add_read(classes[id as usize], got);
                            fetched += got;
                            bursts += 1;
                        }
                        if R::ENABLED {
                            let kind = if was_hit {
                                AccessKind::Hit
                            } else if got > 0 {
                                AccessKind::Fetch
                            } else {
                                AccessKind::Materialize
                            };
                            let occupancy = match &lru {
                                None => opt.used(),
                                Some(c) => c.used(),
                            };
                            recorder.record(TraceEvent::Access {
                                op: op_idx as u32,
                                key: keys[id as usize],
                                class: classes[id as usize],
                                bytes,
                                kind,
                                cycle: op_mem_start,
                                occupancy,
                            });
                        }
                        for (vid, vbytes) in writebacks.drain(..) {
                            traffic.add_write(classes[vid as usize], vbytes);
                            writeback += vbytes;
                            if R::ENABLED {
                                recorder.record(TraceEvent::WriteBack {
                                    op: op_idx as u32,
                                    key: keys[vid as usize],
                                    class: classes[vid as usize],
                                    bytes: vbytes,
                                    spill: true,
                                    cycle: op_mem_start,
                                });
                            }
                        }
                    }

                    // Memory timeline: free-running, serial in op order.
                    let move_bytes = fetched + writeback;
                    if move_bytes > 0 {
                        let mem_time = move_bytes as f64 / self.bytes_per_cycle
                            + (bursts.max(1) * self.burst_latency) as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }

                    // Compute timeline: wait for the array and, if this op
                    // needed transfers, for its data.
                    let cycles = self.systolic.tile_cycles(g.compute);
                    let data_ready = if move_bytes > 0 { mem_free } else { 0.0 };
                    let issue = compute_free.max(data_ready);
                    compute_free = issue + cycles as f64;
                    if R::ENABLED {
                        let phase = Phase::of_accumulator(
                            g.acc.as_ref().map(|a| schedule.class_of(a.key.tensor)),
                        );
                        let issue_cycle = issue.round() as u64;
                        if cur_phase != Some(phase) {
                            if let Some(prev) = cur_phase {
                                recorder.record(TraceEvent::PhaseEnd {
                                    op: op_idx as u32,
                                    phase: prev,
                                    cycle: issue_cycle,
                                });
                            }
                            recorder.record(TraceEvent::PhaseBegin {
                                op: op_idx as u32,
                                phase,
                                cycle: issue_cycle,
                            });
                            cur_phase = Some(phase);
                        }
                        recorder.record(TraceEvent::GemmIssue {
                            op: op_idx as u32,
                            start: issue_cycle,
                            cycles,
                            phase,
                        });
                    }
                    compute_cycles_total += cycles;
                    gemm_ops += 1;
                    macs += g.macs();
                }
                ScheduleOp::Stream(s) => {
                    if R::ENABLED {
                        recorder.record(TraceEvent::StreamIo {
                            op: op_idx as u32,
                            class: s.class,
                            read_bytes: s.read_bytes,
                            write_bytes: s.write_bytes,
                            cycle: mem_free.round() as u64,
                        });
                    }
                    if s.read_bytes > 0 {
                        traffic.add_read(s.class, s.read_bytes);
                    }
                    if s.write_bytes > 0 {
                        traffic.add_write(s.class, s.write_bytes);
                    }
                    let bytes = s.read_bytes + s.write_bytes;
                    if bytes > 0 {
                        let mem_time =
                            bytes as f64 / self.bytes_per_cycle + self.burst_latency as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }
                }
                ScheduleOp::Barrier => {
                    // Kernel boundary: flush dirty results, drop residency.
                    // The next kernel cannot start its loads before the
                    // previous kernel's compute has finished.
                    match &mut lru {
                        None => opt.flush(writebacks),
                        Some(c) => {
                            writebacks.extend(c.flush().into_iter().map(|(k, b)| (intern[&k], b)))
                        }
                    }
                    if !writebacks.is_empty() {
                        let flush_start = mem_free.round() as u64;
                        let mut bytes = 0u64;
                        for (vid, vbytes) in writebacks.drain(..) {
                            traffic.add_write(classes[vid as usize], vbytes);
                            bytes += vbytes;
                            if R::ENABLED {
                                recorder.record(TraceEvent::WriteBack {
                                    op: op_idx as u32,
                                    key: keys[vid as usize],
                                    class: classes[vid as usize],
                                    bytes: vbytes,
                                    spill: false,
                                    cycle: flush_start,
                                });
                            }
                        }
                        let mem_time =
                            bytes as f64 / self.bytes_per_cycle + self.burst_latency as f64;
                        mem_free += mem_time;
                        mem_busy_total += mem_time;
                    }
                    match &mut lru {
                        None => opt.clear(),
                        Some(c) => c.clear(),
                    }
                    mem_free = mem_free.max(compute_free);
                    if R::ENABLED {
                        recorder.record(TraceEvent::Barrier {
                            op: op_idx as u32,
                            cycle: mem_free.round() as u64,
                        });
                    }
                }
            }
        }

        // Flush remaining dirty results (final accumulator tiles) to DRAM.
        // Recorded events attribute the flush to a synthetic op index one
        // past the end of the schedule.
        match &mut lru {
            None => opt.flush(writebacks),
            Some(c) => writebacks.extend(c.flush().into_iter().map(|(k, b)| (intern[&k], b))),
        }
        if !writebacks.is_empty() {
            let flush_start = mem_free.round() as u64;
            let mut bytes = 0u64;
            for (vid, vbytes) in writebacks.drain(..) {
                traffic.add_write(classes[vid as usize], vbytes);
                bytes += vbytes;
                if R::ENABLED {
                    recorder.record(TraceEvent::WriteBack {
                        op: schedule.ops().len() as u32,
                        key: keys[vid as usize],
                        class: classes[vid as usize],
                        bytes: vbytes,
                        spill: false,
                        cycle: flush_start,
                    });
                }
            }
            let mem_time = bytes as f64 / self.bytes_per_cycle + self.burst_latency as f64;
            mem_free += mem_time;
            mem_busy_total += mem_time;
        }
        if R::ENABLED {
            if let Some(prev) = cur_phase {
                recorder.record(TraceEvent::PhaseEnd {
                    op: schedule.ops().len() as u32,
                    phase: prev,
                    cycle: compute_free.round() as u64,
                });
            }
        }

        let (spm_hits, spm_misses) = match &lru {
            None => (opt.hits(), opt.misses()),
            Some(c) => (c.hits(), c.misses()),
        };
        SimReport {
            cycles: mem_free.max(compute_free).ceil() as u64,
            compute_cycles: compute_cycles_total,
            mem_cycles: mem_busy_total.ceil() as u64,
            traffic,
            spm_hits,
            spm_misses,
            gemm_ops,
            macs,
            spm_bytes_touched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{StreamOp, TileOp};
    use igo_tensor::{GemmShape, TensorClass, TileCoord};

    fn tiny_engine(residency: u64) -> Engine {
        Engine::with_params(
            SystolicModel::new(crate::config::PeArray::new(16, 16)),
            16.0, // bytes per cycle
            10,   // burst latency
            residency,
        )
    }

    #[test]
    fn single_op_timing() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("one");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(dy, TileCoord::new(0, 0), 1600));
        let r = e.run(&s);
        // mem: 1600/16 + 10 = 110 cycles; compute: one 16-row fold.
        assert_eq!(r.mem_cycles, 110);
        assert_eq!(r.compute_cycles, 16);
        assert_eq!(r.cycles, 110 + 16);
        assert_eq!(r.traffic.read(TensorClass::OutGrad), 1600);
        assert_eq!(r.gemm_ops, 1);
    }

    #[test]
    fn repeated_reads_hit_spm() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("reuse");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for _ in 0..5 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, 0),
                1600,
            ));
        }
        let r = e.run(&s);
        assert_eq!(r.traffic.read_total(), 1600, "only the first read misses");
        assert_eq!(r.spm_hits, 4);
        assert_eq!(r.spm_misses, 1);
    }

    #[test]
    fn opt_retains_loop_working_set() {
        // Loop over 3 tiles with room for 2: OPT keeps hitting on part of
        // the working set instead of missing every access like LRU.
        let mut s = Schedule::new("loop");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for round in 0..10 {
            let j = round % 3;
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let opt = tiny_engine(3300).run(&s);
        let lru = tiny_engine(3300).with_replacement(Replacement::Lru).run(&s);
        assert!(opt.spm_hits > 0);
        assert_eq!(lru.spm_hits, 0, "LRU thrashes the cyclic pattern");
        assert!(opt.traffic.read_total() < lru.traffic.read_total());
    }

    #[test]
    fn accumulator_flush_charged_to_result_class() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("acc");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let dx = s.add_tensor(TensorClass::InGrad, "dX");
        for j in 0..4 {
            s.push_gemm(
                TileOp::new(GemmShape::new(16, 16, 16))
                    .read(dy, TileCoord::new(0, j), 1600)
                    .accumulate(dx, TileCoord::new(0, 0), 1600),
            );
        }
        let r = e.run(&s);
        assert_eq!(r.traffic.write(TensorClass::InGrad), 1600);
        assert_eq!(r.traffic.write_total(), 1600);
        assert_eq!(r.traffic.read(TensorClass::InGrad), 0);
    }

    #[test]
    fn memory_runs_ahead_of_compute() {
        // Two ops: with a free-running memory pipeline the second load
        // overlaps the first compute entirely.
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("dbuf");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..2 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let r = e.run(&s);
        // mem: 110 + 110 = 220; compute starts at 220 (data-bound), +16.
        assert_eq!(r.cycles, 220 + 16);
    }

    #[test]
    fn compute_bound_when_data_resident() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("cb");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for _ in 0..10 {
            s.push_gemm(TileOp::new(GemmShape::new(512, 16, 16)).read(
                dy,
                TileCoord::new(0, 0),
                1600,
            ));
        }
        let r = e.run(&s);
        // One 110-cycle load, then 10 x 512-cycle GEMMs back-to-back.
        assert_eq!(r.cycles, 110 + 10 * 512);
    }

    #[test]
    fn memory_bound_schedule_tracks_traffic() {
        let e = Engine::with_params(
            SystolicModel::new(crate::config::PeArray::new(16, 16)),
            1.0,
            0,
            1 << 20,
        );
        let mut s = Schedule::new("mb");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..10 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let r = e.run(&s);
        assert!(r.cycles >= 16_000, "must at least stream all bytes");
        assert!(r.memory_boundedness() > 0.95);
    }

    #[test]
    fn stream_ops_cost_bandwidth() {
        let e = tiny_engine(10_000);
        let mut s = Schedule::new("stream");
        s.push_stream(StreamOp {
            class: TensorClass::WGrad,
            read_bytes: 800,
            write_bytes: 800,
        });
        let r = e.run(&s);
        assert_eq!(r.traffic.read(TensorClass::WGrad), 800);
        assert_eq!(r.traffic.write(TensorClass::WGrad), 800);
        assert_eq!(r.cycles, 1600 / 16 + 10);
    }

    #[test]
    fn empty_schedule_is_free() {
        let e = tiny_engine(1000);
        let r = e.run(&Schedule::new("empty"));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.traffic.total(), 0);
    }

    #[test]
    fn opt_pins_accumulator_and_streams_operands() {
        // Residency of one tile: the reused dirty dW accumulator is worth
        // keeping; the never-reused dY tiles are bypassed. The compiler-
        // managed SPM gets this right where LRU would thrash.
        let e = tiny_engine(1600);
        let mut s = Schedule::new("spill");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        let dw = s.add_tensor(TensorClass::WGrad, "dW");
        for j in 0..2 {
            s.push_gemm(
                TileOp::new(GemmShape::new(16, 16, 16))
                    .read(dy, TileCoord::new(0, j), 1600)
                    .accumulate(dw, TileCoord::new(0, 0), 1600),
            );
        }
        let r = e.run(&s);
        // Both dY tiles are fetched; dW is written exactly once, at flush,
        // and never re-fetched.
        assert_eq!(r.traffic.read(TensorClass::OutGrad), 2 * 1600);
        assert_eq!(r.traffic.write(TensorClass::WGrad), 1600);
        assert_eq!(r.traffic.read(TensorClass::WGrad), 0);
    }

    #[test]
    fn lower_bound_never_exceeds_simulated_cycles() {
        // Assorted reuse patterns, several residency capacities, both
        // replacement policies: the analytical bound must stay below the
        // simulated makespan everywhere.
        let mut schedules: Vec<Schedule> = Vec::new();
        let mut scan = Schedule::new("scan");
        let dy = scan.add_tensor(TensorClass::OutGrad, "dY");
        let dw = scan.add_tensor(TensorClass::WGrad, "dW");
        for j in 0..20 {
            scan.push_gemm(
                TileOp::new(GemmShape::new(16, 16, 16))
                    .read(dy, TileCoord::new(0, j % 5), 1600)
                    .accumulate(dw, TileCoord::new(0, j % 2), 1600),
            );
            if j == 9 {
                scan.push_barrier();
            }
        }
        scan.push_stream(StreamOp {
            class: TensorClass::WGrad,
            read_bytes: 4096,
            write_bytes: 0,
        });
        schedules.push(scan);
        let mut compute = Schedule::new("compute");
        let w = compute.add_tensor(TensorClass::Weight, "W");
        for _ in 0..8 {
            compute.push_gemm(TileOp::new(GemmShape::new(512, 16, 16)).read(
                w,
                TileCoord::new(0, 0),
                1600,
            ));
        }
        schedules.push(compute);
        for s in &schedules {
            for residency in [1600, 3300, 10_000] {
                for policy in [Replacement::Opt, Replacement::Lru] {
                    let e = tiny_engine(residency).with_replacement(policy);
                    let r = e.run(s);
                    let lb = e.lower_bound(s);
                    assert!(
                        lb <= r.cycles,
                        "bound {lb} exceeds simulated {} ({} @ {residency}B, {policy:?})",
                        r.cycles,
                        s.name()
                    );
                    assert!(lb > 0, "non-empty schedule must have a positive bound");
                }
            }
        }
    }

    #[test]
    fn lower_bound_concat_matches_concatenated_schedule() {
        let e = tiny_engine(10_000);
        let mut parent = Schedule::new("p");
        let dy = parent.add_tensor(TensorClass::OutGrad, "dY");
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        for j in 0..4 {
            a.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
            b.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let mut joined = a.clone();
        joined.append_compatible(&b);
        assert_eq!(
            e.lower_bound_concat(&[a, b]),
            e.lower_bound(&joined),
            "segment-spanning dedup must match the concatenated stream"
        );
    }

    #[test]
    fn lru_and_opt_agree_on_compulsory_misses() {
        // A scan with no reuse: both models fetch everything exactly once.
        let mut s = Schedule::new("scan");
        let dy = s.add_tensor(TensorClass::OutGrad, "dY");
        for j in 0..20 {
            s.push_gemm(TileOp::new(GemmShape::new(16, 16, 16)).read(
                dy,
                TileCoord::new(0, j),
                1600,
            ));
        }
        let opt = tiny_engine(5000).run(&s);
        let lru = tiny_engine(5000).with_replacement(Replacement::Lru).run(&s);
        assert_eq!(opt.traffic.read_total(), 20 * 1600);
        assert_eq!(lru.traffic.read_total(), 20 * 1600);
    }
}
