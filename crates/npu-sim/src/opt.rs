//! Belady (OPT) replacement for the software-managed SPM.
//!
//! An NPU scratchpad is allocated by the compiler, which knows the entire
//! tile schedule in advance — so its residency decisions approximate
//! *optimal* replacement, not LRU: a tile that will not be needed again is
//! the first to go, and a tile with an imminent reuse is pinned. Modelling
//! the SPM as an OPT cache over the known access stream captures exactly
//! this (§1: "SPM is solely managed by the software").
//!
//! [`OptCache`] is fed each access together with the position of the
//! *next* access to the same tile (pre-computed by the engine from the
//! schedule). Eviction picks the resident tile with the furthest next use;
//! an incoming tile whose own next use is further than every resident's is
//! *bypassed* (streamed through without displacing anything) — the
//! standard OPT refinement, and precisely what a compiler does with a
//! streaming operand.
//!
//! Dirty-accumulator semantics match [`crate::SpmCache`]: a fresh
//! accumulator costs no read; evicting a dirty tile writes it back; a
//! previously spilled accumulator is re-fetched on its next touch.

use crate::spm::AccessOutcome;
use crate::trace::TileKey;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Position of an access in the flattened schedule access stream;
/// `usize::MAX` means "never used again".
pub type NextUse = usize;

#[derive(Debug, Clone)]
struct Entry {
    bytes: u64,
    dirty: bool,
    next_use: NextUse,
}

/// Byte-capacity cache with Belady's optimal replacement.
#[derive(Debug, Clone)]
pub struct OptCache {
    capacity: u64,
    used: u64,
    high_water: u64,
    entries: HashMap<TileKey, Entry>,
    /// Residents ordered by next use (furthest last).
    order: BTreeSet<(NextUse, TileKey)>,
    spilled: HashSet<TileKey>,
    hits: u64,
    misses: u64,
}

impl OptCache {
    /// Create a cache with `capacity` bytes of residency.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "SPM residency capacity must be positive");
        Self {
            capacity,
            used: 0,
            high_water: 0,
            entries: HashMap::new(),
            order: BTreeSet::new(),
            spilled: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Residency capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Highest residency (bytes) ever observed — the SPM occupancy
    /// high-water mark. Survives [`OptCache::clear`] so it spans kernel
    /// boundaries within one run.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether `key` is resident.
    pub fn contains(&self, key: &TileKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Access a tile. `dirty` marks accumulator (read-modify-write)
    /// touches; `next_use` is the stream position of the tile's next
    /// access (`usize::MAX` if none).
    pub fn access(
        &mut self,
        key: TileKey,
        bytes: u64,
        dirty: bool,
        next_use: NextUse,
    ) -> AccessOutcome {
        if let Some(entry) = self.entries.get_mut(&key) {
            // Follow tile resizes in all build profiles (see
            // `SpmCache::touch`): stale bytes would corrupt `used`.
            let old = (entry.next_use, key);
            let old_bytes = entry.bytes;
            entry.bytes = bytes;
            entry.next_use = next_use;
            entry.dirty |= dirty;
            self.order.remove(&old);
            self.order.insert((next_use, key));
            self.hits += 1;
            self.used = self.used - old_bytes + bytes;
            let mut writebacks = Vec::new();
            while self.used > self.capacity {
                // The tile grew past what fits: evict furthest-future
                // residents (possibly the touched tile itself) until the
                // residency is legal again.
                let &(victim_next, victim_key) = self
                    .order
                    .iter()
                    .next_back()
                    .expect("used > 0 implies a resident victim");
                self.order.remove(&(victim_next, victim_key));
                let victim = self
                    .entries
                    .remove(&victim_key)
                    .expect("order/entry maps out of sync");
                self.used -= victim.bytes;
                if victim.dirty {
                    writebacks.push((victim_key, victim.bytes));
                    self.spilled.insert(victim_key);
                }
            }
            self.high_water = self.high_water.max(self.used);
            return AccessOutcome {
                fetched_bytes: 0,
                writebacks,
                hit: true,
            };
        }

        self.misses += 1;
        let fetched = if dirty && !self.spilled.contains(&key) {
            0
        } else {
            bytes
        };

        // Decide residency: evict furthest-future residents, but never in
        // favour of a tile that is itself the furthest (bypass instead).
        let mut writebacks = Vec::new();
        let mut admitted = bytes <= self.capacity;
        while admitted && self.used + bytes > self.capacity {
            let &(victim_next, victim_key) = self
                .order
                .iter()
                .next_back()
                .expect("used > 0 implies a resident victim");
            if victim_next <= next_use {
                // Everyone resident is needed sooner than this tile:
                // bypass.
                admitted = false;
                break;
            }
            self.order.remove(&(victim_next, victim_key));
            let victim = self
                .entries
                .remove(&victim_key)
                .expect("order/entry maps out of sync");
            self.used -= victim.bytes;
            if victim.dirty {
                writebacks.push((victim_key, victim.bytes));
                self.spilled.insert(victim_key);
            }
        }

        if admitted {
            self.entries.insert(
                key,
                Entry {
                    bytes,
                    dirty,
                    next_use,
                },
            );
            self.order.insert((next_use, key));
            self.used += bytes;
            self.high_water = self.high_water.max(self.used);
        } else if dirty {
            // Bypassed dirty tile: write through.
            writebacks.push((key, bytes));
            self.spilled.insert(key);
        }

        AccessOutcome {
            fetched_bytes: fetched,
            writebacks,
            hit: false,
        }
    }

    /// Drop all residency and forget spill history (kernel boundary).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.spilled.clear();
        self.used = 0;
    }

    /// Flush all dirty entries: returns the tiles written back. Entries
    /// stay resident but become clean.
    pub fn flush(&mut self) -> Vec<(TileKey, u64)> {
        let mut writebacks = Vec::new();
        for (key, entry) in self.entries.iter_mut() {
            if entry.dirty {
                writebacks.push((*key, entry.bytes));
                entry.dirty = false;
                self.spilled.insert(*key);
            }
        }
        writebacks
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DenseSlot {
    bytes: u64,
    dirty: bool,
    resident: bool,
    spilled: bool,
    next_use: NextUse,
}

/// Belady replacement over *interned* tile ids: the engine hot-path variant
/// of [`OptCache`].
///
/// Replacement decisions are bit-identical to [`OptCache`] — the eviction
/// order set still ranks residents by `(next_use, TileKey)`, so ties on
/// "never used again" break exactly the same way — but per-tile state lives
/// in a dense slot vector indexed by the engine's interned tile id instead
/// of hash maps, and eviction write-backs land in a caller-provided buffer
/// instead of a fresh `Vec` per access. The whole structure is reusable
/// across runs via [`DenseOptCache::reset`].
#[derive(Debug, Clone, Default)]
pub struct DenseOptCache {
    capacity: u64,
    used: u64,
    high_water: u64,
    slots: Vec<DenseSlot>,
    /// Residents ordered by next use (furthest last); the trailing id rides
    /// along for slot lookup and never affects the ordering because
    /// `(next_use, key)` is unique per resident.
    order: BTreeSet<(NextUse, TileKey, u32)>,
    hits: u64,
    misses: u64,
}

impl DenseOptCache {
    /// Prepare for a run over `num_tiles` interned tiles with `capacity`
    /// bytes of residency. Keeps previously allocated storage.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn reset(&mut self, capacity: u64, num_tiles: usize) {
        assert!(capacity > 0, "SPM residency capacity must be positive");
        self.capacity = capacity;
        self.used = 0;
        self.high_water = 0;
        self.slots.clear();
        self.slots.resize(num_tiles, DenseSlot::default());
        self.order.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Residency capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Highest residency (bytes) ever observed since the last
    /// [`DenseOptCache::reset`] — the SPM occupancy high-water mark.
    /// Survives [`DenseOptCache::clear`] so it spans kernel boundaries
    /// within one run.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Access tile `id` (interned from `key`). Semantics are identical to
    /// [`OptCache::access`]; dirty victims are appended to `writebacks` as
    /// `(victim_id, bytes)`.
    pub fn access(
        &mut self,
        id: u32,
        key: TileKey,
        bytes: u64,
        dirty: bool,
        next_use: NextUse,
        writebacks: &mut Vec<(u32, u64)>,
    ) -> u64 {
        let slot = &mut self.slots[id as usize];
        if slot.resident {
            // Follow tile resizes in all build profiles (see
            // `SpmCache::touch`): stale bytes would corrupt `used`.
            let old = (slot.next_use, key, id);
            let old_bytes = slot.bytes;
            slot.bytes = bytes;
            slot.next_use = next_use;
            slot.dirty |= dirty;
            self.order.remove(&old);
            self.order.insert((next_use, key, id));
            self.hits += 1;
            self.used = self.used - old_bytes + bytes;
            while self.used > self.capacity {
                // The tile grew past what fits: evict furthest-future
                // residents (possibly the touched tile itself) until the
                // residency is legal again.
                let &(victim_next, victim_key, victim_id) = self
                    .order
                    .iter()
                    .next_back()
                    .expect("used > 0 implies a resident victim");
                self.order.remove(&(victim_next, victim_key, victim_id));
                let victim = &mut self.slots[victim_id as usize];
                debug_assert!(victim.resident, "order/slot state out of sync");
                victim.resident = false;
                self.used -= victim.bytes;
                if victim.dirty {
                    writebacks.push((victim_id, victim.bytes));
                    victim.spilled = true;
                }
            }
            self.high_water = self.high_water.max(self.used);
            return 0;
        }

        self.misses += 1;
        let fetched = if dirty && !slot.spilled { 0 } else { bytes };

        // Decide residency: evict furthest-future residents, but never in
        // favour of a tile that is itself the furthest (bypass instead).
        let mut admitted = bytes <= self.capacity;
        while admitted && self.used + bytes > self.capacity {
            let &(victim_next, victim_key, victim_id) = self
                .order
                .iter()
                .next_back()
                .expect("used > 0 implies a resident victim");
            if victim_next <= next_use {
                // Everyone resident is needed sooner than this tile: bypass.
                admitted = false;
                break;
            }
            self.order.remove(&(victim_next, victim_key, victim_id));
            let victim = &mut self.slots[victim_id as usize];
            debug_assert!(victim.resident, "order/slot state out of sync");
            victim.resident = false;
            self.used -= victim.bytes;
            if victim.dirty {
                writebacks.push((victim_id, victim.bytes));
                victim.spilled = true;
            }
        }

        let slot = &mut self.slots[id as usize];
        if admitted {
            slot.resident = true;
            slot.bytes = bytes;
            slot.dirty = dirty;
            slot.next_use = next_use;
            self.order.insert((next_use, key, id));
            self.used += bytes;
            self.high_water = self.high_water.max(self.used);
        } else if dirty {
            // Bypassed dirty tile: write through.
            writebacks.push((id, bytes));
            slot.spilled = true;
        }
        fetched
    }

    /// Drop all residency and forget spill history (kernel boundary).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = DenseSlot {
                next_use: slot.next_use,
                ..DenseSlot::default()
            };
        }
        self.order.clear();
        self.used = 0;
    }

    /// Flush all dirty entries into `writebacks`. Entries stay resident but
    /// become clean.
    pub fn flush(&mut self, writebacks: &mut Vec<(u32, u64)>) {
        for &(_, _, id) in &self.order {
            let slot = &mut self.slots[id as usize];
            if slot.dirty {
                writebacks.push((id, slot.bytes));
                slot.dirty = false;
                slot.spilled = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TensorId;
    use igo_tensor::TileCoord;

    fn key(t: u32, c: u32) -> TileKey {
        TileKey {
            tensor: TensorId::from_raw(t),
            coord: TileCoord::new(0, c),
        }
    }

    const NEVER: usize = usize::MAX;

    #[test]
    fn opt_keeps_the_sooner_needed_tile() {
        // Capacity 2 tiles. A is needed again soon, B far, C arrives: B
        // must be the victim.
        let mut c = OptCache::new(200);
        c.access(key(0, 0), 100, false, 10); // A, next at 10
        c.access(key(0, 1), 100, false, 1000); // B, next at 1000
        let out = c.access(key(0, 2), 100, false, 50); // C
        assert!(!out.hit);
        assert!(c.contains(&key(0, 0)), "A (next=10) stays");
        assert!(!c.contains(&key(0, 1)), "B (next=1000) evicted");
        assert!(c.contains(&key(0, 2)));
    }

    #[test]
    fn never_reused_tile_is_bypassed() {
        let mut c = OptCache::new(200);
        c.access(key(0, 0), 100, false, 10);
        c.access(key(0, 1), 100, false, 20);
        // A streaming tile that is never reused must not displace either.
        let out = c.access(key(0, 2), 100, false, NEVER);
        assert!(!out.hit);
        assert!(!c.contains(&key(0, 2)));
        assert!(c.contains(&key(0, 0)) && c.contains(&key(0, 1)));
    }

    #[test]
    fn hit_updates_next_use() {
        let mut c = OptCache::new(200);
        c.access(key(0, 0), 100, false, 5);
        c.access(key(0, 1), 100, false, 6);
        // Touch A again; its new next use is far, so it becomes the victim
        // for a sooner-needed C.
        let hit = c.access(key(0, 0), 100, false, 1000);
        assert!(hit.hit);
        c.access(key(0, 2), 100, false, 7);
        assert!(!c.contains(&key(0, 0)));
        assert!(c.contains(&key(0, 1)));
    }

    #[test]
    fn dirty_eviction_writes_back_and_refetches() {
        let mut c = OptCache::new(100);
        c.access(key(1, 0), 100, true, 50); // accumulator, fresh: no fetch
                                            // Sooner-needed read evicts it.
        let out = c.access(key(0, 0), 100, false, 10);
        assert_eq!(out.writebacks, vec![(key(1, 0), 100)]);
        // Re-touch: must re-fetch partials.
        let back = c.access(key(1, 0), 100, true, 60);
        assert_eq!(back.fetched_bytes, 100);
    }

    #[test]
    fn bypassed_dirty_tile_writes_through() {
        let mut c = OptCache::new(100);
        c.access(key(0, 0), 100, false, 1); // pinned by imminent reuse
        let out = c.access(key(1, 0), 100, true, NEVER);
        assert_eq!(out.writeback_bytes(), 100);
        assert!(!c.contains(&key(1, 0)));
    }

    #[test]
    fn oversized_tile_never_admitted() {
        let mut c = OptCache::new(100);
        let out = c.access(key(0, 0), 500, false, 1);
        assert_eq!(out.fetched_bytes, 500);
        assert!(!c.contains(&key(0, 0)));
    }

    #[test]
    fn flush_keeps_residency_marks_clean() {
        let mut c = OptCache::new(300);
        c.access(key(1, 0), 100, true, 5);
        c.access(key(0, 0), 100, false, 6);
        let flushed = c.flush();
        assert_eq!(flushed, vec![(key(1, 0), 100)]);
        assert!(c.contains(&key(1, 0)));
        assert!(c.flush().is_empty());
    }

    #[test]
    fn used_never_exceeds_capacity() {
        let mut c = OptCache::new(250);
        for i in 0..50u32 {
            c.access(key(0, i), 100, false, (i as usize) + 5);
            assert!(c.used() <= c.capacity());
        }
    }

    /// On sampled access streams, clairvoyant replacement never hits less
    /// than LRU at equal capacity (Belady optimality, spot-checked).
    #[test]
    fn opt_hits_at_least_lru() {
        let mut rng = igo_tensor::SplitMix64::new(0x0B71);
        for _ in 0..64 {
            let len = rng.range_u64(1, 300) as usize;
            let stream: Vec<u32> = (0..len).map(|_| rng.range_u64(0, 12) as u32).collect();
            let capacity = rng.range_u64(1, 8) * 100;
            // Pre-compute next uses.
            let mut next = vec![NEVER; stream.len()];
            let mut last: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
            for (pos, &t) in stream.iter().enumerate().rev() {
                if let Some(&later) = last.get(&t) {
                    next[pos] = later;
                }
                last.insert(t, pos);
            }
            let mut opt = OptCache::new(capacity);
            let mut lru = crate::spm::SpmCache::new(capacity);
            for (pos, &t) in stream.iter().enumerate() {
                opt.access(key(0, t), 100, false, next[pos]);
                lru.read(key(0, t), 100);
            }
            assert!(
                opt.hits() >= lru.hits(),
                "OPT {} < LRU {} on {:?}",
                opt.hits(),
                lru.hits(),
                stream
            );
        }
    }

    #[test]
    fn opt_beats_lru_on_looping_pattern() {
        // The classic case: loop over 3 tiles with capacity 2. LRU misses
        // every access; OPT hits 1 of each 3 in steady state.
        let mut opt = OptCache::new(200);
        let mut lru = crate::spm::SpmCache::new(200);
        let accesses = 30;
        for round in 0..accesses {
            let t = (round % 3) as u32;
            let next = round + 3;
            opt.access(key(0, t), 100, false, next);
            lru.read(key(0, t), 100);
        }
        assert!(
            opt.hits() > lru.hits(),
            "OPT {} vs LRU {}",
            opt.hits(),
            lru.hits()
        );
    }
}
