//! Cycle-stamped event recording for [`crate::Engine`] runs.
//!
//! The engine's reports are end-of-run aggregates; the paper's argument,
//! however, is about *when* a `dY` tile is resident versus refetched. The
//! [`Recorder`] trait lets a run emit its tile-level timeline — fetches,
//! hits, accumulator materialisations, spills, write-backs, tile-GEMM
//! issues, and the phase transitions between the interleaved `dX`/`dW`
//! sub-streams — without costing the simulate-and-select hot loop
//! anything when recording is off.
//!
//! Zero-cost-when-off is structural, not a promise: `Engine::run_recorded`
//! is generic over `R: Recorder`, every recording site is guarded by
//! `if R::ENABLED { ... }`, and [`NullRecorder`] sets the associated
//! `const ENABLED: bool` to `false` — so the monomorphised default path
//! contains no recording code at all and is the *same function body* the
//! pre-observability engine compiled to.
//!
//! [`RunMetrics::from_events`] derives the per-run summary instruments
//! from a recorded [`EventLog`]: the SPM occupancy high-water mark,
//! per-class reuse-distance histograms, and the dY reuse ratio over time
//! resolved per tile (the paper's Figure 5 quantity, per tile instead of
//! summed).

use crate::trace::TileKey;
use igo_tensor::TensorClass;
use std::collections::HashMap;

/// Which interleaved backward sub-stream a tile-GEMM belongs to, judged by
/// its accumulator's tensor class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Accumulating into `dX` (input gradient).
    Dx,
    /// Accumulating into `dW` (weight gradient).
    Dw,
    /// Anything else (forward ops, reductions, accumulator-free ops).
    Other,
}

impl Phase {
    /// Classify an op by its accumulator class (`None` for no accumulator).
    pub fn of_accumulator(class: Option<TensorClass>) -> Phase {
        match class {
            Some(TensorClass::InGrad) => Phase::Dx,
            Some(TensorClass::WGrad) => Phase::Dw,
            _ => Phase::Other,
        }
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Dx => "dX",
            Phase::Dw => "dW",
            Phase::Other => "other",
        }
    }
}

/// What an SPM tile access did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The tile was already resident: no DRAM traffic.
    Hit,
    /// The tile was fetched from DRAM (operand miss, or re-fetch of a
    /// previously spilled accumulator).
    Fetch,
    /// A fresh accumulator tile materialised in SPM (or wrote through on a
    /// bypass) with no DRAM read.
    Materialize,
}

/// One cycle-stamped engine event.
///
/// `op` is the index of the originating [`crate::ScheduleOp`] in the
/// schedule's op stream. Memory-side events (`Access`, `WriteBack`,
/// `StreamIo`) are stamped with the op's *memory-timeline start* cycle;
/// compute-side events (`GemmIssue`, `PhaseBegin`/`PhaseEnd`) with the
/// compute-timeline issue cycle. Cycle stamps are rounded to integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A tile access resolved against the SPM residency model.
    Access {
        /// Originating op index.
        op: u32,
        /// The tile touched.
        key: TileKey,
        /// Traffic class of the tile's tensor.
        class: TensorClass,
        /// Clipped tile size in bytes.
        bytes: u64,
        /// Hit / fetch / materialise.
        kind: AccessKind,
        /// Memory-timeline cycle at which the op's transfers start.
        cycle: u64,
        /// Bytes resident in SPM immediately after this access.
        occupancy: u64,
    },
    /// A dirty tile written back to DRAM.
    WriteBack {
        /// Originating op index (the evicting access's op, or the barrier /
        /// end-of-run flush op).
        op: u32,
        /// The tile written back.
        key: TileKey,
        /// Traffic class of the tile's tensor.
        class: TensorClass,
        /// Bytes written.
        bytes: u64,
        /// `true` for a capacity spill (the tile may be re-fetched later),
        /// `false` for a flush at a kernel boundary or end of run.
        spill: bool,
        /// Memory-timeline cycle of the write.
        cycle: u64,
    },
    /// A tile-GEMM issued on the systolic array.
    GemmIssue {
        /// Originating op index.
        op: u32,
        /// Compute-timeline cycle the GEMM starts.
        start: u64,
        /// Systolic cycles the GEMM occupies.
        cycles: u64,
        /// Which backward sub-stream the op belongs to.
        phase: Phase,
    },
    /// A pure data-movement op (reduction, element-wise pass).
    StreamIo {
        /// Originating op index.
        op: u32,
        /// Traffic class.
        class: TensorClass,
        /// Bytes read from DRAM.
        read_bytes: u64,
        /// Bytes written to DRAM.
        write_bytes: u64,
        /// Memory-timeline start cycle.
        cycle: u64,
    },
    /// The run entered a new phase (first GEMM of a sub-stream).
    PhaseBegin {
        /// Op index of the first op in the phase.
        op: u32,
        /// The phase entered.
        phase: Phase,
        /// Compute-timeline cycle.
        cycle: u64,
    },
    /// The run left a phase (every `PhaseBegin` gets a matching end).
    PhaseEnd {
        /// Op index of the op after the phase (or the last op at run end).
        op: u32,
        /// The phase left.
        phase: Phase,
        /// Compute-timeline cycle.
        cycle: u64,
    },
    /// A kernel boundary was crossed: residency dropped, timelines synced.
    Barrier {
        /// The barrier op's index.
        op: u32,
        /// Memory-timeline cycle after the sync.
        cycle: u64,
    },
}

impl TraceEvent {
    /// The event's cycle stamp (memory- or compute-timeline as documented
    /// per variant).
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Access { cycle, .. }
            | TraceEvent::WriteBack { cycle, .. }
            | TraceEvent::StreamIo { cycle, .. }
            | TraceEvent::PhaseBegin { cycle, .. }
            | TraceEvent::PhaseEnd { cycle, .. }
            | TraceEvent::Barrier { cycle, .. } => cycle,
            TraceEvent::GemmIssue { start, .. } => start,
        }
    }
}

/// Sink for engine events.
///
/// Implementations with `ENABLED == false` guarantee the engine skips
/// every recording site at compile time (the guards are
/// `if R::ENABLED { ... }` on an associated `const`).
pub trait Recorder {
    /// Whether the engine should emit events at all. Recording sites are
    /// compiled out when this is `false`.
    const ENABLED: bool = true;

    /// Receive one event. Called only when [`Recorder::ENABLED`] is true.
    fn record(&mut self, event: TraceEvent);
}

/// The default no-op recorder: compiles the engine down to the exact
/// unrecorded hot path ([`Recorder::ENABLED`] is `false`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    fn record(&mut self, _event: TraceEvent) {}
}

/// A recorder that stores every event in order.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// The recorded events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Recorder for EventLog {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Number of log₂ reuse-distance buckets ([1,2), [2,4), ... with the last
/// bucket absorbing everything ≥ 2¹⁵).
pub const REUSE_BUCKETS: usize = 16;

/// Histogram of tile reuse distances, in *access count* (how many tile
/// accesses separate two touches of the same tile — the schedule-order
/// analogue of the byte-stack distances in [`crate::analysis`]).
///
/// Every access lands in exactly one bucket: a first-ever touch of a tile
/// is `cold`; a repeat at distance `d ≥ 1` lands in bucket `⌊log₂ d⌋`
/// (clamped to the last bucket). Hence `total() == accesses == hits +
/// misses` for the recorded run — the conservation the trace tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReuseHistogram {
    /// First-ever accesses (no prior touch to measure a distance from).
    pub cold: u64,
    /// `buckets[i]` counts repeats with `⌊log₂ distance⌋ == i` (last
    /// bucket clamps).
    pub buckets: [u64; REUSE_BUCKETS],
}

impl ReuseHistogram {
    fn add(&mut self, distance: u64) {
        let idx = (distance.max(1).ilog2() as usize).min(REUSE_BUCKETS - 1);
        self.buckets[idx] += 1;
    }

    /// All accesses accounted for: cold plus every distance bucket.
    pub fn total(&self) -> u64 {
        self.cold + self.buckets.iter().sum::<u64>()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &ReuseHistogram) {
        self.cold += other.cold;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets) {
            *a += b;
        }
    }
}

/// Per-tensor-class access metrics derived from a recorded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassMetrics {
    /// Tile accesses of this class.
    pub accesses: u64,
    /// Accesses that hit in SPM.
    pub hits: u64,
    /// Reuse-distance histogram over this class's accesses.
    pub histogram: ReuseHistogram,
}

impl ClassMetrics {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// One point of the dY reuse-ratio time series: the cumulative hit ratio
/// of `dY` (OutGrad) tile accesses up to `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyReusePoint {
    /// Memory-timeline cycle of the access.
    pub cycle: u64,
    /// Cumulative dY accesses so far (including this one).
    pub accesses: u64,
    /// Cumulative dY hits so far.
    pub hits: u64,
}

impl DyReusePoint {
    /// The cumulative reuse (hit) ratio at this point.
    pub fn ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Per-tile access statistics (reported for `dY`, the paper's subject).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileStats {
    /// The tile.
    pub key: TileKey,
    /// Clipped tile size in bytes (last observed).
    pub bytes: u64,
    /// Accesses to this tile.
    pub accesses: u64,
    /// Accesses that hit in SPM.
    pub hits: u64,
}

impl TileStats {
    /// Per-tile reuse ratio: hits over accesses.
    pub fn reuse_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Derived metrics of one recorded engine run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Residency capacity the run was recorded against, in bytes.
    pub capacity: u64,
    /// Highest SPM residency observed after any access, in bytes.
    pub occupancy_high_water: u64,
    /// Per-class metrics, indexed like [`TensorClass::ALL`].
    pub per_class: [ClassMetrics; 7],
    /// Cumulative dY reuse ratio over (memory-timeline) time, one point
    /// per dY access.
    pub dy_timeline: Vec<DyReusePoint>,
    /// Per-dY-tile access statistics, sorted by tile key.
    pub dy_tiles: Vec<TileStats>,
}

impl RunMetrics {
    /// Compute the metrics of a recorded run with residency `capacity`.
    pub fn from_events(events: &[TraceEvent], capacity: u64) -> Self {
        let mut out = RunMetrics {
            capacity,
            ..Default::default()
        };
        // Global access counter and last-seen positions for reuse
        // distances (in accesses, across all classes — the stream the SPM
        // actually sees).
        let mut position: u64 = 0;
        let mut last_seen: HashMap<TileKey, u64> = HashMap::new();
        let mut dy_tiles: HashMap<TileKey, TileStats> = HashMap::new();
        for event in events {
            let &TraceEvent::Access {
                key,
                class,
                bytes,
                kind,
                cycle,
                occupancy,
                ..
            } = event
            else {
                continue;
            };
            out.occupancy_high_water = out.occupancy_high_water.max(occupancy);
            let hit = kind == AccessKind::Hit;
            let cm = &mut out.per_class[class_index(class)];
            cm.accesses += 1;
            cm.hits += u64::from(hit);
            match last_seen.insert(key, position) {
                None => cm.histogram.cold += 1,
                Some(prev) => cm.histogram.add(position - prev),
            }
            position += 1;
            if class == TensorClass::OutGrad {
                let stats = dy_tiles.entry(key).or_insert(TileStats {
                    key,
                    bytes,
                    accesses: 0,
                    hits: 0,
                });
                stats.bytes = bytes;
                stats.accesses += 1;
                stats.hits += u64::from(hit);
                let last = out.dy_timeline.last().copied();
                out.dy_timeline.push(DyReusePoint {
                    cycle,
                    accesses: last.map_or(0, |p| p.accesses) + 1,
                    hits: last.map_or(0, |p| p.hits) + u64::from(hit),
                });
            }
        }
        out.dy_tiles = dy_tiles.into_values().collect();
        out.dy_tiles.sort_unstable_by_key(|t| t.key);
        out
    }

    /// Metrics for one class.
    pub fn class(&self, class: TensorClass) -> &ClassMetrics {
        &self.per_class[class_index(class)]
    }

    /// Total tile accesses across all classes.
    pub fn total_accesses(&self) -> u64 {
        self.per_class.iter().map(|c| c.accesses).sum()
    }

    /// Total SPM hits across all classes.
    pub fn total_hits(&self) -> u64 {
        self.per_class.iter().map(|c| c.hits).sum()
    }

    /// Final cumulative dY reuse ratio (0 when the run touches no dY).
    pub fn dy_reuse_ratio(&self) -> f64 {
        self.dy_timeline.last().map_or(0.0, DyReusePoint::ratio)
    }
}

fn class_index(class: TensorClass) -> usize {
    TensorClass::ALL
        .iter()
        .position(|&c| c == class)
        .expect("TensorClass::ALL covers all classes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TensorId;
    use igo_tensor::TileCoord;

    fn access(t: u32, c: u32, class: TensorClass, kind: AccessKind, occ: u64) -> TraceEvent {
        TraceEvent::Access {
            op: 0,
            key: TileKey {
                tensor: TensorId::from_raw(t),
                coord: TileCoord::new(0, c),
            },
            class,
            bytes: 100,
            kind,
            cycle: 0,
            occupancy: occ,
        }
    }

    #[test]
    fn histogram_buckets_by_log2_distance() {
        let mut h = ReuseHistogram::default();
        h.add(1); // bucket 0
        h.add(2); // bucket 1
        h.add(3); // bucket 1
        h.add(4); // bucket 2
        h.add(1 << 20); // clamped to the last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[REUSE_BUCKETS - 1], 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn metrics_account_every_access_once() {
        use AccessKind::{Fetch, Hit};
        use TensorClass::{OutGrad, Weight};
        let events = vec![
            access(0, 0, OutGrad, Fetch, 100),
            access(1, 0, Weight, Fetch, 200),
            access(0, 0, OutGrad, Hit, 200), // distance 2
            access(0, 1, OutGrad, Fetch, 300),
            access(0, 0, OutGrad, Hit, 300), // distance 2
        ];
        let m = RunMetrics::from_events(&events, 1000);
        assert_eq!(m.total_accesses(), 5);
        assert_eq!(m.total_hits(), 2);
        assert_eq!(m.occupancy_high_water, 300);
        let dy = m.class(OutGrad);
        assert_eq!(dy.accesses, 4);
        assert_eq!(dy.hits, 2);
        assert_eq!(dy.misses(), 2);
        // cold(0,0) + cold(0,1) + two distance-2 repeats.
        assert_eq!(dy.histogram.cold, 2);
        assert_eq!(dy.histogram.buckets[1], 2);
        assert_eq!(dy.histogram.total(), dy.accesses);
        let total_hist: u64 = m.per_class.iter().map(|c| c.histogram.total()).sum();
        assert_eq!(total_hist, m.total_accesses());
    }

    #[test]
    fn dy_timeline_is_cumulative_and_per_tile_stats_sorted() {
        use AccessKind::{Fetch, Hit};
        let events = vec![
            access(0, 1, TensorClass::OutGrad, Fetch, 100),
            access(0, 0, TensorClass::OutGrad, Fetch, 200),
            access(0, 1, TensorClass::OutGrad, Hit, 200),
        ];
        let m = RunMetrics::from_events(&events, 1000);
        assert_eq!(m.dy_timeline.len(), 3);
        let last = m.dy_timeline.last().unwrap();
        assert_eq!((last.accesses, last.hits), (3, 1));
        assert!((m.dy_reuse_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.dy_tiles.len(), 2);
        assert!(m.dy_tiles[0].key < m.dy_tiles[1].key, "sorted by key");
        let t1 = m.dy_tiles.iter().find(|t| t.key.coord.c == 1).unwrap();
        assert_eq!((t1.accesses, t1.hits), (2, 1));
        assert!((t1.reuse_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase_classification_follows_accumulator_class() {
        assert_eq!(Phase::of_accumulator(Some(TensorClass::InGrad)), Phase::Dx);
        assert_eq!(Phase::of_accumulator(Some(TensorClass::WGrad)), Phase::Dw);
        assert_eq!(
            Phase::of_accumulator(Some(TensorClass::Ofmap)),
            Phase::Other
        );
        assert_eq!(Phase::of_accumulator(None), Phase::Other);
        assert_eq!(Phase::Dx.label(), "dX");
    }

    #[test]
    fn null_recorder_is_disabled() {
        // Read through a function so the flags are checked as the engine's
        // generic code sees them (and clippy accepts the runtime assert).
        fn enabled<R: Recorder>() -> bool {
            R::ENABLED
        }
        assert!(!enabled::<NullRecorder>());
        assert!(enabled::<EventLog>());
    }
}
