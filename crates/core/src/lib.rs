//! # igo-core — the interleaved gradient order
//!
//! The primary contribution of the reproduced paper: a dataflow
//! transformation stack for the backward pass of DNN training on NPUs.
//!
//! 1. **Interleaving** ([`schedule::BackwardBuilder::interleaved`], §4.2):
//!    fuse the independent `dX` and `dW` tile streams so the shared output
//!    gradient `dY` is fetched once while resident in SPM.
//! 2. **Rearrangement** ([`select::select_order`], §4.3): pick the common
//!    `dY` traversal — plain interleaving, dXmajor, or dWmajor — statically
//!    from the tensor dimensions (Algorithm 1).
//! 3. **Data partitioning** ([`partition`], §5): split the fused GEMM pair
//!    along M / N / K for single-core sequencing or multi-core
//!    distribution, selecting the scheme per layer by simulation oracle or
//!    by the KNN predictor ([`partition_select`]).
//!
//! [`pipeline::simulate_model`] drives a whole training step (forward +
//! backward) of any [`igo_workloads::Model`] under any
//! [`technique::Technique`] and reports cycles and per-class DRAM traffic.
//!
//! # Example
//!
//! ```
//! use igo_core::{simulate_model, Technique};
//! use igo_npu_sim::NpuConfig;
//! use igo_workloads::{zoo, ModelId};
//!
//! let config = NpuConfig::large_single_core();
//! let model = zoo::model(ModelId::Ncf, config.default_batch());
//! let base = simulate_model(&model, &config, Technique::Baseline);
//! let ours = simulate_model(&model, &config, Technique::DataPartitioning);
//! assert!(ours.total_cycles() <= base.total_cycles());
//! ```

pub mod audit;
pub mod bound;
pub mod exec;
pub mod observe;
pub mod parallel;
pub mod partition;
pub mod partition_select;
pub mod pipeline;
pub mod report_io;
pub mod schedule;
pub mod select;
pub mod simcache;
pub mod technique;
pub mod tiling;

pub use audit::{
    audit_case, check_merge_schedule, check_report_conservation, run_audit, AuditCase,
    AuditSummary, Violation,
};
pub use bound::{
    backward_emission_bound, multicore_candidate_bound, plain_candidate_bound,
    sequential_candidate_bound,
};
pub use exec::{execute_backward, execute_partitioned, DenseLayer, ExecutedGradients};
pub use observe::{trace_layer_backward, trace_model, CoreTrace, LayerTrace};
pub use parallel::{
    default_workers, parallel_map, parallel_map_with, parallel_map_workers, THREADS_ENV,
};
pub use partition::PartitionScheme;
pub use pipeline::{
    rearranged_order, simulate_layer_backward, simulate_layer_backward_ex,
    simulate_layer_backward_with, simulate_layer_forward, simulate_layer_forward_ex,
    simulate_layer_forward_with, simulate_model, simulate_model_ladder, simulate_model_with,
    LayerDecision, LayerOutcome, ModelReport, SimOptions, TrainingPhase,
};
pub use report_io::{
    chrome_trace_json, dy_reuse_csv, dy_tiles_csv, ladder_csv, layers_csv, trace_metrics_csv,
    write_chrome_trace, LadderMismatch, TraceArtifacts, TraceExport, DEFAULT_REUSE_POINTS,
};
pub use schedule::{BackwardBuilder, BackwardOrder, LayerTensors};
pub use select::select_order;
pub use simcache::{
    set_sim_cache_cap, sim_cache_cap, sim_cache_len, sim_cache_stats, sim_profile_cache_len,
    CacheStats, ConfigFingerprint, CACHE_CAP_ENV, DEFAULT_CACHE_CAP,
};
pub use technique::Technique;
pub use tiling::TilePolicy;
