//! The technique ladder of the evaluation.
//!
//! Figure 12 reports *cumulative* results: `Interleaving`, then
//! `+Rearrangement` (interleaving + Algorithm 1 order selection), then
//! `+DataPartitioning`. The extra variants cover the paper's side studies:
//! the Figure 6 ideal-reuse potential and the §4.3 per-layer oracle.

/// A complete scheduling policy for a training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Sequential dX-then-dW gradient computation with blocked tiling — the
    /// TPU-with-XLA-style baseline of §6.1.
    Baseline,
    /// The Figure 6 potential study: baseline order, but the second set of
    /// `dY` reads is elided as if `dY` stayed resident for free.
    IdealDyReuse,
    /// §4.2: interleave the two gradient streams tile-by-tile, keeping the
    /// traditional per-stream traversals.
    Interleaving,
    /// §4.3: interleaving plus Algorithm 1's tile-access-order selection
    /// (dXmajor / dWmajor / plain).
    Rearrangement,
    /// §4.3's upper bound: per layer, actually run all three orders and
    /// keep the fastest ("the ideal performance improvement").
    RearrangementOracle,
    /// §5: rearrangement plus per-layer data-partitioning selection
    /// (oracle over the candidate schemes; the KNN-predicted variant is
    /// exercised by [`crate::partition_select`]).
    DataPartitioning,
}

impl Technique {
    /// Every technique, in declaration order.
    pub const ALL: [Technique; 6] = [
        Technique::Baseline,
        Technique::IdealDyReuse,
        Technique::Interleaving,
        Technique::Rearrangement,
        Technique::RearrangementOracle,
        Technique::DataPartitioning,
    ];

    /// The cumulative Figure 12 ladder, in order.
    pub const LADDER: [Technique; 4] = [
        Technique::Baseline,
        Technique::Interleaving,
        Technique::Rearrangement,
        Technique::DataPartitioning,
    ];

    /// Whether this technique interleaves the two gradient computations.
    pub fn interleaves(self) -> bool {
        !matches!(self, Technique::Baseline | Technique::IdealDyReuse)
    }

    /// Whether this technique applies per-layer data partitioning.
    pub fn partitions(self) -> bool {
        matches!(self, Technique::DataPartitioning)
    }

    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Baseline => "Baseline",
            Technique::IdealDyReuse => "IdealDyReuse",
            Technique::Interleaving => "Interleaving",
            Technique::Rearrangement => "+Rearrangement",
            Technique::RearrangementOracle => "+Rearrangement(oracle)",
            Technique::DataPartitioning => "+DataPartitioning",
        }
    }
}

impl core::fmt::Display for Technique {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_starts_at_baseline_and_ends_at_partitioning() {
        assert_eq!(Technique::LADDER[0], Technique::Baseline);
        assert_eq!(
            *Technique::LADDER.last().unwrap(),
            Technique::DataPartitioning
        );
    }

    #[test]
    fn classification_flags() {
        assert!(!Technique::Baseline.interleaves());
        assert!(!Technique::IdealDyReuse.interleaves());
        assert!(Technique::Interleaving.interleaves());
        assert!(Technique::Rearrangement.interleaves());
        assert!(Technique::DataPartitioning.partitions());
        assert!(!Technique::Rearrangement.partitions());
    }

    #[test]
    fn labels_unique() {
        use std::collections::HashSet;
        let all = [
            Technique::Baseline,
            Technique::IdealDyReuse,
            Technique::Interleaving,
            Technique::Rearrangement,
            Technique::RearrangementOracle,
            Technique::DataPartitioning,
        ];
        let labels: HashSet<_> = all.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), all.len());
    }
}
