//! Algorithm 1: static selection of the interleaved tile-access order.
//!
//! The paper's selection algorithm (§4.3) chooses among the three Figure-10
//! orders from the *forward* GEMM dimensions alone, so it runs in constant
//! time per layer and can be applied fully statically:
//!
//! ```text
//! if AlmostSquareComputation():        use Interleaving
//! else if K > N and K > M:             use Interleaving+dWmajor
//! else:                                use Interleaving+dXmajor
//! ```
//!
//! `AlmostSquareComputation()` is true when all five tensor shapes are
//! nearly square, which reduces to `max(M,N,K) / min(M,N,K) < 4`.

use igo_tensor::{GemmShape, TraversalOrder};

/// The paper's near-square threshold: "the largest dimension is less than
/// four times the smallest dimension".
pub const ALMOST_SQUARE_THRESHOLD: f64 = 4.0;

/// Algorithm 1: pick the tile-access order for a layer with forward shape
/// `gemm`.
///
/// ```
/// use igo_core::select::select_order;
/// use igo_tensor::{GemmShape, TraversalOrder};
///
/// // Square-ish: plain interleaving.
/// assert_eq!(
///     select_order(GemmShape::new(512, 512, 512)),
///     TraversalOrder::Traditional
/// );
/// // Reduction-dominated (K largest): dWmajor.
/// assert_eq!(
///     select_order(GemmShape::new(64, 4096, 512)),
///     TraversalOrder::DwMajor
/// );
/// // Otherwise: dXmajor.
/// assert_eq!(
///     select_order(GemmShape::new(4096, 64, 512)),
///     TraversalOrder::DxMajor
/// );
/// ```
pub fn select_order(gemm: GemmShape) -> TraversalOrder {
    if gemm.is_almost_square(ALMOST_SQUARE_THRESHOLD) {
        TraversalOrder::Traditional
    } else if gemm.k() > gemm.n() && gemm.k() > gemm.m() {
        TraversalOrder::DwMajor
    } else {
        TraversalOrder::DxMajor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_uses_plain_interleaving() {
        assert_eq!(
            select_order(GemmShape::new(100, 100, 100)),
            TraversalOrder::Traditional
        );
        // Ratio just below 4 still counts as square.
        assert_eq!(
            select_order(GemmShape::new(100, 399, 399)),
            TraversalOrder::Traditional
        );
    }

    #[test]
    fn k_dominant_uses_dw_major() {
        assert_eq!(
            select_order(GemmShape::new(8, 2048, 512)),
            TraversalOrder::DwMajor
        );
        // Conv layers after im2col often have K = C*KH*KW dominant.
        assert_eq!(
            select_order(GemmShape::new(392, 4608, 512)),
            TraversalOrder::DwMajor
        );
    }

    #[test]
    fn otherwise_dx_major() {
        // Shallow conv: huge M, small K and N.
        assert_eq!(
            select_order(GemmShape::new(100_352, 147, 64)),
            TraversalOrder::DxMajor
        );
        // N-dominant FC.
        assert_eq!(
            select_order(GemmShape::new(8, 1024, 32_000)),
            TraversalOrder::DxMajor
        );
    }

    #[test]
    fn k_must_strictly_dominate_both() {
        // K == M: not strictly greater, falls to dXmajor.
        assert_eq!(
            select_order(GemmShape::new(2048, 2048, 8)),
            TraversalOrder::DxMajor
        );
    }
}
