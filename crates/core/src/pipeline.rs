//! End-to-end training-step simulation.
//!
//! Glues together the schedule builders, Algorithm 1, the partitioning
//! schemes, and the NPU simulator into the experiment the paper runs:
//! *simulate the forward and backward passes of a model under a technique
//! and report cycles and traffic* (§6.1: "our focus is primarily on the
//! forward pass and backward pass stages").
//!
//! Distinct layer shapes are simulated once and multiplied by their
//! instance count (and convolution group count) — repeated identical
//! layers are bit-identical under this machine model, so this is exact,
//! not an approximation.

use crate::partition::{partition_backward_ex, partition_forward_ex, PartitionScheme};
use crate::schedule::{forward_schedule, BackwardBuilder, BackwardOrder, LayerTensors};
use crate::select::select_order;
use crate::technique::Technique;
use crate::tiling::TilePolicy;
use igo_npu_sim::{
    run_multicore, run_sequential_partitions, Engine, MultiCoreReport, NpuConfig, Schedule,
    SimReport, Traffic,
};
use igo_tensor::GemmShape;
use igo_workloads::Model;
use serde::{Deserialize, Serialize};

/// Which pass of training a report concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainingPhase {
    /// The forward pass (technique-independent).
    Forward,
    /// The backward pass (where the paper's techniques apply).
    Backward,
}

/// The per-partition count used by single-core data partitioning
/// candidates (§5: partitions are "processed one partition at a time on a
/// single-core NPU").
const SINGLE_CORE_PART_CANDIDATES: [u64; 2] = [2, 4];

fn dedup_orders(orders: [BackwardOrder; 2]) -> Vec<BackwardOrder> {
    if orders[0] == orders[1] {
        vec![orders[0]]
    } else {
        orders.to_vec()
    }
}

fn mc_to_report(mc: &MultiCoreReport) -> SimReport {
    let mut out = SimReport {
        cycles: mc.cycles,
        traffic: mc.traffic,
        ..Default::default()
    };
    for r in &mc.core_reports {
        out.compute_cycles += r.compute_cycles;
        out.mem_cycles += r.mem_cycles;
        out.spm_hits += r.spm_hits;
        out.spm_misses += r.spm_misses;
        out.gemm_ops += r.gemm_ops;
        out.macs += r.macs;
    }
    out
}

/// What the scheduler decided for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerDecision {
    /// The backward emission order used.
    pub order: BackwardOrder,
    /// The partitioning applied, if any: `(scheme, parts)`.
    pub partition: Option<(PartitionScheme, u64)>,
}

/// Simulate one layer's forward pass on `config` (dense layer: ifmap
/// density 1).
pub fn simulate_layer_forward(gemm: GemmShape, config: &NpuConfig) -> SimReport {
    simulate_layer_forward_ex(gemm, 1.0, config)
}

/// Simulate one layer's forward pass with an explicit ifmap density
/// (raw-layout `X` traffic scaling for convolution layers).
pub fn simulate_layer_forward_ex(gemm: GemmShape, density: f64, config: &NpuConfig) -> SimReport {
    let policy = TilePolicy::for_config(config);
    let mut proto = Schedule::new("fwd");
    let tensors = LayerTensors::register(&mut proto, "l");
    if config.cores == 1 {
        let mut s = proto.fork("fwd");
        forward_schedule(gemm, policy, tensors, density, &mut s);
        Engine::new(config).run(&s)
    } else {
        let parts =
            partition_forward_ex(&proto, tensors, gemm, density, policy, config.cores as u64);
        mc_to_report(&run_multicore(config, &parts, None))
    }
}

/// Simulate one layer's backward pass on `config` under `technique`
/// (dense layer: ifmap density 1).
///
/// Returns the report plus the decisions taken (order, partitioning) so
/// callers can inspect what Algorithm 1 / the partition selector chose.
pub fn simulate_layer_backward(
    gemm: GemmShape,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
) -> (SimReport, LayerDecision) {
    simulate_layer_backward_ex(gemm, 1.0, config, technique, is_first)
}

/// [`simulate_layer_backward`] with an explicit ifmap density.
pub fn simulate_layer_backward_ex(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
) -> (SimReport, LayerDecision) {
    let policy = TilePolicy::for_config(config);
    let mut proto = Schedule::new("bwd");
    let tensors = LayerTensors::register(&mut proto, "l");

    let run_plain = |order: BackwardOrder| -> SimReport {
        if config.cores == 1 {
            let mut s = proto.fork("bwd");
            BackwardBuilder::new(gemm, policy, tensors)
                .with_ifmap_density(density)
                .emit(order, is_first, &mut s);
            Engine::new(config).run(&s)
        } else {
            // Conventional multi-core execution: batch (weight-sharing)
            // data parallelism across cores.
            let p = partition_backward_ex(
                &proto,
                tensors,
                gemm,
                density,
                policy,
                PartitionScheme::WeightSharing,
                config.cores as u64,
                order,
                is_first,
            );
            mc_to_report(&run_multicore(config, &p.schedules, p.reduction))
        }
    };

    // Order used on a sub-GEMM after an M-split across cores.
    let cores = config.cores as u64;
    let multicore_sub_gemm = || gemm.split(igo_tensor::GemmDim::M, cores)[0];
    let algorithm1 = |g: GemmShape| BackwardOrder::from(select_order(g));

    match technique {
        Technique::Baseline => {
            let r = run_plain(BackwardOrder::Baseline);
            (
                r,
                LayerDecision {
                    order: BackwardOrder::Baseline,
                    partition: None,
                },
            )
        }
        Technique::IdealDyReuse => {
            let r = run_plain(BackwardOrder::IdealDyReuse);
            (
                r,
                LayerDecision {
                    order: BackwardOrder::IdealDyReuse,
                    partition: None,
                },
            )
        }
        Technique::Interleaving => {
            let r = run_plain(BackwardOrder::Interleaved);
            (
                r,
                LayerDecision {
                    order: BackwardOrder::Interleaved,
                    partition: None,
                },
            )
        }
        Technique::Rearrangement => {
            let order = if config.cores == 1 {
                algorithm1(gemm)
            } else {
                algorithm1(multicore_sub_gemm())
            };
            let r = run_plain(order);
            (
                r,
                LayerDecision {
                    order,
                    partition: None,
                },
            )
        }
        Technique::RearrangementOracle => {
            let mut best: Option<(SimReport, BackwardOrder)> = None;
            for order in [
                BackwardOrder::Interleaved,
                BackwardOrder::DxMajor,
                BackwardOrder::DwMajor,
            ] {
                let r = run_plain(order);
                if best.as_ref().is_none_or(|(b, _)| r.cycles < b.cycles) {
                    best = Some((r, order));
                }
            }
            let (r, order) = best.expect("three candidates");
            (
                r,
                LayerDecision {
                    order,
                    partition: None,
                },
            )
        }
        Technique::DataPartitioning => {
            simulate_partitioned_backward(gemm, density, config, is_first, &proto, tensors, policy)
        }
    }
}

/// The §5 step: evaluate the candidate partitionings (composed with
/// Algorithm 1 ordering) and keep the fastest. On a single core the
/// unpartitioned rearranged schedule is also a candidate (partitioning is
/// optional there); on a multi-core NPU some partitioning is required to
/// use the cores, so the candidates are the three schemes at `cores`
/// partitions.
#[allow(clippy::too_many_arguments)]
fn simulate_partitioned_backward(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    is_first: bool,
    proto: &Schedule,
    tensors: LayerTensors,
    policy: TilePolicy,
) -> (SimReport, LayerDecision) {
    let algorithm1 = |g: GemmShape| BackwardOrder::from(select_order(g));
    let mut best: Option<(SimReport, LayerDecision)> = None;
    let mut consider = |r: SimReport, d: LayerDecision| {
        if best.as_ref().is_none_or(|(b, _)| r.cycles < b.cycles) {
            best = Some((r, d));
        }
    };

    if config.cores == 1 {
        // Unpartitioned candidates: the rearranged schedule and — because
        // the mapping selection may keep the conventional mapping when no
        // alternative wins — the baseline order.
        for order in dedup_orders([algorithm1(gemm), BackwardOrder::Baseline]) {
            let mut s = proto.fork("bwd");
            BackwardBuilder::new(gemm, policy, tensors)
                .with_ifmap_density(density)
                .emit(order, is_first, &mut s);
            consider(
                Engine::new(config).run(&s),
                LayerDecision {
                    order,
                    partition: None,
                },
            );
        }
        for scheme in PartitionScheme::ALL {
            for parts in SINGLE_CORE_PART_CANDIDATES {
                let sub = gemm.split(scheme.split_dim(), parts)[0];
                for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                    let p = partition_backward_ex(
                        proto, tensors, gemm, density, policy, scheme, parts, order, is_first,
                    );
                    let mc = run_sequential_partitions(config, &p.schedules, p.reduction);
                    consider(
                        mc_to_report(&mc),
                        LayerDecision {
                            order,
                            partition: Some((scheme, p.schedules.len() as u64)),
                        },
                    );
                }
            }
        }
    } else {
        let parts = config.cores as u64;
        for scheme in PartitionScheme::ALL {
            let sub = gemm.split(scheme.split_dim(), parts)[0];
            for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                let p = partition_backward_ex(
                    proto, tensors, gemm, density, policy, scheme, parts, order, is_first,
                );
                let mc = run_multicore(config, &p.schedules, p.reduction);
                consider(
                    mc_to_report(&mc),
                    LayerDecision {
                        order,
                        partition: Some((scheme, p.schedules.len() as u64)),
                    },
                );
            }
        }
    }
    best.expect("at least one candidate")
}

/// Per-layer outcome within a model report.
#[derive(Debug, Clone)]
pub struct LayerOutcome {
    /// Layer name.
    pub name: String,
    /// Instances of this exact layer in the model (count × conv groups).
    pub multiplicity: u64,
    /// Forward-pass report of one instance.
    pub forward: SimReport,
    /// Backward-pass report of one instance.
    pub backward: SimReport,
    /// Scheduler decisions for the backward pass.
    pub decision: LayerDecision,
    /// The layer's forward GEMM (convenience for downstream analyses).
    pub gemm: GemmShape,
}

impl LayerOutcome {
    /// Total cycles contributed by all instances (forward + backward).
    pub fn total_cycles(&self) -> u64 {
        (self.forward.cycles + self.backward.cycles) * self.multiplicity
    }

    /// Backward cycles of all instances.
    pub fn backward_cycles(&self) -> u64 {
        self.backward.cycles * self.multiplicity
    }
}

/// A full training-step simulation of one model under one technique.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Configuration name.
    pub config: String,
    /// Technique applied.
    pub technique: Technique,
    /// Per-distinct-layer outcomes, in forward order.
    pub layers: Vec<LayerOutcome>,
}

impl ModelReport {
    /// Total training-step cycles (forward + backward over all layers).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerOutcome::total_cycles).sum()
    }

    /// Forward-pass cycles only.
    pub fn forward_cycles(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward.cycles * l.multiplicity)
            .sum()
    }

    /// Backward-pass cycles only.
    pub fn backward_cycles(&self) -> u64 {
        self.layers.iter().map(LayerOutcome::backward_cycles).sum()
    }

    /// Aggregate backward-pass DRAM traffic (the Figure 5 quantity).
    pub fn backward_traffic(&self) -> Traffic {
        let mut t = Traffic::new();
        for l in &self.layers {
            t.merge(&l.backward.traffic.scaled(l.multiplicity));
        }
        t
    }

    /// Aggregate DRAM traffic of the whole step.
    pub fn total_traffic(&self) -> Traffic {
        let mut t = Traffic::new();
        for l in &self.layers {
            t.merge(&l.forward.traffic.scaled(l.multiplicity));
            t.merge(&l.backward.traffic.scaled(l.multiplicity));
        }
        t
    }

    /// Execution time normalised to a baseline run (Figure 12's y-axis).
    pub fn normalized_to(&self, baseline: &ModelReport) -> f64 {
        self.total_cycles() as f64 / baseline.total_cycles() as f64
    }
}

/// Simulate one model's full training step under `technique`.
///
/// The model should have been built with `config.default_batch()` so the
/// per-core batch matches the paper's setup (callers that sweep batch size
/// on purpose may deviate — the simulation itself is agnostic).
pub fn simulate_model(model: &Model, config: &NpuConfig, technique: Technique) -> ModelReport {
    let layers = model
        .layers
        .iter()
        .map(|layer| {
            let forward = simulate_layer_forward_ex(layer.gemm, layer.ifmap_density, config);
            let (backward, decision) = simulate_layer_backward_ex(
                layer.gemm,
                layer.ifmap_density,
                config,
                technique,
                layer.is_first,
            );
            LayerOutcome {
                name: layer.name.clone(),
                multiplicity: layer.count as u64 * layer.groups as u64,
                forward,
                backward,
                decision,
                gemm: layer.gemm,
            }
        })
        .collect();
    ModelReport {
        model: model.name.clone(),
        config: config.name.clone(),
        technique,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_tensor::TensorClass;

    /// A dY-heavy layer (a ResNet expansion conv): dY is 25 MB while W is
    /// 64 KiB — the regime the paper's techniques target.
    fn dy_heavy_conv() -> GemmShape {
        GemmShape::new(25088, 64, 256)
    }

    #[test]
    fn interleaving_reduces_dy_reads_on_large_npu() {
        let config = NpuConfig::large_single_core();
        let gemm = dy_heavy_conv();
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        let (inter, _) = simulate_layer_backward(gemm, &config, Technique::Interleaving, false);
        assert!(
            inter.traffic.read(TensorClass::OutGrad) < base.traffic.read(TensorClass::OutGrad),
            "interleaving must reduce dY reads on a dY-heavy layer: {} vs {}",
            inter.traffic.read(TensorClass::OutGrad),
            base.traffic.read(TensorClass::OutGrad),
        );
        assert!(inter.cycles < base.cycles);
        assert_eq!(inter.macs, base.macs, "same math");
    }

    #[test]
    fn ladder_is_monotone_for_dy_heavy_layer() {
        // Cumulative techniques must not slow a dY-dominated layer down.
        let config = NpuConfig::large_single_core();
        let mut last = u64::MAX;
        for technique in [
            Technique::Baseline,
            Technique::Rearrangement,
            Technique::DataPartitioning,
        ] {
            let (r, _) = simulate_layer_backward(dy_heavy_conv(), &config, technique, false);
            assert!(
                r.cycles <= last,
                "{technique} slower than predecessor: {} > {last}",
                r.cycles
            );
            last = r.cycles;
        }
    }

    #[test]
    fn balanced_layer_never_regresses_badly() {
        // A traffic-balanced GEMM (BERT FFN): every operand is large, so
        // fusion buys little — but the cost-driven block selection must
        // keep the transformed schedules within a few percent of baseline.
        let config = NpuConfig::large_single_core();
        let gemm = GemmShape::new(4096, 1024, 4096);
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        // Zipped interleaving splits the SPM between two co-resident
        // working sets, so a balanced layer tolerates a larger slack than
        // the cost-planned fused orders.
        for (technique, slack) in [
            (Technique::Interleaving, 1.25),
            (Technique::Rearrangement, 1.10),
            (Technique::DataPartitioning, 1.001),
        ] {
            let (r, _) = simulate_layer_backward(gemm, &config, technique, false);
            assert!(
                (r.cycles as f64) < slack * base.cycles as f64,
                "{technique} regressed beyond {slack}: {} vs {}",
                r.cycles,
                base.cycles
            );
        }
    }

    #[test]
    fn ideal_reuse_is_a_lower_bound_on_dy_traffic() {
        let config = NpuConfig::small_edge();
        let gemm = GemmShape::new(512, 576, 256);
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        let (ideal, _) = simulate_layer_backward(gemm, &config, Technique::IdealDyReuse, false);
        assert!(ideal.traffic.read(TensorClass::OutGrad) < base.traffic.read(TensorClass::OutGrad));
        assert!(ideal.cycles < base.cycles);
    }

    #[test]
    fn first_layer_identical_across_techniques() {
        let config = NpuConfig::large_single_core();
        let gemm = GemmShape::new(100_352, 147, 64);
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, true);
        let (inter, _) = simulate_layer_backward(gemm, &config, Technique::Interleaving, true);
        let (rearr, _) = simulate_layer_backward(gemm, &config, Technique::Rearrangement, true);
        assert_eq!(base.cycles, inter.cycles);
        assert_eq!(base.cycles, rearr.cycles);
        assert_eq!(base.macs, gemm.macs(), "dW only");
    }

    #[test]
    fn oracle_never_loses_to_algorithm1() {
        let config = NpuConfig::large_single_core();
        for gemm in [
            GemmShape::new(4096, 1024, 4096),
            GemmShape::new(8, 479, 1024),
            GemmShape::new(25088, 576, 64),
        ] {
            let (alg, _) = simulate_layer_backward(gemm, &config, Technique::Rearrangement, false);
            let (oracle, _) =
                simulate_layer_backward(gemm, &config, Technique::RearrangementOracle, false);
            assert!(oracle.cycles <= alg.cycles, "{gemm}");
        }
    }

    #[test]
    fn multicore_runs_and_reduces() {
        let config = NpuConfig::large_server(2);
        let gemm = GemmShape::new(8192, 1024, 1024);
        let (base, d) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        assert_eq!(d.order, BackwardOrder::Baseline);
        assert!(base.cycles > 0);
        // Batch parallelism reduces dW partials: WGrad read traffic from
        // the reduction must be present.
        assert!(base.traffic.read(TensorClass::WGrad) > 0);
    }

    #[test]
    fn model_report_totals_are_consistent() {
        let config = NpuConfig::large_single_core();
        let model = igo_workloads::zoo::model(igo_workloads::ModelId::Ncf, 8);
        let report = simulate_model(&model, &config, Technique::Baseline);
        assert_eq!(report.layers.len(), model.layers.len());
        assert_eq!(
            report.total_cycles(),
            report.forward_cycles() + report.backward_cycles()
        );
        assert!(report.total_traffic().total() > 0);
        assert!((report.normalized_to(&report) - 1.0).abs() < 1e-12);
    }
}
