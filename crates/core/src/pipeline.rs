//! End-to-end training-step simulation.
//!
//! Glues together the schedule builders, Algorithm 1, the partitioning
//! schemes, and the NPU simulator into the experiment the paper runs:
//! *simulate the forward and backward passes of a model under a technique
//! and report cycles and traffic* (§6.1: "our focus is primarily on the
//! forward pass and backward pass stages").
//!
//! Distinct layer shapes are simulated once and multiplied by their
//! instance count (and convolution group count) — repeated identical
//! layers are bit-identical under this machine model, so this is exact,
//! not an approximation.
//!
//! # Performance architecture
//!
//! The simulate-and-select loops are the sweeps' hot path, and three
//! composable optimizations keep them fast without changing a single
//! reported number (see `tests/golden_determinism.rs`):
//!
//! * **parallelism** ([`SimOptions::parallel`]) — candidate schedules and
//!   independent model layers are evaluated on a scoped worker pool
//!   ([`crate::parallel`]); the reduction picks the lexicographic minimum
//!   of `(cycles, candidate index)`, which equals the sequential rule
//!   "first candidate with the strictly smallest cycle count" regardless
//!   of completion order;
//! * **memoization** ([`SimOptions::memoize`]) — layer results are cached
//!   process-wide keyed by GEMM shape, density bits, config fingerprint
//!   and technique ([`crate::simcache`]);
//! * **pruning** ([`SimOptions::prune`]) — each candidate gets an
//!   analytical makespan lower bound ([`Engine::lower_bound`]); the
//!   candidate with the smallest bound is simulated fully and every
//!   candidate whose bound *strictly* exceeds that reference's cycles is
//!   skipped, which cannot change the winner because a pruned candidate's
//!   true cycle count is at least its bound.

use crate::bound::{multicore_candidate_bound, plain_candidate_bound, sequential_candidate_bound};
use crate::parallel::parallel_map_workers;
use crate::partition::{
    partition_backward_ex, partition_forward_ex, plan_partition_backward, plan_partition_forward,
    PartitionPlan, PartitionScheme,
};
use crate::schedule::{
    forward_emission_signature, forward_schedule, BackwardBuilder, BackwardOrder, EmissionSig,
    LayerTensors,
};
use crate::select::select_order;
use crate::simcache;
use crate::simcache::{ConfigFingerprint, ProfilePass};
use crate::technique::Technique;
use crate::tiling::TilePolicy;
use igo_npu_sim::{
    reduction_cycles, replay_ladder, replay_multicore, replay_multicore_bounded,
    replay_sequential_partitions_bounded, run_multicore_with_scratch,
    run_sequential_partitions_with_scratch, sequential_combined, AnalyticCollector,
    AnalyticScratch, Engine, EngineScratch, LadderScratch, NpuConfig, Schedule, SimReport,
    StreamOp, TensorId, Traffic,
};
use igo_tensor::GemmShape;
use igo_workloads::{Layer, Model};

/// Which pass of training a report concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrainingPhase {
    /// The forward pass (technique-independent).
    Forward,
    /// The backward pass (where the paper's techniques apply).
    Backward,
}

/// Execution-strategy toggles for the simulation pipeline. Every
/// combination produces bit-identical reports; the toggles only trade
/// wall-clock time. [`SimOptions::default`] enables everything;
/// [`SimOptions::sequential`] is the plain reference path the golden tests
/// compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Evaluate candidate schedules and model layers on a worker pool.
    pub parallel: bool,
    /// Serve repeated layer simulations from the process-wide memo cache.
    pub memoize: bool,
    /// Skip candidates whose analytical lower bound proves them dominated.
    pub prune: bool,
    /// Worker-pool size; `0` means one worker per hardware thread (or the
    /// `IGO_SIM_THREADS` override). Only meaningful when `parallel` is set
    /// (tests force a pool larger than the machine to exercise
    /// cross-thread determinism).
    pub workers: usize,
    /// Evaluate layers through the analytic engine: candidate streams are
    /// replayed allocation-free ([`AnalyticCollector::replay`], provably
    /// bit-identical to [`Engine::run`]) and pruning uses the closed-form
    /// bounds of [`crate::bound`] instead of per-schedule scans.
    pub analytic_fast_path: bool,
    /// Evaluate SPM-capacity ladders with one capacity-oblivious profiling
    /// pass per candidate schedule ([`igo_npu_sim::replay_ladder`]) and
    /// memoize the resulting capacity curves keyed *without* the SPM size,
    /// so `(model, technique)` points are profiled once and every ladder
    /// rung is answered from the same pass. Only affects
    /// [`simulate_model_ladder`]; requires `analytic_fast_path`.
    pub capacity_profile: bool,
}

impl SimOptions {
    /// All optimizations on (the default).
    pub const fn optimized() -> Self {
        Self {
            parallel: true,
            memoize: true,
            prune: true,
            workers: 0,
            analytic_fast_path: true,
            capacity_profile: true,
        }
    }

    /// The plain sequential path: no pool, no cache, no pruning, cycle
    /// engine only.
    pub const fn sequential() -> Self {
        Self {
            parallel: false,
            memoize: false,
            prune: false,
            workers: 0,
            analytic_fast_path: false,
            capacity_profile: false,
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        Self::optimized()
    }
}

/// The backward emission order the pipeline derives from Algorithm 1 for a
/// layer with forward shape `gemm` on `config` — the `Rearrangement`
/// decision. On a multi-core NPU the decision is taken on the per-core
/// sub-GEMM of the conventional batch (M-dimension) split, because that is
/// the shape each core actually executes.
///
/// Exposed so external checkers (the [`crate::audit`] differential fuzzer)
/// can compare the pipeline's decision against an independent recomputation
/// of the paper's Algorithm 1 from the tensor dimensions.
pub fn rearranged_order(gemm: GemmShape, config: &NpuConfig) -> BackwardOrder {
    let decide = |g: GemmShape| BackwardOrder::from(select_order(g));
    if config.cores == 1 {
        decide(gemm)
    } else {
        decide(gemm.split(igo_tensor::GemmDim::M, config.cores as u64)[0])
    }
}

/// The per-partition count used by single-core data partitioning
/// candidates (§5: partitions are "processed one partition at a time on a
/// single-core NPU").
const SINGLE_CORE_PART_CANDIDATES: [u64; 2] = [2, 4];

fn dedup_orders(orders: [BackwardOrder; 2]) -> Vec<BackwardOrder> {
    if orders[0] == orders[1] {
        vec![orders[0]]
    } else {
        orders.to_vec()
    }
}

/// What the scheduler decided for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerDecision {
    /// The backward emission order used.
    pub order: BackwardOrder,
    /// The partitioning applied, if any: `(scheme, parts)`.
    pub partition: Option<(PartitionScheme, u64)>,
}

/// One fully built way to execute a layer's backward pass, ready to bound
/// or simulate.
struct Candidate {
    decision: LayerDecision,
    exec: CandidateExec,
}

enum CandidateExec {
    /// One schedule on one core.
    Single(Schedule),
    /// Partition segments chained on a single core, then a reduction.
    Sequential {
        segments: Vec<Schedule>,
        reduction: Option<StreamOp>,
    },
    /// One schedule per core, then a reduction.
    Multicore {
        per_core: Vec<Schedule>,
        reduction: Option<StreamOp>,
    },
}

impl Candidate {
    /// Analytical makespan lower bound; never exceeds [`Candidate::run`]'s
    /// cycles (see [`Engine::lower_bound`]).
    fn lower_bound(&self, config: &NpuConfig) -> u64 {
        let engine = Engine::new(config);
        match &self.exec {
            CandidateExec::Single(s) => engine.lower_bound(s),
            CandidateExec::Sequential {
                segments,
                reduction,
            } => engine.lower_bound_concat(segments) + reduction_cycles(config, *reduction),
            CandidateExec::Multicore {
                per_core,
                reduction,
            } => {
                let slowest = per_core
                    .iter()
                    .map(|s| engine.lower_bound(s))
                    .max()
                    .unwrap_or(0);
                slowest + reduction_cycles(config, *reduction)
            }
        }
    }

    fn run(&self, config: &NpuConfig, scratch: &mut EngineScratch) -> SimReport {
        match &self.exec {
            CandidateExec::Single(s) => Engine::new(config).run_with_scratch(s, scratch),
            CandidateExec::Sequential {
                segments,
                reduction,
            } => run_sequential_partitions_with_scratch(config, segments, *reduction, scratch)
                .combined(),
            CandidateExec::Multicore {
                per_core,
                reduction,
            } => run_multicore_with_scratch(config, per_core, *reduction, scratch).combined(),
        }
    }
}

/// Evaluate `candidates` under `options` and return the winner: the first
/// candidate (in construction order) with the strictly smallest cycle
/// count — i.e. the lexicographic minimum of `(cycles, index)`.
fn select_best(
    candidates: &[Candidate],
    config: &NpuConfig,
    options: &SimOptions,
) -> (SimReport, LayerDecision) {
    assert!(!candidates.is_empty(), "no candidates to select from");
    let mut evaluated: Vec<(usize, SimReport)> = Vec::with_capacity(candidates.len());
    let to_run: Vec<usize> = if options.prune {
        let bounds: Vec<u64> = candidates.iter().map(|c| c.lower_bound(config)).collect();
        let ref_idx = (0..candidates.len())
            .min_by_key(|&i| (bounds[i], i))
            .expect("non-empty");
        let reference = candidates[ref_idx].run(config, &mut EngineScratch::new());
        let cutoff = reference.cycles;
        evaluated.push((ref_idx, reference));
        // Strict comparison: a candidate with `bound == cutoff` could still
        // tie the reference and win on index, so only `bound > cutoff` is
        // provably dominated.
        (0..candidates.len())
            .filter(|&i| i != ref_idx && bounds[i] <= cutoff)
            .collect()
    } else {
        (0..candidates.len()).collect()
    };
    let runs: Vec<SimReport> = if options.parallel {
        parallel_map_workers(
            &to_run,
            options.workers,
            EngineScratch::new,
            |scratch, &i| candidates[i].run(config, scratch),
        )
    } else {
        let mut scratch = EngineScratch::new();
        to_run
            .iter()
            .map(|&i| candidates[i].run(config, &mut scratch))
            .collect()
    };
    evaluated.extend(to_run.into_iter().zip(runs));
    let (best_idx, best) = evaluated
        .into_iter()
        .min_by_key(|&(i, r)| (r.cycles, i))
        .expect("at least the reference was evaluated");
    (best, candidates[best_idx].decision)
}

// ---------------------------------------------------------------------------
// Analytic fast path
// ---------------------------------------------------------------------------

/// Tensor ids for a fast-path layer. Matches the id sequence
/// [`LayerTensors::register`] would produce on a fresh schedule, so replayed
/// streams are structurally identical to the engine path's (tensor ids feed
/// the replacement tie-break).
fn fast_layer_tensors() -> (LayerTensors, u32) {
    (
        LayerTensors {
            x: TensorId::from_raw(0),
            w: TensorId::from_raw(1),
            y: TensorId::from_raw(2),
            dx: TensorId::from_raw(3),
            dw: TensorId::from_raw(4),
            dy: TensorId::from_raw(5),
        },
        6,
    )
}

/// Reusable per-worker state for fast-path candidate evaluation.
#[derive(Default)]
struct FastScratch {
    collectors: Vec<AnalyticCollector>,
    replay: AnalyticScratch,
    ladder: LadderScratch,
}

/// The first `n` collectors of `pool`, cleared, growing the pool on demand.
fn cleared_collectors(pool: &mut Vec<AnalyticCollector>, n: usize) -> &mut [AnalyticCollector] {
    while pool.len() < n {
        pool.push(AnalyticCollector::new());
    }
    let slice = &mut pool[..n];
    for c in slice.iter_mut() {
        c.clear();
    }
    slice
}

/// A backward candidate held as unemitted builders plus a precomputed
/// closed-form bound. `run` emits into [`AnalyticCollector`]s and replays —
/// bit-identical to running the equivalent [`Candidate`] through the engine,
/// without materializing any [`Schedule`].
struct FastCandidate {
    decision: LayerDecision,
    /// Closed-form admissible bound on `run(..).cycles`
    /// (see [`crate::bound`]).
    bound: u64,
    exec: FastExec,
}

enum FastExec {
    /// One emission stream on one core.
    Single(Box<BackwardBuilder>),
    /// Partition streams chained back-to-back (no barrier) on a single
    /// core, then a reduction.
    Sequential {
        builders: Vec<BackwardBuilder>,
        reduction: Option<StreamOp>,
    },
    /// One emission stream per core, then a reduction.
    Multicore {
        builders: Vec<BackwardBuilder>,
        reduction: Option<StreamOp>,
    },
}

thread_local! {
    /// Per-thread fast-path working memory, reused across layers and
    /// candidate evaluations so the collector and replay buffers are
    /// allocated once per thread instead of regrown per layer.
    static FAST_SCRATCH: std::cell::RefCell<FastScratch> =
        std::cell::RefCell::new(FastScratch::default());
}

/// Run `f` with this thread's reusable [`FastScratch`].
fn with_fast_scratch<R>(f: impl FnOnce(&mut FastScratch) -> R) -> R {
    FAST_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

impl FastCandidate {
    /// Emit and replay this candidate. With a `cutoff`, returns `None` as
    /// soon as the replay proves the candidate must exceed `cutoff` cycles
    /// (see [`AnalyticCollector::replay_bounded`]); a completed run is
    /// bit-identical to the equivalent engine-path [`Candidate::run`].
    fn run_bounded(
        &self,
        engine: &Engine,
        config: &NpuConfig,
        is_first: bool,
        cutoff: Option<u64>,
        s: &mut FastScratch,
    ) -> Option<SimReport> {
        let order = self.decision.order;
        let FastScratch {
            collectors, replay, ..
        } = s;
        match &self.exec {
            FastExec::Single(builder) => {
                let c = &mut cleared_collectors(collectors, 1)[0];
                builder.register_grids(c);
                builder.emit(order, is_first, c);
                c.replay_bounded(engine, replay, cutoff).map(|r| r.report)
            }
            FastExec::Sequential {
                builders,
                reduction,
            } => {
                // One collector: segments concatenate with no barrier,
                // mirroring `Schedule::append_compatible`.
                let c = &mut cleared_collectors(collectors, 1)[0];
                for b in builders {
                    b.register_grids(c);
                }
                for b in builders {
                    b.emit(order, is_first, c);
                }
                replay_sequential_partitions_bounded(config, c, *reduction, replay, cutoff)
                    .map(|r| r.combined())
            }
            FastExec::Multicore {
                builders,
                reduction,
            } => {
                let cores = cleared_collectors(collectors, builders.len());
                for (b, c) in builders.iter().zip(cores.iter_mut()) {
                    b.register_grids(c);
                    b.emit(order, is_first, c);
                }
                replay_multicore_bounded(config, cores, *reduction, replay, cutoff)
                    .map(|r| r.combined())
            }
        }
    }
}

/// [`select_best`] over fast-path candidates: the same lexicographic
/// `(cycles, index)` winner, reached with strictly less work. Candidates
/// are evaluated in ascending `(bound, index)` order against a running
/// best: any candidate whose closed-form bound exceeds the best cycles so
/// far is skipped outright (its true cycles can only be larger), and the
/// rest replay under a cutoff that aborts them mid-stream once they
/// provably exceed the running best. Neither rule can change the winner —
/// a skipped or aborted candidate's true cycle count *strictly* exceeds
/// the running best, so it loses even the index tie-break — and the
/// running best can only tighten the engine path's static
/// reference-cutoff rule, never loosen it.
fn select_best_fast(
    candidates: &[FastCandidate],
    config: &NpuConfig,
    is_first: bool,
    options: &SimOptions,
) -> (SimReport, LayerDecision) {
    assert!(!candidates.is_empty(), "no candidates to select from");
    let engine = Engine::new(config);
    let mut eval_order: Vec<usize> = (0..candidates.len()).collect();
    if options.prune {
        eval_order.sort_by_key(|&i| (candidates[i].bound, i));
    }
    with_fast_scratch(|s| {
        let mut best: Option<(usize, SimReport)> = None;
        for &i in &eval_order {
            let cutoff = match &best {
                Some((_, b)) if options.prune => {
                    if candidates[i].bound > b.cycles {
                        continue;
                    }
                    Some(b.cycles)
                }
                _ => None,
            };
            if let Some(r) = candidates[i].run_bounded(&engine, config, is_first, cutoff, s) {
                let wins = match &best {
                    None => true,
                    Some((bi, b)) => (r.cycles, i) < (b.cycles, *bi),
                };
                if wins {
                    best = Some((i, r));
                }
            }
        }
        let (best_idx, report) = best.expect("the first evaluation has no cutoff");
        (report, candidates[best_idx].decision)
    })
}

/// Simulate one layer's forward pass on `config` (dense layer: ifmap
/// density 1).
pub fn simulate_layer_forward(gemm: GemmShape, config: &NpuConfig) -> SimReport {
    simulate_layer_forward_ex(gemm, 1.0, config)
}

/// Simulate one layer's forward pass with an explicit ifmap density
/// (raw-layout `X` traffic scaling for convolution layers).
pub fn simulate_layer_forward_ex(gemm: GemmShape, density: f64, config: &NpuConfig) -> SimReport {
    simulate_layer_forward_with(gemm, density, config, &SimOptions::default())
}

/// [`simulate_layer_forward_ex`] with explicit execution options.
pub fn simulate_layer_forward_with(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    options: &SimOptions,
) -> SimReport {
    if options.memoize {
        if let Some(hit) = simcache::get_forward(gemm, density, config) {
            return hit;
        }
    }
    let policy = TilePolicy::for_config(config);
    let report = if options.analytic_fast_path {
        let (tensors, first_free_id) = fast_layer_tensors();
        let engine = Engine::new(config);
        with_fast_scratch(|scratch| {
            let FastScratch {
                collectors, replay, ..
            } = scratch;
            if config.cores == 1 {
                let c = &mut cleared_collectors(collectors, 1)[0];
                BackwardBuilder::new(gemm, policy, tensors).register_grids(c);
                forward_schedule(gemm, policy, tensors, density, c);
                c.replay(&engine, replay).report
            } else {
                let mut next = first_free_id;
                let (sub_gemms, part_tensors) = plan_partition_forward(
                    &mut |_class, _name| {
                        let id = TensorId::from_raw(next);
                        next += 1;
                        id
                    },
                    tensors,
                    gemm,
                    config.cores as u64,
                );
                let cores = cleared_collectors(collectors, sub_gemms.len());
                for ((sub, t), c) in sub_gemms.iter().zip(&part_tensors).zip(cores.iter_mut()) {
                    BackwardBuilder::new(*sub, policy, *t).register_grids(c);
                    forward_schedule(*sub, policy, *t, density, c);
                }
                replay_multicore(config, cores, None, replay).combined()
            }
        })
    } else {
        let mut proto = Schedule::new("fwd");
        let tensors = LayerTensors::register(&mut proto, "l");
        if config.cores == 1 {
            let mut s = proto.fork("fwd");
            forward_schedule(gemm, policy, tensors, density, &mut s);
            Engine::new(config).run(&s)
        } else {
            let parts =
                partition_forward_ex(&proto, tensors, gemm, density, policy, config.cores as u64);
            run_multicore_with_scratch(config, &parts, None, &mut EngineScratch::new()).combined()
        }
    };
    if options.memoize {
        simcache::put_forward(gemm, density, config, report);
    }
    report
}

/// Simulate one layer's backward pass on `config` under `technique`
/// (dense layer: ifmap density 1).
///
/// Returns the report plus the decisions taken (order, partitioning) so
/// callers can inspect what Algorithm 1 / the partition selector chose.
pub fn simulate_layer_backward(
    gemm: GemmShape,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
) -> (SimReport, LayerDecision) {
    simulate_layer_backward_ex(gemm, 1.0, config, technique, is_first)
}

/// [`simulate_layer_backward`] with an explicit ifmap density.
pub fn simulate_layer_backward_ex(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
) -> (SimReport, LayerDecision) {
    simulate_layer_backward_with(
        gemm,
        density,
        config,
        technique,
        is_first,
        &SimOptions::default(),
    )
}

/// [`simulate_layer_backward_ex`] with explicit execution options.
pub fn simulate_layer_backward_with(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
    options: &SimOptions,
) -> (SimReport, LayerDecision) {
    if options.memoize {
        if let Some(hit) = simcache::get_backward(gemm, density, config, technique, is_first) {
            return hit;
        }
    }
    let out = if options.analytic_fast_path {
        fast_backward_uncached(gemm, density, config, technique, is_first, options)
    } else {
        backward_uncached(gemm, density, config, technique, is_first, options)
    };
    if options.memoize {
        simcache::put_backward(gemm, density, config, technique, is_first, out.0, out.1);
    }
    out
}

fn backward_uncached(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
    options: &SimOptions,
) -> (SimReport, LayerDecision) {
    let policy = TilePolicy::for_config(config);
    let mut proto = Schedule::new("bwd");
    let tensors = LayerTensors::register(&mut proto, "l");

    // A non-partitioned candidate: one schedule on a single core, or the
    // conventional batch (weight-sharing) data parallelism across cores.
    let plain_candidate = |order: BackwardOrder| -> Candidate {
        let exec = if config.cores == 1 {
            let mut s = proto.fork("bwd");
            BackwardBuilder::new(gemm, policy, tensors)
                .with_ifmap_density(density)
                .emit(order, is_first, &mut s);
            CandidateExec::Single(s)
        } else {
            let p = partition_backward_ex(
                &proto,
                tensors,
                gemm,
                density,
                policy,
                PartitionScheme::WeightSharing,
                config.cores as u64,
                order,
                is_first,
            );
            CandidateExec::Multicore {
                per_core: p.schedules,
                reduction: p.reduction,
            }
        };
        Candidate {
            decision: LayerDecision {
                order,
                partition: None,
            },
            exec,
        }
    };

    match technique {
        Technique::Baseline => {
            let c = plain_candidate(BackwardOrder::Baseline);
            let r = c.run(config, &mut EngineScratch::new());
            (r, c.decision)
        }
        Technique::IdealDyReuse => {
            let c = plain_candidate(BackwardOrder::IdealDyReuse);
            let r = c.run(config, &mut EngineScratch::new());
            (r, c.decision)
        }
        Technique::Interleaving => {
            let c = plain_candidate(BackwardOrder::Interleaved);
            let r = c.run(config, &mut EngineScratch::new());
            (r, c.decision)
        }
        Technique::Rearrangement => {
            let c = plain_candidate(rearranged_order(gemm, config));
            let r = c.run(config, &mut EngineScratch::new());
            (r, c.decision)
        }
        Technique::RearrangementOracle => {
            let candidates: Vec<Candidate> = [
                BackwardOrder::Interleaved,
                BackwardOrder::DxMajor,
                BackwardOrder::DwMajor,
            ]
            .into_iter()
            .map(plain_candidate)
            .collect();
            select_best(&candidates, config, options)
        }
        Technique::DataPartitioning => {
            let candidates =
                partition_candidates(gemm, density, config, is_first, &proto, tensors, policy);
            select_best(&candidates, config, options)
        }
    }
}

/// [`backward_uncached`] on the analytic fast path: the same candidate
/// sets and selection semantics, but candidates are held as unemitted
/// [`BackwardBuilder`]s, evaluated by allocation-free replay (bit-identical
/// to the engine by construction), and pruned with the closed-form bounds
/// of [`crate::bound`].
fn fast_backward_uncached(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
    options: &SimOptions,
) -> (SimReport, LayerDecision) {
    let policy = TilePolicy::for_config(config);
    let (tensors, first_free_id) = fast_layer_tensors();
    let engine = Engine::new(config);

    // A non-partitioned candidate: one stream on a single core, or the
    // conventional batch (weight-sharing) data parallelism across cores.
    let plain_candidate = |order: BackwardOrder| -> FastCandidate {
        let decision = LayerDecision {
            order,
            partition: None,
        };
        if config.cores == 1 {
            let builder = BackwardBuilder::new(gemm, policy, tensors).with_ifmap_density(density);
            let bound = plain_candidate_bound(&builder, order, is_first, &engine);
            FastCandidate {
                decision,
                bound,
                exec: FastExec::Single(Box::new(builder)),
            }
        } else {
            let parts = config.cores as u64;
            let scheme = PartitionScheme::WeightSharing;
            let bound = multicore_candidate_bound(
                config, &engine, tensors, gemm, density, policy, scheme, parts, order, is_first,
            );
            let mut next = first_free_id;
            let plan = plan_partition_backward(
                &mut |_class, _name| {
                    let id = TensorId::from_raw(next);
                    next += 1;
                    id
                },
                tensors,
                gemm,
                density,
                policy.dtype,
                scheme,
                parts,
                is_first,
            );
            let builders = plan
                .sub_gemms
                .iter()
                .zip(&plan.part_tensors)
                .map(|(sub, t)| BackwardBuilder::new(*sub, policy, *t).with_ifmap_density(density))
                .collect();
            FastCandidate {
                decision,
                bound,
                exec: FastExec::Multicore {
                    builders,
                    reduction: plan.reduction,
                },
            }
        }
    };

    let run_one = |c: FastCandidate| -> (SimReport, LayerDecision) {
        let r = with_fast_scratch(|s| c.run_bounded(&engine, config, is_first, None, s))
            .expect("unbounded run always completes");
        (r, c.decision)
    };

    match technique {
        Technique::Baseline => run_one(plain_candidate(BackwardOrder::Baseline)),
        Technique::IdealDyReuse => run_one(plain_candidate(BackwardOrder::IdealDyReuse)),
        Technique::Interleaving => run_one(plain_candidate(BackwardOrder::Interleaved)),
        Technique::Rearrangement => run_one(plain_candidate(rearranged_order(gemm, config))),
        Technique::RearrangementOracle => {
            let candidates: Vec<FastCandidate> = [
                BackwardOrder::Interleaved,
                BackwardOrder::DxMajor,
                BackwardOrder::DwMajor,
            ]
            .into_iter()
            .map(plain_candidate)
            .collect();
            select_best_fast(&candidates, config, is_first, options)
        }
        Technique::DataPartitioning => {
            let mut candidates: Vec<FastCandidate> = Vec::new();
            let algorithm1 = |g: GemmShape| BackwardOrder::from(select_order(g));
            if config.cores == 1 {
                for order in dedup_orders([algorithm1(gemm), BackwardOrder::Baseline]) {
                    candidates.push(plain_candidate(order));
                }
                for scheme in PartitionScheme::ALL {
                    for parts in SINGLE_CORE_PART_CANDIDATES {
                        let sub = gemm.split(scheme.split_dim(), parts)[0];
                        for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                            let bound = sequential_candidate_bound(
                                config, &engine, tensors, gemm, density, policy, scheme, parts,
                                order, is_first,
                            );
                            let mut next = first_free_id;
                            let plan = plan_partition_backward(
                                &mut |_class, _name| {
                                    let id = TensorId::from_raw(next);
                                    next += 1;
                                    id
                                },
                                tensors,
                                gemm,
                                density,
                                policy.dtype,
                                scheme,
                                parts,
                                is_first,
                            );
                            let builders: Vec<BackwardBuilder> = plan
                                .sub_gemms
                                .iter()
                                .zip(&plan.part_tensors)
                                .map(|(s, t)| {
                                    BackwardBuilder::new(*s, policy, *t).with_ifmap_density(density)
                                })
                                .collect();
                            candidates.push(FastCandidate {
                                decision: LayerDecision {
                                    order,
                                    partition: Some((scheme, builders.len() as u64)),
                                },
                                bound,
                                exec: FastExec::Sequential {
                                    builders,
                                    reduction: plan.reduction,
                                },
                            });
                        }
                    }
                }
            } else {
                let parts = config.cores as u64;
                for scheme in PartitionScheme::ALL {
                    let sub = gemm.split(scheme.split_dim(), parts)[0];
                    for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                        let bound = multicore_candidate_bound(
                            config, &engine, tensors, gemm, density, policy, scheme, parts, order,
                            is_first,
                        );
                        let mut next = first_free_id;
                        let plan = plan_partition_backward(
                            &mut |_class, _name| {
                                let id = TensorId::from_raw(next);
                                next += 1;
                                id
                            },
                            tensors,
                            gemm,
                            density,
                            policy.dtype,
                            scheme,
                            parts,
                            is_first,
                        );
                        let builders: Vec<BackwardBuilder> = plan
                            .sub_gemms
                            .iter()
                            .zip(&plan.part_tensors)
                            .map(|(s, t)| {
                                BackwardBuilder::new(*s, policy, *t).with_ifmap_density(density)
                            })
                            .collect();
                        candidates.push(FastCandidate {
                            decision: LayerDecision {
                                order,
                                partition: Some((scheme, builders.len() as u64)),
                            },
                            bound,
                            exec: FastExec::Multicore {
                                builders,
                                reduction: plan.reduction,
                            },
                        });
                    }
                }
            }
            select_best_fast(&candidates, config, is_first, options)
        }
    }
}

/// The §5 candidate set: the candidate partitionings (composed with
/// Algorithm 1 ordering), in the fixed order the sequential selector
/// walked them. On a single core the unpartitioned rearranged schedule is
/// also a candidate (partitioning is optional there); on a multi-core NPU
/// some partitioning is required to use the cores, so the candidates are
/// the three schemes at `cores` partitions.
#[allow(clippy::too_many_arguments)]
fn partition_candidates(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    is_first: bool,
    proto: &Schedule,
    tensors: LayerTensors,
    policy: TilePolicy,
) -> Vec<Candidate> {
    let algorithm1 = |g: GemmShape| BackwardOrder::from(select_order(g));
    let mut out: Vec<Candidate> = Vec::new();

    if config.cores == 1 {
        // Unpartitioned candidates: the rearranged schedule and — because
        // the mapping selection may keep the conventional mapping when no
        // alternative wins — the baseline order.
        for order in dedup_orders([algorithm1(gemm), BackwardOrder::Baseline]) {
            let mut s = proto.fork("bwd");
            BackwardBuilder::new(gemm, policy, tensors)
                .with_ifmap_density(density)
                .emit(order, is_first, &mut s);
            out.push(Candidate {
                decision: LayerDecision {
                    order,
                    partition: None,
                },
                exec: CandidateExec::Single(s),
            });
        }
        for scheme in PartitionScheme::ALL {
            for parts in SINGLE_CORE_PART_CANDIDATES {
                let sub = gemm.split(scheme.split_dim(), parts)[0];
                for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                    let p = partition_backward_ex(
                        proto, tensors, gemm, density, policy, scheme, parts, order, is_first,
                    );
                    out.push(Candidate {
                        decision: LayerDecision {
                            order,
                            partition: Some((scheme, p.schedules.len() as u64)),
                        },
                        exec: CandidateExec::Sequential {
                            segments: p.schedules,
                            reduction: p.reduction,
                        },
                    });
                }
            }
        }
    } else {
        let parts = config.cores as u64;
        for scheme in PartitionScheme::ALL {
            let sub = gemm.split(scheme.split_dim(), parts)[0];
            for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                let p = partition_backward_ex(
                    proto, tensors, gemm, density, policy, scheme, parts, order, is_first,
                );
                out.push(Candidate {
                    decision: LayerDecision {
                        order,
                        partition: Some((scheme, p.schedules.len() as u64)),
                    },
                    exec: CandidateExec::Multicore {
                        per_core: p.schedules,
                        reduction: p.reduction,
                    },
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Capacity-ladder evaluation
// ---------------------------------------------------------------------------
//
// An SPM sweep simulates the same `(model, technique)` point at several SPM
// capacities whose configs are otherwise identical. The candidate *set* is
// capacity-independent, and a candidate's access stream depends on capacity
// only through its blocking factors ([`EmissionSig`]); everything else about
// the replay — the next-use oracle, region footprints, compute totals — is
// shared by [`replay_ladder`] across all rungs of one pass. The functions
// below exploit both: rungs whose emission signatures coincide share one
// emission + one ladder replay, and every exact replay is memoized in a
// capacity-*oblivious* profile cache ([`crate::simcache`]) so a candidate
// schedule re-encountered under any other technique, sweep arm or SPM size
// is answered without replaying at all. All selection semantics (lexicographic
// `(cycles, candidate index)` winner, admissible bound skips, cutoff aborts)
// mirror [`select_best_fast`] per rung, so the reports and decisions are
// bit-identical to evaluating each rung independently.

/// A validated SPM ladder: single-core configs identical except for their
/// strictly ascending SPM capacities.
struct LadderRungs {
    configs: Vec<NpuConfig>,
    engines: Vec<Engine>,
    policies: Vec<TilePolicy>,
    /// Per-rung analytic SPM capacity ([`Engine::residency_bytes`]).
    capacities: Vec<u64>,
}

impl LadderRungs {
    fn len(&self) -> usize {
        self.configs.len()
    }
}

/// Validate `configs` as a capacity ladder the profile path can serve.
/// Returns `None` (callers fall back to per-config simulation) unless the
/// options enable the profile path, all configs are single-core and equal
/// up to SPM size, and both the SPM sizes and the derived analytic
/// capacities are strictly ascending.
fn ladder_rungs(configs: &[NpuConfig], options: &SimOptions) -> Option<LadderRungs> {
    if configs.len() < 2 || !options.analytic_fast_path || !options.capacity_profile {
        return None;
    }
    if configs.iter().any(|c| c.cores != 1) {
        return None;
    }
    let fp0 = ConfigFingerprint::sans_spm(&configs[0]);
    if configs
        .iter()
        .any(|c| ConfigFingerprint::sans_spm(c) != fp0)
    {
        return None;
    }
    if !configs.windows(2).all(|w| w[0].spm_bytes < w[1].spm_bytes) {
        return None;
    }
    let engines: Vec<Engine> = configs.iter().map(Engine::new).collect();
    let capacities: Vec<u64> = engines.iter().map(Engine::residency_bytes).collect();
    if !capacities.windows(2).all(|w| w[0] < w[1]) {
        return None;
    }
    Some(LadderRungs {
        configs: configs.to_vec(),
        policies: configs.iter().map(TilePolicy::for_config).collect(),
        engines,
        capacities,
    })
}

/// Simulate one layer's forward pass at every rung of the ladder, grouping
/// rungs with identical emission signatures into one profiling pass.
fn ladder_forward(
    gemm: GemmShape,
    density: f64,
    rungs: &LadderRungs,
    options: &SimOptions,
) -> Vec<SimReport> {
    let n = rungs.len();
    let mut out: Vec<Option<SimReport>> = vec![None; n];
    if options.memoize {
        for (r, config) in rungs.configs.iter().enumerate() {
            out[r] = simcache::get_forward(gemm, density, config);
        }
        if out.iter().any(Option::is_none) {
            if let Some(curve) =
                simcache::get_profile(gemm, density, &rungs.configs[0], ProfilePass::Forward)
            {
                for (r, config) in rungs.configs.iter().enumerate() {
                    if out[r].is_none() {
                        if let Ok(i) = curve.binary_search_by_key(&config.spm_bytes, |&(s, _)| s) {
                            out[r] = Some(curve[i].1);
                        }
                    }
                }
            }
        }
    }
    let missing: Vec<usize> = (0..n).filter(|&r| out[r].is_none()).collect();
    if !missing.is_empty() {
        let (tensors, _) = fast_layer_tensors();
        let mut groups: Vec<(EmissionSig, Vec<usize>)> = Vec::new();
        for &r in &missing {
            let sig = forward_emission_signature(gemm, rungs.policies[r]);
            match groups.iter_mut().find(|(g, _)| *g == sig) {
                Some((_, v)) => v.push(r),
                None => groups.push((sig, vec![r])),
            }
        }
        let mut fresh: Vec<(u64, SimReport)> = Vec::new();
        with_fast_scratch(|s| {
            let FastScratch {
                collectors, ladder, ..
            } = s;
            for (_, group) in &groups {
                let lead = group[0];
                let c = &mut cleared_collectors(collectors, 1)[0];
                BackwardBuilder::new(gemm, rungs.policies[lead], tensors).register_grids(c);
                forward_schedule(gemm, rungs.policies[lead], tensors, density, c);
                let caps: Vec<u64> = group.iter().map(|&r| rungs.capacities[r]).collect();
                let cuts = vec![None; group.len()];
                let reports = replay_ladder(c, &rungs.engines[lead], &caps, &cuts, ladder);
                for (&r, rep) in group.iter().zip(reports) {
                    let rep = rep.expect("unbounded ladder replay completes").report;
                    out[r] = Some(rep);
                    fresh.push((rungs.configs[r].spm_bytes, rep));
                }
            }
        });
        if options.memoize {
            for &r in &missing {
                simcache::put_forward(gemm, density, &rungs.configs[r], out[r].unwrap());
            }
            simcache::put_profile(
                gemm,
                density,
                &rungs.configs[0],
                ProfilePass::Forward,
                &fresh,
            );
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// One capacity-independent backward candidate of a ladder evaluation.
/// Mirrors the construction order of [`fast_backward_uncached`] exactly, so
/// the per-rung lexicographic `(cycles, index)` winner is the same.
struct LadderCandidate {
    decision: LayerDecision,
    /// Profile-cache identity of this candidate's schedule.
    pass: ProfilePass,
    kind: LadderKind,
}

enum LadderKind {
    /// One emission stream on the single core.
    Plain(BackwardOrder),
    /// Partition segments chained on the single core, then a reduction.
    Seq {
        plan: PartitionPlan,
        scheme: PartitionScheme,
        /// The *requested* split count fed to the closed-form bound (the
        /// plan may realise fewer parts on small layers).
        parts: u64,
        order: BackwardOrder,
    },
}

/// The capacity-independent candidate set for one `(technique, layer)`
/// point — [`fast_backward_uncached`]'s single-core candidate enumeration
/// with emission deferred.
fn ladder_candidates(
    gemm: GemmShape,
    density: f64,
    rungs: &LadderRungs,
    technique: Technique,
    is_first: bool,
    tensors: LayerTensors,
    first_free_id: u32,
) -> Vec<LadderCandidate> {
    let plain = |order: BackwardOrder| LadderCandidate {
        decision: LayerDecision {
            order,
            partition: None,
        },
        pass: ProfilePass::Plain { order, is_first },
        kind: LadderKind::Plain(order),
    };
    match technique {
        Technique::Baseline => vec![plain(BackwardOrder::Baseline)],
        Technique::IdealDyReuse => vec![plain(BackwardOrder::IdealDyReuse)],
        Technique::Interleaving => vec![plain(BackwardOrder::Interleaved)],
        Technique::Rearrangement => vec![plain(rearranged_order(gemm, &rungs.configs[0]))],
        Technique::RearrangementOracle => vec![
            plain(BackwardOrder::Interleaved),
            plain(BackwardOrder::DxMajor),
            plain(BackwardOrder::DwMajor),
        ],
        Technique::DataPartitioning => {
            let algorithm1 = |g: GemmShape| BackwardOrder::from(select_order(g));
            let mut out: Vec<LadderCandidate> =
                dedup_orders([algorithm1(gemm), BackwardOrder::Baseline])
                    .into_iter()
                    .map(plain)
                    .collect();
            for scheme in PartitionScheme::ALL {
                for parts in SINGLE_CORE_PART_CANDIDATES {
                    let sub = gemm.split(scheme.split_dim(), parts)[0];
                    for order in dedup_orders([algorithm1(sub), BackwardOrder::Baseline]) {
                        let mut next = first_free_id;
                        let plan = plan_partition_backward(
                            &mut |_class, _name| {
                                let id = TensorId::from_raw(next);
                                next += 1;
                                id
                            },
                            tensors,
                            gemm,
                            density,
                            rungs.policies[0].dtype,
                            scheme,
                            parts,
                            is_first,
                        );
                        let realised = plan.sub_gemms.len() as u64;
                        out.push(LadderCandidate {
                            decision: LayerDecision {
                                order,
                                partition: Some((scheme, realised)),
                            },
                            pass: ProfilePass::Partition {
                                scheme,
                                parts: realised,
                                order,
                                is_first,
                            },
                            kind: LadderKind::Seq {
                                plan,
                                scheme,
                                parts,
                                order,
                            },
                        });
                    }
                }
            }
            out
        }
    }
}

/// The rung-`r` builders of one candidate (plain builders are shared
/// across candidates, partition sub-builders are built per candidate).
enum BuiltSet<'a> {
    Plain(&'a BackwardBuilder),
    Seq(Vec<BackwardBuilder>),
}

impl BuiltSet<'_> {
    fn signature(&self, order: BackwardOrder, is_first: bool) -> Vec<EmissionSig> {
        match self {
            BuiltSet::Plain(b) => vec![b.emission_signature(order, is_first)],
            BuiltSet::Seq(v) => v
                .iter()
                .map(|b| b.emission_signature(order, is_first))
                .collect(),
        }
    }
}

fn update_best(best: &mut Option<(usize, SimReport)>, ci: usize, rep: SimReport) {
    let wins = match best {
        None => true,
        Some((bi, b)) => (rep.cycles, ci) < (b.cycles, *bi),
    };
    if wins {
        *best = Some((ci, rep));
    }
}

/// Simulate one layer's backward pass at every rung of the ladder. Per
/// rung this reproduces [`select_best_fast`]'s winner bit for bit; across
/// rungs, each candidate is emitted once per distinct emission signature
/// and replayed for all matching rungs in one [`replay_ladder`] pass, with
/// exact results memoized capacity-obliviously.
fn ladder_backward(
    gemm: GemmShape,
    density: f64,
    rungs: &LadderRungs,
    technique: Technique,
    is_first: bool,
    options: &SimOptions,
) -> Vec<(SimReport, LayerDecision)> {
    let n = rungs.len();
    let mut done: Vec<Option<(SimReport, LayerDecision)>> = vec![None; n];
    if options.memoize {
        for (r, config) in rungs.configs.iter().enumerate() {
            done[r] = simcache::get_backward(gemm, density, config, technique, is_first);
        }
    }
    let todo: Vec<usize> = (0..n).filter(|&r| done[r].is_none()).collect();
    if todo.is_empty() {
        return done.into_iter().map(Option::unwrap).collect();
    }

    let (tensors, first_free_id) = fast_layer_tensors();
    let cands = ladder_candidates(
        gemm,
        density,
        rungs,
        technique,
        is_first,
        tensors,
        first_free_id,
    );

    // Exact combined report of candidate `ci` at rung `r`, once known.
    let mut computed: Vec<Vec<Option<SimReport>>> = vec![vec![None; n]; cands.len()];
    // Freshly replayed raw (pre-reduction) points for the profile cache.
    let mut fresh: Vec<Vec<(u64, SimReport)>> = vec![Vec::new(); cands.len()];

    // Fold memoized capacity curves in first: any rung of any candidate
    // profiled before — under *any* technique or SPM ladder — is answered
    // without replaying.
    if options.memoize {
        for (ci, cand) in cands.iter().enumerate() {
            if let Some(curve) = simcache::get_profile(gemm, density, &rungs.configs[0], cand.pass)
            {
                for &r in &todo {
                    if let Ok(i) =
                        curve.binary_search_by_key(&rungs.configs[r].spm_bytes, |&(s, _)| s)
                    {
                        computed[ci][r] =
                            Some(combine_candidate(cand, &rungs.configs[r], curve[i].1));
                    }
                }
            }
        }
    }

    // Running per-rung best as lexicographic minimum of (cycles, index) —
    // fold order over candidates cannot change a lexicographic minimum.
    let mut best: Vec<Option<(usize, SimReport)>> = vec![None; n];
    for &r in &todo {
        for (ci, rungs_of) in computed.iter().enumerate() {
            if let Some(rep) = rungs_of[r] {
                update_best(&mut best[r], ci, rep);
            }
        }
    }

    // Shared per-rung plain builders (every technique has plain candidates).
    let plain_builders: Vec<BackwardBuilder> = rungs
        .policies
        .iter()
        .map(|&policy| BackwardBuilder::new(gemm, policy, tensors).with_ifmap_density(density))
        .collect();

    // Closed-form admissible bounds per (candidate, rung), pruning only.
    let bounds: Vec<Vec<u64>> = if options.prune {
        cands
            .iter()
            .map(|cand| {
                (0..n)
                    .map(|r| match &cand.kind {
                        _ if done[r].is_some() => u64::MAX,
                        LadderKind::Plain(order) => plain_candidate_bound(
                            &plain_builders[r],
                            *order,
                            is_first,
                            &rungs.engines[r],
                        ),
                        LadderKind::Seq {
                            scheme,
                            parts,
                            order,
                            ..
                        } => sequential_candidate_bound(
                            &rungs.configs[r],
                            &rungs.engines[r],
                            tensors,
                            gemm,
                            density,
                            rungs.policies[r],
                            *scheme,
                            *parts,
                            *order,
                            is_first,
                        ),
                    })
                    .collect()
            })
            .collect()
    } else {
        Vec::new()
    };

    // Evaluation order: ascending best-case bound, like `select_best_fast`.
    // Any visit order yields the same winner (skips and aborts only drop
    // provably strictly-worse candidates); this one tightens cutoffs fastest.
    let mut eval_order: Vec<usize> = (0..cands.len()).collect();
    if options.prune {
        eval_order.sort_by_key(|&ci| {
            let key = todo
                .iter()
                .filter(|&&r| computed[ci][r].is_none())
                .map(|&r| bounds[ci][r])
                .min()
                .unwrap_or(u64::MAX);
            (key, ci)
        });
    }

    with_fast_scratch(|s| {
        let FastScratch {
            collectors, ladder, ..
        } = s;
        for &ci in &eval_order {
            let cand = &cands[ci];
            // Rungs this candidate still needs, with their replay cutoffs:
            // the running best (pruning only), minus the reduction for
            // partition candidates (a budget below the reduction alone is
            // unmeetable — mirrors `replay_sequential_partitions_bounded`).
            let mut reps: Vec<(usize, Option<u64>)> = Vec::new();
            for &r in &todo {
                if computed[ci][r].is_some() {
                    continue;
                }
                let outer = match &best[r] {
                    Some((_, b)) if options.prune => {
                        if bounds[ci][r] > b.cycles {
                            continue;
                        }
                        Some(b.cycles)
                    }
                    _ => None,
                };
                match (&cand.kind, outer) {
                    (LadderKind::Seq { plan, .. }, Some(c)) => {
                        let red = reduction_cycles(&rungs.configs[r], plan.reduction);
                        if let Some(inner) = c.checked_sub(red) {
                            reps.push((r, Some(inner)));
                        }
                    }
                    (_, outer) => reps.push((r, outer)),
                }
            }
            if reps.is_empty() {
                continue;
            }
            // Build the needed rungs' builders and group rungs whose
            // emission signatures prove their streams identical.
            let built: Vec<BuiltSet> = reps
                .iter()
                .map(|&(r, _)| match &cand.kind {
                    LadderKind::Plain(_) => BuiltSet::Plain(&plain_builders[r]),
                    LadderKind::Seq { plan, .. } => BuiltSet::Seq(
                        plan.sub_gemms
                            .iter()
                            .zip(&plan.part_tensors)
                            .map(|(&g, &t)| {
                                BackwardBuilder::new(g, rungs.policies[r], t)
                                    .with_ifmap_density(density)
                            })
                            .collect(),
                    ),
                })
                .collect();
            let order = cand.decision.order;
            let mut groups: Vec<(Vec<EmissionSig>, Vec<usize>)> = Vec::new();
            for (i, bs) in built.iter().enumerate() {
                let sig = bs.signature(order, is_first);
                match groups.iter_mut().find(|(g, _)| *g == sig) {
                    Some((_, v)) => v.push(i),
                    None => groups.push((sig, vec![i])),
                }
            }
            for (_, members) in &groups {
                let lead = members[0];
                let c = &mut cleared_collectors(collectors, 1)[0];
                match &built[lead] {
                    BuiltSet::Plain(b) => {
                        b.register_grids(c);
                        b.emit(order, is_first, c);
                    }
                    BuiltSet::Seq(v) => {
                        // Segments concatenate with no barrier, mirroring
                        // `Schedule::append_compatible`.
                        for b in v {
                            b.register_grids(c);
                        }
                        for b in v {
                            b.emit(order, is_first, c);
                        }
                    }
                }
                let caps: Vec<u64> = members
                    .iter()
                    .map(|&i| rungs.capacities[reps[i].0])
                    .collect();
                let cuts: Vec<Option<u64>> = members.iter().map(|&i| reps[i].1).collect();
                let results = replay_ladder(c, &rungs.engines[reps[lead].0], &caps, &cuts, ladder);
                for (&i, res) in members.iter().zip(results) {
                    let r = reps[i].0;
                    if let Some(a) = res {
                        fresh[ci].push((rungs.configs[r].spm_bytes, a.report));
                        let rep = combine_candidate(cand, &rungs.configs[r], a.report);
                        computed[ci][r] = Some(rep);
                        update_best(&mut best[r], ci, rep);
                    }
                }
            }
        }
    });

    for &r in &todo {
        let (ci, rep) = best[r].expect("the first candidate at a rung replays uncut");
        done[r] = Some((rep, cands[ci].decision));
        if options.memoize {
            simcache::put_backward(
                gemm,
                density,
                &rungs.configs[r],
                technique,
                is_first,
                rep,
                cands[ci].decision,
            );
        }
    }
    if options.memoize {
        for (ci, points) in fresh.iter().enumerate() {
            simcache::put_profile(gemm, density, &rungs.configs[0], cands[ci].pass, points);
        }
    }
    done.into_iter().map(Option::unwrap).collect()
}

/// Fold a raw replay report into the candidate's combined report: plain
/// candidates are already combined; partition candidates pay the
/// (capacity-independent) reduction on top — the exact math of
/// [`run_sequential_partitions`]'s `.combined()`.
///
/// [`run_sequential_partitions`]: igo_npu_sim::run_sequential_partitions
fn combine_candidate(cand: &LadderCandidate, config: &NpuConfig, raw: SimReport) -> SimReport {
    match &cand.kind {
        LadderKind::Plain(_) => raw,
        LadderKind::Seq { plan, .. } => sequential_combined(config, raw, plan.reduction),
    }
}

/// One layer at every rung of the ladder (indexes parallel `rungs`).
fn layer_outcome_ladder(
    layer: &Layer,
    rungs: &LadderRungs,
    technique: Technique,
    options: &SimOptions,
) -> Vec<LayerOutcome> {
    let forward = ladder_forward(layer.gemm, layer.ifmap_density, rungs, options);
    let backward = ladder_backward(
        layer.gemm,
        layer.ifmap_density,
        rungs,
        technique,
        layer.is_first,
        options,
    );
    forward
        .into_iter()
        .zip(backward)
        .map(|(f, (b, decision))| LayerOutcome {
            name: layer.name.clone(),
            multiplicity: layer.count as u64 * layer.groups as u64,
            forward: f,
            backward: b,
            decision,
            gemm: layer.gemm,
        })
        .collect()
}

/// Simulate one model under `technique` at every SPM capacity of `configs`
/// — one report per config, in order, each bit-identical to
/// [`simulate_model_with`] on that config alone.
///
/// When `configs` forms a valid capacity ladder (single-core, identical up
/// to strictly ascending SPM sizes) and the options enable the profile
/// path, each candidate schedule is emitted once per distinct blocking
/// signature and replayed for every matching rung in a single
/// capacity-oblivious pass; otherwise this transparently falls back to
/// per-config simulation.
pub fn simulate_model_ladder(
    model: &Model,
    configs: &[NpuConfig],
    technique: Technique,
    options: &SimOptions,
) -> Vec<ModelReport> {
    let Some(rungs) = ladder_rungs(configs, options) else {
        return configs
            .iter()
            .map(|c| simulate_model_with(model, c, technique, options))
            .collect();
    };
    let per_layer: Vec<Vec<LayerOutcome>> = if options.parallel {
        parallel_map_workers(
            &model.layers,
            options.workers,
            || (),
            |(), layer| layer_outcome_ladder(layer, &rungs, technique, options),
        )
    } else {
        model
            .layers
            .iter()
            .map(|layer| layer_outcome_ladder(layer, &rungs, technique, options))
            .collect()
    };
    configs
        .iter()
        .enumerate()
        .map(|(r, config)| ModelReport {
            model: model.name.clone(),
            config: config.name.clone(),
            technique,
            layers: per_layer.iter().map(|v| v[r].clone()).collect(),
        })
        .collect()
}

/// Per-layer outcome within a model report.
#[derive(Debug, Clone)]
pub struct LayerOutcome {
    /// Layer name.
    pub name: String,
    /// Instances of this exact layer in the model (count × conv groups).
    pub multiplicity: u64,
    /// Forward-pass report of one instance.
    pub forward: SimReport,
    /// Backward-pass report of one instance.
    pub backward: SimReport,
    /// Scheduler decisions for the backward pass.
    pub decision: LayerDecision,
    /// The layer's forward GEMM (convenience for downstream analyses).
    pub gemm: GemmShape,
}

impl LayerOutcome {
    /// Total cycles contributed by all instances (forward + backward).
    pub fn total_cycles(&self) -> u64 {
        (self.forward.cycles + self.backward.cycles) * self.multiplicity
    }

    /// Backward cycles of all instances.
    pub fn backward_cycles(&self) -> u64 {
        self.backward.cycles * self.multiplicity
    }
}

/// A full training-step simulation of one model under one technique.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Model name.
    pub model: String,
    /// Configuration name.
    pub config: String,
    /// Technique applied.
    pub technique: Technique,
    /// Per-distinct-layer outcomes, in forward order.
    pub layers: Vec<LayerOutcome>,
}

impl ModelReport {
    /// Total training-step cycles (forward + backward over all layers).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerOutcome::total_cycles).sum()
    }

    /// Forward-pass cycles only.
    pub fn forward_cycles(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward.cycles * l.multiplicity)
            .sum()
    }

    /// Backward-pass cycles only.
    pub fn backward_cycles(&self) -> u64 {
        self.layers.iter().map(LayerOutcome::backward_cycles).sum()
    }

    /// Aggregate backward-pass DRAM traffic (the Figure 5 quantity).
    pub fn backward_traffic(&self) -> Traffic {
        let mut t = Traffic::new();
        for l in &self.layers {
            t.merge(&l.backward.traffic.scaled(l.multiplicity));
        }
        t
    }

    /// Aggregate DRAM traffic of the whole step.
    pub fn total_traffic(&self) -> Traffic {
        let mut t = Traffic::new();
        for l in &self.layers {
            t.merge(&l.forward.traffic.scaled(l.multiplicity));
            t.merge(&l.backward.traffic.scaled(l.multiplicity));
        }
        t
    }

    /// Execution time normalised to a baseline run (Figure 12's y-axis).
    pub fn normalized_to(&self, baseline: &ModelReport) -> f64 {
        self.total_cycles() as f64 / baseline.total_cycles() as f64
    }
}

fn layer_outcome(
    layer: &Layer,
    config: &NpuConfig,
    technique: Technique,
    options: &SimOptions,
) -> LayerOutcome {
    let forward = simulate_layer_forward_with(layer.gemm, layer.ifmap_density, config, options);
    let (backward, decision) = simulate_layer_backward_with(
        layer.gemm,
        layer.ifmap_density,
        config,
        technique,
        layer.is_first,
        options,
    );
    LayerOutcome {
        name: layer.name.clone(),
        multiplicity: layer.count as u64 * layer.groups as u64,
        forward,
        backward,
        decision,
        gemm: layer.gemm,
    }
}

/// Simulate one model's full training step under `technique`.
///
/// The model should have been built with `config.default_batch()` so the
/// per-core batch matches the paper's setup (callers that sweep batch size
/// on purpose may deviate — the simulation itself is agnostic).
pub fn simulate_model(model: &Model, config: &NpuConfig, technique: Technique) -> ModelReport {
    simulate_model_with(model, config, technique, &SimOptions::default())
}

/// [`simulate_model`] with explicit execution options. Independent layers
/// are evaluated concurrently when `options.parallel` is set; the report's
/// layer order always matches the model's.
pub fn simulate_model_with(
    model: &Model,
    config: &NpuConfig,
    technique: Technique,
    options: &SimOptions,
) -> ModelReport {
    let layers = if options.parallel {
        parallel_map_workers(
            &model.layers,
            options.workers,
            || (),
            |(), layer| layer_outcome(layer, config, technique, options),
        )
    } else {
        model
            .layers
            .iter()
            .map(|layer| layer_outcome(layer, config, technique, options))
            .collect()
    };
    ModelReport {
        model: model.name.clone(),
        config: config.name.clone(),
        technique,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_tensor::TensorClass;

    /// A dY-heavy layer (a ResNet expansion conv): dY is 25 MB while W is
    /// 64 KiB — the regime the paper's techniques target.
    fn dy_heavy_conv() -> GemmShape {
        GemmShape::new(25088, 64, 256)
    }

    #[test]
    fn interleaving_reduces_dy_reads_on_large_npu() {
        let config = NpuConfig::large_single_core();
        let gemm = dy_heavy_conv();
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        let (inter, _) = simulate_layer_backward(gemm, &config, Technique::Interleaving, false);
        assert!(
            inter.traffic.read(TensorClass::OutGrad) < base.traffic.read(TensorClass::OutGrad),
            "interleaving must reduce dY reads on a dY-heavy layer: {} vs {}",
            inter.traffic.read(TensorClass::OutGrad),
            base.traffic.read(TensorClass::OutGrad),
        );
        assert!(inter.cycles < base.cycles);
        assert_eq!(inter.macs, base.macs, "same math");
    }

    #[test]
    fn ladder_is_monotone_for_dy_heavy_layer() {
        // Cumulative techniques must not slow a dY-dominated layer down.
        let config = NpuConfig::large_single_core();
        let mut last = u64::MAX;
        for technique in [
            Technique::Baseline,
            Technique::Rearrangement,
            Technique::DataPartitioning,
        ] {
            let (r, _) = simulate_layer_backward(dy_heavy_conv(), &config, technique, false);
            assert!(
                r.cycles <= last,
                "{technique} slower than predecessor: {} > {last}",
                r.cycles
            );
            last = r.cycles;
        }
    }

    #[test]
    fn balanced_layer_never_regresses_badly() {
        // A traffic-balanced GEMM (BERT FFN): every operand is large, so
        // fusion buys little — but the cost-driven block selection must
        // keep the transformed schedules within a few percent of baseline.
        let config = NpuConfig::large_single_core();
        let gemm = GemmShape::new(4096, 1024, 4096);
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        // Zipped interleaving splits the SPM between two co-resident
        // working sets, so a balanced layer tolerates a larger slack than
        // the cost-planned fused orders.
        for (technique, slack) in [
            (Technique::Interleaving, 1.25),
            (Technique::Rearrangement, 1.10),
            (Technique::DataPartitioning, 1.001),
        ] {
            let (r, _) = simulate_layer_backward(gemm, &config, technique, false);
            assert!(
                (r.cycles as f64) < slack * base.cycles as f64,
                "{technique} regressed beyond {slack}: {} vs {}",
                r.cycles,
                base.cycles
            );
        }
    }

    #[test]
    fn ideal_reuse_is_a_lower_bound_on_dy_traffic() {
        let config = NpuConfig::small_edge();
        let gemm = GemmShape::new(512, 576, 256);
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        let (ideal, _) = simulate_layer_backward(gemm, &config, Technique::IdealDyReuse, false);
        assert!(ideal.traffic.read(TensorClass::OutGrad) < base.traffic.read(TensorClass::OutGrad));
        assert!(ideal.cycles < base.cycles);
    }

    #[test]
    fn first_layer_identical_across_techniques() {
        let config = NpuConfig::large_single_core();
        let gemm = GemmShape::new(100_352, 147, 64);
        let (base, _) = simulate_layer_backward(gemm, &config, Technique::Baseline, true);
        let (inter, _) = simulate_layer_backward(gemm, &config, Technique::Interleaving, true);
        let (rearr, _) = simulate_layer_backward(gemm, &config, Technique::Rearrangement, true);
        assert_eq!(base.cycles, inter.cycles);
        assert_eq!(base.cycles, rearr.cycles);
        assert_eq!(base.macs, gemm.macs(), "dW only");
    }

    #[test]
    fn oracle_never_loses_to_algorithm1() {
        let config = NpuConfig::large_single_core();
        for gemm in [
            GemmShape::new(4096, 1024, 4096),
            GemmShape::new(8, 479, 1024),
            GemmShape::new(25088, 576, 64),
        ] {
            let (alg, _) = simulate_layer_backward(gemm, &config, Technique::Rearrangement, false);
            let (oracle, _) =
                simulate_layer_backward(gemm, &config, Technique::RearrangementOracle, false);
            assert!(oracle.cycles <= alg.cycles, "{gemm}");
        }
    }

    #[test]
    fn multicore_runs_and_reduces() {
        let config = NpuConfig::large_server(2);
        let gemm = GemmShape::new(8192, 1024, 1024);
        let (base, d) = simulate_layer_backward(gemm, &config, Technique::Baseline, false);
        assert_eq!(d.order, BackwardOrder::Baseline);
        assert!(base.cycles > 0);
        // Batch parallelism reduces dW partials: WGrad read traffic from
        // the reduction must be present.
        assert!(base.traffic.read(TensorClass::WGrad) > 0);
    }

    #[test]
    fn model_report_totals_are_consistent() {
        let config = NpuConfig::large_single_core();
        let model = igo_workloads::zoo::model(igo_workloads::ModelId::Ncf, 8);
        let report = simulate_model(&model, &config, Technique::Baseline);
        assert_eq!(report.layers.len(), model.layers.len());
        assert_eq!(
            report.total_cycles(),
            report.forward_cycles() + report.backward_cycles()
        );
        assert!(report.total_traffic().total() > 0);
        assert!((report.normalized_to(&report) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn every_options_combination_selects_identically() {
        // 16 toggle combinations on a layer with a non-trivial candidate
        // space: same report, same decision, bit for bit. In particular the
        // analytic fast path must reproduce the cycle engine exactly.
        let config = NpuConfig::small_edge();
        let gemm = dy_heavy_conv();
        let (want, want_d) = simulate_layer_backward_with(
            gemm,
            1.0,
            &config,
            Technique::DataPartitioning,
            false,
            &SimOptions::sequential(),
        );
        for parallel in [false, true] {
            for memoize in [false, true] {
                for prune in [false, true] {
                    for analytic_fast_path in [false, true] {
                        let opts = SimOptions {
                            parallel,
                            memoize,
                            prune,
                            // Force a real pool even on a single-CPU machine.
                            workers: 3,
                            analytic_fast_path,
                            capacity_profile: false,
                        };
                        let (got, got_d) = simulate_layer_backward_with(
                            gemm,
                            1.0,
                            &config,
                            Technique::DataPartitioning,
                            false,
                            &opts,
                        );
                        assert_eq!(got, want, "{opts:?} diverged from the sequential path");
                        assert_eq!(got_d, want_d, "{opts:?} picked a different candidate");
                    }
                }
            }
        }
    }

    #[test]
    fn fast_path_matches_engine_for_all_techniques_and_configs() {
        // Cross-check the analytic fast path against the cycle engine over
        // every technique, forward + backward, single- and multi-core, with
        // a sparse ifmap and both first/non-first layers.
        let slow = SimOptions {
            analytic_fast_path: false,
            ..SimOptions::sequential()
        };
        let fast = SimOptions {
            analytic_fast_path: true,
            ..SimOptions::sequential()
        };
        for config in [
            NpuConfig::small_edge(),
            NpuConfig::large_single_core(),
            NpuConfig::large_server(2),
        ] {
            let gemm = GemmShape::new(1536, 320, 448);
            for density in [1.0, 0.37] {
                let f_slow = simulate_layer_forward_with(gemm, density, &config, &slow);
                let f_fast = simulate_layer_forward_with(gemm, density, &config, &fast);
                assert_eq!(f_slow, f_fast, "forward diverged on {}", config.name);
                for technique in Technique::ALL {
                    for is_first in [false, true] {
                        let (r_slow, d_slow) = simulate_layer_backward_with(
                            gemm, density, &config, technique, is_first, &slow,
                        );
                        let (r_fast, d_fast) = simulate_layer_backward_with(
                            gemm, density, &config, technique, is_first, &fast,
                        );
                        assert_eq!(
                            r_slow, r_fast,
                            "backward diverged: {technique} on {} (is_first={is_first})",
                            config.name
                        );
                        assert_eq!(d_slow, d_fast, "{technique} picked a different candidate");
                    }
                }
            }
        }
    }

    #[test]
    fn capacity_ladder_matches_per_config_simulation() {
        // The profile path must reproduce per-config simulation bit for bit
        // at every rung — reports, traffic and decisions — for every
        // technique, including partition candidates and a first layer.
        let base = NpuConfig::large_single_core();
        let configs: Vec<NpuConfig> = [3u64, 6, 12, 24]
            .iter()
            .map(|&mib| base.clone().with_spm_bytes(mib << 20))
            .collect();
        let model = igo_workloads::zoo::model(igo_workloads::ModelId::Ncf, 8);
        let ladder_opts = SimOptions {
            workers: 3,
            ..SimOptions::optimized()
        };
        // The reference recomputes from scratch (no memo): a cache the
        // ladder itself populated must not be able to vouch for the ladder.
        let flat_opts = SimOptions {
            capacity_profile: false,
            memoize: false,
            ..ladder_opts
        };
        for technique in Technique::ALL {
            let got = simulate_model_ladder(&model, &configs, technique, &ladder_opts);
            assert_eq!(got.len(), configs.len());
            for (rung, config) in got.iter().zip(&configs) {
                let want = simulate_model_with(&model, config, technique, &flat_opts);
                assert_eq!(rung.config, want.config);
                assert_eq!(rung.layers.len(), want.layers.len());
                for (g, w) in rung.layers.iter().zip(&want.layers) {
                    assert_eq!(g.forward, w.forward, "{technique} fwd @ {}", config.name);
                    assert_eq!(g.backward, w.backward, "{technique} bwd @ {}", config.name);
                    assert_eq!(g.decision, w.decision, "{technique} @ {}", config.name);
                    assert_eq!(g.multiplicity, w.multiplicity);
                }
            }
        }
        assert!(
            crate::simcache::sim_profile_cache_len() > 0,
            "ladder runs must populate the capacity-profile cache"
        );
    }

    #[test]
    fn ladder_falls_back_on_invalid_ladders() {
        // Unsorted capacities and multi-core configs are not ladders; the
        // entry point must transparently serve them per config.
        let base = NpuConfig::large_single_core();
        let unsorted = vec![
            base.clone().with_spm_bytes(24 << 20),
            base.clone().with_spm_bytes(3 << 20),
        ];
        let opts = SimOptions {
            workers: 3,
            ..SimOptions::optimized()
        };
        let model = igo_workloads::zoo::model(igo_workloads::ModelId::Ncf, 8);
        let got = simulate_model_ladder(&model, &unsorted, Technique::Rearrangement, &opts);
        for (rung, config) in got.iter().zip(&unsorted) {
            let want = simulate_model_with(&model, config, Technique::Rearrangement, &opts);
            for (g, w) in rung.layers.iter().zip(&want.layers) {
                assert_eq!(g.backward, w.backward);
                assert_eq!(g.decision, w.decision);
            }
        }
    }

    #[test]
    fn memoized_layer_reuses_cached_result() {
        // A shape unique to this test so the cache interaction is its own.
        let config = NpuConfig::large_single_core();
        let gemm = GemmShape::new(6421, 127, 6337);
        let opts = SimOptions {
            parallel: false,
            memoize: true,
            prune: false,
            workers: 0,
            analytic_fast_path: false,
            capacity_profile: false,
        };
        let first =
            simulate_layer_backward_with(gemm, 1.0, &config, Technique::Interleaving, false, &opts);
        assert_eq!(
            crate::simcache::get_backward(gemm, 1.0, &config, Technique::Interleaving, false),
            Some(first),
            "the result must land in the cache"
        );
        let second =
            simulate_layer_backward_with(gemm, 1.0, &config, Technique::Interleaving, false, &opts);
        assert_eq!(first, second);
    }
}
