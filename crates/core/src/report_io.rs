//! Report export: CSV writers for model reports and exporters for
//! recorded traces.
//!
//! Figure-style analyses usually end in a plotting tool; these writers
//! serialise a [`ModelReport`] (or a technique-ladder comparison) into
//! machine-readable CSV without adding any dependencies. Free-form fields
//! (layer names, model names, partition labels) are RFC-4180-quoted, so a
//! name containing a comma, quote or newline cannot shift columns.
//!
//! The trace exporters ([`chrome_trace_json`], [`trace_metrics_csv`],
//! [`dy_reuse_csv`], [`dy_tiles_csv`]) serialise [`LayerTrace`] recordings
//! from [`crate::observe`]: a Chrome trace-event JSON timeline loadable in
//! Perfetto / `chrome://tracing`, and CSV summaries of the derived
//! metrics. See `docs/observability.md` for the event taxonomy and
//! formats.

use crate::observe::LayerTrace;
use crate::pipeline::ModelReport;
use igo_npu_sim::TraceEvent;
use igo_tensor::TensorClass;
use std::borrow::Cow;
use std::fmt::Write as _;
use std::io;

/// RFC-4180 field quoting: a field containing a comma, double quote or
/// newline is wrapped in double quotes with embedded quotes doubled; any
/// other field passes through unchanged.
fn csv_field(raw: &str) -> Cow<'_, str> {
    if raw.contains([',', '"', '\n', '\r']) {
        Cow::Owned(format!("\"{}\"", raw.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(raw)
    }
}

/// Per-layer CSV of one report: one row per distinct layer with cycles
/// and per-class backward traffic.
///
/// Columns: `layer,multiplicity,fwd_cycles,bwd_cycles,order,partition,`
/// then one `read_<class>` and `write_<class>` pair per tensor class.
pub fn layers_csv(report: &ModelReport) -> String {
    let mut out = String::new();
    out.push_str("layer,multiplicity,fwd_cycles,bwd_cycles,order,partition");
    for class in TensorClass::ALL {
        let _ = write!(out, ",read_{0},write_{0}", class.label());
    }
    out.push('\n');
    for layer in &report.layers {
        let partition = layer
            .decision
            .partition
            .map(|(s, p)| format!("{s} x{p}"))
            .unwrap_or_else(|| "-".to_owned());
        let _ = write!(
            out,
            "{},{},{},{},{:?},{}",
            csv_field(&layer.name),
            layer.multiplicity,
            layer.forward.cycles,
            layer.backward.cycles,
            layer.decision.order,
            csv_field(&partition)
        );
        for class in TensorClass::ALL {
            let _ = write!(
                out,
                ",{},{}",
                layer.backward.traffic.read(class),
                layer.backward.traffic.write(class)
            );
        }
        out.push('\n');
    }
    out
}

/// Error from [`ladder_csv`]: a row's variant list disagrees with the
/// header derived from the first row, which would silently shift columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderMismatch {
    /// Model name of the offending row.
    pub model: String,
    /// Technique labels the header (first row) declares.
    pub expected: Vec<String>,
    /// Technique labels the offending row actually carries.
    pub found: Vec<String>,
}

impl core::fmt::Display for LadderMismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ladder row for {} has variants {:?}, header expects {:?}",
            self.model, self.found, self.expected
        )
    }
}

impl std::error::Error for LadderMismatch {}

/// Ladder CSV: one row per model with the normalised time of each
/// non-baseline report against the first (baseline) report.
///
/// `reports` groups runs per model: `(baseline, variants)`. Every row must
/// carry the same technique ladder as the first row (the header source);
/// a mismatching row returns [`LadderMismatch`] instead of silently
/// writing misaligned columns.
pub fn ladder_csv(rows: &[(&ModelReport, Vec<&ModelReport>)]) -> Result<String, LadderMismatch> {
    let mut out = String::new();
    out.push_str("model,config");
    let header: Vec<&str> = match rows.first() {
        Some((_, variants)) => variants.iter().map(|v| v.technique.label()).collect(),
        None => Vec::new(),
    };
    for label in &header {
        let _ = write!(out, ",{}", csv_field(label));
    }
    out.push('\n');
    for (base, variants) in rows {
        let found: Vec<&str> = variants.iter().map(|v| v.technique.label()).collect();
        if found != header {
            return Err(LadderMismatch {
                model: base.model.clone(),
                expected: header.iter().map(|s| s.to_string()).collect(),
                found: found.iter().map(|s| s.to_string()).collect(),
            });
        }
        let _ = write!(
            out,
            "{},{}",
            csv_field(&base.model),
            csv_field(&base.config)
        );
        for v in variants {
            let _ = write!(out, ",{:.6}", v.normalized_to(base));
        }
        out.push('\n');
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Trace exporters
// ---------------------------------------------------------------------------

/// Per-(layer, core) caps keeping exported traces tractable: a resnet50
/// layer can issue ~10⁵ tile-GEMMs, so raw per-event export would produce
/// hundreds of megabytes. Adjacent slices are coalesced (durations and
/// byte counts are preserved in the merged slice's `args`), counters are
/// decimated evenly.
const SLICE_CAP: usize = 1000;
const PHASE_CAP: usize = 400;
const COUNTER_CAP: usize = 600;
const BARRIER_CAP: usize = 200;

/// One exported timeline slice before serialisation.
#[derive(Debug, Clone)]
struct Slice {
    ts: u64,
    dur: u64,
    name: String,
    /// Engine ops merged into this slice.
    ops: u64,
    /// Payload (bytes moved, or busy compute cycles).
    extra: u64,
}

/// One Chrome trace event, serialised manually (no JSON dependency).
#[derive(Debug)]
struct ChromeEvent {
    ts: u64,
    dur: Option<u64>,
    ph: char,
    pid: usize,
    tid: usize,
    name: String,
    /// `(key, raw-JSON value)` pairs for the `args` object.
    args: Vec<(&'static str, String)>,
}

/// JSON string literal (quoted, escaped).
fn json_str(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Merge `slices` down to at most `max` by grouping adjacent runs. The
/// merged slice spans from the first slice's start to the last slice's
/// end and sums `ops`/`extra`, so nothing is silently dropped.
fn coalesce(slices: Vec<Slice>, max: usize) -> Vec<Slice> {
    if slices.len() <= max {
        return slices;
    }
    let group = slices.len().div_ceil(max);
    slices
        .chunks(group)
        .map(|chunk| {
            let first = &chunk[0];
            let last = chunk.last().expect("chunks are non-empty");
            let uniform = chunk.iter().all(|s| s.name == first.name);
            Slice {
                ts: first.ts,
                dur: (last.ts + last.dur).saturating_sub(first.ts),
                name: if uniform {
                    first.name.clone()
                } else {
                    format!("{}+", first.name)
                },
                ops: chunk.iter().map(|s| s.ops).sum(),
                extra: chunk.iter().map(|s| s.extra).sum(),
            }
        })
        .collect()
}

/// Keep at most `max` evenly-strided samples, always retaining the last.
fn decimate<T: Copy + PartialEq>(values: &[T], max: usize) -> Vec<T> {
    if values.len() <= max {
        return values.to_vec();
    }
    let stride = values.len().div_ceil(max);
    let mut out: Vec<T> = values.iter().copied().step_by(stride).collect();
    if let Some(&last) = values.last() {
        if out.last() != Some(&last) {
            out.push(last);
        }
    }
    out
}

/// Memory-side per-op aggregation while walking the event stream.
#[derive(Default)]
struct MemAgg {
    start: u64,
    fetch: u64,
    bursts: u64,
    writeback: u64,
    stream: u64,
    accesses: bool,
    streamed: bool,
}

impl MemAgg {
    /// The memory slice this op contributes, reconstructed with the
    /// engine's own cost model (`bytes / bandwidth + bursts × latency`).
    fn into_slice(self, bytes_per_cycle: f64, burst_latency: u64) -> Option<Slice> {
        let (name, bytes, dur) = if self.streamed {
            let b = self.stream;
            (
                "stream",
                b,
                b as f64 / bytes_per_cycle + burst_latency as f64,
            )
        } else if self.accesses {
            let b = self.fetch + self.writeback;
            (
                "xfer",
                b,
                b as f64 / bytes_per_cycle + (self.bursts.max(1) * burst_latency) as f64,
            )
        } else {
            let b = self.writeback;
            (
                "flush",
                b,
                b as f64 / bytes_per_cycle + burst_latency as f64,
            )
        };
        if bytes == 0 {
            return None;
        }
        Some(Slice {
            ts: self.start,
            dur: dur.round() as u64,
            name: name.to_string(),
            ops: 1,
            extra: bytes,
        })
    }
}

/// Convert one recorded layer into Chrome trace events, appended to
/// `events` under process id `pid`.
fn push_layer_chrome_events(events: &mut Vec<ChromeEvent>, pid: usize, layer: &LayerTrace) {
    {
        events.push(ChromeEvent {
            ts: 0,
            dur: None,
            ph: 'M',
            pid,
            tid: 0,
            name: "process_name".to_string(),
            args: vec![(
                "name",
                json_str(&format!("{} [{}]", layer.name, layer.technique.label())),
            )],
        });
        for core in &layer.cores {
            let tid_compute = core.core * 2;
            let tid_memory = core.core * 2 + 1;
            for (tid, label) in [(tid_compute, "compute"), (tid_memory, "memory")] {
                events.push(ChromeEvent {
                    ts: 0,
                    dur: None,
                    ph: 'M',
                    pid,
                    tid,
                    name: "thread_name".to_string(),
                    args: vec![("name", json_str(&format!("core{} {label}", core.core)))],
                });
            }

            let mut compute: Vec<Slice> = Vec::new();
            let mut phases: Vec<Slice> = Vec::new();
            let mut mem: Vec<Slice> = Vec::new();
            let mut counters: Vec<(u64, u64)> = Vec::new();
            let mut barriers: Vec<u64> = Vec::new();
            let mut open_phase: Option<(&'static str, u64)> = None;
            let mut cur_op: Option<u32> = None;
            let mut agg = MemAgg::default();
            let mem_event = |agg: &mut MemAgg,
                             cur_op: &mut Option<u32>,
                             mem: &mut Vec<Slice>,
                             op: u32,
                             cycle: u64| {
                if *cur_op != Some(op) {
                    if cur_op.is_some() {
                        if let Some(s) = std::mem::take(agg)
                            .into_slice(layer.bytes_per_cycle, layer.burst_latency)
                        {
                            mem.push(s);
                        }
                    }
                    *cur_op = Some(op);
                    *agg = MemAgg {
                        start: cycle,
                        ..MemAgg::default()
                    };
                }
            };
            for event in &core.events {
                match *event {
                    TraceEvent::Access {
                        op,
                        bytes,
                        kind,
                        cycle,
                        occupancy,
                        ..
                    } => {
                        mem_event(&mut agg, &mut cur_op, &mut mem, op, cycle);
                        agg.accesses = true;
                        if kind == igo_npu_sim::AccessKind::Fetch {
                            agg.fetch += bytes;
                            agg.bursts += 1;
                        }
                        counters.push((cycle, occupancy));
                    }
                    TraceEvent::WriteBack {
                        op, bytes, cycle, ..
                    } => {
                        mem_event(&mut agg, &mut cur_op, &mut mem, op, cycle);
                        agg.writeback += bytes;
                    }
                    TraceEvent::StreamIo {
                        op,
                        read_bytes,
                        write_bytes,
                        cycle,
                        ..
                    } => {
                        mem_event(&mut agg, &mut cur_op, &mut mem, op, cycle);
                        agg.streamed = true;
                        agg.stream += read_bytes + write_bytes;
                    }
                    TraceEvent::GemmIssue {
                        start,
                        cycles,
                        phase,
                        ..
                    } => compute.push(Slice {
                        ts: start,
                        dur: cycles,
                        name: phase.label().to_string(),
                        ops: 1,
                        extra: cycles,
                    }),
                    TraceEvent::PhaseBegin { phase, cycle, .. } => {
                        open_phase = Some((phase.label(), cycle));
                    }
                    TraceEvent::PhaseEnd { cycle, .. } => {
                        if let Some((label, begin)) = open_phase.take() {
                            phases.push(Slice {
                                ts: begin,
                                dur: cycle.saturating_sub(begin),
                                name: label.to_string(),
                                ops: 1,
                                extra: 0,
                            });
                        }
                    }
                    TraceEvent::Barrier { cycle, .. } => barriers.push(cycle),
                }
            }
            if cur_op.is_some() {
                if let Some(s) = agg.into_slice(layer.bytes_per_cycle, layer.burst_latency) {
                    mem.push(s);
                }
            }

            for s in coalesce(compute, SLICE_CAP) {
                events.push(ChromeEvent {
                    ts: s.ts,
                    dur: Some(s.dur),
                    ph: 'X',
                    pid,
                    tid: tid_compute,
                    name: s.name,
                    args: vec![
                        ("ops", s.ops.to_string()),
                        ("busy_cycles", s.extra.to_string()),
                    ],
                });
            }
            for s in coalesce(mem, SLICE_CAP) {
                events.push(ChromeEvent {
                    ts: s.ts,
                    dur: Some(s.dur),
                    ph: 'X',
                    pid,
                    tid: tid_memory,
                    name: s.name,
                    args: vec![("ops", s.ops.to_string()), ("bytes", s.extra.to_string())],
                });
            }
            for s in coalesce(phases, PHASE_CAP) {
                for (ph, ts) in [('B', s.ts), ('E', s.ts + s.dur)] {
                    events.push(ChromeEvent {
                        ts,
                        dur: None,
                        ph,
                        pid,
                        tid: tid_compute,
                        name: s.name.clone(),
                        args: Vec::new(),
                    });
                }
            }
            for (cycle, occupancy) in decimate(&counters, COUNTER_CAP) {
                events.push(ChromeEvent {
                    ts: cycle,
                    dur: None,
                    ph: 'C',
                    pid,
                    tid: tid_memory,
                    name: format!("SPM core{}", core.core),
                    args: vec![("bytes", occupancy.to_string())],
                });
            }
            for cycle in decimate(&barriers, BARRIER_CAP) {
                events.push(ChromeEvent {
                    ts: cycle,
                    dur: None,
                    ph: 'i',
                    pid,
                    tid: tid_memory,
                    name: "barrier".to_string(),
                    args: Vec::new(),
                });
            }
        }
    }
}

/// Render the collected events as the Chrome trace JSON object format.
fn render_chrome_json(mut events: Vec<ChromeEvent>) -> String {
    // Stable sort: equal timestamps keep emission order, so an `E` at the
    // same cycle as the next phase's `B` stays before it.
    events.sort_by_key(|e| e.ts);

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":");
        out.push_str(&json_str(&e.name));
        let _ = write!(
            out,
            ",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            e.ph, e.ts, e.pid, e.tid
        );
        if let Some(dur) = e.dur {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// The finished export artifacts of a trace run.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    pub trace_json: String,
    /// Per-(layer, core, class) metrics CSV.
    pub metrics_csv: String,
    /// dY reuse-ratio-over-time CSV.
    pub dy_reuse_csv: String,
    /// Per-dY-tile reuse CSV.
    pub dy_tiles_csv: String,
}

/// Incremental trace exporter: feed recorded layers one at a time with
/// [`TraceExport::add_layer`], then [`TraceExport::finish`]. Only the
/// coalesced export state is retained between layers, so a whole-model
/// trace never needs more than one layer's raw event stream in memory —
/// the caller can drop each [`LayerTrace`] right after adding it.
#[derive(Debug)]
pub struct TraceExport {
    max_reuse_points: usize,
    layers: usize,
    events: Vec<ChromeEvent>,
    metrics: String,
    reuse: String,
    tiles: String,
}

/// Default per-(layer, core) row cap of the dY reuse time-series CSV.
pub const DEFAULT_REUSE_POINTS: usize = 512;

impl TraceExport {
    /// Start an export; each (layer, core) dY time series is decimated to
    /// at most `max_reuse_points` CSV rows (the final point always kept).
    pub fn new(max_reuse_points: usize) -> Self {
        let mut metrics =
            String::from("layer,core,capacity,high_water,class,accesses,hits,misses,cold");
        for i in 0..igo_npu_sim::REUSE_BUCKETS {
            let _ = write!(metrics, ",d2^{i}");
        }
        metrics.push('\n');
        Self {
            max_reuse_points: max_reuse_points.max(1),
            layers: 0,
            events: Vec::new(),
            metrics,
            reuse: String::from("layer,core,cycle,dy_accesses,dy_hits,ratio\n"),
            tiles: String::from("layer,core,row,col,bytes,accesses,hits,reuse_ratio\n"),
        }
    }

    /// Fold one recorded layer into every export artifact.
    pub fn add_layer(&mut self, layer: &LayerTrace) {
        push_layer_chrome_events(&mut self.events, self.layers, layer);
        self.layers += 1;
        for core in &layer.cores {
            for class in TensorClass::ALL {
                let m = core.metrics.class(class);
                if m.accesses == 0 {
                    continue;
                }
                let _ = write!(
                    self.metrics,
                    "{},{},{},{},{},{},{},{},{}",
                    csv_field(&layer.name),
                    core.core,
                    core.metrics.capacity,
                    core.metrics.occupancy_high_water,
                    class.label(),
                    m.accesses,
                    m.hits,
                    m.misses(),
                    m.histogram.cold
                );
                for bucket in m.histogram.buckets {
                    let _ = write!(self.metrics, ",{bucket}");
                }
                self.metrics.push('\n');
            }
            for p in decimate(&core.metrics.dy_timeline, self.max_reuse_points) {
                let _ = writeln!(
                    self.reuse,
                    "{},{},{},{},{},{:.6}",
                    csv_field(&layer.name),
                    core.core,
                    p.cycle,
                    p.accesses,
                    p.hits,
                    p.ratio()
                );
            }
            for t in &core.metrics.dy_tiles {
                let _ = writeln!(
                    self.tiles,
                    "{},{},{},{},{},{},{},{:.6}",
                    csv_field(&layer.name),
                    core.core,
                    t.key.coord.r,
                    t.key.coord.c,
                    t.bytes,
                    t.accesses,
                    t.hits,
                    t.reuse_ratio()
                );
            }
        }
    }

    /// Render the final artifacts.
    pub fn finish(self) -> TraceArtifacts {
        TraceArtifacts {
            trace_json: render_chrome_json(self.events),
            metrics_csv: self.metrics,
            dy_reuse_csv: self.reuse,
            dy_tiles_csv: self.tiles,
        }
    }
}

fn export_all(traces: &[LayerTrace], max_reuse_points: usize) -> TraceArtifacts {
    let mut export = TraceExport::new(max_reuse_points);
    for trace in traces {
        export.add_layer(trace);
    }
    export.finish()
}

/// Serialise recorded layer traces as Chrome trace-event JSON (the array
/// format Perfetto and `chrome://tracing` load directly).
///
/// Layout: one *process* per layer (`pid` = layer index), two *threads*
/// per core — `core*2` is the compute timeline (tile-GEMM slices and
/// dX/dW phase begin/end markers), `core*2+1` is the memory timeline
/// (transfer/stream/flush slices, barrier instants). SPM occupancy is
/// exported as a counter track per core. Events are sorted by timestamp;
/// dense regions are coalesced, with merged slice counts and byte totals
/// preserved in `args`.
pub fn chrome_trace_json(traces: &[LayerTrace]) -> String {
    export_all(traces, DEFAULT_REUSE_POINTS).trace_json
}

/// Write [`chrome_trace_json`] to `w`.
pub fn write_chrome_trace<W: io::Write>(mut w: W, traces: &[LayerTrace]) -> io::Result<()> {
    w.write_all(chrome_trace_json(traces).as_bytes())
}

/// Per-(layer, core, class) metrics CSV: accesses, hits, misses, SPM
/// occupancy high-water mark and the full reuse-distance histogram
/// (`cold` plus one `d2^i` column per log₂ bucket). Classes a core never
/// touches are omitted.
pub fn trace_metrics_csv(traces: &[LayerTrace]) -> String {
    export_all(traces, DEFAULT_REUSE_POINTS).metrics_csv
}

/// dY reuse-ratio-over-time CSV (the paper's Figure 5 quantity): one row
/// per sampled dY access with the cumulative hit ratio at that cycle.
/// Each (layer, core) series is decimated to at most `max_points` rows,
/// always keeping the final (total-ratio) point.
pub fn dy_reuse_csv(traces: &[LayerTrace], max_points: usize) -> String {
    export_all(traces, max_points).dy_reuse_csv
}

/// Per-dY-tile reuse CSV: every dY tile's accesses, hits and reuse ratio
/// (Figure 5 resolved per tile), sorted by tile coordinate within each
/// (layer, core).
pub fn dy_tiles_csv(traces: &[LayerTrace]) -> String {
    export_all(traces, DEFAULT_REUSE_POINTS).dy_tiles_csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate_model;
    use crate::technique::Technique;
    use igo_npu_sim::NpuConfig;
    use igo_workloads::{zoo, ModelId};

    fn reports() -> (ModelReport, ModelReport) {
        let config = NpuConfig::large_single_core();
        let model = zoo::model(ModelId::Ncf, 8);
        (
            simulate_model(&model, &config, Technique::Baseline),
            simulate_model(&model, &config, Technique::Rearrangement),
        )
    }

    /// Minimal RFC-4180 parser for round-trip checks: splits one CSV text
    /// into records of unescaped fields.
    fn parse_csv(text: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut quoted = false;
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if quoted {
                match c {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        field.push('"');
                    }
                    '"' => quoted = false,
                    _ => field.push(c),
                }
            } else {
                match c {
                    '"' => quoted = true,
                    ',' => row.push(std::mem::take(&mut field)),
                    '\n' => {
                        row.push(std::mem::take(&mut field));
                        rows.push(std::mem::take(&mut row));
                    }
                    '\r' => {}
                    _ => field.push(c),
                }
            }
        }
        if !field.is_empty() || !row.is_empty() {
            row.push(field);
            rows.push(row);
        }
        rows
    }

    #[test]
    fn layers_csv_has_row_per_layer_plus_header() {
        let (base, _) = reports();
        let csv = layers_csv(&base);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), base.layers.len() + 1);
        assert!(lines[0].starts_with("layer,multiplicity"));
        assert!(lines[0].contains("read_dY"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), fields, "{line}");
        }
    }

    #[test]
    fn ladder_csv_normalises_against_baseline() {
        let (base, rearr) = reports();
        let csv = ladder_csv(&[(&base, vec![&rearr])]).expect("uniform ladder");
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("+Rearrangement"));
        let value: f64 = lines[1].split(',').nth(2).unwrap().parse().unwrap();
        assert!((0.1..2.0).contains(&value));
    }

    #[test]
    fn ladder_csv_rejects_mismatched_variant_sets() {
        let (base, rearr) = reports();
        let rows: Vec<(&ModelReport, Vec<&ModelReport>)> =
            vec![(&base, vec![&rearr]), (&base, vec![])];
        let err = ladder_csv(&rows).expect_err("row 2 drops the variant");
        assert_eq!(err.expected, vec!["+Rearrangement".to_string()]);
        assert!(err.found.is_empty());
        assert!(err.to_string().contains("header expects"));
    }

    #[test]
    fn layers_csv_quotes_hostile_names_round_trip() {
        let (mut base, _) = reports();
        let hostile = [
            "conv1,expansion",
            "say \"hi\"",
            "multi\nline",
            "comma, \"and\" quote",
        ];
        for (layer, name) in base.layers.iter_mut().zip(hostile) {
            layer.name = name.to_string();
        }
        let csv = layers_csv(&base);
        let rows = parse_csv(&csv);
        let header_fields = rows[0].len();
        assert_eq!(rows.len(), base.layers.len() + 1);
        for (row, layer) in rows[1..].iter().zip(&base.layers) {
            assert_eq!(row.len(), header_fields, "{row:?}");
            assert_eq!(row[0], layer.name, "name must survive the round trip");
            assert_eq!(row[1], layer.multiplicity.to_string());
        }
    }

    #[test]
    fn ladder_csv_quotes_hostile_model_names_round_trip() {
        let (mut base, rearr) = reports();
        base.model = "ncf, batch=8".to_string();
        base.config = "server \"1-core\"".to_string();
        let csv = ladder_csv(&[(&base, vec![&rearr])]).expect("uniform ladder");
        let rows = parse_csv(&csv);
        assert_eq!(rows[1][0], base.model);
        assert_eq!(rows[1][1], base.config);
        assert_eq!(rows[1].len(), rows[0].len());
    }
}
