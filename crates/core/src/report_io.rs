//! Report export: CSV writers for model reports.
//!
//! Figure-style analyses usually end in a plotting tool; these writers
//! serialise a [`ModelReport`] (or a technique-ladder comparison) into
//! machine-readable CSV without adding any dependencies. Free-form fields
//! (layer names, model names, partition labels) are RFC-4180-quoted, so a
//! name containing a comma, quote or newline cannot shift columns.

use crate::pipeline::ModelReport;
use igo_tensor::TensorClass;
use std::borrow::Cow;
use std::fmt::Write as _;

/// RFC-4180 field quoting: a field containing a comma, double quote or
/// newline is wrapped in double quotes with embedded quotes doubled; any
/// other field passes through unchanged.
fn csv_field(raw: &str) -> Cow<'_, str> {
    if raw.contains([',', '"', '\n', '\r']) {
        Cow::Owned(format!("\"{}\"", raw.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(raw)
    }
}

/// Per-layer CSV of one report: one row per distinct layer with cycles
/// and per-class backward traffic.
///
/// Columns: `layer,multiplicity,fwd_cycles,bwd_cycles,order,partition,`
/// then one `read_<class>` and `write_<class>` pair per tensor class.
pub fn layers_csv(report: &ModelReport) -> String {
    let mut out = String::new();
    out.push_str("layer,multiplicity,fwd_cycles,bwd_cycles,order,partition");
    for class in TensorClass::ALL {
        let _ = write!(out, ",read_{0},write_{0}", class.label());
    }
    out.push('\n');
    for layer in &report.layers {
        let partition = layer
            .decision
            .partition
            .map(|(s, p)| format!("{s} x{p}"))
            .unwrap_or_else(|| "-".to_owned());
        let _ = write!(
            out,
            "{},{},{},{},{:?},{}",
            csv_field(&layer.name),
            layer.multiplicity,
            layer.forward.cycles,
            layer.backward.cycles,
            layer.decision.order,
            csv_field(&partition)
        );
        for class in TensorClass::ALL {
            let _ = write!(
                out,
                ",{},{}",
                layer.backward.traffic.read(class),
                layer.backward.traffic.write(class)
            );
        }
        out.push('\n');
    }
    out
}

/// Error from [`ladder_csv`]: a row's variant list disagrees with the
/// header derived from the first row, which would silently shift columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderMismatch {
    /// Model name of the offending row.
    pub model: String,
    /// Technique labels the header (first row) declares.
    pub expected: Vec<String>,
    /// Technique labels the offending row actually carries.
    pub found: Vec<String>,
}

impl core::fmt::Display for LadderMismatch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ladder row for {} has variants {:?}, header expects {:?}",
            self.model, self.found, self.expected
        )
    }
}

impl std::error::Error for LadderMismatch {}

/// Ladder CSV: one row per model with the normalised time of each
/// non-baseline report against the first (baseline) report.
///
/// `reports` groups runs per model: `(baseline, variants)`. Every row must
/// carry the same technique ladder as the first row (the header source);
/// a mismatching row returns [`LadderMismatch`] instead of silently
/// writing misaligned columns.
pub fn ladder_csv(rows: &[(&ModelReport, Vec<&ModelReport>)]) -> Result<String, LadderMismatch> {
    let mut out = String::new();
    out.push_str("model,config");
    let header: Vec<&str> = match rows.first() {
        Some((_, variants)) => variants.iter().map(|v| v.technique.label()).collect(),
        None => Vec::new(),
    };
    for label in &header {
        let _ = write!(out, ",{}", csv_field(label));
    }
    out.push('\n');
    for (base, variants) in rows {
        let found: Vec<&str> = variants.iter().map(|v| v.technique.label()).collect();
        if found != header {
            return Err(LadderMismatch {
                model: base.model.clone(),
                expected: header.iter().map(|s| s.to_string()).collect(),
                found: found.iter().map(|s| s.to_string()).collect(),
            });
        }
        let _ = write!(
            out,
            "{},{}",
            csv_field(&base.model),
            csv_field(&base.config)
        );
        for v in variants {
            let _ = write!(out, ",{:.6}", v.normalized_to(base));
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate_model;
    use crate::technique::Technique;
    use igo_npu_sim::NpuConfig;
    use igo_workloads::{zoo, ModelId};

    fn reports() -> (ModelReport, ModelReport) {
        let config = NpuConfig::large_single_core();
        let model = zoo::model(ModelId::Ncf, 8);
        (
            simulate_model(&model, &config, Technique::Baseline),
            simulate_model(&model, &config, Technique::Rearrangement),
        )
    }

    /// Minimal RFC-4180 parser for round-trip checks: splits one CSV text
    /// into records of unescaped fields.
    fn parse_csv(text: &str) -> Vec<Vec<String>> {
        let mut rows = Vec::new();
        let mut row: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut quoted = false;
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            if quoted {
                match c {
                    '"' if chars.peek() == Some(&'"') => {
                        chars.next();
                        field.push('"');
                    }
                    '"' => quoted = false,
                    _ => field.push(c),
                }
            } else {
                match c {
                    '"' => quoted = true,
                    ',' => row.push(std::mem::take(&mut field)),
                    '\n' => {
                        row.push(std::mem::take(&mut field));
                        rows.push(std::mem::take(&mut row));
                    }
                    '\r' => {}
                    _ => field.push(c),
                }
            }
        }
        if !field.is_empty() || !row.is_empty() {
            row.push(field);
            rows.push(row);
        }
        rows
    }

    #[test]
    fn layers_csv_has_row_per_layer_plus_header() {
        let (base, _) = reports();
        let csv = layers_csv(&base);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), base.layers.len() + 1);
        assert!(lines[0].starts_with("layer,multiplicity"));
        assert!(lines[0].contains("read_dY"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), fields, "{line}");
        }
    }

    #[test]
    fn ladder_csv_normalises_against_baseline() {
        let (base, rearr) = reports();
        let csv = ladder_csv(&[(&base, vec![&rearr])]).expect("uniform ladder");
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("+Rearrangement"));
        let value: f64 = lines[1].split(',').nth(2).unwrap().parse().unwrap();
        assert!((0.1..2.0).contains(&value));
    }

    #[test]
    fn ladder_csv_rejects_mismatched_variant_sets() {
        let (base, rearr) = reports();
        let rows: Vec<(&ModelReport, Vec<&ModelReport>)> =
            vec![(&base, vec![&rearr]), (&base, vec![])];
        let err = ladder_csv(&rows).expect_err("row 2 drops the variant");
        assert_eq!(err.expected, vec!["+Rearrangement".to_string()]);
        assert!(err.found.is_empty());
        assert!(err.to_string().contains("header expects"));
    }

    #[test]
    fn layers_csv_quotes_hostile_names_round_trip() {
        let (mut base, _) = reports();
        let hostile = [
            "conv1,expansion",
            "say \"hi\"",
            "multi\nline",
            "comma, \"and\" quote",
        ];
        for (layer, name) in base.layers.iter_mut().zip(hostile) {
            layer.name = name.to_string();
        }
        let csv = layers_csv(&base);
        let rows = parse_csv(&csv);
        let header_fields = rows[0].len();
        assert_eq!(rows.len(), base.layers.len() + 1);
        for (row, layer) in rows[1..].iter().zip(&base.layers) {
            assert_eq!(row.len(), header_fields, "{row:?}");
            assert_eq!(row[0], layer.name, "name must survive the round trip");
            assert_eq!(row[1], layer.multiplicity.to_string());
        }
    }

    #[test]
    fn ladder_csv_quotes_hostile_model_names_round_trip() {
        let (mut base, rearr) = reports();
        base.model = "ncf, batch=8".to_string();
        base.config = "server \"1-core\"".to_string();
        let csv = ladder_csv(&[(&base, vec![&rearr])]).expect("uniform ladder");
        let rows = parse_csv(&csv);
        assert_eq!(rows[1][0], base.model);
        assert_eq!(rows[1][1], base.config);
        assert_eq!(rows[1].len(), rows[0].len());
    }
}
