//! Report export: CSV writers for model reports.
//!
//! Figure-style analyses usually end in a plotting tool; these writers
//! serialise a [`ModelReport`] (or a technique-ladder comparison) into
//! machine-readable CSV without adding any dependencies.

use crate::pipeline::ModelReport;
use igo_tensor::TensorClass;
use std::fmt::Write as _;

/// Per-layer CSV of one report: one row per distinct layer with cycles
/// and per-class backward traffic.
///
/// Columns: `layer,multiplicity,fwd_cycles,bwd_cycles,order,partition,`
/// then one `read_<class>` and `write_<class>` pair per tensor class.
pub fn layers_csv(report: &ModelReport) -> String {
    let mut out = String::new();
    out.push_str("layer,multiplicity,fwd_cycles,bwd_cycles,order,partition");
    for class in TensorClass::ALL {
        let _ = write!(out, ",read_{0},write_{0}", class.label());
    }
    out.push('\n');
    for layer in &report.layers {
        let partition = layer
            .decision
            .partition
            .map(|(s, p)| format!("{s} x{p}"))
            .unwrap_or_else(|| "-".to_owned());
        let _ = write!(
            out,
            "{},{},{},{},{:?},{}",
            layer.name,
            layer.multiplicity,
            layer.forward.cycles,
            layer.backward.cycles,
            layer.decision.order,
            partition
        );
        for class in TensorClass::ALL {
            let _ = write!(
                out,
                ",{},{}",
                layer.backward.traffic.read(class),
                layer.backward.traffic.write(class)
            );
        }
        out.push('\n');
    }
    out
}

/// Ladder CSV: one row per model with the normalised time of each
/// non-baseline report against the first (baseline) report.
///
/// `reports` groups runs per model: `(baseline, variants)`.
pub fn ladder_csv(rows: &[(&ModelReport, Vec<&ModelReport>)]) -> String {
    let mut out = String::new();
    out.push_str("model,config");
    if let Some((_, variants)) = rows.first() {
        for v in variants {
            let _ = write!(out, ",{}", v.technique.label());
        }
    }
    out.push('\n');
    for (base, variants) in rows {
        let _ = write!(out, "{},{}", base.model, base.config);
        for v in variants {
            let _ = write!(out, ",{:.6}", v.normalized_to(base));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::simulate_model;
    use crate::technique::Technique;
    use igo_npu_sim::NpuConfig;
    use igo_workloads::{zoo, ModelId};

    fn reports() -> (ModelReport, ModelReport) {
        let config = NpuConfig::large_single_core();
        let model = zoo::model(ModelId::Ncf, 8);
        (
            simulate_model(&model, &config, Technique::Baseline),
            simulate_model(&model, &config, Technique::Rearrangement),
        )
    }

    #[test]
    fn layers_csv_has_row_per_layer_plus_header() {
        let (base, _) = reports();
        let csv = layers_csv(&base);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), base.layers.len() + 1);
        assert!(lines[0].starts_with("layer,multiplicity"));
        assert!(lines[0].contains("read_dY"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), fields, "{line}");
        }
    }

    #[test]
    fn ladder_csv_normalises_against_baseline() {
        let (base, rearr) = reports();
        let csv = ladder_csv(&[(&base, vec![&rearr])]);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].ends_with("+Rearrangement"));
        let value: f64 = lines[1].split(',').nth(2).unwrap().parse().unwrap();
        assert!((0.1..2.0).contains(&value));
    }
}
