//! Deterministic scoped worker pools for the simulate-and-select loops.
//!
//! The pipeline evaluates many independent simulations — candidate
//! schedules within a layer, layers within a model — whose *results* must
//! not depend on execution order: the paper's selection rule is "first
//! candidate with the strictly smallest cycle count", so any reduction has
//! to break ties by candidate index, never by completion order.
//!
//! [`parallel_map`] provides exactly that contract: results come back in
//! item order regardless of which worker finished first. Workers are plain
//! [`std::thread::scope`] threads (no external runtime), pulling items off
//! a shared atomic counter. Nested calls — a layer pool spawning a
//! candidate pool — run the inner map sequentially on the calling worker
//! instead of oversubscribing the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Set while the current thread is a pool worker: nested maps stay
    /// sequential instead of spawning threads-under-threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a [`parallel_map`] worker.
pub fn in_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Map `f` over `items`, possibly concurrently, returning results in item
/// order. Falls back to a plain sequential map when the machine has a
/// single hardware thread, when there is at most one item, or when already
/// running inside a pool worker.
pub fn parallel_map<T, R>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    parallel_map_workers(items, 0, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker state: `init` runs once per worker (or
/// once total on the sequential path) and the state is threaded through
/// every call that worker makes. The pipeline uses this to give each worker
/// its own reusable [`igo_npu_sim::EngineScratch`].
pub fn parallel_map_with<S, T, R>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    parallel_map_workers(items, 0, init, f)
}

/// Environment variable overriding the default worker-pool size (used when
/// the caller passes `workers == 0`; see [`default_workers`]).
pub const THREADS_ENV: &str = "IGO_SIM_THREADS";

/// The worker count a `workers == 0` pool resolves to: the
/// `IGO_SIM_THREADS` environment override when set to a positive integer,
/// else one worker per hardware thread. Thread count never affects results
/// (the pool reduces in item order), only wall-clock time.
pub fn default_workers() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// [`parallel_map_with`] with an explicit worker count; `0` means
/// [`default_workers`] (the `IGO_SIM_THREADS` override or one per hardware
/// thread). Forcing more workers than hardware threads is how the tests
/// drive the pool's cross-thread determinism even on small machines.
pub fn parallel_map_workers<S, T, R>(
    items: &[T],
    workers: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(items.len());
    if workers <= 1 || in_worker() {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_POOL.with(|flag| flag.set(true));
                let mut state = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&mut state, &items[i])));
                }
                collected.lock().unwrap().append(&mut local);
            });
        }
    });
    let mut got = collected.into_inner().unwrap();
    debug_assert_eq!(got.len(), items.len());
    got.sort_unstable_by_key(|(i, _)| *i);
    got.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<u64> = (0..257).collect();
        // Force a real pool (even on a single-CPU machine) with skewed
        // per-item work so completion order differs from item order.
        let out = parallel_map_workers(
            &items,
            4,
            || (),
            |(), &x| {
                let spin = (x % 7) * 50;
                let mut acc = x;
                for i in 0..spin {
                    acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(i));
                }
                let _ = acc;
                x * 2
            },
        );
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_maps_run_sequentially() {
        let outer: Vec<u32> = (0..8).collect();
        let out = parallel_map_workers(
            &outer,
            4,
            || (),
            |(), &x| {
                assert!(in_worker(), "forced pool must run items on workers");
                let inner: Vec<u32> = (0..4).collect();
                parallel_map(&inner, |&y| x * 10 + y)
            },
        );
        assert_eq!(out[3], vec![30, 31, 32, 33]);
        assert!(!in_worker(), "flag must not leak to the caller");
    }

    #[test]
    fn per_worker_state_sees_every_item_once() {
        let touched = AtomicU64::new(0);
        let items: Vec<u64> = (0..100).collect();
        let sums = parallel_map_workers(
            &items,
            4,
            || 0u64,
            |state, &x| {
                *state += 1;
                touched.fetch_add(x, Ordering::Relaxed);
                *state
            },
        );
        // Each worker's running count is positive and the global sum covers
        // every item exactly once.
        assert!(sums.iter().all(|&s| s > 0));
        assert_eq!(touched.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x: &u32| x).is_empty());
        assert_eq!(parallel_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        // The determinism contract behind `--jobs` / `IGO_SIM_THREADS`:
        // any pool size yields the same result vector.
        let items: Vec<u64> = (0..137).collect();
        let run = |workers| {
            parallel_map_workers(
                &items,
                workers,
                || 0u64,
                |state, &x| {
                    *state = state.wrapping_mul(6364136223846793005).wrapping_add(x);
                    x * x + 7
                },
            )
        };
        let want = run(1);
        for workers in [2, 3, 5, 8, 16] {
            assert_eq!(run(workers), want, "worker count {workers} diverged");
        }
    }
}
