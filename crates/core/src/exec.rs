//! Numerical execution of schedules — the strongest correctness check.
//!
//! Every schedule this crate emits is *supposed* to be a pure reordering
//! of the same computation. This module proves it numerically: it runs a
//! schedule's tile operations on real `f32` matrices and compares the
//! produced gradients against the dense reference
//! `dX = dY × Wᵀ`, `dW = Xᵀ × dY`. Reordering tile GEMMs changes the
//! order in which partial products arrive at an accumulator element, so
//! floating-point results can differ in the last bits between orders;
//! comparisons therefore use a tight, size-scaled epsilon.
//!
//! The executor infers each tile operation's role from its accumulator
//! tensor (`dX`, `dW`, or `Y`) and recovers the missing loop index from
//! the operand coordinates, so it also handles schedules with elided `dY`
//! reads (the Figure 6 study) and partitioned schedules (via the
//! partition's tensor bindings and sub-GEMM offsets).

use crate::partition::{PartitionScheme, PartitionedBackward};
use crate::schedule::LayerTensors;
use crate::tiling::TilePolicy;
use igo_npu_sim::{Schedule, ScheduleOp, TensorId, TileOp};
use igo_tensor::SplitMix64;
use igo_tensor::{GemmShape, TileGrid};

/// Dense row-major matrices of one layer's backward pass.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    gemm: GemmShape,
    /// `X(M,K)`, row-major.
    pub x: Vec<f32>,
    /// `W(K,N)`, row-major.
    pub w: Vec<f32>,
    /// `dY(M,N)`, row-major.
    pub dy: Vec<f32>,
}

impl DenseLayer {
    /// Random data for a layer of shape `gemm` (deterministic in `seed`).
    pub fn random(gemm: GemmShape, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut fill =
            |len: u64| -> Vec<f32> { (0..len).map(|_| rng.range_f32(-1.0, 1.0)).collect() };
        Self {
            gemm,
            x: fill(gemm.m() * gemm.k()),
            w: fill(gemm.k() * gemm.n()),
            dy: fill(gemm.m() * gemm.n()),
        }
    }

    /// The layer's forward GEMM shape.
    pub fn gemm(&self) -> GemmShape {
        self.gemm
    }

    /// Dense reference input gradient `dX = dY × Wᵀ` (`M×K`, row-major).
    pub fn reference_dx(&self) -> Vec<f32> {
        let (m, k, n) = (self.gemm.m(), self.gemm.k(), self.gemm.n());
        let mut dx = vec![0.0f32; (m * k) as usize];
        for i in 0..m {
            for kk in 0..k {
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += self.dy[(i * n + j) as usize] * self.w[(kk * n + j) as usize];
                }
                dx[(i * k + kk) as usize] = acc;
            }
        }
        dx
    }

    /// Dense reference weight gradient `dW = Xᵀ × dY` (`K×N`, row-major).
    pub fn reference_dw(&self) -> Vec<f32> {
        let (m, k, n) = (self.gemm.m(), self.gemm.k(), self.gemm.n());
        let mut dw = vec![0.0f32; (k * n) as usize];
        for kk in 0..k {
            for j in 0..n {
                let mut acc = 0.0f32;
                for i in 0..m {
                    acc += self.x[(i * k + kk) as usize] * self.dy[(i * n + j) as usize];
                }
                dw[(kk * n + j) as usize] = acc;
            }
        }
        dw
    }

    /// Dense reference forward output `Y = X × W` (`M×N`, row-major).
    pub fn reference_y(&self) -> Vec<f32> {
        let (m, k, n) = (self.gemm.m(), self.gemm.k(), self.gemm.n());
        let mut y = vec![0.0f32; (m * n) as usize];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += self.x[(i * k + kk) as usize] * self.w[(kk * n + j) as usize];
                }
                y[(i * n + j) as usize] = acc;
            }
        }
        y
    }
}

/// Gradients produced by executing a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutedGradients {
    /// `dX(M,K)`, row-major.
    pub dx: Vec<f32>,
    /// `dW(K,N)`, row-major.
    pub dw: Vec<f32>,
}

/// A view mapping one partition's local coordinates onto the layer data.
struct PartitionView {
    tensors: LayerTensors,
    sub: GemmShape,
    /// Element offsets of this partition within the full `(M, K, N)`.
    m_off: u64,
    k_off: u64,
    n_off: u64,
}

/// Execute a single-layer (unpartitioned) backward schedule.
///
/// # Panics
///
/// Panics if the schedule contains ops whose accumulators are not the
/// layer's `dX`/`dW` tensors, or whose operand coordinates are
/// inconsistent with the layer shape — i.e. if the schedule is not a
/// backward pass of `layer`.
pub fn execute_backward(
    schedule: &Schedule,
    tensors: LayerTensors,
    layer: &DenseLayer,
    policy: TilePolicy,
) -> ExecutedGradients {
    let view = PartitionView {
        tensors,
        sub: layer.gemm,
        m_off: 0,
        k_off: 0,
        n_off: 0,
    };
    let mut out = ExecutedGradients {
        dx: vec![0.0; (layer.gemm.m() * layer.gemm.k()) as usize],
        dw: vec![0.0; (layer.gemm.k() * layer.gemm.n()) as usize],
    };
    execute_view(schedule, &view, layer, policy, &mut out);
    out
}

/// Execute a partitioned backward pass: every partition's schedule runs
/// against its slice of the layer data; partial gradients accumulate into
/// one result (the cross-partition reduction).
pub fn execute_partitioned(
    partitioned: &PartitionedBackward,
    parent_gemm: GemmShape,
    layer: &DenseLayer,
    policy: TilePolicy,
) -> ExecutedGradients {
    assert_eq!(
        parent_gemm, layer.gemm,
        "layer data must match the parent GEMM"
    );
    let mut out = ExecutedGradients {
        dx: vec![0.0; (parent_gemm.m() * parent_gemm.k()) as usize],
        dw: vec![0.0; (parent_gemm.k() * parent_gemm.n()) as usize],
    };
    let (mut m_off, mut k_off, mut n_off) = (0u64, 0u64, 0u64);
    for ((schedule, tensors), sub) in partitioned
        .schedules
        .iter()
        .zip(&partitioned.part_tensors)
        .zip(&partitioned.sub_gemms)
    {
        let view = PartitionView {
            tensors: *tensors,
            sub: *sub,
            m_off,
            k_off,
            n_off,
        };
        execute_view(schedule, &view, layer, policy, &mut out);
        match partitioned.scheme {
            PartitionScheme::WeightSharing => m_off += sub.m(),
            PartitionScheme::DySharing => n_off += sub.n(),
            PartitionScheme::IfmapSharing => k_off += sub.k(),
        }
    }
    out
}

fn execute_view(
    schedule: &Schedule,
    view: &PartitionView,
    layer: &DenseLayer,
    policy: TilePolicy,
    out: &mut ExecutedGradients,
) {
    let dy_grid = view.sub.dy_grid(policy.tile);
    let x_grid = view.sub.dx_grid(policy.tile);
    let w_grid = view.sub.dw_grid(policy.tile);
    let t = policy.tile;

    for op in schedule.ops() {
        let ScheduleOp::Gemm(g) = op else { continue };
        let acc = g.acc.expect("backward ops accumulate");
        if acc.key.tensor == view.tensors.dx {
            execute_dx_op(g, view, layer, &dy_grid, &x_grid, t.rows, out);
        } else if acc.key.tensor == view.tensors.dw {
            execute_dw_op(g, view, layer, &dy_grid, &w_grid, t.rows, out);
        } else {
            panic!(
                "unexpected accumulator tensor {:?} in backward schedule",
                acc.key.tensor
            );
        }
    }
}

fn find_read(g: &TileOp, tensor: TensorId) -> Option<(u32, u32)> {
    g.reads
        .iter()
        .find(|r| r.key.tensor == tensor)
        .map(|r| (r.key.coord.r, r.key.coord.c))
}

#[allow(clippy::too_many_arguments)]
fn execute_dx_op(
    g: &TileOp,
    view: &PartitionView,
    layer: &DenseLayer,
    dy_grid: &TileGrid,
    x_grid: &TileGrid,
    tile: u64,
    out: &mut ExecutedGradients,
) {
    let acc = g.acc.expect("dx op accumulates");
    let (ti, tk) = (acc.key.coord.r as u64, acc.key.coord.c as u64);
    // The j index comes from the dY operand tile (always read by dX ops).
    let (dy_r, dy_c) = find_read(g, view.tensors.dy).expect("dX op reads dY");
    assert_eq!(
        dy_r as u64, ti,
        "dX op dY row must match the accumulator row"
    );
    let tj = dy_c as u64;

    let dy_dims = dy_grid.tile_dims(igo_tensor::TileCoord::new(ti as u32, tj as u32));
    let dx_dims = x_grid.tile_dims(igo_tensor::TileCoord::new(ti as u32, tk as u32));
    let (gm, gk, gn) = (layer.gemm.m(), layer.gemm.k(), layer.gemm.n());
    let _ = gm;

    for li in 0..dy_dims.rows {
        let i = view.m_off + ti * tile + li;
        for lk in 0..dx_dims.cols {
            let kk = view.k_off + tk * tile + lk;
            let mut acc_v = 0.0f32;
            for lj in 0..dy_dims.cols {
                let j = view.n_off + tj * tile + lj;
                acc_v += layer.dy[(i * gn + j) as usize] * layer.w[(kk * gn + j) as usize];
            }
            out.dx[(i * gk + kk) as usize] += acc_v;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_dw_op(
    g: &TileOp,
    view: &PartitionView,
    layer: &DenseLayer,
    dy_grid: &TileGrid,
    w_grid: &TileGrid,
    tile: u64,
    out: &mut ExecutedGradients,
) {
    let acc = g.acc.expect("dw op accumulates");
    let (tk, tj) = (acc.key.coord.r as u64, acc.key.coord.c as u64);
    // The i index comes from the X operand tile (always read by dW ops,
    // even when dY reads are elided).
    let (x_r, x_c) = find_read(g, view.tensors.x).expect("dW op reads X");
    assert_eq!(
        x_c as u64, tk,
        "dW op X column must match the accumulator row"
    );
    let ti = x_r as u64;

    let dy_dims = dy_grid.tile_dims(igo_tensor::TileCoord::new(ti as u32, tj as u32));
    let dw_dims = w_grid.tile_dims(igo_tensor::TileCoord::new(tk as u32, tj as u32));
    let (gk, gn) = (layer.gemm.k(), layer.gemm.n());

    for lk in 0..dw_dims.rows {
        let kk = view.k_off + tk * tile + lk;
        for lj in 0..dw_dims.cols {
            let j = view.n_off + tj * tile + lj;
            let mut acc_v = 0.0f32;
            for li in 0..dy_dims.rows {
                let i = view.m_off + ti * tile + li;
                acc_v += layer.x[(i * gk + kk) as usize] * layer.dy[(i * gn + j) as usize];
            }
            out.dw[(kk * gn + j) as usize] += acc_v;
        }
    }
}

/// Maximum absolute element difference between two equally sized vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "gradient size mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{BackwardBuilder, BackwardOrder};
    use crate::tiling::TilePolicy;
    use igo_tensor::{DataType, TileShape};

    fn tiny_policy() -> TilePolicy {
        TilePolicy {
            tile: TileShape::square(8),
            dtype: DataType::F32,
            capacity_tiles: 12,
        }
    }

    fn check_order(gemm: GemmShape, order: BackwardOrder, seed: u64) {
        let layer = DenseLayer::random(gemm, seed);
        let policy = tiny_policy();
        let mut s = Schedule::new("exec");
        let tensors = LayerTensors::register(&mut s, "l");
        BackwardBuilder::new(gemm, policy, tensors).emit(order, false, &mut s);
        let got = execute_backward(&s, tensors, &layer, policy);
        let tol = 1e-3 * gemm.max_dim() as f32;
        assert!(
            max_abs_diff(&got.dx, &layer.reference_dx()) < tol,
            "{order:?} dX mismatch on {gemm}"
        );
        assert!(
            max_abs_diff(&got.dw, &layer.reference_dw()) < tol,
            "{order:?} dW mismatch on {gemm}"
        );
    }

    #[test]
    fn all_orders_compute_correct_gradients() {
        let gemm = GemmShape::new(37, 21, 29);
        for order in [
            BackwardOrder::Baseline,
            BackwardOrder::IdealDyReuse,
            BackwardOrder::Interleaved,
            BackwardOrder::DxMajor,
            BackwardOrder::DwMajor,
        ] {
            check_order(gemm, order, 11);
        }
    }

    #[test]
    fn tile_aligned_shapes_also_correct() {
        check_order(GemmShape::new(32, 16, 24), BackwardOrder::DxMajor, 5);
        check_order(GemmShape::new(8, 8, 8), BackwardOrder::Interleaved, 6);
    }

    #[test]
    fn partitions_reduce_to_reference() {
        let gemm = GemmShape::new(40, 24, 32);
        let layer = DenseLayer::random(gemm, 3);
        let policy = tiny_policy();
        let mut proto = Schedule::new("p");
        let tensors = LayerTensors::register(&mut proto, "l");
        for scheme in PartitionScheme::ALL {
            for parts in [2u64, 3] {
                let p = crate::partition::partition_backward(
                    &proto,
                    tensors,
                    gemm,
                    policy,
                    scheme,
                    parts,
                    BackwardOrder::DxMajor,
                    false,
                );
                let got = execute_partitioned(&p, gemm, &layer, policy);
                let tol = 1e-3 * gemm.max_dim() as f32;
                assert!(
                    max_abs_diff(&got.dx, &layer.reference_dx()) < tol,
                    "{scheme} x{parts} dX"
                );
                assert!(
                    max_abs_diff(&got.dw, &layer.reference_dw()) < tol,
                    "{scheme} x{parts} dW"
                );
            }
        }
    }

    #[test]
    fn first_layer_dw_only_computes_dw() {
        let gemm = GemmShape::new(24, 16, 16);
        let layer = DenseLayer::random(gemm, 9);
        let policy = tiny_policy();
        let mut s = Schedule::new("first");
        let tensors = LayerTensors::register(&mut s, "l");
        BackwardBuilder::new(gemm, policy, tensors).emit(BackwardOrder::DxMajor, true, &mut s);
        let got = execute_backward(&s, tensors, &layer, policy);
        assert!(max_abs_diff(&got.dw, &layer.reference_dw()) < 1e-2);
        assert!(got.dx.iter().all(|&v| v == 0.0), "no dX for a first layer");
    }

    #[test]
    fn forward_reference_matches_manual() {
        // 2x2x2 hand-checked case.
        let gemm = GemmShape::new(2, 2, 2);
        let layer = DenseLayer {
            gemm,
            x: vec![1.0, 2.0, 3.0, 4.0],
            w: vec![5.0, 6.0, 7.0, 8.0],
            dy: vec![1.0, 0.0, 0.0, 1.0],
        };
        assert_eq!(layer.reference_y(), vec![19.0, 22.0, 43.0, 50.0]);
        // dX = dY * W^T = W^T (identity dY), row-major.
        assert_eq!(layer.reference_dx(), vec![5.0, 7.0, 6.0, 8.0]);
        // dW = X^T * dY.
        assert_eq!(layer.reference_dw(), vec![1.0, 3.0, 2.0, 4.0]);
    }

    /// Any order on any small shape reproduces the dense gradients
    /// (deterministic sampling in place of a property-based sweep).
    #[test]
    fn gradients_correct_for_random_shapes() {
        let orders = [
            BackwardOrder::Baseline,
            BackwardOrder::IdealDyReuse,
            BackwardOrder::Interleaved,
            BackwardOrder::DxMajor,
            BackwardOrder::DwMajor,
        ];
        let mut rng = SplitMix64::new(0x1607);
        for case in 0..12 {
            let m = rng.range_u64(1, 48);
            let k = rng.range_u64(1, 40);
            let n = rng.range_u64(1, 40);
            let order = orders[rng.index(orders.len())];
            let seed = rng.range_u64(0, 1000);
            check_order(GemmShape::new(m, k, n), order, seed + case);
        }
    }
}
