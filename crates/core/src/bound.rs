//! Closed-form admissible lower bounds for backward-pass candidates.
//!
//! The schedule builders in [`crate::schedule`] emit, for every order
//! family, the *same multiset* of tile operations — only the traversal
//! order differs (plus the baseline's mid-stream barrier and the
//! ideal-reuse study's elided `dY` reads). That makes most report fields
//! computable in closed form from the tile grids alone, without emitting a
//! single op:
//!
//! * **compute cycles, MACs, op/access counts, SPM bytes touched** are
//!   order-independent and *exact* — the systolic tile-cycle formula is a
//!   product of per-axis factors, so the triple sum over the tile grid
//!   factorises ([`igo_npu_sim::compute_sum`]);
//! * **DRAM traffic** is bounded below by the *compulsory* traffic of each
//!   barrier-delimited region: every distinct tile whose first touch in a
//!   region is a clean read must be fetched at least once (the SPM is
//!   cleared at barriers), and every accumulator tile is written back at
//!   least once. Accumulator first touches materialise in SPM without a
//!   fetch, so they contribute misses but no read traffic;
//! * the fused sweeps additionally pay **partial-result spills** whenever a
//!   sweep window's working set exceeds the SPM: for any contiguous window
//!   of the access stream, at most `capacity` bytes can be resident when it
//!   starts, so `(distinct window bytes − capacity)` must be fetched during
//!   the window — summed over the disjoint `(K-chunk, sweep-block, j)`
//!   windows of the dXmajor nest (and the dWmajor mirror). Only tiles that
//!   can materialise for free (accumulators on their first region touch)
//!   are excluded.
//!
//! Every bound here is *admissible* with respect to [`Engine::run`] — the
//! audit fuzzes this field by field — which is what makes it safe for
//! candidate pruning: a candidate whose bound exceeds the incumbent's
//! simulated cycles can be discarded without emission or replay.

use crate::partition::{plan_partition_backward, PartitionScheme};
use crate::schedule::{BackwardBuilder, BackwardOrder, LayerTensors};
use crate::tiling::TilePolicy;
use igo_npu_sim::{
    compute_sum, grid_sum, reduction_cycles, Axis, BoundAccum, Engine, GridSum, NpuConfig, TensorId,
};
use igo_tensor::{GemmShape, TensorClass, TileGrid};

/// Closed-form per-grid quantities of one layer (or one partition).
struct Grids {
    /// `dY` grid sums (no density).
    dy: GridSum,
    /// `W`/`dW` grid sums (no density).
    w: GridSum,
    /// `X`/`dX` grid sums at the raw-layout density.
    x: GridSum,
    mt: u64,
    kt: u64,
    nt: u64,
    /// Exact compute cycles of the full dX op family.
    dx_compute: u64,
    /// Exact compute cycles of the full dW op family.
    dw_compute: u64,
}

fn row_axis(grid: &TileGrid) -> Axis {
    let count = grid.rows();
    Axis {
        count: count as u64,
        full: grid.tile_dims(igo_tensor::TileCoord::new(0, 0)).rows,
        last: grid
            .tile_dims(igo_tensor::TileCoord::new(count - 1, 0))
            .rows,
    }
}

fn col_axis(grid: &TileGrid) -> Axis {
    let count = grid.cols();
    Axis {
        count: count as u64,
        full: grid.tile_dims(igo_tensor::TileCoord::new(0, 0)).cols,
        last: grid
            .tile_dims(igo_tensor::TileCoord::new(0, count - 1))
            .cols,
    }
}

fn grids(b: &BackwardBuilder, engine: &Engine) -> Grids {
    let dtype = b.policy().dtype;
    let (dy_g, x_g, w_g) = (b.dy_grid(), b.x_grid(), b.w_grid());
    Grids {
        dy: grid_sum(dy_g, dtype, None),
        w: grid_sum(w_g, dtype, None),
        x: grid_sum(x_g, dtype, Some(b.density())),
        mt: dy_g.rows() as u64,
        kt: x_g.cols() as u64,
        nt: dy_g.cols() as u64,
        // dX[i,kk] += dY[i,j]·Wᵀ[j,kk]: per-op shape (dy_rows_i, dy_cols_j,
        // dx_cols_kk), summed over the full (i, j, kk) grid.
        dx_compute: compute_sum(engine, row_axis(dy_g), col_axis(dy_g), col_axis(x_g)),
        // dW[kk,j] += Xᵀ[kk,i]·dY[i,j]: per-op shape (dw_rows_kk,
        // dy_rows_i, dw_cols_j).
        dw_compute: compute_sum(engine, row_axis(w_g), row_axis(dy_g), col_axis(w_g)),
    }
}

/// One barrier-delimited region's compulsory terms, accumulated into `acc`.
/// `reads` lists the distinct clean-read grids first touched here, `accs`
/// the accumulator grids (touched dirty: misses and write-backs, no reads).
fn region(acc: &mut BoundAccum, reads: &[(TensorClass, GridSum)], accs: &[(TensorClass, GridSum)]) {
    for (class, g) in reads {
        acc.traffic.add_read(*class, g.bytes);
        acc.mem_bytes += g.bytes;
        acc.bursts += g.tiles;
        acc.misses += g.tiles;
    }
    for (class, g) in accs {
        acc.traffic.add_write(*class, g.bytes);
        acc.mem_bytes += g.bytes;
        acc.misses += g.tiles;
    }
}

/// Admissible lower bound for one unpartitioned backward emission
/// (`builder.emit(order, is_first, …)`), against `engine`'s machine model.
pub fn backward_emission_bound(
    builder: &BackwardBuilder,
    order: BackwardOrder,
    is_first: bool,
    engine: &Engine,
) -> BoundAccum {
    let mut acc = BoundAccum::default();
    accumulate_backward(&mut acc, builder, order, is_first, engine, true);
    acc
}

/// Accumulate one backward emission's bound terms into `acc`.
///
/// `cold_regions` must be true when every region of this emission starts
/// with a cleared SPM (single emission, or any emission in a sequential
/// chain — the chain merges the trailing region with the next segment's
/// leading one, so per-segment compulsory terms would over-count the
/// *shared* tensor; callers handle that by deduplicating shared grids, see
/// [`sequential_candidate_bound`]). When false, only the order-independent
/// exact terms (compute, ops, MACs, SPM bytes) are accumulated.
fn accumulate_backward(
    acc: &mut BoundAccum,
    b: &BackwardBuilder,
    order: BackwardOrder,
    is_first: bool,
    engine: &Engine,
    cold_regions: bool,
) {
    let g = grids(b, engine);
    let gemm = b.gemm();
    let dy = (TensorClass::OutGrad, g.dy);
    let w = (TensorClass::Weight, g.w);
    let x = (TensorClass::Ifmap, g.x);
    let dx = (TensorClass::InGrad, g.x);
    let dw = (TensorClass::WGrad, g.w);
    let ops = g.mt * g.kt * g.nt;

    if is_first {
        // First layer: the dW pass only, elision never applied.
        acc.compute_cycles += g.dw_compute;
        acc.gemm_ops += ops;
        acc.macs += gemm.macs();
        acc.accesses += 3 * ops;
        acc.spm_bytes_touched += g.nt * g.x.bytes + g.kt * g.dy.bytes + g.mt * g.w.bytes;
        if cold_regions {
            region(acc, &[x, dy], &[dw]);
        }
        return;
    }

    let elide = order == BackwardOrder::IdealDyReuse;
    acc.compute_cycles += g.dx_compute + g.dw_compute;
    acc.gemm_ops += 2 * ops;
    acc.macs += gemm.backward_macs();
    acc.accesses += 3 * ops + if elide { 2 } else { 3 } * ops;
    // Every order emits the same op multiset: the dX family touches
    // kt·ΣdY + mt·ΣW + nt·ΣdX bytes, the dW family nt·ΣX (+ kt·ΣdY unless
    // elided) + mt·ΣdW.
    acc.spm_bytes_touched += g.kt * g.dy.bytes + g.mt * g.w.bytes + g.nt * g.x.bytes;
    acc.spm_bytes_touched += g.nt * g.x.bytes + g.mt * g.w.bytes;
    if !elide {
        acc.spm_bytes_touched += g.kt * g.dy.bytes;
    }
    if !cold_regions {
        return;
    }

    match order {
        BackwardOrder::Baseline => {
            region(acc, &[dy, w], &[dx]);
            region(acc, &[x, dy], &[dw]);
        }
        BackwardOrder::IdealDyReuse => {
            region(acc, &[dy, w], &[dx]);
            region(acc, &[x], &[dw]);
        }
        BackwardOrder::Interleaved => {
            region(acc, &[dy, w, x], &[dx, dw]);
        }
        BackwardOrder::DxMajor => {
            region(acc, &[dy, w, x], &[dx, dw]);
            acc.mem_bytes = acc
                .mem_bytes
                .max(fused_window_bytes(b, true, engine) + g.x.bytes + g.w.bytes);
        }
        BackwardOrder::DwMajor => {
            region(acc, &[dy, w, x], &[dx, dw]);
            acc.mem_bytes = acc
                .mem_bytes
                .max(fused_window_bytes(b, false, engine) + g.x.bytes + g.w.bytes);
        }
    }
}

/// The capacity-window fetch floor of one fused sweep: over the disjoint
/// `(K-chunk, sweep-block, sweep-position)` windows of the nest, bytes
/// touched beyond the SPM capacity must be fetched within the window.
/// Accumulator tiles first touched inside a window are excluded (they
/// materialise without a fetch). Returns total fetched bytes; write-backs
/// are accounted separately by the caller.
fn fused_window_bytes(b: &BackwardBuilder, dx_major: bool, engine: &Engine) -> u64 {
    let cap = engine.residency_bytes();
    let dtype = b.policy().dtype;
    let (mt, kt, nt) = (
        b.dy_grid().rows() as u64,
        b.x_grid().cols() as u64,
        b.dy_grid().cols() as u64,
    );
    let (kb, bs) = b.fused_blocks(dx_major);
    let (sweep, minor) = if dx_major { (mt, nt) } else { (nt, mt) };

    // Per-tile bytes by (edge_row, edge_col) corner.
    let tb = |grid: &TileGrid, er: bool, ec: bool, density: bool| -> u64 {
        let coord = igo_tensor::TileCoord::new(
            if er { grid.rows() - 1 } else { 0 },
            if ec { grid.cols() - 1 } else { 0 },
        );
        let raw = grid.tile_bytes(coord, dtype);
        if density {
            ((raw as f64 * b.density()).ceil() as u64).max(4)
        } else {
            raw
        }
    };
    // Bytes of a sub-rectangle of `grid` spanning `rf` full + `re` edge
    // rows and `cf` full + `ce` edge columns.
    let rect = |grid: &TileGrid, density: bool, rf: u64, re: u64, cf: u64, ce: u64| -> u64 {
        rf * cf * tb(grid, false, false, density)
            + rf * ce * tb(grid, false, true, density)
            + re * cf * tb(grid, true, false, density)
            + re * ce * tb(grid, true, true, density)
    };
    // Split a 1-D tile range `[lo, hi)` of an axis with `count` tiles into
    // (full, edge) tile counts — only the axis-last tile is clipped.
    let split = |lo: u64, hi: u64, count: u64| -> (u64, u64) {
        let edge = u64::from(hi == count);
        (hi - lo - edge, edge)
    };

    let mut total = 0u64;
    let mut k0 = 0;
    while k0 < kt {
        let k_end = (k0 + kb).min(kt);
        let (kf, ke) = split(k0, k_end, kt);
        let mut s0 = 0;
        let mut first_block = true;
        while s0 < sweep {
            let s_end = (s0 + bs).min(sweep);
            let (sf, se) = split(s0, s_end, sweep);
            // The minor-axis positions fall in three classes: the first
            // (the block's per-position accumulators materialise free
            // there), the interior fulls (which all share one working-set
            // value), and the clipped last. `pf`/`pe` say whether the
            // position's minor-axis tile is full or the grid edge.
            let classes = [
                // first position
                (1u64, u64::from(minor > 1), u64::from(minor == 1), true),
                // interior full positions
                (minor.saturating_sub(2), 1, 0, false),
                // last position (when distinct from the first)
                (u64::from(minor > 1), 0, 1, false),
            ];
            for (positions, pf, pe, is_first_pos) in classes {
                if positions == 0 {
                    continue;
                }
                let mut bytes = if dx_major {
                    // Window (chunk, i-block, j): dY[i∈B, j] + W[kk∈c, j]
                    // + X[i∈B, kk∈c] + dX[i∈B, kk∈c] (absent at j == 0)
                    // + dW[kk∈c, j] (absent in the chunk's first block).
                    rect(b.dy_grid(), false, sf, se, pf, pe)
                        + rect(b.w_grid(), false, kf, ke, pf, pe)
                        + rect(b.x_grid(), true, sf, se, kf, ke)
                } else {
                    // Window (chunk, j-block, i): dY[i, j∈B] + X[i, kk∈c]
                    // + W[kk∈c, j∈B] + dW[kk∈c, j∈B] (absent at i == 0)
                    // + dX[i, kk∈c] (absent in the chunk's first block).
                    rect(b.dy_grid(), false, pf, pe, sf, se)
                        + rect(b.x_grid(), true, pf, pe, kf, ke)
                        + rect(b.w_grid(), false, kf, ke, sf, se)
                };
                if !is_first_pos {
                    // The block's per-position accumulator re-enters the
                    // working set after its first touch.
                    bytes += if dx_major {
                        rect(b.x_grid(), true, sf, se, kf, ke)
                    } else {
                        rect(b.w_grid(), false, kf, ke, sf, se)
                    };
                }
                if !first_block {
                    // The chunk-wide accumulator was first touched in the
                    // chunk's first sweep block.
                    bytes += if dx_major {
                        rect(b.w_grid(), false, kf, ke, pf, pe)
                    } else {
                        rect(b.x_grid(), true, pf, pe, kf, ke)
                    };
                }
                total += positions * bytes.saturating_sub(cap);
            }
            first_block = false;
            s0 = s_end;
        }
        k0 = k_end;
    }
    total
}

/// Admissible cycle bound for a plain (unpartitioned) backward candidate.
pub fn plain_candidate_bound(
    builder: &BackwardBuilder,
    order: BackwardOrder,
    is_first: bool,
    engine: &Engine,
) -> u64 {
    backward_emission_bound(builder, order, is_first, engine).cycles(engine)
}

/// Admissible cycle bound for a single-core sequential-partition candidate
/// (the partitions' streams concatenate with *no* barrier between
/// segments, so SPM residency — in particular the scheme's shared tensor —
/// crosses partition boundaries).
///
/// Region structure of the concatenated stream: partition boundaries merge
/// the previous segment's trailing region with the next segment's leading
/// one. Rather than track the merge exactly, this bound keeps only the
/// terms that survive any merging: the exact order-independent totals, the
/// compulsory traffic of each partition's *private* (split) tensors — their
/// ids are fresh per partition, so their first touches are compulsory in
/// any region structure — and the shared tensor's grid counted exactly
/// once (it may stay resident across every boundary). The per-region
/// latency floor is dropped for the shared tensor accordingly.
#[allow(clippy::too_many_arguments)]
pub fn sequential_candidate_bound(
    config: &NpuConfig,
    engine: &Engine,
    tensors: LayerTensors,
    gemm: GemmShape,
    density: f64,
    policy: TilePolicy,
    scheme: PartitionScheme,
    parts: u64,
    order: BackwardOrder,
    is_first: bool,
) -> u64 {
    let mut next = 100_000u32; // fresh ids; never collide with layer ids
    let mut alloc = |_class: TensorClass, _name: String| {
        next += 1;
        TensorId::from_raw(next)
    };
    let plan = plan_partition_backward(
        &mut alloc,
        tensors,
        gemm,
        density,
        policy.dtype,
        scheme,
        parts,
        is_first,
    );

    let mut acc = BoundAccum::default();
    for (sub, t) in plan.sub_gemms.iter().zip(&plan.part_tensors) {
        let b = BackwardBuilder::new(*sub, policy, *t).with_ifmap_density(density);
        // Exact order-independent totals for every partition…
        accumulate_backward(&mut acc, &b, order, is_first, engine, false);
        // …plus compulsory traffic of the split tensors only. The dX-family
        // accumulator (dX) and dW-family accumulator (dW) are always
        // private; reads of a shared tensor are handled once below.
        let g = grids(&b, engine);
        let dy = (TensorClass::OutGrad, g.dy);
        let w = (TensorClass::Weight, g.w);
        let x = (TensorClass::Ifmap, g.x);
        let dx = (TensorClass::InGrad, g.x);
        let dw = (TensorClass::WGrad, g.w);
        let mut reads: Vec<(TensorClass, GridSum)> = Vec::new();
        let mut accs: Vec<(TensorClass, GridSum)> = Vec::new();
        if is_first {
            reads.push(x);
            reads.push(dy);
            accs.push(dw);
        } else {
            reads.push(dy);
            reads.push(w);
            reads.push(x);
            accs.push(dx);
            accs.push(dw);
        }
        // Drop the shared tensor from this partition's compulsory set — it
        // may stay resident across partition boundaries. (The `dY` reads
        // survive IdealDyReuse elision via the dX family, so they stay
        // compulsory whenever `dY` is private.)
        let shared = match scheme {
            PartitionScheme::WeightSharing => TensorClass::Weight,
            PartitionScheme::DySharing => TensorClass::Ifmap,
            PartitionScheme::IfmapSharing => TensorClass::OutGrad,
        };
        reads.retain(|(class, _)| *class != shared);
        region(&mut acc, &reads, &accs);
    }

    // The shared tensor's parent grid is read at least once overall —
    // except weight-sharing on a first layer, whose dW-only backward never
    // touches `W` at all.
    let dtype = policy.dtype;
    let tile = policy.tile;
    let shared_sum = match scheme {
        PartitionScheme::WeightSharing if is_first => None,
        PartitionScheme::WeightSharing => Some((
            TensorClass::Weight,
            grid_sum(&gemm.dw_grid(tile), dtype, None),
        )),
        PartitionScheme::DySharing => Some((
            TensorClass::Ifmap,
            grid_sum(&gemm.dx_grid(tile), dtype, Some(density)),
        )),
        PartitionScheme::IfmapSharing => Some((
            TensorClass::OutGrad,
            grid_sum(&gemm.dy_grid(tile), dtype, None),
        )),
    };
    if let Some(shared_sum) = shared_sum {
        region(&mut acc, &[shared_sum], &[]);
    }

    acc.serial_cycles += reduction_cycles(config, plan.reduction);
    acc.cycles(engine)
}

/// Admissible cycle bound for a multi-core partitioned candidate: the
/// slowest core's emission bound plus the exact reduction term — mirroring
/// `run_multicore`'s `max(core cycles) + reduction` makespan.
#[allow(clippy::too_many_arguments)]
pub fn multicore_candidate_bound(
    config: &NpuConfig,
    engine: &Engine,
    tensors: LayerTensors,
    gemm: GemmShape,
    density: f64,
    policy: TilePolicy,
    scheme: PartitionScheme,
    parts: u64,
    order: BackwardOrder,
    is_first: bool,
) -> u64 {
    let mut next = 100_000u32;
    let mut alloc = |_class: TensorClass, _name: String| {
        next += 1;
        TensorId::from_raw(next)
    };
    let plan = plan_partition_backward(
        &mut alloc,
        tensors,
        gemm,
        density,
        policy.dtype,
        scheme,
        parts,
        is_first,
    );
    let slowest = plan
        .sub_gemms
        .iter()
        .zip(&plan.part_tensors)
        .map(|(sub, t)| {
            let b = BackwardBuilder::new(*sub, policy, *t).with_ifmap_density(density);
            backward_emission_bound(&b, order, is_first, engine).cycles(engine)
        })
        .max()
        .unwrap_or(0);
    slowest + reduction_cycles(config, plan.reduction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_npu_sim::Schedule;

    fn setup(gemm: GemmShape, config: &NpuConfig) -> (Schedule, BackwardBuilder, Engine) {
        let mut s = Schedule::new("bound-test");
        let tensors = LayerTensors::register(&mut s, "l");
        let policy = TilePolicy::for_config(config);
        let b = BackwardBuilder::new(gemm, policy, tensors);
        (s, b, Engine::new(config))
    }

    const ORDERS: [BackwardOrder; 5] = [
        BackwardOrder::Baseline,
        BackwardOrder::IdealDyReuse,
        BackwardOrder::Interleaved,
        BackwardOrder::DxMajor,
        BackwardOrder::DwMajor,
    ];

    #[test]
    fn emission_bound_is_admissible_per_field() {
        for config in [NpuConfig::small_edge(), NpuConfig::large_single_core()] {
            for gemm in [
                GemmShape::new(512, 384, 640),
                GemmShape::new(129, 257, 383),
                GemmShape::new(2048, 64, 4096),
            ] {
                for order in ORDERS {
                    for is_first in [false, true] {
                        let (proto, b, engine) = setup(gemm, &config);
                        let mut s = proto.fork("emit");
                        b.emit(order, is_first, &mut s);
                        let report = engine.run(&s);
                        let bound = backward_emission_bound(&b, order, is_first, &engine);
                        let a = bound.finish(&engine).report;
                        let label = format!("{order:?} first={is_first} {gemm:?}");
                        assert_eq!(a.compute_cycles, report.compute_cycles, "{label}");
                        assert_eq!(a.gemm_ops, report.gemm_ops, "{label}");
                        assert_eq!(a.macs, report.macs, "{label}");
                        assert_eq!(a.spm_bytes_touched, report.spm_bytes_touched, "{label}");
                        assert!(a.cycles <= report.cycles, "{label}");
                        assert!(a.mem_cycles <= report.mem_cycles, "{label}");
                        assert!(a.spm_misses <= report.spm_misses, "{label}");
                        assert!(a.spm_hits >= report.spm_hits, "{label}");
                        for class in igo_tensor::TensorClass::ALL {
                            assert!(
                                a.traffic.read(class) <= report.traffic.read(class),
                                "{label} read {class:?}"
                            );
                            assert!(
                                a.traffic.write(class) <= report.traffic.write(class),
                                "{label} write {class:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_window_term_tightens_spill_heavy_cases() {
        // A shape whose fused sweep cannot hold its accumulators: the
        // window term must push the bound above the compulsory floor while
        // staying admissible.
        let config = NpuConfig::small_edge();
        let gemm = GemmShape::new(4096, 1024, 1024);
        let (proto, b, engine) = setup(gemm, &config);
        let mut s = proto.fork("dxm");
        b.emit(BackwardOrder::DxMajor, false, &mut s);
        let report = engine.run(&s);
        let with_window = backward_emission_bound(&b, BackwardOrder::DxMajor, false, &engine);
        let compulsory = backward_emission_bound(&b, BackwardOrder::Interleaved, false, &engine);
        assert!(with_window.cycles(&engine) <= report.cycles);
        assert!(
            with_window.mem_bytes >= compulsory.mem_bytes,
            "window floor must not be weaker than compulsory"
        );
    }
}
