//! Data partitioning for the rearranged gradient order (paper §5).
//!
//! A layer's fused backward GEMM pair can be split along any of the three
//! GEMM dimensions; the split decides which tensor is shared by all
//! partitions and which gradient needs a cross-partition reduction
//! (Figure 11):
//!
//! | Scheme | Splits | Shared | Reduction |
//! |---|---|---|---|
//! | weight-sharing (a) | `M` (batch) | `W` | `dW` partials |
//! | dY-sharing (b) | `N` | `X` | `dX` partials |
//! | ifmap-sharing (c) | `K` | `dY` | none |
//!
//! Shared tensors keep the *parent* tensor id, so on a single core the
//! sequentially executed partitions genuinely re-hit the shared tiles in
//! SPM, while split tensors get fresh per-partition ids (their tiles are
//! different data). Reductions are modelled as a bandwidth-cost
//! [`StreamOp`]: read all `P` partial tensors, write the combined result.

use crate::schedule::{BackwardBuilder, BackwardOrder, LayerTensors};
use crate::tiling::TilePolicy;
use igo_npu_sim::{Schedule, StreamOp, TensorId};
use igo_tensor::{DataType, GemmDim, GemmShape, TensorClass};
/// The three partitioning schemes of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartitionScheme {
    /// Split `M` (batch): conventional data parallelism; `W` shared, `dW`
    /// reduced.
    WeightSharing,
    /// Split `N`: `X` shared (duplicated per core), `dX` reduced.
    DySharing,
    /// Split `K`: `dY` shared (duplicated per core), no reduction.
    IfmapSharing,
}

impl PartitionScheme {
    /// All schemes, in Figure 11 order.
    pub const ALL: [PartitionScheme; 3] = [
        PartitionScheme::WeightSharing,
        PartitionScheme::DySharing,
        PartitionScheme::IfmapSharing,
    ];

    /// The GEMM dimension this scheme splits.
    pub fn split_dim(self) -> GemmDim {
        match self {
            PartitionScheme::WeightSharing => GemmDim::M,
            PartitionScheme::DySharing => GemmDim::N,
            PartitionScheme::IfmapSharing => GemmDim::K,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            PartitionScheme::WeightSharing => "weight-sharing(M)",
            PartitionScheme::DySharing => "dY-sharing(N)",
            PartitionScheme::IfmapSharing => "ifmap-sharing(K)",
        }
    }
}

impl core::fmt::Display for PartitionScheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A partitioned backward pass, ready to run sequentially (single core) or
/// one-per-core (multi-core).
#[derive(Debug, Clone)]
pub struct PartitionedBackward {
    /// One schedule per partition. All partitions share one complete
    /// tensor table (compatible forks), so they can also be chained
    /// sequentially with residency intact.
    pub schedules: Vec<Schedule>,
    /// Cross-partition reduction cost, if the scheme needs one.
    pub reduction: Option<StreamOp>,
    /// The scheme used.
    pub scheme: PartitionScheme,
    /// Tensor bindings of each partition (shared roles keep the parent
    /// ids). Used by the numerical executor to map partition tiles back
    /// onto the layer's data.
    pub part_tensors: Vec<LayerTensors>,
    /// The per-partition sub-GEMMs, in order.
    pub sub_gemms: Vec<igo_tensor::GemmShape>,
}

/// Build the partitioned backward pass of one layer.
///
/// `proto` must be a schedule holding the parent layer's tensors
/// (`tensors`); each partition schedule is a fork of it. `order` is the
/// per-partition emission order (partitioning composes with interleaving /
/// rearrangement — the paper's third step "relies on the results from the
/// first two").
///
/// # Panics
///
/// Panics if `parts == 0`.
#[allow(clippy::too_many_arguments)]
pub fn partition_backward(
    proto: &Schedule,
    tensors: LayerTensors,
    gemm: GemmShape,
    policy: TilePolicy,
    scheme: PartitionScheme,
    parts: u64,
    order: BackwardOrder,
    is_first: bool,
) -> PartitionedBackward {
    partition_backward_ex(
        proto, tensors, gemm, 1.0, policy, scheme, parts, order, is_first,
    )
}

/// [`partition_backward`] with an explicit ifmap density (raw-layout
/// `X`/`dX` traffic scaling for convolution layers).
#[allow(clippy::too_many_arguments)]
pub fn partition_backward_ex(
    proto: &Schedule,
    tensors: LayerTensors,
    gemm: GemmShape,
    ifmap_density: f64,
    policy: TilePolicy,
    scheme: PartitionScheme,
    parts: u64,
    order: BackwardOrder,
    is_first: bool,
) -> PartitionedBackward {
    // Phase 1: register every partition's split tensors in one master
    // fork, so all partition schedules share a single complete tensor
    // table (required for sequential chaining).
    let mut master = proto.fork(format!("{}-master", scheme.label()));
    let plan = plan_partition_backward(
        &mut |class, name| master.add_tensor(class, name),
        tensors,
        gemm,
        ifmap_density,
        policy.dtype,
        scheme,
        parts,
        is_first,
    );

    // Phase 2: emit each partition into its own fork of the master.
    let mut schedules = Vec::with_capacity(plan.sub_gemms.len());
    for (p, (sub, t)) in plan.sub_gemms.iter().zip(&plan.part_tensors).enumerate() {
        let mut s = master.fork(format!("{}[{p}]", scheme.label()));
        let builder = BackwardBuilder::new(*sub, policy, *t).with_ifmap_density(ifmap_density);
        builder.emit(order, is_first, &mut s);
        schedules.push(s);
    }

    PartitionedBackward {
        schedules,
        reduction: plan.reduction,
        scheme,
        part_tensors: plan.part_tensors,
        sub_gemms: plan.sub_gemms,
    }
}

/// A partitioned backward pass before any schedule is emitted: the
/// per-partition sub-GEMMs and tensor bindings plus the reduction cost.
/// This is all the analytic fast path needs — it emits each partition
/// through a [`BackwardBuilder`] into an analytic collector instead of a
/// [`Schedule`], skipping the tensor-table forks entirely.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// The per-partition sub-GEMMs, in order.
    pub sub_gemms: Vec<GemmShape>,
    /// Tensor bindings of each partition (shared roles keep parent ids).
    pub part_tensors: Vec<LayerTensors>,
    /// Cross-partition reduction cost, if the scheme needs one.
    pub reduction: Option<StreamOp>,
}

/// Split `gemm` under `scheme` and bind each partition's tensors, minting
/// fresh ids through `alloc`. Split tensors get fresh per-partition
/// identities; the shared tensor keeps the parent id (its grid is
/// untouched by the split, so parent coordinates remain valid).
///
/// # Panics
///
/// Panics if `parts == 0`.
#[allow(clippy::too_many_arguments)]
pub fn plan_partition_backward(
    alloc: &mut dyn FnMut(TensorClass, String) -> TensorId,
    tensors: LayerTensors,
    gemm: GemmShape,
    ifmap_density: f64,
    dtype: DataType,
    scheme: PartitionScheme,
    parts: u64,
    is_first: bool,
) -> PartitionPlan {
    assert!(parts > 0, "need at least one partition");
    let sub_gemms = gemm.split(scheme.split_dim(), parts);
    let actual_parts = sub_gemms.len() as u64;

    let part_tensors: Vec<LayerTensors> = (0..sub_gemms.len())
        .map(|p| match scheme {
            PartitionScheme::WeightSharing => LayerTensors {
                x: alloc(TensorClass::Ifmap, format!("X[{p}]")),
                w: tensors.w,
                y: alloc(TensorClass::Ofmap, format!("Y[{p}]")),
                dx: alloc(TensorClass::InGrad, format!("dX[{p}]")),
                dw: alloc(TensorClass::WGrad, format!("dW_part[{p}]")),
                dy: alloc(TensorClass::OutGrad, format!("dY[{p}]")),
            },
            PartitionScheme::DySharing => LayerTensors {
                x: tensors.x,
                w: alloc(TensorClass::Weight, format!("W[{p}]")),
                y: alloc(TensorClass::Ofmap, format!("Y[{p}]")),
                dx: alloc(TensorClass::InGrad, format!("dX_part[{p}]")),
                dw: alloc(TensorClass::WGrad, format!("dW[{p}]")),
                dy: alloc(TensorClass::OutGrad, format!("dY[{p}]")),
            },
            PartitionScheme::IfmapSharing => LayerTensors {
                x: alloc(TensorClass::Ifmap, format!("X[{p}]")),
                w: alloc(TensorClass::Weight, format!("W[{p}]")),
                y: alloc(TensorClass::Ofmap, format!("Y[{p}]")),
                dx: alloc(TensorClass::InGrad, format!("dX[{p}]")),
                dw: alloc(TensorClass::WGrad, format!("dW[{p}]")),
                dy: tensors.dy,
            },
        })
        .collect();

    // Reduction: read P partial tensors, write the combined one.
    let reduction = match scheme {
        PartitionScheme::WeightSharing => {
            let dw_bytes = gemm.dw_dims().bytes(dtype);
            Some(StreamOp {
                class: TensorClass::WGrad,
                read_bytes: actual_parts * dw_bytes,
                write_bytes: dw_bytes,
            })
        }
        // A first layer computes no dX, so dY-sharing needs no reduction
        // there.
        PartitionScheme::DySharing if !is_first => {
            let dx_bytes = ((gemm.dx_dims().bytes(dtype) as f64 * ifmap_density).ceil()) as u64;
            Some(StreamOp {
                class: TensorClass::InGrad,
                read_bytes: actual_parts * dx_bytes,
                write_bytes: dx_bytes,
            })
        }
        _ => None,
    };

    PartitionPlan {
        sub_gemms,
        part_tensors,
        reduction,
    }
}

/// Build a batch-split (M) forward pass: one schedule per partition, `W`
/// shared, no reduction. This is how both the baseline and the transformed
/// multi-core runs execute the forward pass (the paper's techniques only
/// change the backward pass).
pub fn partition_forward(
    proto: &Schedule,
    tensors: LayerTensors,
    gemm: GemmShape,
    policy: TilePolicy,
    parts: u64,
) -> Vec<Schedule> {
    partition_forward_ex(proto, tensors, gemm, 1.0, policy, parts)
}

/// [`partition_forward`] with an explicit ifmap density.
pub fn partition_forward_ex(
    proto: &Schedule,
    tensors: LayerTensors,
    gemm: GemmShape,
    ifmap_density: f64,
    policy: TilePolicy,
    parts: u64,
) -> Vec<Schedule> {
    let mut master = proto.fork("fwd-master");
    let (sub_gemms, part_tensors) = plan_partition_forward(
        &mut |class, name| master.add_tensor(class, name),
        tensors,
        gemm,
        parts,
    );
    let mut schedules = Vec::with_capacity(sub_gemms.len());
    for (p, (sub, t)) in sub_gemms.iter().zip(&part_tensors).enumerate() {
        let mut s = master.fork(format!("fwd[{p}]"));
        crate::schedule::forward_schedule(*sub, policy, *t, ifmap_density, &mut s);
        schedules.push(s);
    }
    schedules
}

/// The planning half of [`partition_forward_ex`]: batch-split sub-GEMMs
/// and per-partition tensor bindings (`W` shared, gradients untouched),
/// with ids minted through `alloc`.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn plan_partition_forward(
    alloc: &mut dyn FnMut(TensorClass, String) -> TensorId,
    tensors: LayerTensors,
    gemm: GemmShape,
    parts: u64,
) -> (Vec<GemmShape>, Vec<LayerTensors>) {
    assert!(parts > 0, "need at least one partition");
    let sub_gemms = gemm.split(GemmDim::M, parts);
    let part_tensors: Vec<LayerTensors> = (0..sub_gemms.len())
        .map(|p| LayerTensors {
            x: alloc(TensorClass::Ifmap, format!("X[{p}]")),
            w: tensors.w,
            y: alloc(TensorClass::Ofmap, format!("Y[{p}]")),
            dx: tensors.dx,
            dw: tensors.dw,
            dy: tensors.dy,
        })
        .collect();
    (sub_gemms, part_tensors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_npu_sim::NpuConfig;

    fn setup(_gemm: GemmShape) -> (Schedule, LayerTensors, TilePolicy) {
        let mut proto = Schedule::new("proto");
        let tensors = LayerTensors::register(&mut proto, "l");
        let policy = TilePolicy::for_config(&NpuConfig::large_single_core());
        (proto, tensors, policy)
    }

    #[test]
    fn partitions_preserve_total_macs() {
        let gemm = GemmShape::new(512, 384, 640);
        let (proto, tensors, policy) = setup(gemm);
        for scheme in PartitionScheme::ALL {
            for parts in [2u64, 4] {
                let p = partition_backward(
                    &proto,
                    tensors,
                    gemm,
                    policy,
                    scheme,
                    parts,
                    BackwardOrder::Interleaved,
                    false,
                );
                let macs: u64 = p.schedules.iter().map(|s| s.total_macs()).sum();
                assert_eq!(macs, gemm.backward_macs(), "{scheme} x{parts}");
            }
        }
    }

    #[test]
    fn reduction_matches_scheme() {
        let gemm = GemmShape::new(256, 256, 256);
        let (proto, tensors, policy) = setup(gemm);
        let ws = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::WeightSharing,
            2,
            BackwardOrder::Baseline,
            false,
        );
        let red = ws.reduction.unwrap();
        assert_eq!(red.class, TensorClass::WGrad);
        assert_eq!(red.read_bytes, 2 * 256 * 256 * 4);
        assert_eq!(red.write_bytes, 256 * 256 * 4);

        let dys = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::DySharing,
            2,
            BackwardOrder::Baseline,
            false,
        );
        assert_eq!(dys.reduction.unwrap().class, TensorClass::InGrad);

        let ifm = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::IfmapSharing,
            2,
            BackwardOrder::Baseline,
            false,
        );
        assert!(ifm.reduction.is_none(), "ifmap-sharing needs no reduction");
    }

    #[test]
    fn first_layer_dy_sharing_skips_reduction() {
        let gemm = GemmShape::new(256, 27, 64);
        let (proto, tensors, policy) = setup(gemm);
        let p = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::DySharing,
            2,
            BackwardOrder::Interleaved,
            true,
        );
        assert!(p.reduction.is_none());
    }

    #[test]
    fn shared_tensor_keeps_parent_identity() {
        let gemm = GemmShape::new(512, 256, 512);
        let (proto, tensors, policy) = setup(gemm);
        // ifmap-sharing shares dY: every partition must read tiles of the
        // parent dY tensor.
        let p = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::IfmapSharing,
            2,
            BackwardOrder::Interleaved,
            false,
        );
        for s in &p.schedules {
            let reads_parent_dy = s.ops().iter().any(|op| {
                let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                    return false;
                };
                g.reads.iter().any(|r| r.key.tensor == tensors.dy)
            });
            assert!(reads_parent_dy, "partition must read the shared dY");
        }
    }

    #[test]
    fn split_tensors_get_fresh_ids() {
        let gemm = GemmShape::new(512, 256, 512);
        let (proto, tensors, policy) = setup(gemm);
        // weight-sharing splits dY: no partition may touch the parent dY.
        let p = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::WeightSharing,
            2,
            BackwardOrder::Interleaved,
            false,
        );
        for s in &p.schedules {
            let touches_parent_dy = s.ops().iter().any(|op| {
                let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                    return false;
                };
                g.reads.iter().any(|r| r.key.tensor == tensors.dy)
            });
            assert!(!touches_parent_dy, "split dY must use fresh ids");
        }
    }

    #[test]
    fn forward_partitions_cover_batch() {
        let gemm = GemmShape::new(1024, 256, 512);
        let (proto, tensors, policy) = setup(gemm);
        let parts = partition_forward(&proto, tensors, gemm, policy, 4);
        assert_eq!(parts.len(), 4);
        let macs: u64 = parts.iter().map(|s| s.total_macs()).sum();
        assert_eq!(macs, gemm.macs());
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let gemm = GemmShape::new(64, 64, 64);
        let (proto, tensors, policy) = setup(gemm);
        let p = partition_backward(
            &proto,
            tensors,
            gemm,
            policy,
            PartitionScheme::WeightSharing,
            1,
            BackwardOrder::Baseline,
            false,
        );
        assert_eq!(p.schedules.len(), 1);
    }
}
