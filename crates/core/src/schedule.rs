//! Backward- and forward-pass schedule builders.
//!
//! For a layer whose forward pass is `X(M,K) × W(K,N) → Y(M,N)`, the
//! backward pass computes (paper Eq. 1/2):
//!
//! ```text
//!   dX(M,K) = dY(M,N) × Wᵀ(N,K)
//!   dW(K,N) = Xᵀ(K,M) × dY(M,N)
//! ```
//!
//! All matrices are decomposed into square tiles (grid conventions:
//! `dY[i,j]` with `i` over M-tiles and `j` over N-tiles; `X/dX[i,kk]` with
//! `kk` over K-tiles; `W/dW[kk,j]`). A tile operation
//! `dx_op(i,kk,j)` performs `dX[i,kk] += dY[i,j]·Wᵀ[j,kk]`, and
//! `dw_op(kk,j,i)` performs `dW[kk,j] += Xᵀ[kk,i]·dY[i,j]`.
//!
//! [`BackwardBuilder`] emits the paper's schedule families over these ops:
//!
//! * [`BackwardBuilder::baseline`] — the two gradient GEMMs run
//!   *sequentially*, each with its own capacity-blocked loop nest (the
//!   tiling-optimised baseline of §6.1). `dY` is traversed row-major by the
//!   `dX` nest and column-major by the `dW` nest, so every `dY` tile is
//!   fetched (at least) twice.
//! * [`BackwardBuilder::interleaved`] — §4.2: the two streams interleaved
//!   tile-by-tile, each keeping its traditional traversal (Figure 10 a).
//! * [`BackwardBuilder::fused_dx_major`] — §4.3, Figure 10 b: one row-major
//!   sweep of `dY`; for each `dY` tile, first its `dX` contributions, then
//!   its `dW` contributions. `dW` accumulator columns are revisited once
//!   per M-block and spill if `dW` does not fit — the "intermediate
//!   results" traffic of the paper.
//! * [`BackwardBuilder::fused_dw_major`] — Figure 10 c, the column-major
//!   mirror: `dX` accumulator rows become the spill risk.
//! * [`BackwardBuilder::dw_only`] — the first layer of a model, which needs
//!   no input gradient (§6.2: interleaving "cannot be applied in the first
//!   layer since there is no need to compute dX").
//! * [`BackwardBuilder::baseline_ideal_dy_reuse`] — the Figure 6 potential
//!   study: the baseline with the `dW` pass's `dY` reads elided, as if the
//!   tiles were "hypothetically available without any external memory
//!   access" (§3.3).
//!
//! [`forward_schedule`] emits the (technique-independent) forward pass.

use crate::tiling::{Blocking, TilePolicy};
use igo_npu_sim::{Schedule, ScheduleSink, TensorId, TileAccessSpec, TileOpSpec};
use igo_tensor::{DataType, GemmShape, MatrixDims, TensorClass, TileCoord, TileGrid};

/// Tensor ids of one layer within a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTensors {
    /// Input feature map `X(M,K)`.
    pub x: TensorId,
    /// Weights `W(K,N)`.
    pub w: TensorId,
    /// Output feature map `Y(M,N)` (forward only).
    pub y: TensorId,
    /// Input gradient `dX(M,K)`.
    pub dx: TensorId,
    /// Weight gradient `dW(K,N)`.
    pub dw: TensorId,
    /// Output gradient `dY(M,N)` — the shared operand.
    pub dy: TensorId,
}

impl LayerTensors {
    /// Register the six tensors of a layer called `name` in `schedule`.
    pub fn register(schedule: &mut Schedule, name: &str) -> Self {
        Self {
            x: schedule.add_tensor(TensorClass::Ifmap, format!("{name}.X")),
            w: schedule.add_tensor(TensorClass::Weight, format!("{name}.W")),
            y: schedule.add_tensor(TensorClass::Ofmap, format!("{name}.Y")),
            dx: schedule.add_tensor(TensorClass::InGrad, format!("{name}.dX")),
            dw: schedule.add_tensor(TensorClass::WGrad, format!("{name}.dW")),
            dy: schedule.add_tensor(TensorClass::OutGrad, format!("{name}.dY")),
        }
    }
}

/// Precomputed clipped tile dims/bytes of one grid: only the last row and
/// last column clip, so every tile falls into one of four variants — the
/// emission hot loops reduce per-access geometry to two edge compares and
/// a table lookup.
#[derive(Debug, Clone, Copy)]
struct GridCosts {
    /// `dims[r_is_last][c_is_last]`.
    dims: [[MatrixDims; 2]; 2],
    /// Matching byte footprints (after any density scaling).
    bytes: [[u64; 2]; 2],
    last_row: u32,
    last_col: u32,
}

impl GridCosts {
    /// Tables for `grid` at `dtype`, with each variant's DRAM bytes mapped
    /// through `cost` (identity for dense tensors, the raw-layout density
    /// scaling for `X`/`dX`).
    fn new(grid: &TileGrid, dtype: DataType, cost: impl Fn(u64) -> u64) -> Self {
        let rr = [0, grid.rows() - 1];
        let cc = [0, grid.cols() - 1];
        let mut dims = [[MatrixDims::new(1, 1); 2]; 2];
        let mut bytes = [[0u64; 2]; 2];
        for (a, &r) in rr.iter().enumerate() {
            for (b, &c) in cc.iter().enumerate() {
                let d = grid.tile_dims(TileCoord::new(r, c));
                dims[a][b] = d;
                bytes[a][b] = cost(d.bytes(dtype));
            }
        }
        Self {
            dims,
            bytes,
            last_row: grid.rows() - 1,
            last_col: grid.cols() - 1,
        }
    }

    /// Clipped dims and bytes of the tile at `coord`.
    #[inline]
    fn at(&self, coord: TileCoord) -> (MatrixDims, u64) {
        let r = (coord.r == self.last_row) as usize;
        let c = (coord.c == self.last_col) as usize;
        (self.dims[r][c], self.bytes[r][c])
    }
}

/// Emits backward-pass schedules for one layer.
#[derive(Debug, Clone)]
pub struct BackwardBuilder {
    gemm: GemmShape,
    policy: TilePolicy,
    dy_grid: TileGrid,
    x_grid: TileGrid,
    w_grid: TileGrid,
    tensors: LayerTensors,
    elide_dw_dy_reads: bool,
    ifmap_density: f64,
    dy_costs: GridCosts,
    x_costs: GridCosts,
    w_costs: GridCosts,
}

impl BackwardBuilder {
    /// Builder for a layer with forward shape `gemm`, tiled per `policy`,
    /// touching the tensors `tensors` (registered in the target schedule).
    pub fn new(gemm: GemmShape, policy: TilePolicy, tensors: LayerTensors) -> Self {
        let dy_grid = gemm.dy_grid(policy.tile);
        let x_grid = gemm.dx_grid(policy.tile);
        let w_grid = gemm.dw_grid(policy.tile);
        Self {
            gemm,
            policy,
            dy_costs: GridCosts::new(&dy_grid, policy.dtype, |b| b),
            x_costs: GridCosts::new(&x_grid, policy.dtype, |b| b),
            w_costs: GridCosts::new(&w_grid, policy.dtype, |b| b),
            dy_grid,
            x_grid,
            w_grid,
            tensors,
            elide_dw_dy_reads: false,
            ifmap_density: 1.0,
        }
    }

    /// Set the raw-layout density of `X`/`dX` DRAM traffic (see
    /// [`igo_tensor::ConvShape::ifmap_density`]): tiles of the im2col-ed
    /// input and of the col2im-ed input gradient cost
    /// `density x im2col bytes` of DRAM traffic, because the tensor stored
    /// off-chip is the raw feature map and the replication happens while
    /// staging tiles.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density <= 1`.
    #[must_use]
    pub fn with_ifmap_density(mut self, density: f64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
        self.ifmap_density = density;
        self.x_costs = GridCosts::new(&self.x_grid, self.policy.dtype, |b| {
            ((b as f64 * density).ceil() as u64).max(4)
        });
        self
    }

    /// Elide the `dW` pass's `dY` reads (the Figure 6 potential study).
    #[must_use]
    pub fn with_elided_dw_dy_reads(mut self) -> Self {
        self.elide_dw_dy_reads = true;
        self
    }

    /// The forward GEMM shape.
    pub fn gemm(&self) -> GemmShape {
        self.gemm
    }

    /// The tile policy this builder plans against.
    pub fn policy(&self) -> TilePolicy {
        self.policy
    }

    /// The layer's tensor ids.
    pub fn tensors(&self) -> LayerTensors {
        self.tensors
    }

    /// The `X`/`dX` raw-layout density factor.
    pub fn density(&self) -> f64 {
        self.ifmap_density
    }

    /// Tile grid over `Y`/`dY`.
    pub fn dy_grid(&self) -> &TileGrid {
        &self.dy_grid
    }

    /// Tile grid over `X`/`dX`.
    pub fn x_grid(&self) -> &TileGrid {
        &self.x_grid
    }

    /// Tile grid over `W`/`dW`.
    pub fn w_grid(&self) -> &TileGrid {
        &self.w_grid
    }

    /// Register this layer's tile grids with an analytic collector: the
    /// dense tile-id registry needs each touched tensor's grid extent
    /// before emission starts. `Y` shares the `dY` grid; registering
    /// tensors the emission never touches is harmless.
    pub fn register_grids(&self, collector: &mut igo_npu_sim::analytic::AnalyticCollector) {
        let t = self.tensors;
        collector.register_tensor(t.dy, TensorClass::OutGrad, &self.dy_grid);
        collector.register_tensor(t.w, TensorClass::Weight, &self.w_grid);
        collector.register_tensor(t.x, TensorClass::Ifmap, &self.x_grid);
        collector.register_tensor(t.dx, TensorClass::InGrad, &self.x_grid);
        collector.register_tensor(t.dw, TensorClass::WGrad, &self.w_grid);
        collector.register_tensor(t.y, TensorClass::Ofmap, &self.dy_grid);
    }

    /// M-tile count.
    pub(crate) fn mt(&self) -> u64 {
        self.dy_grid.rows() as u64
    }

    /// N-tile count.
    pub(crate) fn nt(&self) -> u64 {
        self.dy_grid.cols() as u64
    }

    /// K-tile count.
    pub(crate) fn kt(&self) -> u64 {
        self.x_grid.cols() as u64
    }

    /// Total tile ops in a full backward pass (`2·Mt·Kt·Nt`).
    pub fn backward_ops(&self) -> u64 {
        2 * self.mt() * self.kt() * self.nt()
    }

    /// `dX[i,kk] += dY[i,j] · Wᵀ[j,kk]`.
    fn dx_op(&self, i: u64, kk: u64, j: u64) -> TileOpSpec {
        let (i, kk, j) = (i as u32, kk as u32, j as u32);
        let dy_c = TileCoord::new(i, j);
        let w_c = TileCoord::new(kk, j);
        let dx_c = TileCoord::new(i, kk);
        let (dy_d, dy_b) = self.dy_costs.at(dy_c);
        let (_, w_b) = self.w_costs.at(w_c);
        let (dx_d, dx_b) = self.x_costs.at(dx_c);
        TileOpSpec {
            reads: [
                Some(TileAccessSpec {
                    tensor: self.tensors.dy,
                    coord: dy_c,
                    bytes: dy_b,
                }),
                Some(TileAccessSpec {
                    tensor: self.tensors.w,
                    coord: w_c,
                    bytes: w_b,
                }),
            ],
            acc: Some(TileAccessSpec {
                tensor: self.tensors.dx,
                coord: dx_c,
                bytes: dx_b,
            }),
            compute: GemmShape::new(dy_d.rows, dy_d.cols, dx_d.cols),
        }
    }

    /// `dW[kk,j] += Xᵀ[kk,i] · dY[i,j]`.
    fn dw_op(&self, kk: u64, j: u64, i: u64) -> TileOpSpec {
        let (i, kk, j) = (i as u32, kk as u32, j as u32);
        let dy_c = TileCoord::new(i, j);
        let x_c = TileCoord::new(i, kk);
        let dw_c = TileCoord::new(kk, j);
        let (dy_d, dy_b) = self.dy_costs.at(dy_c);
        let (_, x_b) = self.x_costs.at(x_c);
        let (dw_d, dw_b) = self.w_costs.at(dw_c);
        let dy_read = if self.elide_dw_dy_reads {
            None
        } else {
            Some(TileAccessSpec {
                tensor: self.tensors.dy,
                coord: dy_c,
                bytes: dy_b,
            })
        };
        TileOpSpec {
            reads: [
                Some(TileAccessSpec {
                    tensor: self.tensors.x,
                    coord: x_c,
                    bytes: x_b,
                }),
                dy_read,
            ],
            acc: Some(TileAccessSpec {
                tensor: self.tensors.dw,
                coord: dw_c,
                bytes: dw_b,
            }),
            compute: GemmShape::new(dw_d.rows, dy_d.rows, dw_d.cols),
        }
    }

    /// The blocking of the `dX` nest (row-major `dY` traversal) for a
    /// residency budget of `capacity` tiles.
    fn dx_blocking(&self, capacity: u64) -> Blocking {
        Blocking::choose(self.mt(), self.kt(), self.nt(), capacity)
    }

    /// Emit one super-block of the blocked `dX` nest straight into the
    /// sink (ops are built on the stack — emission never materialises an
    /// op list). The block's accumulators retire at its boundary.
    fn dx_emit_block<S: ScheduleSink>(
        &self,
        i0: u64,
        k0: u64,
        blocking: &Blocking,
        schedule: &mut S,
    ) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        for j in 0..nt {
            for i in i0..(i0 + blocking.b_rows).min(mt) {
                for kk in k0..(k0 + blocking.b_cols).min(kt) {
                    schedule.gemm(&self.dx_op(i, kk, j));
                }
            }
        }
    }

    /// The blocking of the `dW` nest (column-major `dY` traversal).
    fn dw_blocking(&self, capacity: u64) -> Blocking {
        Blocking::choose(self.kt(), self.nt(), self.mt(), capacity)
    }

    /// Emit one super-block of the blocked `dW` nest straight into the
    /// sink.
    fn dw_emit_block<S: ScheduleSink>(
        &self,
        k0: u64,
        j0: u64,
        blocking: &Blocking,
        schedule: &mut S,
    ) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        for i in 0..mt {
            for kk in k0..(k0 + blocking.b_rows).min(kt) {
                for j in j0..(j0 + blocking.b_cols).min(nt) {
                    schedule.gemm(&self.dw_op(kk, j, i));
                }
            }
        }
    }

    /// Baseline (§6.1): the `dX` kernel fully, a kernel boundary, then the
    /// `dW` kernel — two sequentially launched operations, XLA-style, each
    /// planning its blocking for the whole residency. The barrier is what
    /// makes the baseline fetch `dY` twice: data staged by the first
    /// kernel is gone when the second starts.
    pub fn baseline<S: ScheduleSink>(&self, schedule: &mut S) {
        let cap = self.policy.capacity_tiles;
        let bx = self.dx_blocking(cap);
        for (i0, k0) in bx.blocks(self.mt(), self.kt()) {
            self.dx_emit_block(i0, k0, &bx, schedule);
        }
        schedule.barrier();
        let bw = self.dw_blocking(cap);
        for (k0, j0) in bw.blocks(self.kt(), self.nt()) {
            self.dw_emit_block(k0, j0, &bw, schedule);
        }
    }

    /// The Figure 6 potential study: baseline order, `dW`'s `dY` reads
    /// elided.
    pub fn baseline_ideal_dy_reuse<S: ScheduleSink>(&self, schedule: &mut S) {
        let ideal = self.clone().with_elided_dw_dy_reads();
        ideal.baseline(schedule);
    }

    /// Interleaving only (§4.2, Figure 10 a): the two traditional streams
    /// fused into one kernel and interleaved chunk-by-chunk, each keeping
    /// its own traversal order.
    ///
    /// Interleaving happens at the granularity the double-buffered SPM
    /// supports — one blocked super-step of tile operations at a time —
    /// so the two streams' instantaneous working sets barely overlap and
    /// each keeps its full blocking efficiency. The benefit over the
    /// baseline is precisely the removed kernel barrier: `dY` tiles staged
    /// by the `dX` stream are still in SPM when the `dW` stream arrives,
    /// whenever capacity allows — limited, as the paper observes, because
    /// "the required dY tiles differ between computing dX and dW".
    pub fn interleaved<S: ScheduleSink>(&self, schedule: &mut S) {
        let cap = self.policy.capacity_tiles;
        // One super-step = one complete super-block of each stream's nest:
        // the working set retires exactly at block boundaries, so the two
        // streams barely interfere.
        let bx = self.dx_blocking(cap);
        let bw = self.dw_blocking(cap);
        let mut dx = bx.blocks(self.mt(), self.kt());
        let mut dw = bw.blocks(self.kt(), self.nt());
        loop {
            let mut emitted = false;
            if let Some((i0, k0)) = dx.next() {
                self.dx_emit_block(i0, k0, &bx, schedule);
                emitted = true;
            }
            if let Some((k0, j0)) = dw.next() {
                self.dw_emit_block(k0, j0, &bw, schedule);
                emitted = true;
            }
            if !emitted {
                break;
            }
        }
    }

    /// Block factors for the fused sweeps: a K-chunk of `kb` tiles and a
    /// sweep block of `b` dY tile-rows (dXmajor) or tile-columns
    /// (dWmajor). The instantaneous working set is
    /// `2·b·kb` (per-row dX + X slices) plus `2·kb` (W + dW column
    /// slices) plus the current dY tile; when the whole K extent does not
    /// fit, K is chunked and `dY` is re-swept once per chunk — the
    /// reduced-but-real reuse the paper's "added memory traffic" caveat
    /// describes.
    ///
    /// The pair is chosen by an analytic traffic model — exactly the kind
    /// of cost model the compiler pass hosting this transformation would
    /// evaluate: shrinking `kb` buys a wider sweep block (fewer re-reads of
    /// the non-dY operand and fewer partial-sum spills) at the price of
    /// more `dY` sweeps, which is free whenever `dY` itself is resident.
    pub(crate) fn fused_blocks(&self, dx_major: bool) -> (u64, u64) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let cap = self.policy.capacity_tiles;
        let dy_tiles = mt * nt;
        let x_tiles = mt * kt;
        let w_tiles = kt * nt;
        let sweep = if dx_major { mt } else { nt };
        // dXmajor holds dW columns hot per sweep block and re-reads W per
        // block; dWmajor is the mirror.
        let (stationary_tiles, spill_tiles) = if dx_major {
            (w_tiles, w_tiles) // re-read W per block; spill dW (same shape)
        } else {
            (x_tiles, x_tiles) // re-read X per block; spill dX (same shape)
        };

        let kb_max = (cap.saturating_sub(1) / 4).max(1).min(kt);
        let mut best = (1u64, 1u64);
        let mut best_cost = u128::MAX;
        for kb in 1..=kb_max {
            let b = (cap.saturating_sub(2 * kb + 1) / (2 * kb))
                .max(1)
                .min(sweep);
            let chunks = kt.div_ceil(kb);
            let blocks = sweep.div_ceil(b);
            let dy_reads = if dy_tiles + 4 * kb <= cap { 1 } else { chunks };
            let stationary_reads = if stationary_tiles <= cap / 2 {
                1
            } else {
                blocks
            };
            let spill = if spill_tiles <= cap / 2 {
                0
            } else {
                2 * (blocks - 1) as u128 * spill_tiles as u128
            };
            let cost = dy_reads as u128 * dy_tiles as u128
                + stationary_reads as u128 * stationary_tiles as u128
                + spill;
            if cost < best_cost || (cost == best_cost && kb > best.0) {
                best_cost = cost;
                best = (kb, b);
            }
        }
        best
    }

    /// Interleaving + dXmajor (§4.3, Figure 10 b): a row-major sweep of
    /// `dY`; both gradients consume each tile back-to-back.
    pub fn fused_dx_major<S: ScheduleSink>(&self, schedule: &mut S) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let (kb, bi) = self.fused_blocks(true);
        let mut k0 = 0;
        while k0 < kt {
            let k_end = (k0 + kb).min(kt);
            let mut i0 = 0;
            while i0 < mt {
                let i_end = (i0 + bi).min(mt);
                for j in 0..nt {
                    for i in i0..i_end {
                        for kk in k0..k_end {
                            schedule.gemm(&self.dx_op(i, kk, j));
                        }
                        for kk in k0..k_end {
                            schedule.gemm(&self.dw_op(kk, j, i));
                        }
                    }
                }
                i0 = i_end;
            }
            k0 = k_end;
        }
    }

    /// Interleaving + dWmajor (§4.3, Figure 10 c): a column-major sweep
    /// of `dY`.
    pub fn fused_dw_major<S: ScheduleSink>(&self, schedule: &mut S) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let (kb, bj) = self.fused_blocks(false);
        let mut k0 = 0;
        while k0 < kt {
            let k_end = (k0 + kb).min(kt);
            let mut j0 = 0;
            while j0 < nt {
                let j_end = (j0 + bj).min(nt);
                for i in 0..mt {
                    for j in j0..j_end {
                        for kk in k0..k_end {
                            schedule.gemm(&self.dw_op(kk, j, i));
                        }
                        for kk in k0..k_end {
                            schedule.gemm(&self.dx_op(i, kk, j));
                        }
                    }
                }
                j0 = j_end;
            }
            k0 = k_end;
        }
    }

    /// First-layer backward: the `dW` pass only.
    pub fn dw_only<S: ScheduleSink>(&self, schedule: &mut S) {
        let bw = self.dw_blocking(self.policy.capacity_tiles);
        for (k0, j0) in bw.blocks(self.kt(), self.nt()) {
            self.dw_emit_block(k0, j0, &bw, schedule);
        }
    }
}

/// The concrete backward emission orders (the union of the baseline modes
/// and the three Figure-10 interleaved orders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackwardOrder {
    /// Sequential dX then dW.
    Baseline,
    /// Sequential with elided second `dY` reads (Figure 6 study).
    IdealDyReuse,
    /// Interleaved, traditional traversals (Figure 10 a).
    Interleaved,
    /// Fused row-major sweep (Figure 10 b).
    DxMajor,
    /// Fused column-major sweep (Figure 10 c).
    DwMajor,
}

impl From<igo_tensor::TraversalOrder> for BackwardOrder {
    fn from(order: igo_tensor::TraversalOrder) -> Self {
        match order {
            igo_tensor::TraversalOrder::Traditional => BackwardOrder::Interleaved,
            igo_tensor::TraversalOrder::DxMajor => BackwardOrder::DxMajor,
            igo_tensor::TraversalOrder::DwMajor => BackwardOrder::DwMajor,
        }
    }
}

impl BackwardBuilder {
    /// Emit the backward pass in the given order. A first layer always
    /// degenerates to the `dW`-only pass: with no `dX` to compute there is
    /// nothing to interleave.
    pub fn emit<S: ScheduleSink>(&self, order: BackwardOrder, is_first: bool, schedule: &mut S) {
        if is_first {
            self.dw_only(schedule);
            return;
        }
        match order {
            BackwardOrder::Baseline => self.baseline(schedule),
            BackwardOrder::IdealDyReuse => self.baseline_ideal_dy_reuse(schedule),
            BackwardOrder::Interleaved => self.interleaved(schedule),
            BackwardOrder::DxMajor => self.fused_dx_major(schedule),
            BackwardOrder::DwMajor => self.fused_dw_major(schedule),
        }
    }
}

/// The capacity-dependent part of one backward emission, used by the
/// capacity-ladder pipeline to prove that two SPM rungs would receive the
/// *identical* access stream and can therefore share one emission pass.
///
/// Everything else a builder emits — grids, clipped tile bytes, density
/// scaling, op order within a nest — depends only on the GEMM shape, tile
/// shape, dtype and density, which are equal across the rungs of one
/// ladder by construction. The SPM capacity reaches the stream only
/// through the blocking factors captured here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EmissionSig {
    /// `dw_only` (first layers): the dW-nest blocking.
    DwOnly(Blocking),
    /// Baseline / IdealDyReuse / Interleaved: the two nest blockings.
    TwoNest(Blocking, Blocking),
    /// Fused sweeps: the `(kb, b)` block factors.
    Fused(u64, u64),
}

impl BackwardBuilder {
    /// The [`EmissionSig`] of `emit(order, is_first, _)`: equal signatures
    /// from builders differing only in `policy.capacity_tiles` guarantee
    /// byte-identical emission streams.
    pub(crate) fn emission_signature(&self, order: BackwardOrder, is_first: bool) -> EmissionSig {
        let cap = self.policy.capacity_tiles;
        if is_first {
            return EmissionSig::DwOnly(self.dw_blocking(cap));
        }
        match order {
            BackwardOrder::Baseline | BackwardOrder::IdealDyReuse | BackwardOrder::Interleaved => {
                EmissionSig::TwoNest(self.dx_blocking(cap), self.dw_blocking(cap))
            }
            BackwardOrder::DxMajor => {
                let (kb, b) = self.fused_blocks(true);
                EmissionSig::Fused(kb, b)
            }
            BackwardOrder::DwMajor => {
                let (kb, b) = self.fused_blocks(false);
                EmissionSig::Fused(kb, b)
            }
        }
    }
}

/// The capacity-dependent part of [`forward_schedule`]'s emission: its
/// single output blocking (see [`EmissionSig`] for the contract).
pub(crate) fn forward_emission_signature(gemm: GemmShape, policy: TilePolicy) -> EmissionSig {
    let y_grid = gemm.dy_grid(policy.tile);
    let x_grid = gemm.dx_grid(policy.tile);
    let (mt, nt, kt) = (
        y_grid.rows() as u64,
        y_grid.cols() as u64,
        x_grid.cols() as u64,
    );
    EmissionSig::DwOnly(Blocking::choose(mt, nt, kt, policy.capacity_tiles))
}

/// Emit the forward pass `Y = X × W` with a capacity-blocked nest.
pub fn forward_schedule<S: ScheduleSink>(
    gemm: GemmShape,
    policy: TilePolicy,
    tensors: LayerTensors,
    ifmap_density: f64,
    schedule: &mut S,
) {
    assert!(
        ifmap_density > 0.0 && ifmap_density <= 1.0,
        "density must be in (0,1]"
    );
    let y_grid = gemm.dy_grid(policy.tile);
    let x_grid = gemm.dx_grid(policy.tile);
    let w_grid = gemm.dw_grid(policy.tile);
    let (mt, nt, kt) = (
        y_grid.rows() as u64,
        y_grid.cols() as u64,
        x_grid.cols() as u64,
    );
    let blocking = Blocking::choose(mt, nt, kt, policy.capacity_tiles);
    let y_costs = GridCosts::new(&y_grid, policy.dtype, |b| b);
    let x_costs = GridCosts::new(&x_grid, policy.dtype, |b| {
        ((b as f64 * ifmap_density).ceil() as u64).max(4)
    });
    let w_costs = GridCosts::new(&w_grid, policy.dtype, |b| b);
    for (i0, j0) in blocking.blocks(mt, nt) {
        for kk in 0..kt {
            for i in i0..(i0 + blocking.b_rows).min(mt) {
                for j in j0..(j0 + blocking.b_cols).min(nt) {
                    let (iu, ju, ku) = (i as u32, j as u32, kk as u32);
                    let y_c = TileCoord::new(iu, ju);
                    let x_c = TileCoord::new(iu, ku);
                    let w_c = TileCoord::new(ku, ju);
                    let (y_d, y_b) = y_costs.at(y_c);
                    let (x_d, x_b) = x_costs.at(x_c);
                    let (_, w_b) = w_costs.at(w_c);
                    schedule.gemm(&TileOpSpec {
                        reads: [
                            Some(TileAccessSpec {
                                tensor: tensors.x,
                                coord: x_c,
                                bytes: x_b,
                            }),
                            Some(TileAccessSpec {
                                tensor: tensors.w,
                                coord: w_c,
                                bytes: w_b,
                            }),
                        ],
                        acc: Some(TileAccessSpec {
                            tensor: tensors.y,
                            coord: y_c,
                            bytes: y_b,
                        }),
                        compute: GemmShape::new(y_d.rows, x_d.cols, y_d.cols),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_npu_sim::NpuConfig;

    fn setup(gemm: GemmShape) -> (Schedule, BackwardBuilder) {
        let mut s = Schedule::new("test");
        let tensors = LayerTensors::register(&mut s, "l1");
        let policy = TilePolicy::for_config(&NpuConfig::large_single_core());
        (s, BackwardBuilder::new(gemm, policy, tensors))
    }

    fn macs_of(s: &Schedule) -> u64 {
        s.total_macs()
    }

    #[test]
    fn all_backward_schedules_perform_identical_macs() {
        let gemm = GemmShape::new(500, 300, 700);
        let expected = gemm.backward_macs();
        let (proto, b) = setup(gemm);
        let mut variants: Vec<(&str, Schedule)> = Vec::new();
        for name in ["baseline", "interleaved", "dxmajor", "dwmajor"] {
            variants.push((name, proto.fork(name)));
        }
        b.baseline(&mut variants[0].1);
        b.interleaved(&mut variants[1].1);
        b.fused_dx_major(&mut variants[2].1);
        b.fused_dw_major(&mut variants[3].1);
        for (name, s) in &variants {
            assert_eq!(macs_of(s), expected, "{name} must not change the math");
        }
    }

    #[test]
    fn schedules_have_equal_op_counts() {
        let gemm = GemmShape::new(257, 129, 130);
        let (proto, b) = setup(gemm);
        let mut base = proto.fork("base");
        b.baseline(&mut base);
        let mut inter = proto.fork("inter");
        b.interleaved(&mut inter);
        let mut dxm = proto.fork("dxm");
        b.fused_dx_major(&mut dxm);
        // The baseline carries one extra op: the kernel barrier between
        // its two sequential GEMMs. Fused schedules have none.
        assert_eq!(base.len(), inter.len() + 1);
        assert_eq!(inter.len(), dxm.len());
        assert_eq!(inter.len() as u64, b.backward_ops());
    }

    #[test]
    fn interleaved_alternates_streams() {
        let gemm = GemmShape::new(4096, 1024, 1024);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("i");
        b.interleaved(&mut s);
        // The fused stream alternates super-blocks of the two gradient
        // computations: both accumulator classes appear, the stream
        // switches between them multiple times, and the very first dW op
        // arrives long before the baseline's midpoint barrier would.
        let classes: Vec<TensorClass> = s
            .ops()
            .iter()
            .map(|op| {
                let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                    panic!("no stream ops expected")
                };
                s.class_of(g.acc.expect("every op accumulates").key.tensor)
            })
            .collect();
        let switches = classes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches >= 4,
            "expected block alternation, got {switches} switches"
        );
        let first_dw = classes
            .iter()
            .position(|&c| c == TensorClass::WGrad)
            .expect("dW ops present");
        assert!(
            first_dw < classes.len() / 4,
            "dW work must start early, got position {first_dw} of {}",
            classes.len()
        );
    }

    #[test]
    fn dx_major_consumes_each_dy_tile_contiguously() {
        let gemm = GemmShape::new(384, 256, 384);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("dxm");
        b.fused_dx_major(&mut s);
        // Collect the sequence of dY coords actually read; each distinct
        // coordinate must appear as one contiguous run (within one M-block
        // pass, which here covers all of M).
        let mut runs = Vec::new();
        let mut last = None;
        for op in s.ops() {
            let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                continue;
            };
            for r in &g.reads {
                if s.class_of(r.key.tensor) == TensorClass::OutGrad && last != Some(r.key.coord) {
                    runs.push(r.key.coord);
                    last = Some(r.key.coord);
                }
            }
        }
        let distinct: std::collections::HashSet<_> = runs.iter().collect();
        assert_eq!(
            runs.len(),
            distinct.len(),
            "each dY tile must be one contiguous run"
        );
    }

    #[test]
    fn ideal_reuse_elides_second_dy_read() {
        let gemm = GemmShape::new(256, 256, 256);
        let (proto, b) = setup(gemm);
        let mut base = proto.fork("b");
        b.baseline(&mut base);
        let mut ideal = proto.fork("i");
        b.baseline_ideal_dy_reuse(&mut ideal);
        assert!(ideal.named_read_bytes() < base.named_read_bytes());
        assert_eq!(macs_of(&ideal), macs_of(&base), "compute unchanged");
    }

    #[test]
    fn dw_only_skips_input_gradient() {
        let gemm = GemmShape::new(256, 128, 128);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("first");
        b.dw_only(&mut s);
        for op in s.ops() {
            let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                continue;
            };
            let acc = g.acc.unwrap().key.tensor;
            assert_eq!(s.class_of(acc), TensorClass::WGrad);
        }
        assert_eq!(macs_of(&s), gemm.macs());
    }

    #[test]
    fn forward_schedule_covers_output_once() {
        let gemm = GemmShape::new(300, 200, 100);
        let mut s = Schedule::new("fwd");
        let tensors = LayerTensors::register(&mut s, "l1");
        let policy = TilePolicy::for_config(&NpuConfig::large_single_core());
        forward_schedule(gemm, policy, tensors, 1.0, &mut s);
        assert_eq!(s.total_macs(), gemm.macs());
        // Every op accumulates into Y.
        let mut y_tiles = std::collections::HashSet::new();
        for op in s.ops() {
            let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                continue;
            };
            y_tiles.insert(g.acc.unwrap().key.coord);
        }
        let grid = gemm.dy_grid(policy.tile);
        assert_eq!(y_tiles.len() as u64, grid.num_tiles());
    }

    #[test]
    fn ragged_edges_preserve_mac_totals() {
        // Dimensions deliberately not multiples of the 128 tile.
        let gemm = GemmShape::new(129, 257, 383);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("ragged");
        b.baseline(&mut s);
        assert_eq!(macs_of(&s), gemm.backward_macs());
    }
}
