//! Backward- and forward-pass schedule builders.
//!
//! For a layer whose forward pass is `X(M,K) × W(K,N) → Y(M,N)`, the
//! backward pass computes (paper Eq. 1/2):
//!
//! ```text
//!   dX(M,K) = dY(M,N) × Wᵀ(N,K)
//!   dW(K,N) = Xᵀ(K,M) × dY(M,N)
//! ```
//!
//! All matrices are decomposed into square tiles (grid conventions:
//! `dY[i,j]` with `i` over M-tiles and `j` over N-tiles; `X/dX[i,kk]` with
//! `kk` over K-tiles; `W/dW[kk,j]`). A tile operation
//! `dx_op(i,kk,j)` performs `dX[i,kk] += dY[i,j]·Wᵀ[j,kk]`, and
//! `dw_op(kk,j,i)` performs `dW[kk,j] += Xᵀ[kk,i]·dY[i,j]`.
//!
//! [`BackwardBuilder`] emits the paper's schedule families over these ops:
//!
//! * [`BackwardBuilder::baseline`] — the two gradient GEMMs run
//!   *sequentially*, each with its own capacity-blocked loop nest (the
//!   tiling-optimised baseline of §6.1). `dY` is traversed row-major by the
//!   `dX` nest and column-major by the `dW` nest, so every `dY` tile is
//!   fetched (at least) twice.
//! * [`BackwardBuilder::interleaved`] — §4.2: the two streams interleaved
//!   tile-by-tile, each keeping its traditional traversal (Figure 10 a).
//! * [`BackwardBuilder::fused_dx_major`] — §4.3, Figure 10 b: one row-major
//!   sweep of `dY`; for each `dY` tile, first its `dX` contributions, then
//!   its `dW` contributions. `dW` accumulator columns are revisited once
//!   per M-block and spill if `dW` does not fit — the "intermediate
//!   results" traffic of the paper.
//! * [`BackwardBuilder::fused_dw_major`] — Figure 10 c, the column-major
//!   mirror: `dX` accumulator rows become the spill risk.
//! * [`BackwardBuilder::dw_only`] — the first layer of a model, which needs
//!   no input gradient (§6.2: interleaving "cannot be applied in the first
//!   layer since there is no need to compute dX").
//! * [`BackwardBuilder::baseline_ideal_dy_reuse`] — the Figure 6 potential
//!   study: the baseline with the `dW` pass's `dY` reads elided, as if the
//!   tiles were "hypothetically available without any external memory
//!   access" (§3.3).
//!
//! [`forward_schedule`] emits the (technique-independent) forward pass.

use crate::tiling::{Blocking, TilePolicy};
use igo_npu_sim::{Schedule, TensorId, TileOp};
use igo_tensor::{GemmShape, TensorClass, TileCoord, TileGrid};

/// Tensor ids of one layer within a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTensors {
    /// Input feature map `X(M,K)`.
    pub x: TensorId,
    /// Weights `W(K,N)`.
    pub w: TensorId,
    /// Output feature map `Y(M,N)` (forward only).
    pub y: TensorId,
    /// Input gradient `dX(M,K)`.
    pub dx: TensorId,
    /// Weight gradient `dW(K,N)`.
    pub dw: TensorId,
    /// Output gradient `dY(M,N)` — the shared operand.
    pub dy: TensorId,
}

impl LayerTensors {
    /// Register the six tensors of a layer called `name` in `schedule`.
    pub fn register(schedule: &mut Schedule, name: &str) -> Self {
        Self {
            x: schedule.add_tensor(TensorClass::Ifmap, format!("{name}.X")),
            w: schedule.add_tensor(TensorClass::Weight, format!("{name}.W")),
            y: schedule.add_tensor(TensorClass::Ofmap, format!("{name}.Y")),
            dx: schedule.add_tensor(TensorClass::InGrad, format!("{name}.dX")),
            dw: schedule.add_tensor(TensorClass::WGrad, format!("{name}.dW")),
            dy: schedule.add_tensor(TensorClass::OutGrad, format!("{name}.dY")),
        }
    }
}

/// Emits backward-pass schedules for one layer.
#[derive(Debug, Clone)]
pub struct BackwardBuilder {
    gemm: GemmShape,
    policy: TilePolicy,
    dy_grid: TileGrid,
    x_grid: TileGrid,
    w_grid: TileGrid,
    tensors: LayerTensors,
    elide_dw_dy_reads: bool,
    ifmap_density: f64,
}

impl BackwardBuilder {
    /// Builder for a layer with forward shape `gemm`, tiled per `policy`,
    /// touching the tensors `tensors` (registered in the target schedule).
    pub fn new(gemm: GemmShape, policy: TilePolicy, tensors: LayerTensors) -> Self {
        Self {
            gemm,
            policy,
            dy_grid: gemm.dy_grid(policy.tile),
            x_grid: gemm.dx_grid(policy.tile),
            w_grid: gemm.dw_grid(policy.tile),
            tensors,
            elide_dw_dy_reads: false,
            ifmap_density: 1.0,
        }
    }

    /// Set the raw-layout density of `X`/`dX` DRAM traffic (see
    /// [`igo_tensor::ConvShape::ifmap_density`]): tiles of the im2col-ed
    /// input and of the col2im-ed input gradient cost
    /// `density x im2col bytes` of DRAM traffic, because the tensor stored
    /// off-chip is the raw feature map and the replication happens while
    /// staging tiles.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < density <= 1`.
    #[must_use]
    pub fn with_ifmap_density(mut self, density: f64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0,1]");
        self.ifmap_density = density;
        self
    }

    /// Bytes of an `X`/`dX` tile as transferred from DRAM (raw layout).
    fn x_bytes(&self, bytes: u64) -> u64 {
        ((bytes as f64 * self.ifmap_density).ceil() as u64).max(4)
    }

    /// Elide the `dW` pass's `dY` reads (the Figure 6 potential study).
    #[must_use]
    pub fn with_elided_dw_dy_reads(mut self) -> Self {
        self.elide_dw_dy_reads = true;
        self
    }

    /// The forward GEMM shape.
    pub fn gemm(&self) -> GemmShape {
        self.gemm
    }

    /// M-tile count.
    fn mt(&self) -> u64 {
        self.dy_grid.rows() as u64
    }

    /// N-tile count.
    fn nt(&self) -> u64 {
        self.dy_grid.cols() as u64
    }

    /// K-tile count.
    fn kt(&self) -> u64 {
        self.x_grid.cols() as u64
    }

    /// Total tile ops in a full backward pass (`2·Mt·Kt·Nt`).
    pub fn backward_ops(&self) -> u64 {
        2 * self.mt() * self.kt() * self.nt()
    }

    /// `dX[i,kk] += dY[i,j] · Wᵀ[j,kk]`.
    fn dx_op(&self, i: u64, kk: u64, j: u64) -> TileOp {
        let (i, kk, j) = (i as u32, kk as u32, j as u32);
        let dy_c = TileCoord::new(i, j);
        let w_c = TileCoord::new(kk, j);
        let dx_c = TileCoord::new(i, kk);
        let dy_d = self.dy_grid.tile_dims(dy_c);
        let dx_d = self.x_grid.tile_dims(dx_c);
        TileOp::new(GemmShape::new(dy_d.rows, dy_d.cols, dx_d.cols))
            .read(self.tensors.dy, dy_c, dy_d.bytes(self.policy.dtype))
            .read(
                self.tensors.w,
                w_c,
                self.w_grid.tile_bytes(w_c, self.policy.dtype),
            )
            .accumulate(
                self.tensors.dx,
                dx_c,
                self.x_bytes(dx_d.bytes(self.policy.dtype)),
            )
    }

    /// `dW[kk,j] += Xᵀ[kk,i] · dY[i,j]`.
    fn dw_op(&self, kk: u64, j: u64, i: u64) -> TileOp {
        let (i, kk, j) = (i as u32, kk as u32, j as u32);
        let dy_c = TileCoord::new(i, j);
        let x_c = TileCoord::new(i, kk);
        let dw_c = TileCoord::new(kk, j);
        let dy_d = self.dy_grid.tile_dims(dy_c);
        let dw_d = self.w_grid.tile_dims(dw_c);
        let mut op = TileOp::new(GemmShape::new(dw_d.rows, dy_d.rows, dw_d.cols)).read(
            self.tensors.x,
            x_c,
            self.x_bytes(self.x_grid.tile_bytes(x_c, self.policy.dtype)),
        );
        if !self.elide_dw_dy_reads {
            op = op.read(self.tensors.dy, dy_c, dy_d.bytes(self.policy.dtype));
        }
        op.accumulate(self.tensors.dw, dw_c, dw_d.bytes(self.policy.dtype))
    }

    /// The blocked `dX` nest (row-major `dY` traversal), planned for a
    /// residency budget of `capacity` tiles, grouped per super-block (each
    /// inner `Vec` is one complete block: its accumulators retire at the
    /// group boundary).
    fn dx_blocks(&self, capacity: u64) -> Vec<Vec<TileOp>> {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let blocking = Blocking::choose(mt, kt, nt, capacity);
        let mut blocks = Vec::new();
        for (i0, k0) in blocking.blocks(mt, kt) {
            let mut ops = Vec::new();
            for j in 0..nt {
                for i in i0..(i0 + blocking.b_rows).min(mt) {
                    for kk in k0..(k0 + blocking.b_cols).min(kt) {
                        ops.push(self.dx_op(i, kk, j));
                    }
                }
            }
            blocks.push(ops);
        }
        blocks
    }

    /// The blocked `dX` nest as a flat op list.
    fn dx_stream(&self, capacity: u64) -> Vec<TileOp> {
        self.dx_blocks(capacity).into_iter().flatten().collect()
    }

    /// The blocked `dW` nest (column-major `dY` traversal), grouped per
    /// super-block.
    fn dw_blocks(&self, capacity: u64) -> Vec<Vec<TileOp>> {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let blocking = Blocking::choose(kt, nt, mt, capacity);
        let mut blocks = Vec::new();
        for (k0, j0) in blocking.blocks(kt, nt) {
            let mut ops = Vec::new();
            for i in 0..mt {
                for kk in k0..(k0 + blocking.b_rows).min(kt) {
                    for j in j0..(j0 + blocking.b_cols).min(nt) {
                        ops.push(self.dw_op(kk, j, i));
                    }
                }
            }
            blocks.push(ops);
        }
        blocks
    }

    /// The blocked `dW` nest as a flat op list.
    fn dw_stream(&self, capacity: u64) -> Vec<TileOp> {
        self.dw_blocks(capacity).into_iter().flatten().collect()
    }

    /// Baseline (§6.1): the `dX` kernel fully, a kernel boundary, then the
    /// `dW` kernel — two sequentially launched operations, XLA-style, each
    /// planning its blocking for the whole residency. The barrier is what
    /// makes the baseline fetch `dY` twice: data staged by the first
    /// kernel is gone when the second starts.
    pub fn baseline(&self, schedule: &mut Schedule) {
        for op in self.dx_stream(self.policy.capacity_tiles) {
            schedule.push_gemm(op);
        }
        schedule.push_barrier();
        for op in self.dw_stream(self.policy.capacity_tiles) {
            schedule.push_gemm(op);
        }
    }

    /// The Figure 6 potential study: baseline order, `dW`'s `dY` reads
    /// elided.
    pub fn baseline_ideal_dy_reuse(&self, schedule: &mut Schedule) {
        let ideal = self.clone().with_elided_dw_dy_reads();
        ideal.baseline(schedule);
    }

    /// Interleaving only (§4.2, Figure 10 a): the two traditional streams
    /// fused into one kernel and interleaved chunk-by-chunk, each keeping
    /// its own traversal order.
    ///
    /// Interleaving happens at the granularity the double-buffered SPM
    /// supports — one blocked super-step of tile operations at a time —
    /// so the two streams' instantaneous working sets barely overlap and
    /// each keeps its full blocking efficiency. The benefit over the
    /// baseline is precisely the removed kernel barrier: `dY` tiles staged
    /// by the `dX` stream are still in SPM when the `dW` stream arrives,
    /// whenever capacity allows — limited, as the paper observes, because
    /// "the required dY tiles differ between computing dX and dW".
    pub fn interleaved(&self, schedule: &mut Schedule) {
        let cap = self.policy.capacity_tiles;
        // One super-step = one complete super-block of each stream's nest:
        // the working set retires exactly at block boundaries, so the two
        // streams barely interfere.
        let mut dx = self.dx_blocks(cap).into_iter();
        let mut dw = self.dw_blocks(cap).into_iter();
        loop {
            let mut emitted = 0;
            if let Some(block) = dx.next() {
                emitted += block.len();
                for op in block {
                    schedule.push_gemm(op);
                }
            }
            if let Some(block) = dw.next() {
                emitted += block.len();
                for op in block {
                    schedule.push_gemm(op);
                }
            }
            if emitted == 0 {
                break;
            }
        }
    }

    /// Block factors for the fused sweeps: a K-chunk of `kb` tiles and a
    /// sweep block of `b` dY tile-rows (dXmajor) or tile-columns
    /// (dWmajor). The instantaneous working set is
    /// `2·b·kb` (per-row dX + X slices) plus `2·kb` (W + dW column
    /// slices) plus the current dY tile; when the whole K extent does not
    /// fit, K is chunked and `dY` is re-swept once per chunk — the
    /// reduced-but-real reuse the paper's "added memory traffic" caveat
    /// describes.
    ///
    /// The pair is chosen by an analytic traffic model — exactly the kind
    /// of cost model the compiler pass hosting this transformation would
    /// evaluate: shrinking `kb` buys a wider sweep block (fewer re-reads of
    /// the non-dY operand and fewer partial-sum spills) at the price of
    /// more `dY` sweeps, which is free whenever `dY` itself is resident.
    fn fused_blocks(&self, dx_major: bool) -> (u64, u64) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let cap = self.policy.capacity_tiles;
        let dy_tiles = mt * nt;
        let x_tiles = mt * kt;
        let w_tiles = kt * nt;
        let sweep = if dx_major { mt } else { nt };
        // dXmajor holds dW columns hot per sweep block and re-reads W per
        // block; dWmajor is the mirror.
        let (stationary_tiles, spill_tiles) = if dx_major {
            (w_tiles, w_tiles) // re-read W per block; spill dW (same shape)
        } else {
            (x_tiles, x_tiles) // re-read X per block; spill dX (same shape)
        };

        let kb_max = (cap.saturating_sub(1) / 4).max(1).min(kt);
        let mut best = (1u64, 1u64);
        let mut best_cost = u128::MAX;
        for kb in 1..=kb_max {
            let b = (cap.saturating_sub(2 * kb + 1) / (2 * kb))
                .max(1)
                .min(sweep);
            let chunks = kt.div_ceil(kb);
            let blocks = sweep.div_ceil(b);
            let dy_reads = if dy_tiles + 4 * kb <= cap { 1 } else { chunks };
            let stationary_reads = if stationary_tiles <= cap / 2 {
                1
            } else {
                blocks
            };
            let spill = if spill_tiles <= cap / 2 {
                0
            } else {
                2 * (blocks - 1) as u128 * spill_tiles as u128
            };
            let cost = dy_reads as u128 * dy_tiles as u128
                + stationary_reads as u128 * stationary_tiles as u128
                + spill;
            if cost < best_cost || (cost == best_cost && kb > best.0) {
                best_cost = cost;
                best = (kb, b);
            }
        }
        best
    }

    /// Interleaving + dXmajor (§4.3, Figure 10 b): a row-major sweep of
    /// `dY`; both gradients consume each tile back-to-back.
    pub fn fused_dx_major(&self, schedule: &mut Schedule) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let (kb, bi) = self.fused_blocks(true);
        let mut k0 = 0;
        while k0 < kt {
            let k_end = (k0 + kb).min(kt);
            let mut i0 = 0;
            while i0 < mt {
                let i_end = (i0 + bi).min(mt);
                for j in 0..nt {
                    for i in i0..i_end {
                        for kk in k0..k_end {
                            schedule.push_gemm(self.dx_op(i, kk, j));
                        }
                        for kk in k0..k_end {
                            schedule.push_gemm(self.dw_op(kk, j, i));
                        }
                    }
                }
                i0 = i_end;
            }
            k0 = k_end;
        }
    }

    /// Interleaving + dWmajor (§4.3, Figure 10 c): a column-major sweep
    /// of `dY`.
    pub fn fused_dw_major(&self, schedule: &mut Schedule) {
        let (mt, kt, nt) = (self.mt(), self.kt(), self.nt());
        let (kb, bj) = self.fused_blocks(false);
        let mut k0 = 0;
        while k0 < kt {
            let k_end = (k0 + kb).min(kt);
            let mut j0 = 0;
            while j0 < nt {
                let j_end = (j0 + bj).min(nt);
                for i in 0..mt {
                    for j in j0..j_end {
                        for kk in k0..k_end {
                            schedule.push_gemm(self.dw_op(kk, j, i));
                        }
                        for kk in k0..k_end {
                            schedule.push_gemm(self.dx_op(i, kk, j));
                        }
                    }
                }
                j0 = j_end;
            }
            k0 = k_end;
        }
    }

    /// First-layer backward: the `dW` pass only.
    pub fn dw_only(&self, schedule: &mut Schedule) {
        for op in self.dw_stream(self.policy.capacity_tiles) {
            schedule.push_gemm(op);
        }
    }
}

/// The concrete backward emission orders (the union of the baseline modes
/// and the three Figure-10 interleaved orders).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackwardOrder {
    /// Sequential dX then dW.
    Baseline,
    /// Sequential with elided second `dY` reads (Figure 6 study).
    IdealDyReuse,
    /// Interleaved, traditional traversals (Figure 10 a).
    Interleaved,
    /// Fused row-major sweep (Figure 10 b).
    DxMajor,
    /// Fused column-major sweep (Figure 10 c).
    DwMajor,
}

impl From<igo_tensor::TraversalOrder> for BackwardOrder {
    fn from(order: igo_tensor::TraversalOrder) -> Self {
        match order {
            igo_tensor::TraversalOrder::Traditional => BackwardOrder::Interleaved,
            igo_tensor::TraversalOrder::DxMajor => BackwardOrder::DxMajor,
            igo_tensor::TraversalOrder::DwMajor => BackwardOrder::DwMajor,
        }
    }
}

impl BackwardBuilder {
    /// Emit the backward pass in the given order. A first layer always
    /// degenerates to the `dW`-only pass: with no `dX` to compute there is
    /// nothing to interleave.
    pub fn emit(&self, order: BackwardOrder, is_first: bool, schedule: &mut Schedule) {
        if is_first {
            self.dw_only(schedule);
            return;
        }
        match order {
            BackwardOrder::Baseline => self.baseline(schedule),
            BackwardOrder::IdealDyReuse => self.baseline_ideal_dy_reuse(schedule),
            BackwardOrder::Interleaved => self.interleaved(schedule),
            BackwardOrder::DxMajor => self.fused_dx_major(schedule),
            BackwardOrder::DwMajor => self.fused_dw_major(schedule),
        }
    }
}

/// Emit the forward pass `Y = X × W` with a capacity-blocked nest.
pub fn forward_schedule(
    gemm: GemmShape,
    policy: TilePolicy,
    tensors: LayerTensors,
    ifmap_density: f64,
    schedule: &mut Schedule,
) {
    assert!(
        ifmap_density > 0.0 && ifmap_density <= 1.0,
        "density must be in (0,1]"
    );
    let y_grid = gemm.dy_grid(policy.tile);
    let x_grid = gemm.dx_grid(policy.tile);
    let w_grid = gemm.dw_grid(policy.tile);
    let (mt, nt, kt) = (
        y_grid.rows() as u64,
        y_grid.cols() as u64,
        x_grid.cols() as u64,
    );
    let blocking = Blocking::choose(mt, nt, kt, policy.capacity_tiles);
    for (i0, j0) in blocking.blocks(mt, nt) {
        for kk in 0..kt {
            for i in i0..(i0 + blocking.b_rows).min(mt) {
                for j in j0..(j0 + blocking.b_cols).min(nt) {
                    let (iu, ju, ku) = (i as u32, j as u32, kk as u32);
                    let y_c = TileCoord::new(iu, ju);
                    let x_c = TileCoord::new(iu, ku);
                    let w_c = TileCoord::new(ku, ju);
                    let y_d = y_grid.tile_dims(y_c);
                    let x_d = x_grid.tile_dims(x_c);
                    let x_bytes =
                        ((x_d.bytes(policy.dtype) as f64 * ifmap_density).ceil() as u64).max(4);
                    schedule.push_gemm(
                        TileOp::new(GemmShape::new(y_d.rows, x_d.cols, y_d.cols))
                            .read(tensors.x, x_c, x_bytes)
                            .read(tensors.w, w_c, w_grid.tile_bytes(w_c, policy.dtype))
                            .accumulate(tensors.y, y_c, y_d.bytes(policy.dtype)),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_npu_sim::NpuConfig;

    fn setup(gemm: GemmShape) -> (Schedule, BackwardBuilder) {
        let mut s = Schedule::new("test");
        let tensors = LayerTensors::register(&mut s, "l1");
        let policy = TilePolicy::for_config(&NpuConfig::large_single_core());
        (s, BackwardBuilder::new(gemm, policy, tensors))
    }

    fn macs_of(s: &Schedule) -> u64 {
        s.total_macs()
    }

    #[test]
    fn all_backward_schedules_perform_identical_macs() {
        let gemm = GemmShape::new(500, 300, 700);
        let expected = gemm.backward_macs();
        let (proto, b) = setup(gemm);
        let mut variants: Vec<(&str, Schedule)> = Vec::new();
        for name in ["baseline", "interleaved", "dxmajor", "dwmajor"] {
            variants.push((name, proto.fork(name)));
        }
        b.baseline(&mut variants[0].1);
        b.interleaved(&mut variants[1].1);
        b.fused_dx_major(&mut variants[2].1);
        b.fused_dw_major(&mut variants[3].1);
        for (name, s) in &variants {
            assert_eq!(macs_of(s), expected, "{name} must not change the math");
        }
    }

    #[test]
    fn schedules_have_equal_op_counts() {
        let gemm = GemmShape::new(257, 129, 130);
        let (proto, b) = setup(gemm);
        let mut base = proto.fork("base");
        b.baseline(&mut base);
        let mut inter = proto.fork("inter");
        b.interleaved(&mut inter);
        let mut dxm = proto.fork("dxm");
        b.fused_dx_major(&mut dxm);
        // The baseline carries one extra op: the kernel barrier between
        // its two sequential GEMMs. Fused schedules have none.
        assert_eq!(base.len(), inter.len() + 1);
        assert_eq!(inter.len(), dxm.len());
        assert_eq!(inter.len() as u64, b.backward_ops());
    }

    #[test]
    fn interleaved_alternates_streams() {
        let gemm = GemmShape::new(4096, 1024, 1024);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("i");
        b.interleaved(&mut s);
        // The fused stream alternates super-blocks of the two gradient
        // computations: both accumulator classes appear, the stream
        // switches between them multiple times, and the very first dW op
        // arrives long before the baseline's midpoint barrier would.
        let classes: Vec<TensorClass> = s
            .ops()
            .iter()
            .map(|op| {
                let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                    panic!("no stream ops expected")
                };
                s.class_of(g.acc.expect("every op accumulates").key.tensor)
            })
            .collect();
        let switches = classes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            switches >= 4,
            "expected block alternation, got {switches} switches"
        );
        let first_dw = classes
            .iter()
            .position(|&c| c == TensorClass::WGrad)
            .expect("dW ops present");
        assert!(
            first_dw < classes.len() / 4,
            "dW work must start early, got position {first_dw} of {}",
            classes.len()
        );
    }

    #[test]
    fn dx_major_consumes_each_dy_tile_contiguously() {
        let gemm = GemmShape::new(384, 256, 384);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("dxm");
        b.fused_dx_major(&mut s);
        // Collect the sequence of dY coords actually read; each distinct
        // coordinate must appear as one contiguous run (within one M-block
        // pass, which here covers all of M).
        let mut runs = Vec::new();
        let mut last = None;
        for op in s.ops() {
            let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                continue;
            };
            for r in &g.reads {
                if s.class_of(r.key.tensor) == TensorClass::OutGrad && last != Some(r.key.coord) {
                    runs.push(r.key.coord);
                    last = Some(r.key.coord);
                }
            }
        }
        let distinct: std::collections::HashSet<_> = runs.iter().collect();
        assert_eq!(
            runs.len(),
            distinct.len(),
            "each dY tile must be one contiguous run"
        );
    }

    #[test]
    fn ideal_reuse_elides_second_dy_read() {
        let gemm = GemmShape::new(256, 256, 256);
        let (proto, b) = setup(gemm);
        let mut base = proto.fork("b");
        b.baseline(&mut base);
        let mut ideal = proto.fork("i");
        b.baseline_ideal_dy_reuse(&mut ideal);
        assert!(ideal.named_read_bytes() < base.named_read_bytes());
        assert_eq!(macs_of(&ideal), macs_of(&base), "compute unchanged");
    }

    #[test]
    fn dw_only_skips_input_gradient() {
        let gemm = GemmShape::new(256, 128, 128);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("first");
        b.dw_only(&mut s);
        for op in s.ops() {
            let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                continue;
            };
            let acc = g.acc.unwrap().key.tensor;
            assert_eq!(s.class_of(acc), TensorClass::WGrad);
        }
        assert_eq!(macs_of(&s), gemm.macs());
    }

    #[test]
    fn forward_schedule_covers_output_once() {
        let gemm = GemmShape::new(300, 200, 100);
        let mut s = Schedule::new("fwd");
        let tensors = LayerTensors::register(&mut s, "l1");
        let policy = TilePolicy::for_config(&NpuConfig::large_single_core());
        forward_schedule(gemm, policy, tensors, 1.0, &mut s);
        assert_eq!(s.total_macs(), gemm.macs());
        // Every op accumulates into Y.
        let mut y_tiles = std::collections::HashSet::new();
        for op in s.ops() {
            let igo_npu_sim::ScheduleOp::Gemm(g) = op else {
                continue;
            };
            y_tiles.insert(g.acc.unwrap().key.coord);
        }
        let grid = gemm.dy_grid(policy.tile);
        assert_eq!(y_tiles.len() as u64, grid.num_tiles());
    }

    #[test]
    fn ragged_edges_preserve_mac_totals() {
        // Dimensions deliberately not multiples of the 128 tile.
        let gemm = GemmShape::new(129, 257, 383);
        let (proto, b) = setup(gemm);
        let mut s = proto.fork("ragged");
        b.baseline(&mut s);
        assert_eq!(macs_of(&s), gemm.backward_macs());
    }
}
