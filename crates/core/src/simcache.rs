//! Process-wide memoization of layer simulations.
//!
//! The experiment harnesses simulate the same layer shapes over and over:
//! a technique ladder re-simulates every layer's forward pass once per
//! technique, zoo models share layer shapes, and sweeps revisit entire
//! models. Under this machine model a layer simulation is a pure function
//! of `(GEMM shape, ifmap density, hardware config, technique, position)`,
//! so the pipeline caches results across [`crate::simulate_model`] calls.
//!
//! The key deliberately excludes the config's *name* (a label) and
//! *batch-per-core* (already folded into the GEMM's M dimension by model
//! construction) but includes every field the engine reads: core count, PE
//! array, clock, SPM capacity, DRAM bandwidth and burst latency. Densities
//! and clocks are `f64`s and are keyed by their bit patterns.

use crate::partition::PartitionScheme;
use crate::pipeline::LayerDecision;
use crate::schedule::BackwardOrder;
use crate::technique::Technique;
use igo_npu_sim::{NpuConfig, SimReport};
use igo_tensor::GemmShape;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The simulation-relevant fields of an [`NpuConfig`], bit-exact and
/// hashable. Two configs with equal fingerprints produce identical layer
/// simulations; configs differing in any engine-visible field — SPM size,
/// bandwidth, PE array, clock, cores, burst latency — never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigFingerprint {
    cores: u32,
    pe_rows: u32,
    pe_cols: u32,
    freq_bits: u64,
    spm_bytes: u64,
    bandwidth_bits: u64,
    burst_latency: u64,
}

impl ConfigFingerprint {
    /// Fingerprint `config`.
    pub fn of(config: &NpuConfig) -> Self {
        Self {
            cores: config.cores,
            pe_rows: config.pe.rows,
            pe_cols: config.pe.cols,
            freq_bits: config.freq_hz.to_bits(),
            spm_bytes: config.spm_bytes,
            bandwidth_bits: config.dram.bandwidth_bytes_per_sec.to_bits(),
            burst_latency: config.dram.burst_latency_cycles,
        }
    }

    /// Fingerprint `config` with the SPM capacity zeroed out. This is the
    /// key of the capacity-*oblivious* profile cache: one entry answers
    /// every SPM size of an otherwise identical machine.
    pub fn sans_spm(config: &NpuConfig) -> Self {
        Self {
            spm_bytes: 0,
            ..Self::of(config)
        }
    }

    /// Whether two fingerprints differ at most in their SPM capacity.
    pub fn equal_sans_spm(&self, other: &Self) -> bool {
        Self {
            spm_bytes: 0,
            ..*self
        } == Self {
            spm_bytes: 0,
            ..*other
        }
    }
}

/// Which simulation of a layer the entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PassKey {
    Forward,
    Backward {
        technique: Technique,
        is_first: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    gemm: GemmShape,
    density_bits: u64,
    config: ConfigFingerprint,
    pass: PassKey,
}

/// A memoized layer result (`decision` is `None` for forward passes).
type CacheEntry = (SimReport, Option<LayerDecision>);

/// Default capacity in entries (an entry is a couple of hundred bytes, so
/// this bounds the memo cache to a few tens of megabytes).
pub const DEFAULT_CACHE_CAP: usize = 1 << 18;

/// Environment variable overriding the memo-cache capacity (entries).
pub const CACHE_CAP_ENV: &str = "IGO_SIM_CACHE_CAP";

/// A bounded LRU map: recency is tracked with a lazy queue of
/// `(key, stamp)` touches — an entry is live only under its latest stamp,
/// so stale queue slots are skipped (and trimmed) instead of being moved.
struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    queue: VecDeque<(K, u64)>,
    clock: u64,
}

impl<K: Eq + Hash + Copy, V: Clone> LruCache<K, V> {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            queue: VecDeque::new(),
            clock: 0,
        }
    }

    fn touch(&mut self, k: K) -> u64 {
        self.clock += 1;
        self.queue.push_back((k, self.clock));
        self.clock
    }

    /// Compact the lazy queue once it holds more dead than live slots.
    /// `retain` preserves the stamp order, so eviction recency is
    /// unaffected; the halving threshold makes the sweep amortized O(1)
    /// per touch.
    fn maybe_compact(&mut self) {
        if self.queue.len() > (2 * self.map.len()).max(64) {
            let map = &self.map;
            self.queue
                .retain(|&(k, s)| map.get(&k).is_some_and(|&(_, live)| live == s));
        }
    }

    fn get(&mut self, k: &K) -> Option<V> {
        let stamp = self.touch(*k);
        let got = match self.map.get_mut(k) {
            Some((entry, s)) => {
                *s = stamp;
                Some(entry.clone())
            }
            None => None,
        };
        self.maybe_compact();
        got
    }

    fn insert(&mut self, k: K, entry: V, cap: usize) {
        let stamp = self.touch(k);
        self.map.insert(k, (entry, stamp));
        while self.map.len() > cap {
            let (victim, s) = self.queue.pop_front().expect("queue covers every entry");
            if self.map.get(&victim).is_some_and(|&(_, live)| live == s) {
                self.map.remove(&victim);
                EVICTIONS.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.maybe_compact();
    }
}

static CACHE: OnceLock<Mutex<LruCache<CacheKey, CacheEntry>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static EVICTIONS: AtomicU64 = AtomicU64::new(0);
/// Capacity override; `usize::MAX` means "unset, read the environment".
static CAP: AtomicUsize = AtomicUsize::new(usize::MAX);

fn cache() -> &'static Mutex<LruCache<CacheKey, CacheEntry>> {
    CACHE.get_or_init(|| Mutex::new(LruCache::new()))
}

/// The active capacity cap: a [`set_sim_cache_cap`] override if present,
/// else `IGO_SIM_CACHE_CAP` from the environment, else
/// [`DEFAULT_CACHE_CAP`].
pub fn sim_cache_cap() -> usize {
    match CAP.load(Ordering::Relaxed) {
        usize::MAX => std::env::var(CACHE_CAP_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&cap| cap > 0)
            .unwrap_or(DEFAULT_CACHE_CAP),
        cap => cap,
    }
}

/// Override the memo-cache capacity (entries) for this process,
/// taking precedence over `IGO_SIM_CACHE_CAP`. The cap applies to future
/// insertions; it does not shrink the cache retroactively.
///
/// # Panics
///
/// Panics if `cap` is 0 (a cap of zero would make every lookup miss while
/// still paying the insertion cost; disable memoization via
/// [`crate::SimOptions::memoize`] instead).
pub fn set_sim_cache_cap(cap: usize) {
    assert!(cap > 0, "cache cap must be positive");
    CAP.store(cap, Ordering::Relaxed);
}

fn key(gemm: GemmShape, density: f64, config: &NpuConfig, pass: PassKey) -> CacheKey {
    CacheKey {
        gemm,
        density_bits: density.to_bits(),
        config: ConfigFingerprint::of(config),
        pass,
    }
}

fn lookup(k: &CacheKey) -> Option<CacheEntry> {
    let got = cache().lock().unwrap().get(k);
    match got {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    got
}

fn insert(k: CacheKey, entry: CacheEntry) {
    // Concurrent workers may race on the same key; both compute the same
    // deterministic value, so last-write-wins is harmless.
    let cap = sim_cache_cap();
    cache().lock().unwrap().insert(k, entry, cap);
}

pub(crate) fn get_forward(gemm: GemmShape, density: f64, config: &NpuConfig) -> Option<SimReport> {
    lookup(&key(gemm, density, config, PassKey::Forward)).map(|(r, _)| r)
}

pub(crate) fn put_forward(gemm: GemmShape, density: f64, config: &NpuConfig, report: SimReport) {
    insert(key(gemm, density, config, PassKey::Forward), (report, None));
}

pub(crate) fn get_backward(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
) -> Option<(SimReport, LayerDecision)> {
    let pass = PassKey::Backward {
        technique,
        is_first,
    };
    lookup(&key(gemm, density, config, pass))
        .map(|(r, d)| (r, d.expect("backward entries carry a decision")))
}

pub(crate) fn put_backward(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
    report: SimReport,
    decision: LayerDecision,
) {
    let pass = PassKey::Backward {
        technique,
        is_first,
    };
    insert(key(gemm, density, config, pass), (report, Some(decision)));
}

/// Which schedule a capacity profile describes. Unlike [`PassKey`], a
/// backward entry pins one *candidate schedule* — not a technique, whose
/// winning candidate may change with SPM capacity — because a profile
/// curve must describe a single access stream across every capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ProfilePass {
    /// The forward nest.
    Forward,
    /// One single-builder backward emission.
    Plain {
        order: BackwardOrder,
        is_first: bool,
    },
    /// One sequential-partition backward emission (all sub-GEMMs).
    Partition {
        scheme: PartitionScheme,
        parts: u64,
        order: BackwardOrder,
        is_first: bool,
    },
}

/// Key of the capacity-oblivious profile cache: the config fingerprint has
/// its SPM field zeroed, so one entry serves the entire SPM ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProfileKey {
    gemm: GemmShape,
    density_bits: u64,
    config: ConfigFingerprint,
    pass: ProfilePass,
}

/// Exact replay results of one schedule at sampled SPM capacities,
/// ascending in `spm_bytes`. Reports are the *raw* replay outputs — for
/// partition candidates the reduction cost is added back by the caller.
pub(crate) type ProfileCurve = Vec<(u64, SimReport)>;

static PROFILE: OnceLock<Mutex<LruCache<ProfileKey, ProfileCurve>>> = OnceLock::new();

fn profile_cache() -> &'static Mutex<LruCache<ProfileKey, ProfileCurve>> {
    PROFILE.get_or_init(|| Mutex::new(LruCache::new()))
}

fn profile_key(gemm: GemmShape, density: f64, config: &NpuConfig, pass: ProfilePass) -> ProfileKey {
    ProfileKey {
        gemm,
        density_bits: density.to_bits(),
        config: ConfigFingerprint::sans_spm(config),
        pass,
    }
}

/// The profiled capacity curve of one schedule, if any rung of it has been
/// replayed before. Hits and misses count into the shared cache counters.
pub(crate) fn get_profile(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    pass: ProfilePass,
) -> Option<ProfileCurve> {
    let got = profile_cache()
        .lock()
        .unwrap()
        .get(&profile_key(gemm, density, config, pass));
    match got {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    got
}

/// Merge freshly replayed `(spm_bytes, report)` points into the profile
/// curve of one schedule. Existing points win ties (both sides are outputs
/// of the same deterministic replay, so the values are identical anyway).
pub(crate) fn put_profile(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    pass: ProfilePass,
    points: &[(u64, SimReport)],
) {
    if points.is_empty() {
        return;
    }
    let k = profile_key(gemm, density, config, pass);
    let cap = sim_cache_cap();
    let mut cache = profile_cache().lock().unwrap();
    let mut curve = cache
        .map
        .get(&k)
        .map(|(v, _)| v.clone())
        .unwrap_or_default();
    for &(spm, report) in points {
        if let Err(i) = curve.binary_search_by_key(&spm, |&(s, _)| s) {
            curve.insert(i, (spm, report));
        }
    }
    cache.insert(k, curve, cap);
}

/// Number of schedules with a memoized capacity profile.
pub fn sim_profile_cache_len() -> usize {
    profile_cache().lock().unwrap().map.len()
}

/// Hit/miss/eviction counters of the layer memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Layer simulations served from the cache.
    pub hits: u64,
    /// Layer simulations that had to run.
    pub misses: u64,
    /// Entries dropped by the LRU capacity cap.
    pub evictions: u64,
}

/// Process-wide cache counters so far. Monotonic; sample before and after a
/// workload to attribute lookups (the `--timing` flag does exactly that).
pub fn sim_cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        evictions: EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Number of distinct layer results currently memoized.
pub fn sim_cache_len() -> usize {
    cache().lock().unwrap().map.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_spm_size_only() {
        let a = NpuConfig::large_single_core();
        let b = a.clone().with_spm_bytes(a.spm_bytes / 2);
        assert_ne!(
            ConfigFingerprint::of(&a),
            ConfigFingerprint::of(&b),
            "SPM-only difference must change the key"
        );
    }

    #[test]
    fn fingerprint_distinguishes_bandwidth_only() {
        let a = NpuConfig::large_single_core();
        let b = a.clone().with_bandwidth_scale(0.5);
        assert_ne!(
            ConfigFingerprint::of(&a),
            ConfigFingerprint::of(&b),
            "bandwidth-only difference must change the key"
        );
    }

    #[test]
    fn fingerprint_ignores_name_and_batch() {
        let a = NpuConfig::large_single_core();
        let mut b = a.clone().with_batch_per_core(32);
        b.name = "renamed".to_owned();
        assert_eq!(
            ConfigFingerprint::of(&a),
            ConfigFingerprint::of(&b),
            "labels and batch (already in the GEMM's M) are not keys"
        );
    }

    fn key_for(m: u64) -> CacheKey {
        key(
            GemmShape::new(m, 3, 5),
            1.0,
            &NpuConfig::small_edge(),
            PassKey::Forward,
        )
    }

    fn entry_for(cycles: u64) -> CacheEntry {
        (
            SimReport {
                cycles,
                ..Default::default()
            },
            None,
        )
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let mut lru = LruCache::new();
        let evicted_before = EVICTIONS.load(Ordering::Relaxed);
        for m in 1..=4 {
            lru.insert(key_for(m), entry_for(m), 4);
        }
        // Touch the oldest entry, then overflow: the untouched next-oldest
        // (m=2) must be the victim, not the refreshed m=1.
        assert!(lru.get(&key_for(1)).is_some());
        lru.insert(key_for(5), entry_for(5), 4);
        assert_eq!(lru.map.len(), 4, "cap must hold");
        assert!(lru.get(&key_for(2)).is_none(), "LRU entry evicted");
        assert!(lru.get(&key_for(1)).is_some(), "refreshed entry survives");
        assert!(lru.get(&key_for(5)).is_some(), "newest entry survives");
        assert!(
            EVICTIONS.load(Ordering::Relaxed) > evicted_before,
            "evictions must be counted"
        );
    }

    #[test]
    fn lru_queue_stays_bounded_under_repeated_touches() {
        let mut lru = LruCache::new();
        for m in 1..=8 {
            lru.insert(key_for(m), entry_for(m), 8);
        }
        for _ in 0..10_000 {
            assert!(lru.get(&key_for(3)).is_some());
        }
        assert!(
            lru.queue.len() <= (2 * lru.map.len()).max(64) + 1,
            "lazy queue must be compacted, got {} slots",
            lru.queue.len()
        );
    }

    #[test]
    fn cache_cap_override_takes_precedence() {
        // A deliberately large override so concurrently running tests that
        // rely on memoization never see evictions from this one.
        set_sim_cache_cap(9_999_999);
        assert_eq!(sim_cache_cap(), 9_999_999);
    }

    #[test]
    fn profile_cache_merges_points_and_ignores_spm() {
        // A deliberately unique shape so no other test collides.
        let gemm = GemmShape::new(7873, 7867, 7853);
        let config = NpuConfig::small_edge();
        let shrunk = config.clone().with_spm_bytes(config.spm_bytes / 2);
        let pass = ProfilePass::Plain {
            order: BackwardOrder::Interleaved,
            is_first: false,
        };
        assert_eq!(get_profile(gemm, 1.0, &config, pass), None);
        let rep = |cycles| SimReport {
            cycles,
            ..Default::default()
        };
        put_profile(
            gemm,
            1.0,
            &config,
            pass,
            &[(4096, rep(40)), (1024, rep(10))],
        );
        // A second put through a *different SPM size* merges into the same
        // curve: the key is capacity-oblivious.
        put_profile(
            gemm,
            1.0,
            &shrunk,
            pass,
            &[(2048, rep(20)), (1024, rep(99))],
        );
        let curve = get_profile(gemm, 1.0, &shrunk, pass).expect("curve cached");
        assert_eq!(
            curve
                .iter()
                .map(|&(s, r)| (s, r.cycles))
                .collect::<Vec<_>>(),
            vec![(1024, 10), (2048, 20), (4096, 40)],
            "points sorted ascending, first write wins ties"
        );
        assert_eq!(
            get_profile(
                gemm,
                1.0,
                &config,
                ProfilePass::Plain {
                    order: BackwardOrder::Interleaved,
                    is_first: true,
                },
            ),
            None,
            "pass position is keyed"
        );
    }

    #[test]
    fn cache_round_trips_a_forward_entry() {
        // A deliberately unique shape so no other test collides.
        let gemm = GemmShape::new(7919, 7907, 7901);
        let config = NpuConfig::small_edge();
        assert_eq!(get_forward(gemm, 0.123, &config), None);
        let report = SimReport {
            cycles: 42,
            ..Default::default()
        };
        put_forward(gemm, 0.123, &config, report);
        assert_eq!(get_forward(gemm, 0.123, &config), Some(report));
        assert_eq!(get_forward(gemm, 0.124, &config), None, "density is keyed");
    }
}
