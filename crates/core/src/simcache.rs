//! Process-wide memoization of layer simulations.
//!
//! The experiment harnesses simulate the same layer shapes over and over:
//! a technique ladder re-simulates every layer's forward pass once per
//! technique, zoo models share layer shapes, and sweeps revisit entire
//! models. Under this machine model a layer simulation is a pure function
//! of `(GEMM shape, ifmap density, hardware config, technique, position)`,
//! so the pipeline caches results across [`crate::simulate_model`] calls.
//!
//! The key deliberately excludes the config's *name* (a label) and
//! *batch-per-core* (already folded into the GEMM's M dimension by model
//! construction) but includes every field the engine reads: core count, PE
//! array, clock, SPM capacity, DRAM bandwidth and burst latency. Densities
//! and clocks are `f64`s and are keyed by their bit patterns.

use crate::pipeline::LayerDecision;
use crate::technique::Technique;
use igo_npu_sim::{NpuConfig, SimReport};
use igo_tensor::GemmShape;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The simulation-relevant fields of an [`NpuConfig`], bit-exact and
/// hashable. Two configs with equal fingerprints produce identical layer
/// simulations; configs differing in any engine-visible field — SPM size,
/// bandwidth, PE array, clock, cores, burst latency — never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigFingerprint {
    cores: u32,
    pe_rows: u32,
    pe_cols: u32,
    freq_bits: u64,
    spm_bytes: u64,
    bandwidth_bits: u64,
    burst_latency: u64,
}

impl ConfigFingerprint {
    /// Fingerprint `config`.
    pub fn of(config: &NpuConfig) -> Self {
        Self {
            cores: config.cores,
            pe_rows: config.pe.rows,
            pe_cols: config.pe.cols,
            freq_bits: config.freq_hz.to_bits(),
            spm_bytes: config.spm_bytes,
            bandwidth_bits: config.dram.bandwidth_bytes_per_sec.to_bits(),
            burst_latency: config.dram.burst_latency_cycles,
        }
    }
}

/// Which simulation of a layer the entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PassKey {
    Forward,
    Backward {
        technique: Technique,
        is_first: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    gemm: GemmShape,
    density_bits: u64,
    config: ConfigFingerprint,
    pass: PassKey,
}

/// A memoized layer result (`decision` is `None` for forward passes).
type CacheEntry = (SimReport, Option<LayerDecision>);

static CACHE: OnceLock<Mutex<HashMap<CacheKey, CacheEntry>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cache() -> &'static Mutex<HashMap<CacheKey, CacheEntry>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn key(gemm: GemmShape, density: f64, config: &NpuConfig, pass: PassKey) -> CacheKey {
    CacheKey {
        gemm,
        density_bits: density.to_bits(),
        config: ConfigFingerprint::of(config),
        pass,
    }
}

fn lookup(k: &CacheKey) -> Option<CacheEntry> {
    let got = cache().lock().unwrap().get(k).copied();
    match got {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    got
}

fn insert(k: CacheKey, entry: CacheEntry) {
    // Concurrent workers may race on the same key; both compute the same
    // deterministic value, so last-write-wins is harmless.
    cache().lock().unwrap().insert(k, entry);
}

pub(crate) fn get_forward(gemm: GemmShape, density: f64, config: &NpuConfig) -> Option<SimReport> {
    lookup(&key(gemm, density, config, PassKey::Forward)).map(|(r, _)| r)
}

pub(crate) fn put_forward(gemm: GemmShape, density: f64, config: &NpuConfig, report: SimReport) {
    insert(key(gemm, density, config, PassKey::Forward), (report, None));
}

pub(crate) fn get_backward(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
) -> Option<(SimReport, LayerDecision)> {
    let pass = PassKey::Backward {
        technique,
        is_first,
    };
    lookup(&key(gemm, density, config, pass))
        .map(|(r, d)| (r, d.expect("backward entries carry a decision")))
}

pub(crate) fn put_backward(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
    report: SimReport,
    decision: LayerDecision,
) {
    let pass = PassKey::Backward {
        technique,
        is_first,
    };
    insert(key(gemm, density, config, pass), (report, Some(decision)));
}

/// Hit/miss counters of the layer memo cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Layer simulations served from the cache.
    pub hits: u64,
    /// Layer simulations that had to run.
    pub misses: u64,
}

/// Process-wide cache counters so far. Monotonic; sample before and after a
/// workload to attribute lookups (the `--timing` flag does exactly that).
pub fn sim_cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Number of distinct layer results currently memoized.
pub fn sim_cache_len() -> usize {
    cache().lock().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_spm_size_only() {
        let a = NpuConfig::large_single_core();
        let b = a.clone().with_spm_bytes(a.spm_bytes / 2);
        assert_ne!(
            ConfigFingerprint::of(&a),
            ConfigFingerprint::of(&b),
            "SPM-only difference must change the key"
        );
    }

    #[test]
    fn fingerprint_distinguishes_bandwidth_only() {
        let a = NpuConfig::large_single_core();
        let b = a.clone().with_bandwidth_scale(0.5);
        assert_ne!(
            ConfigFingerprint::of(&a),
            ConfigFingerprint::of(&b),
            "bandwidth-only difference must change the key"
        );
    }

    #[test]
    fn fingerprint_ignores_name_and_batch() {
        let a = NpuConfig::large_single_core();
        let mut b = a.clone().with_batch_per_core(32);
        b.name = "renamed".to_owned();
        assert_eq!(
            ConfigFingerprint::of(&a),
            ConfigFingerprint::of(&b),
            "labels and batch (already in the GEMM's M) are not keys"
        );
    }

    #[test]
    fn cache_round_trips_a_forward_entry() {
        // A deliberately unique shape so no other test collides.
        let gemm = GemmShape::new(7919, 7907, 7901);
        let config = NpuConfig::small_edge();
        assert_eq!(get_forward(gemm, 0.123, &config), None);
        let report = SimReport {
            cycles: 42,
            ..Default::default()
        };
        put_forward(gemm, 0.123, &config, report);
        assert_eq!(get_forward(gemm, 0.123, &config), Some(report));
        assert_eq!(get_forward(gemm, 0.124, &config), None, "density is keyed");
    }
}
