//! Differential fuzz-audit: seeded random layer/config/technique cases
//! cross-checked against independent recomputations of the simulator's
//! own guarantees.
//!
//! Each audited case exercises the full scheduling pipeline twice — once
//! under the case's [`SimOptions`] and once under the plain
//! [`SimOptions::sequential`] reference — and then re-derives, from
//! nothing but the public machine model, every conservation property the
//! engine claims:
//!
//! * **Differential**: the optimized pipeline (worker pool, memo cache,
//!   lower-bound pruning, in any combination) must produce bit-identical
//!   reports *and* identical scheduler decisions to the sequential path.
//! * **Accounting**: replaying the decided schedule against a fresh
//!   [`OptCache`] shadow model must reproduce the engine's hits, misses
//!   and per-class DRAM traffic exactly; `hits + misses` must equal the
//!   number of tile accesses; SPM residency may never exceed capacity;
//!   every spilled-accumulator re-fetch must be preceded by a write-back
//!   of that tile; and total DRAM traffic must equal the sum of fetched,
//!   written-back and streamed bytes.
//! * **Merge legality**: the fused backward stream must contain each
//!   `dX`/`dW` tile operation exactly once, with mutually consistent
//!   operand coordinates.
//! * **Algorithm 1**: the pipeline's rearrangement decision must match an
//!   independent recomputation of the paper's selection rule from the
//!   tensor dimensions alone.
//! * **Stack distance** (single-core cases): one capacity-oblivious
//!   ladder pass over a randomly drawn SPM ladder must reproduce the solo
//!   per-capacity replay bit for bit — report, accept/reject decision
//!   under cycle cutoffs, and the cycle engine itself at every rung —
//!   while the derived [`CapacityProfile`] stays exact on rungs and
//!   admissible off them.
//! * **Numeric** (small dense cases): executing the decided schedule on
//!   real tile data must reproduce the `dX = dY·Wᵀ`, `dW = Xᵀ·dY`
//!   reference within tolerance.
//!
//! Cases are generated from a [`SplitMix64`] stream, so every failure is
//! reproducible from its printed seed: `igo-sim audit --seed S --seeds 1`
//! re-runs exactly the failing case.

use crate::bound::backward_emission_bound;
use crate::exec::{execute_backward, max_abs_diff, DenseLayer};
use crate::partition::{partition_backward_ex, PartitionScheme};
use crate::pipeline::{
    rearranged_order, simulate_layer_backward_with, simulate_layer_forward_with, LayerDecision,
    SimOptions,
};
use crate::schedule::{BackwardBuilder, BackwardOrder, LayerTensors};
use crate::select::ALMOST_SQUARE_THRESHOLD;
use crate::technique::Technique;
use crate::tiling::TilePolicy;
use igo_npu_sim::{
    replay_ladder, run_multicore, run_sequential_partitions, AccessKind, AnalyticCollector,
    AnalyticReport, AnalyticScratch, CapacityProfile, DramConfig, Engine, EngineScratch, EventLog,
    Exactness, LadderScratch, NpuConfig, OptCache, PeArray, Schedule, ScheduleOp, SimReport,
    TileKey, TraceEvent, Traffic,
};
use igo_tensor::{GemmShape, SplitMix64, TensorClass, TileCoord};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// One generated fuzz case: a layer shape, an NPU, a technique and a set
/// of pipeline execution options, all derived deterministically from
/// `seed`.
#[derive(Debug, Clone)]
pub struct AuditCase {
    /// The generating seed (the reproducer handle).
    pub seed: u64,
    /// Forward GEMM shape of the audited layer.
    pub gemm: GemmShape,
    /// Ifmap density (im2col raw-layout scaling), in `(0, 1]`.
    pub density: f64,
    /// The NPU the case runs on.
    pub config: NpuConfig,
    /// The technique under audit.
    pub technique: Technique,
    /// Whether the layer is a first layer (no `dX` pass).
    pub is_first: bool,
    /// The optimized-path execution options to diff against the
    /// sequential reference.
    pub options: SimOptions,
}

const TECHNIQUES: [Technique; 6] = [
    Technique::Baseline,
    Technique::IdealDyReuse,
    Technique::Interleaving,
    Technique::Rearrangement,
    Technique::RearrangementOracle,
    Technique::DataPartitioning,
];

impl AuditCase {
    /// Generate the case for `seed`. Deterministic: the same seed always
    /// yields the same case, on every platform.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let pe_side = [8u32, 16, 32, 45, 64, 128][rng.index(6)];
        let cores: u32 = match rng.range_u64(0, 8) {
            0 => 2,
            1 => 4,
            _ => 1,
        };
        let tile_bytes = pe_side as u64 * pe_side as u64 * 4;
        // Small residencies (4..48 tiles) force evictions, spills and
        // bypasses; `residency_bytes_per_core` is `spm / cores / 2`.
        let cap_tiles = rng.range_u64(4, 49);
        let spm_bytes = cap_tiles * tile_bytes * 2 * cores as u64;
        let config = NpuConfig {
            name: format!("audit-{pe_side}x{pe_side}-{cores}c"),
            cores,
            pe: PeArray::new(pe_side, pe_side),
            freq_hz: 1.0e9,
            spm_bytes,
            dram: DramConfig {
                bandwidth_bytes_per_sec: rng.range_u64(2, 201) as f64 * 1.0e9,
                burst_latency_cycles: rng.range_u64(0, 41),
            },
            batch_per_core: 1,
        };
        // Dimensions in (0, 6] tiles with ragged edges, so tile grids stay
        // non-trivial while each engine run remains cheap.
        let t = pe_side as u64;
        let dim = |rng: &mut SplitMix64| {
            let tiles = rng.range_u64(1, 7);
            rng.range_u64((tiles - 1) * t + 1, tiles * t + 1)
        };
        let gemm = GemmShape::new(dim(&mut rng), dim(&mut rng), dim(&mut rng));
        let density = if rng.range_u64(0, 2) == 0 {
            1.0
        } else {
            rng.range_u64(5, 101) as f64 / 100.0
        };
        let technique = TECHNIQUES[rng.index(TECHNIQUES.len())];
        let is_first = rng.range_u64(0, 8) == 0;
        let options = SimOptions {
            parallel: rng.range_u64(0, 2) == 1,
            memoize: rng.range_u64(0, 2) == 1,
            prune: rng.range_u64(0, 2) == 1,
            workers: rng.range_u64(0, 4) as usize,
            analytic_fast_path: rng.range_u64(0, 2) == 1,
            // Drawn last so every earlier field matches pre-profile seeds.
            capacity_profile: rng.range_u64(0, 2) == 1,
        };
        Self {
            seed,
            gemm,
            density,
            config,
            technique,
            is_first,
            options,
        }
    }
}

/// One invariant violation found by the audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Seed of the case that exposed the violation (rerun with
    /// `igo-sim audit --seed <seed> --seeds 1`).
    pub seed: u64,
    /// Which check failed (stable machine-readable name).
    pub check: &'static str,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// Aggregate result of an audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditSummary {
    /// Cases generated and audited.
    pub cases: u64,
    /// Individual checks performed across all cases.
    pub checks: u64,
    /// All violations found (empty on a clean run).
    pub violations: Vec<Violation>,
}

impl AuditSummary {
    /// Whether the audit found no violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The distinct failing seeds, sorted — each reproduces its case via
    /// `igo-sim audit --seed <seed> --seeds 1`.
    pub fn reproducer_seeds(&self) -> Vec<u64> {
        let mut seeds: Vec<u64> = self.violations.iter().map(|v| v.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds
    }

    /// The summary as a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"cases\": {},\n  \"checks\": {},\n  \"violations\": {},\n  \"passed\": {},\n  \"reproducer_seeds\": [",
            self.cases,
            self.checks,
            self.violations.len(),
            self.passed()
        );
        for (i, seed) in self.reproducer_seeds().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{seed}");
        }
        out.push_str("],\n  \"failures\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"seed\": {}, \"check\": \"{}\", \"detail\": \"{}\"}}",
                v.seed,
                json_escape(v.check),
                json_escape(&v.detail)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Audit `seeds` consecutive cases starting at `base_seed` (case `i` uses
/// seed `base_seed + i`, so any failing seed reruns standalone).
pub fn run_audit(seeds: u64, base_seed: u64) -> AuditSummary {
    let mut summary = AuditSummary::default();
    for i in 0..seeds {
        let case = AuditCase::from_seed(base_seed.wrapping_add(i));
        let (violations, checks) = audit_case(&case);
        summary.cases += 1;
        summary.checks += checks;
        summary.violations.extend(violations);
    }
    summary
}

/// Run every check on one case. Returns the violations found and the
/// number of checks performed.
pub fn audit_case(case: &AuditCase) -> (Vec<Violation>, u64) {
    let mut violations = Vec::new();
    let mut checks = 0u64;
    let sequential = SimOptions::sequential();

    // Differential: forward pass.
    checks += 1;
    let fwd_opt = simulate_layer_forward_with(case.gemm, case.density, &case.config, &case.options);
    let fwd_ref = simulate_layer_forward_with(case.gemm, case.density, &case.config, &sequential);
    if fwd_opt != fwd_ref {
        violations.push(Violation {
            seed: case.seed,
            check: "forward-differential",
            detail: format!("optimized {fwd_opt:?} != sequential {fwd_ref:?}"),
        });
    }

    // Differential: backward pass report and scheduler decision.
    let (opt_report, opt_decision) = simulate_layer_backward_with(
        case.gemm,
        case.density,
        &case.config,
        case.technique,
        case.is_first,
        &case.options,
    );
    let (ref_report, ref_decision) = simulate_layer_backward_with(
        case.gemm,
        case.density,
        &case.config,
        case.technique,
        case.is_first,
        &sequential,
    );
    checks += 1;
    if opt_report != ref_report {
        violations.push(Violation {
            seed: case.seed,
            check: "backward-differential",
            detail: format!("optimized {opt_report:?} != sequential {ref_report:?}"),
        });
    }
    checks += 1;
    if opt_decision != ref_decision {
        violations.push(Violation {
            seed: case.seed,
            check: "decision-differential",
            detail: format!("optimized {opt_decision:?} != sequential {ref_decision:?}"),
        });
    }

    // Algorithm 1: the rearrangement decision must match an independent
    // recomputation of the paper's rule from the tensor dimensions.
    if case.technique == Technique::Rearrangement {
        checks += 1;
        let spec = spec_algorithm1(case.gemm, &case.config);
        let hook = rearranged_order(case.gemm, &case.config);
        if hook != spec || ref_decision.order != spec {
            violations.push(Violation {
                seed: case.seed,
                check: "algorithm1-spec",
                detail: format!(
                    "spec {spec:?}, pipeline hook {hook:?}, decision {:?} for {:?} on {} cores",
                    ref_decision.order, case.gemm, case.config.cores
                ),
            });
        }
    }

    // Merge legality of the decided order's fused emission.
    checks += 1;
    violations.extend(check_merge_emission(case, ref_decision.order));

    // Analytic engine: the collector replay must be bit-identical to the
    // cycle engine (the `Exact` tier), the closed-form emission bound must
    // be admissible field by field (the `LowerBound` tier), and the
    // schedule-level pruning bound must never exceed the simulated cycles.
    checks += 1;
    violations.extend(check_analytic(case, ref_decision.order));

    // Stack-distance profiler: one capacity-oblivious ladder pass must
    // agree with solo per-capacity replays (and the engine) at every rung
    // of a randomly drawn SPM ladder. Single-core only: the ladder models
    // one residency domain.
    if case.config.cores == 1 {
        checks += 1;
        violations.extend(check_capacity_profile(case, ref_decision.order));
    }

    // Conservation: rebuild the decided execution, re-run it through the
    // public machine model, and shadow-replay every schedule.
    checks += 1;
    violations.extend(check_decision_conservation(
        case,
        &ref_decision,
        &ref_report,
    ));

    // Numeric ground truth for small dense single-core unpartitioned
    // cases (the dense reference is O(M·K·N)).
    let macs = case.gemm.m() * case.gemm.k() * case.gemm.n();
    if case.config.cores == 1
        && ref_decision.partition.is_none()
        && case.density == 1.0
        && macs <= 150_000
    {
        checks += 1;
        violations.extend(check_numeric(case, ref_decision.order));
    }

    (violations, checks)
}

/// Independent recomputation of Algorithm 1 (§4.3): written directly from
/// the paper's rule, without going through [`GemmShape::is_almost_square`]
/// or [`crate::select::select_order`].
fn spec_algorithm1(gemm: GemmShape, config: &NpuConfig) -> BackwardOrder {
    // Multi-core decisions are taken on the per-core sub-GEMM of the
    // conventional batch split: the M extent of the first (largest) piece
    // of an M split into `cores` parts.
    let m = if config.cores == 1 {
        gemm.m()
    } else {
        gemm.m().div_ceil(config.cores as u64)
    };
    let (k, n) = (gemm.k(), gemm.n());
    let max = m.max(k).max(n);
    let min = m.min(k).min(n);
    if (max as f64) < ALMOST_SQUARE_THRESHOLD * (min as f64) {
        BackwardOrder::Interleaved
    } else if k > n && k > m {
        BackwardOrder::DwMajor
    } else {
        BackwardOrder::DxMajor
    }
}

/// Cross-check the analytic engine against the cycle engine on the
/// decided order's unpartitioned emission:
///
/// * the [`AnalyticCollector`] replay must be tagged [`Exactness::Exact`]
///   and reproduce [`Engine::run`]'s [`SimReport`] bit for bit (including
///   the float-derived cycle counts);
/// * [`Engine::lower_bound`] (the pruning bound) must not exceed the
///   simulated cycles;
/// * the closed-form [`backward_emission_bound`] must be admissible field
///   by field: compute cycles, op/MAC counts and SPM bytes exact; cycles,
///   memory cycles, misses and per-class traffic never above the engine's;
///   hits never below.
fn check_analytic(case: &AuditCase, order: BackwardOrder) -> Vec<Violation> {
    let mut violations = Vec::new();
    let fail = |check: &'static str, detail: String| Violation {
        seed: case.seed,
        check,
        detail,
    };
    let policy = TilePolicy::for_config(&case.config);
    let mut proto = Schedule::new("audit");
    let tensors = LayerTensors::register(&mut proto, "l");
    let builder = BackwardBuilder::new(case.gemm, policy, tensors).with_ifmap_density(case.density);
    let mut s = proto.fork("audit-analytic");
    builder.emit(order, case.is_first, &mut s);
    let engine = Engine::new(&case.config);
    let report = engine.run(&s);

    let mut collector = AnalyticCollector::new();
    builder.register_grids(&mut collector);
    builder.emit(order, case.is_first, &mut collector);
    let replayed = collector.replay(&engine, &mut AnalyticScratch::new());
    if replayed.exactness != Exactness::Exact {
        violations.push(fail(
            "analytic-exactness",
            format!("replay tagged {:?}, expected Exact", replayed.exactness),
        ));
    }
    if replayed.report != report {
        violations.push(fail(
            "analytic-replay",
            format!("replay {:?} != engine {report:?}", replayed.report),
        ));
    }

    if engine.lower_bound(&s) > report.cycles {
        violations.push(fail(
            "lower-bound-admissible",
            format!(
                "Engine::lower_bound {} exceeds simulated cycles {}",
                engine.lower_bound(&s),
                report.cycles
            ),
        ));
    }

    let bound = backward_emission_bound(&builder, order, case.is_first, &engine)
        .finish(&engine)
        .report;
    let exact = [
        (
            "compute_cycles",
            bound.compute_cycles,
            report.compute_cycles,
        ),
        ("gemm_ops", bound.gemm_ops, report.gemm_ops),
        ("macs", bound.macs, report.macs),
        (
            "spm_bytes_touched",
            bound.spm_bytes_touched,
            report.spm_bytes_touched,
        ),
    ];
    for (name, got, want) in exact {
        if got != want {
            violations.push(fail(
                "analytic-bound-exact-field",
                format!("bound {name} {got} != engine {want}"),
            ));
        }
    }
    let mut at_most = vec![
        ("cycles", bound.cycles, report.cycles),
        ("mem_cycles", bound.mem_cycles, report.mem_cycles),
        ("spm_misses", bound.spm_misses, report.spm_misses),
    ];
    for class in TensorClass::ALL {
        at_most.push((
            class.label(),
            bound.traffic.read(class),
            report.traffic.read(class),
        ));
        at_most.push((
            class.label(),
            bound.traffic.write(class),
            report.traffic.write(class),
        ));
    }
    for (name, got, limit) in at_most {
        if got > limit {
            violations.push(fail(
                "analytic-bound-admissible",
                format!("bound {name} {got} exceeds engine {limit}"),
            ));
        }
    }
    if bound.spm_hits < report.spm_hits {
        violations.push(fail(
            "analytic-bound-admissible",
            format!(
                "bound hits {} below engine hits {}",
                bound.spm_hits, report.spm_hits
            ),
        ));
    }
    violations
}

/// Salt for the ladder-drawing rng: the check derives its randomness from
/// `seed ^ LADDER_SALT` so adding the check never perturbs the case
/// generation stream itself.
const LADDER_SALT: u64 = 0x57ac_d157_a9ce_0e1d;

/// Cross-check the capacity-oblivious stack-distance profiler against the
/// per-capacity analytic replay and the cycle engine on the decided
/// order's unpartitioned emission.
///
/// A derived rng draws a small SPM ladder around the case's own residency
/// (always including it). Then:
///
/// * [`replay_ladder`] with no cutoffs must reproduce a solo
///   [`AnalyticCollector::replay_bounded`] at every rung bit for bit, and
///   both must match [`Engine::run`] on the materialised schedule;
/// * with per-rung cycle cutoffs drawn at and just below each rung's true
///   cycle count, the ladder must return exactly what the solo replay
///   returns — same accept/reject decision, bit-identical report when
///   accepted;
/// * [`CapacityProfile::query`] must answer profiled rungs exactly
///   ([`Exactness::Exact`]) and answer an off-rung capacity with the
///   compulsory floor ([`Exactness::LowerBound`]) that is admissible
///   against a solo replay at that capacity: exact in compute cycles,
///   op/MAC counts and SPM bytes touched; never above it in cycles,
///   memory cycles, misses or per-class traffic; never below it in hits.
fn check_capacity_profile(case: &AuditCase, order: BackwardOrder) -> Vec<Violation> {
    let mut violations = Vec::new();
    let fail = |check: &'static str, detail: String| Violation {
        seed: case.seed,
        check,
        detail,
    };
    let policy = TilePolicy::for_config(&case.config);
    let mut proto = Schedule::new("audit");
    let tensors = LayerTensors::register(&mut proto, "l");
    let builder = BackwardBuilder::new(case.gemm, policy, tensors).with_ifmap_density(case.density);
    let mut s = proto.fork("audit-profile");
    builder.emit(order, case.is_first, &mut s);
    let mut collector = AnalyticCollector::new();
    builder.register_grids(&mut collector);
    builder.emit(order, case.is_first, &mut collector);

    let mut rng = SplitMix64::new(case.seed ^ LADDER_SALT);
    let machine = Engine::new(&case.config);
    let base = machine.residency_bytes();
    // 2..=4 distinct rungs, 25%..400% of the case's own residency, which
    // is always a rung itself so the engine cross-check hits the exact
    // capacity the rest of the audit exercises.
    let mut caps = vec![base];
    for _ in 0..rng.range_u64(1, 4) {
        caps.push((base.saturating_mul(rng.range_u64(25, 401)) / 100).max(1));
    }
    caps.sort_unstable();
    caps.dedup();

    // A rung's solo reference: the same collector replayed against an
    // engine whose residency is that rung (`cores == 1`, so residency is
    // `spm / 2`).
    let rung_engine =
        |cap: u64| Engine::new(&case.config.clone().with_spm_bytes(cap.saturating_mul(2)));
    let mut scratch = AnalyticScratch::new();
    let solos: Vec<AnalyticReport> = caps
        .iter()
        .map(|&cap| collector.replay(&rung_engine(cap), &mut scratch))
        .collect();

    let mut ladder_scratch = LadderScratch::new();
    let unbounded = replay_ladder(
        &collector,
        &machine,
        &caps,
        &vec![None; caps.len()],
        &mut ladder_scratch,
    );
    for ((&cap, solo), rung) in caps.iter().zip(&solos).zip(&unbounded) {
        match rung {
            Some(r) if r == solo => {}
            other => violations.push(fail(
                "profile-ladder-differential",
                format!("rung {cap}: ladder {other:?} != solo {solo:?}"),
            )),
        }
        let engine_report = rung_engine(cap).run(&s);
        if solo.report != engine_report {
            violations.push(fail(
                "profile-engine-differential",
                format!(
                    "rung {cap}: solo replay {:?} != engine {engine_report:?}",
                    solo.report
                ),
            ));
        }
    }

    // Cutoff contract: the ladder must make exactly the solo replay's
    // accept/reject decision rung by rung, including at the two boundary
    // cutoffs (the true cycle count, which must accept, and one below it).
    let cutoffs: Vec<Option<u64>> = solos
        .iter()
        .map(|solo| match rng.range_u64(0, 3) {
            0 => None,
            1 => Some(solo.report.cycles),
            _ => Some(solo.report.cycles.saturating_sub(1)),
        })
        .collect();
    let bounded = replay_ladder(&collector, &machine, &caps, &cutoffs, &mut ladder_scratch);
    for ((&cap, &cutoff), rung) in caps.iter().zip(&cutoffs).zip(&bounded) {
        let solo = collector.replay_bounded(&rung_engine(cap), &mut scratch, cutoff);
        if *rung != solo {
            violations.push(fail(
                "profile-cutoff-differential",
                format!("rung {cap} cutoff {cutoff:?}: ladder {rung:?} != solo {solo:?}"),
            ));
        }
    }

    // Profile queries: exact on rungs, admissible floor off them.
    let profile = CapacityProfile::compute(&collector, &machine, &caps, &mut ladder_scratch);
    for (&cap, solo) in caps.iter().zip(&solos) {
        let answer = profile.query(cap);
        if answer != *solo || answer.exactness != Exactness::Exact {
            violations.push(fail(
                "profile-rung-exact",
                format!("rung {cap}: profile {answer:?} != solo {solo:?}"),
            ));
        }
    }
    let mut off = caps.last().unwrap() + 1;
    for _ in 0..8 {
        let draw = (base.saturating_mul(rng.range_u64(10, 501)) / 100).max(1);
        if !caps.contains(&draw) {
            off = draw;
            break;
        }
    }
    let answer = profile.query(off);
    if answer.exactness != Exactness::LowerBound {
        violations.push(fail(
            "profile-floor-tag",
            format!(
                "off-rung {off} tagged {:?}, expected LowerBound",
                answer.exactness
            ),
        ));
    }
    let solo_off = collector.replay(&rung_engine(off), &mut scratch).report;
    let floor = answer.report;
    let exact = [
        (
            "compute_cycles",
            floor.compute_cycles,
            solo_off.compute_cycles,
        ),
        ("gemm_ops", floor.gemm_ops, solo_off.gemm_ops),
        ("macs", floor.macs, solo_off.macs),
        (
            "spm_bytes_touched",
            floor.spm_bytes_touched,
            solo_off.spm_bytes_touched,
        ),
    ];
    for (name, got, want) in exact {
        if got != want {
            violations.push(fail(
                "profile-floor-exact-field",
                format!("off-rung {off}: floor {name} {got} != solo {want}"),
            ));
        }
    }
    let mut at_most = vec![
        ("cycles", floor.cycles, solo_off.cycles),
        ("mem_cycles", floor.mem_cycles, solo_off.mem_cycles),
        ("spm_misses", floor.spm_misses, solo_off.spm_misses),
    ];
    for class in TensorClass::ALL {
        at_most.push((
            class.label(),
            floor.traffic.read(class),
            solo_off.traffic.read(class),
        ));
        at_most.push((
            class.label(),
            floor.traffic.write(class),
            solo_off.traffic.write(class),
        ));
    }
    for (name, got, limit) in at_most {
        if got > limit {
            violations.push(fail(
                "profile-floor-admissible",
                format!("off-rung {off}: floor {name} {got} exceeds solo {limit}"),
            ));
        }
    }
    if floor.spm_hits < solo_off.spm_hits {
        violations.push(fail(
            "profile-floor-admissible",
            format!(
                "off-rung {off}: floor hits {} below solo hits {}",
                floor.spm_hits, solo_off.spm_hits
            ),
        ));
    }
    violations
}

/// Emit the unpartitioned fused stream for `order` and verify it is a
/// legal merge of the `dX` and `dW` tile-op streams.
fn check_merge_emission(case: &AuditCase, order: BackwardOrder) -> Vec<Violation> {
    let policy = TilePolicy::for_config(&case.config);
    let mut proto = Schedule::new("audit");
    let tensors = LayerTensors::register(&mut proto, "l");
    let mut s = proto.fork("audit-merge");
    BackwardBuilder::new(case.gemm, policy, tensors)
        .with_ifmap_density(case.density)
        .emit(order, case.is_first, &mut s);
    check_merge_schedule(
        &s,
        tensors,
        case.gemm,
        policy,
        order,
        case.is_first,
        case.seed,
    )
}

/// Verify that `schedule` is a legal merge of the backward tile-op
/// streams for `gemm`: every expected `dX[i,kk] += dY[i,j]·Wᵀ` and
/// `dW[kk,j] += Xᵀ·dY[i,j]` tile operation appears exactly once (no
/// `dX` ops at all when `is_first`), with mutually consistent operand
/// coordinates, and nothing else appears.
pub fn check_merge_schedule(
    schedule: &Schedule,
    tensors: LayerTensors,
    gemm: GemmShape,
    policy: TilePolicy,
    order: BackwardOrder,
    is_first: bool,
    seed: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let fail = |check: &'static str, detail: String| Violation {
        seed,
        check,
        detail,
    };
    let dy_grid = gemm.dy_grid(policy.tile);
    let dx_grid = gemm.dx_grid(policy.tile);
    let (mt, nt, kt) = (dy_grid.rows(), dy_grid.cols(), dx_grid.cols());
    // (is_dx, i, kk, j) -> occurrences.
    let mut counts: HashMap<(bool, u32, u32, u32), u32> = HashMap::new();
    for op in schedule.ops() {
        let g = match op {
            ScheduleOp::Gemm(g) => g,
            ScheduleOp::Barrier => continue,
            ScheduleOp::Stream(st) => {
                violations.push(fail(
                    "merge-stream-op",
                    format!("fused emission contains stream op {st:?}"),
                ));
                continue;
            }
        };
        let acc = match &g.acc {
            Some(a) => a,
            None => {
                violations.push(fail(
                    "merge-missing-acc",
                    "backward tile op has no accumulator".to_owned(),
                ));
                continue;
            }
        };
        let find_read = |t| g.reads.iter().find(|r| r.key.tensor == t);
        if acc.key.tensor == tensors.dx {
            let (i, kk) = (acc.key.coord.r, acc.key.coord.c);
            let Some(dy) = find_read(tensors.dy) else {
                violations.push(fail(
                    "merge-bad-op",
                    format!("dX op ({i},{kk}) lacks dY read"),
                ));
                continue;
            };
            let j = dy.key.coord.c;
            let w_ok = find_read(tensors.w).is_some_and(|w| w.key.coord == TileCoord::new(kk, j));
            if dy.key.coord.r != i || !w_ok {
                violations.push(fail(
                    "merge-bad-op",
                    format!("dX op ({i},{kk}) has inconsistent operand coordinates"),
                ));
                continue;
            }
            *counts.entry((true, i, kk, j)).or_insert(0) += 1;
        } else if acc.key.tensor == tensors.dw {
            let (kk, j) = (acc.key.coord.r, acc.key.coord.c);
            let Some(x) = find_read(tensors.x) else {
                violations.push(fail(
                    "merge-bad-op",
                    format!("dW op ({kk},{j}) lacks X read"),
                ));
                continue;
            };
            let i = x.key.coord.r;
            let dy_ok = match find_read(tensors.dy) {
                Some(dy) => dy.key.coord == TileCoord::new(i, j),
                // IdealDyReuse elides the dW pass's dY reads by design.
                None => order == BackwardOrder::IdealDyReuse,
            };
            if x.key.coord.c != kk || !dy_ok {
                violations.push(fail(
                    "merge-bad-op",
                    format!("dW op ({kk},{j}) has inconsistent operand coordinates"),
                ));
                continue;
            }
            *counts.entry((false, i, kk, j)).or_insert(0) += 1;
        } else {
            violations.push(fail(
                "merge-bad-op",
                format!("accumulator targets unknown tensor {:?}", acc.key.tensor),
            ));
        }
    }
    let mut expected: u64 = 0;
    for i in 0..mt {
        for kk in 0..kt {
            for j in 0..nt {
                if !is_first {
                    expected += 1;
                    match counts.get(&(true, i, kk, j)).copied().unwrap_or(0) {
                        1 => {}
                        c => violations.push(fail(
                            "merge-multiplicity",
                            format!("dX op ({i},{kk}) via j={j} appears {c} times, expected 1"),
                        )),
                    }
                }
                expected += 1;
                match counts.get(&(false, i, kk, j)).copied().unwrap_or(0) {
                    1 => {}
                    c => violations.push(fail(
                        "merge-multiplicity",
                        format!("dW op ({kk},{j}) via i={i} appears {c} times, expected 1"),
                    )),
                }
            }
        }
    }
    let total: u64 = counts.values().map(|&c| c as u64).sum();
    if total != expected {
        violations.push(fail(
            "merge-multiplicity",
            format!("{total} tile ops emitted, expected {expected}"),
        ));
    }
    violations
}

/// Rebuild the execution the decision describes, re-run it through the
/// public machine model, compare against the pipeline's report, and
/// shadow-replay every constituent schedule.
fn check_decision_conservation(
    case: &AuditCase,
    decision: &LayerDecision,
    report: &SimReport,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let policy = TilePolicy::for_config(&case.config);
    let mut proto = Schedule::new("audit");
    let tensors = LayerTensors::register(&mut proto, "l");

    // The schedules the decision implies, plus the combined report the
    // public execution model assigns to them.
    let (schedules, rebuilt): (Vec<Schedule>, SimReport) = match decision.partition {
        None if case.config.cores == 1 => {
            let mut s = proto.fork("audit-bwd");
            BackwardBuilder::new(case.gemm, policy, tensors)
                .with_ifmap_density(case.density)
                .emit(decision.order, case.is_first, &mut s);
            let r = Engine::new(&case.config).run(&s);
            (vec![s], r)
        }
        None => {
            // Conventional multi-core batch parallelism: weight-sharing
            // split across the cores.
            let p = partition_backward_ex(
                &proto,
                tensors,
                case.gemm,
                case.density,
                policy,
                PartitionScheme::WeightSharing,
                case.config.cores as u64,
                decision.order,
                case.is_first,
            );
            let r = run_multicore(&case.config, &p.schedules, p.reduction).combined();
            (p.schedules, r)
        }
        Some((scheme, parts)) => {
            let p = partition_backward_ex(
                &proto,
                tensors,
                case.gemm,
                case.density,
                policy,
                scheme,
                parts,
                decision.order,
                case.is_first,
            );
            if case.config.cores == 1 {
                let r =
                    run_sequential_partitions(&case.config, &p.schedules, p.reduction).combined();
                // Sequential chaining concatenates the segments into one
                // stream, so residency crosses segment boundaries; shadow
                // the same concatenation.
                let mut combined = p.schedules[0].clone();
                for s in &p.schedules[1..] {
                    combined.append_compatible(s);
                }
                (vec![combined], r)
            } else {
                let r = run_multicore(&case.config, &p.schedules, p.reduction).combined();
                (p.schedules, r)
            }
        }
    };

    if rebuilt != *report {
        violations.push(Violation {
            seed: case.seed,
            check: "decision-reproduces-report",
            detail: format!(
                "rebuilding {decision:?} gives {rebuilt:?}, pipeline reported {report:?}"
            ),
        });
    }

    for s in &schedules {
        let engine_report = Engine::new(&case.config).run(s);
        violations.extend(check_report_conservation(
            s,
            &case.config,
            &engine_report,
            case.seed,
        ));
    }
    violations
}

/// Shadow-replay `schedule` against an independent [`OptCache`] model and
/// verify that `report` respects every engine/SPM conservation invariant:
/// `hits + misses == accesses`, residency never exceeds capacity, every
/// spilled-accumulator re-fetch is preceded by a write-back of that tile,
/// per-class traffic matches the shadow replay, and total DRAM traffic
/// equals the sum of fetched, written-back and streamed bytes. The
/// schedule is additionally re-run with an [`EventLog`] recorder and the
/// recorded `Access` events (kind and post-access occupancy) must agree
/// with the shadow replay access by access.
///
/// `report` must come from running `schedule` on one core of `config`
/// with the default OPT replacement (any violation otherwise is the
/// point: this is the hook the injected-bug tests corrupt).
pub fn check_report_conservation(
    schedule: &Schedule,
    config: &NpuConfig,
    report: &SimReport,
    seed: u64,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let engine = Engine::new(config);

    // Flatten the access stream exactly as the engine does: gemm reads
    // then the optional accumulator touch; barriers occupy one slot so
    // stream positions line up; stream ops contribute no tile accesses.
    enum Slot {
        Barrier,
        Tile {
            key: TileKey,
            bytes: u64,
            dirty: bool,
        },
    }
    let mut slots: Vec<Slot> = Vec::new();
    for op in schedule.ops() {
        match op {
            ScheduleOp::Gemm(g) => {
                for r in &g.reads {
                    slots.push(Slot::Tile {
                        key: r.key,
                        bytes: r.bytes,
                        dirty: false,
                    });
                }
                if let Some(a) = &g.acc {
                    slots.push(Slot::Tile {
                        key: a.key,
                        bytes: a.bytes,
                        dirty: true,
                    });
                }
            }
            ScheduleOp::Barrier => slots.push(Slot::Barrier),
            ScheduleOp::Stream(_) => {}
        }
    }

    // Independent next-use oracle: backward scan, reuse never crosses a
    // kernel boundary.
    let mut next_use = vec![usize::MAX; slots.len()];
    let mut last_seen: HashMap<TileKey, usize> = HashMap::new();
    for pos in (0..slots.len()).rev() {
        match &slots[pos] {
            Slot::Barrier => last_seen.clear(),
            Slot::Tile { key, .. } => {
                if let Some(&later) = last_seen.get(key) {
                    next_use[pos] = later;
                }
                last_seen.insert(*key, pos);
            }
        }
    }

    // Observability cross-check: re-run the schedule with an event
    // recorder attached, then verify access by access that the recorded
    // occupancy and access kind agree with this function's independent
    // `OptCache` shadow replay. A recorder bug (or an engine/recorder
    // divergence) shows up as an `occupancy-replay` violation.
    let mut log = EventLog::new();
    engine.run_recorded(schedule, &mut EngineScratch::new(), &mut log);
    let recorded: Vec<(TileKey, AccessKind, u64)> = log
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Access {
                key,
                kind,
                occupancy,
                ..
            } => Some((*key, *kind, *occupancy)),
            _ => None,
        })
        .collect();
    let mut replay_diverged: Option<String> = None;

    let mut cache = OptCache::new(engine.residency_bytes());
    let mut traffic = Traffic::new();
    let mut moved_bytes = 0u64;
    let mut accesses = 0u64;
    let mut written_back: HashSet<TileKey> = HashSet::new();
    let mut capacity_ok = true;
    let mut pos = 0usize;
    for op in schedule.ops() {
        match op {
            ScheduleOp::Gemm(g) => {
                let n_accesses = g.reads.len() + usize::from(g.acc.is_some());
                for _ in 0..n_accesses {
                    let (key, bytes, dirty) = match slots[pos] {
                        Slot::Tile { key, bytes, dirty } => (key, bytes, dirty),
                        Slot::Barrier => unreachable!("gemm slots are never barriers"),
                    };
                    let out = cache.access(key, bytes, dirty, next_use[pos]);
                    pos += 1;
                    accesses += 1;
                    if replay_diverged.is_none() {
                        let want_kind = if out.hit {
                            AccessKind::Hit
                        } else if out.fetched_bytes > 0 {
                            AccessKind::Fetch
                        } else {
                            AccessKind::Materialize
                        };
                        match recorded.get(accesses as usize - 1) {
                            Some(&(rkey, rkind, rocc))
                                if rkey != key || rkind != want_kind || rocc != cache.used() =>
                            {
                                replay_diverged = Some(format!(
                                    "access {}: recorded ({rkey:?}, {rkind:?}, occupancy {rocc}) \
                                     vs shadow ({key:?}, {want_kind:?}, occupancy {})",
                                    accesses - 1,
                                    cache.used()
                                ));
                            }
                            _ => {}
                        }
                    }
                    if out.fetched_bytes > 0 {
                        traffic.add_read(schedule.class_of(key.tensor), out.fetched_bytes);
                        moved_bytes += out.fetched_bytes;
                        if dirty && !written_back.contains(&key) {
                            violations.push(Violation {
                                seed,
                                check: "spill-refetch-pairing",
                                detail: format!(
                                    "accumulator tile {key:?} re-fetched without a prior write-back"
                                ),
                            });
                        }
                    }
                    for &(k, b) in &out.writebacks {
                        traffic.add_write(schedule.class_of(k.tensor), b);
                        moved_bytes += b;
                        written_back.insert(k);
                    }
                    if cache.used() > cache.capacity() {
                        capacity_ok = false;
                    }
                }
            }
            ScheduleOp::Stream(st) => {
                if st.read_bytes > 0 {
                    traffic.add_read(st.class, st.read_bytes);
                }
                if st.write_bytes > 0 {
                    traffic.add_write(st.class, st.write_bytes);
                }
                moved_bytes += st.read_bytes + st.write_bytes;
            }
            ScheduleOp::Barrier => {
                pos += 1;
                for (k, b) in cache.flush() {
                    traffic.add_write(schedule.class_of(k.tensor), b);
                    moved_bytes += b;
                    written_back.insert(k);
                }
                cache.clear();
            }
        }
    }
    for (k, b) in cache.flush() {
        traffic.add_write(schedule.class_of(k.tensor), b);
        moved_bytes += b;
    }

    if recorded.len() as u64 != accesses && replay_diverged.is_none() {
        replay_diverged = Some(format!(
            "{} Access events recorded, schedule implies {accesses} tile accesses",
            recorded.len()
        ));
    }
    if let Some(detail) = replay_diverged {
        violations.push(Violation {
            seed,
            check: "occupancy-replay",
            detail,
        });
    }
    if !capacity_ok {
        violations.push(Violation {
            seed,
            check: "spm-capacity",
            detail: format!(
                "residency exceeded capacity {} on schedule {}",
                cache.capacity(),
                schedule.name()
            ),
        });
    }
    if cache.hits() + cache.misses() != accesses {
        violations.push(Violation {
            seed,
            check: "access-conservation",
            detail: format!(
                "shadow hits {} + misses {} != accesses {accesses}",
                cache.hits(),
                cache.misses()
            ),
        });
    }
    if report.spm_accesses() != accesses {
        violations.push(Violation {
            seed,
            check: "access-conservation",
            detail: format!(
                "report hits {} + misses {} != schedule accesses {accesses}",
                report.spm_hits, report.spm_misses
            ),
        });
    }
    if cache.hits() != report.spm_hits || cache.misses() != report.spm_misses {
        violations.push(Violation {
            seed,
            check: "hit-miss-mismatch",
            detail: format!(
                "shadow {}h/{}m, report {}h/{}m",
                cache.hits(),
                cache.misses(),
                report.spm_hits,
                report.spm_misses
            ),
        });
    }
    if traffic != report.traffic {
        violations.push(Violation {
            seed,
            check: "traffic-mismatch",
            detail: format!("shadow traffic [{traffic}], report [{}]", report.traffic),
        });
    }
    if moved_bytes != report.traffic.total() {
        violations.push(Violation {
            seed,
            check: "traffic-total",
            detail: format!(
                "fetched+writeback+stream bytes {moved_bytes} != reported total {}",
                report.traffic.total()
            ),
        });
    }
    violations
}

/// Execute the decided schedule on real tile data and compare the
/// gradients against the dense `dX = dY·Wᵀ`, `dW = Xᵀ·dY` references.
fn check_numeric(case: &AuditCase, order: BackwardOrder) -> Vec<Violation> {
    let mut violations = Vec::new();
    let policy = TilePolicy::for_config(&case.config);
    let mut proto = Schedule::new("audit");
    let tensors = LayerTensors::register(&mut proto, "l");
    let mut s = proto.fork("audit-exec");
    BackwardBuilder::new(case.gemm, policy, tensors).emit(order, case.is_first, &mut s);
    let layer = DenseLayer::random(case.gemm, case.seed);
    let got = execute_backward(&s, tensors, &layer, policy);
    let tolerance = 1e-3 * case.gemm.max_dim() as f32;
    let dw_err = max_abs_diff(&got.dw, &layer.reference_dw());
    if dw_err > tolerance {
        violations.push(Violation {
            seed: case.seed,
            check: "numeric-dw",
            detail: format!("dW max abs diff {dw_err} exceeds {tolerance}"),
        });
    }
    if !case.is_first {
        let dx_err = max_abs_diff(&got.dx, &layer.reference_dx());
        if dx_err > tolerance {
            violations.push(Violation {
                seed: case.seed,
                check: "numeric-dx",
                detail: format!("dX max abs diff {dx_err} exceeds {tolerance}"),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_npu_sim::TileOp;
    use igo_tensor::TensorClass;

    #[test]
    fn case_generation_is_deterministic() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let a = AuditCase::from_seed(seed);
            let b = AuditCase::from_seed(seed);
            assert_eq!(a.gemm, b.gemm);
            assert_eq!(a.config, b.config);
            assert_eq!(a.technique, b.technique);
            assert_eq!(a.options, b.options);
            assert_eq!(a.is_first, b.is_first);
            assert_eq!(a.density, b.density);
        }
    }

    #[test]
    fn fixed_seed_audit_passes() {
        let summary = run_audit(16, 1);
        assert_eq!(summary.cases, 16);
        assert!(summary.checks >= 5 * 16);
        assert!(summary.passed(), "audit violations: {}", summary.to_json());
    }

    fn sample_schedule() -> (Schedule, NpuConfig) {
        let config = NpuConfig::small_edge();
        let policy = TilePolicy::for_config(&config);
        let mut proto = Schedule::new("t");
        let tensors = LayerTensors::register(&mut proto, "l");
        let mut s = proto.fork("bwd");
        BackwardBuilder::new(GemmShape::new(90, 90, 90), policy, tensors).emit(
            BackwardOrder::Interleaved,
            false,
            &mut s,
        );
        (s, config)
    }

    #[test]
    fn clean_report_passes_conservation() {
        let (s, config) = sample_schedule();
        let report = Engine::new(&config).run(&s);
        assert!(check_report_conservation(&s, &config, &report, 0).is_empty());
    }

    #[test]
    fn injected_hit_count_bug_is_caught() {
        let (s, config) = sample_schedule();
        let mut report = Engine::new(&config).run(&s);
        // Deliberately corrupt the accounting: one hit reported as a miss.
        report.spm_hits -= 1;
        report.spm_misses += 1;
        let violations = check_report_conservation(&s, &config, &report, 0);
        assert!(
            violations.iter().any(|v| v.check == "hit-miss-mismatch"),
            "{violations:?}"
        );
    }

    #[test]
    fn injected_traffic_bug_is_caught() {
        let (s, config) = sample_schedule();
        let mut report = Engine::new(&config).run(&s);
        // Deliberately drop a write-back from the traffic accounting.
        let mut bad = Traffic::new();
        bad.add_read(TensorClass::OutGrad, report.traffic.read_total());
        report.traffic = bad;
        let violations = check_report_conservation(&s, &config, &report, 0);
        assert!(
            violations.iter().any(|v| v.check == "traffic-mismatch"),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.check == "traffic-total"),
            "{violations:?}"
        );
    }

    #[test]
    fn injected_dropped_access_bug_is_caught() {
        let (s, config) = sample_schedule();
        let mut report = Engine::new(&config).run(&s);
        report.spm_misses -= 1;
        let violations = check_report_conservation(&s, &config, &report, 0);
        assert!(
            violations.iter().any(|v| v.check == "access-conservation"),
            "{violations:?}"
        );
    }

    #[test]
    fn duplicated_tile_op_fails_merge_check() {
        let config = NpuConfig::small_edge();
        let policy = TilePolicy::for_config(&config);
        let gemm = GemmShape::new(90, 90, 90);
        let mut proto = Schedule::new("t");
        let tensors = LayerTensors::register(&mut proto, "l");
        let mut s = proto.fork("bwd");
        BackwardBuilder::new(gemm, policy, tensors).emit(BackwardOrder::DxMajor, false, &mut s);
        assert!(
            check_merge_schedule(&s, tensors, gemm, policy, BackwardOrder::DxMajor, false, 0)
                .is_empty()
        );
        // Re-emit the first gemm op: the stream is no longer a legal merge.
        let dup: TileOp = s
            .ops()
            .iter()
            .find_map(|op| match op {
                ScheduleOp::Gemm(g) => Some(g.clone()),
                _ => None,
            })
            .expect("emission has gemm ops");
        s.push_gemm(dup);
        let violations =
            check_merge_schedule(&s, tensors, gemm, policy, BackwardOrder::DxMajor, false, 0);
        assert!(
            violations.iter().any(|v| v.check == "merge-multiplicity"),
            "{violations:?}"
        );
    }

    #[test]
    fn algorithm1_spec_matches_pipeline_hook() {
        let configs = [
            NpuConfig::small_edge(),
            NpuConfig::large_single_core(),
            NpuConfig::large_server(4),
        ];
        let mut rng = SplitMix64::new(0xA1);
        for _ in 0..200 {
            let gemm = GemmShape::new(
                rng.range_u64(1, 2048),
                rng.range_u64(1, 2048),
                rng.range_u64(1, 2048),
            );
            for config in &configs {
                assert_eq!(
                    spec_algorithm1(gemm, config),
                    rearranged_order(gemm, config),
                    "{gemm:?} on {}",
                    config.name
                );
            }
        }
    }

    #[test]
    fn summary_json_reports_failures() {
        let clean = run_audit(2, 1);
        let json = clean.to_json();
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"cases\": 2"));

        let dirty = AuditSummary {
            cases: 1,
            checks: 1,
            violations: vec![Violation {
                seed: 42,
                check: "traffic-mismatch",
                detail: "say \"hi\"\nnewline".to_owned(),
            }],
        };
        let json = dirty.to_json();
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\"reproducer_seeds\": [42]"));
        assert!(json.contains("say \\\"hi\\\"\\nnewline"));
        assert_eq!(dirty.reproducer_seeds(), vec![42]);
    }
}
