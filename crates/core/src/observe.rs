//! Recorded (traced) layer execution: the observability front-end.
//!
//! [`crate::pipeline`] answers *how long* a layer's backward pass takes;
//! this module answers *what happened while it ran*. It re-executes the
//! pipeline's decided schedule with an [`EventLog`] recorder attached,
//! yielding the cycle-stamped event stream ([`TraceEvent`]) plus the
//! derived [`RunMetrics`] — SPM occupancy high-water mark, per-class
//! reuse-distance histograms, and the dY reuse ratio over time resolved
//! per tile (the paper's Figure 5 quantity, per tile instead of summed).
//!
//! The decision is made exactly as in the untraced pipeline
//! ([`simulate_layer_backward_with`]), and the execution it implies is
//! rebuilt the same way the audit subsystem rebuilds it
//! ([`crate::audit::check_report_conservation`] cross-checks the two
//! views): one engine run per core for multi-core decisions, one chained
//! run for single-core sequential partitions.
//!
//! Exporters for the collected traces — Chrome trace-event JSON
//! (Perfetto / `chrome://tracing`) and CSV metric summaries — live in
//! [`crate::report_io`].

use crate::partition::{partition_backward_ex, PartitionScheme};
use crate::pipeline::{simulate_layer_backward_with, LayerDecision, SimOptions};
use crate::schedule::{BackwardBuilder, LayerTensors};
use crate::technique::Technique;
use crate::tiling::TilePolicy;
use igo_npu_sim::{
    Engine, EngineScratch, EventLog, NpuConfig, RunMetrics, Schedule, SimReport, TraceEvent,
};
use igo_tensor::GemmShape;
use igo_workloads::Model;

/// Recorded execution of one core's (or one chained single-core) schedule.
#[derive(Debug, Clone)]
pub struct CoreTrace {
    /// Core index within the layer's execution (0 for single-core).
    pub core: usize,
    /// Name of the schedule this core ran.
    pub schedule: String,
    /// The cycle-stamped event stream, in emission order.
    pub events: Vec<TraceEvent>,
    /// Metrics derived from `events`.
    pub metrics: RunMetrics,
    /// The engine report of this core's run.
    pub report: SimReport,
}

/// Recorded backward execution of one layer under its decided schedule.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// Layer name (or a synthetic `MxKxN` label for ad-hoc layers).
    pub name: String,
    /// Forward GEMM shape of the layer.
    pub gemm: GemmShape,
    /// Technique the decision was made under.
    pub technique: Technique,
    /// The scheduler's decision (order and partitioning).
    pub decision: LayerDecision,
    /// The pipeline's (combined) backward report for the decision.
    pub report: SimReport,
    /// Per-core SPM residency capacity in bytes.
    pub capacity: u64,
    /// DRAM bandwidth in bytes per core cycle (for exporters).
    pub bytes_per_cycle: f64,
    /// DRAM per-burst latency in cycles (for exporters).
    pub burst_latency: u64,
    /// One recorded run per core (a single chained run for single-core
    /// sequential partitions, matching the engine's execution model).
    pub cores: Vec<CoreTrace>,
}

impl LayerTrace {
    /// Total recorded events across all cores.
    pub fn event_count(&self) -> usize {
        self.cores.iter().map(|c| c.events.len()).sum()
    }
}

/// Run one core's schedule with an [`EventLog`] attached.
fn record_run(engine: &Engine, schedule: &Schedule, core: usize) -> CoreTrace {
    let mut log = EventLog::new();
    let mut scratch = EngineScratch::new();
    let report = engine.run_recorded(schedule, &mut scratch, &mut log);
    let metrics = RunMetrics::from_events(&log.events, engine.residency_bytes());
    CoreTrace {
        core,
        schedule: schedule.name().to_string(),
        events: log.events,
        metrics,
        report,
    }
}

/// Decide a layer's backward execution exactly as the pipeline does, then
/// re-run the decided schedule(s) with a recorder attached.
///
/// The recorded per-core reports sum to the same tile work the pipeline
/// report describes; cross-core reduction streams (which the engine does
/// not execute) are the only part of a multi-core decision that is not
/// recorded.
pub fn trace_layer_backward(
    name: &str,
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    technique: Technique,
    is_first: bool,
    options: &SimOptions,
) -> LayerTrace {
    let (report, decision) =
        simulate_layer_backward_with(gemm, density, config, technique, is_first, options);
    let policy = TilePolicy::for_config(config);
    let mut proto = Schedule::new("trace");
    let tensors = LayerTensors::register(&mut proto, name);
    let engine = Engine::new(config);

    // Rebuild the execution the decision describes — the same four shapes
    // the audit subsystem rebuilds in `check_decision_conservation`.
    let schedules: Vec<Schedule> = match decision.partition {
        None if config.cores == 1 => {
            let mut s = proto.fork(name);
            BackwardBuilder::new(gemm, policy, tensors)
                .with_ifmap_density(density)
                .emit(decision.order, is_first, &mut s);
            vec![s]
        }
        None => {
            partition_backward_ex(
                &proto,
                tensors,
                gemm,
                density,
                policy,
                PartitionScheme::WeightSharing,
                config.cores as u64,
                decision.order,
                is_first,
            )
            .schedules
        }
        Some((scheme, parts)) => {
            let p = partition_backward_ex(
                &proto,
                tensors,
                gemm,
                density,
                policy,
                scheme,
                parts,
                decision.order,
                is_first,
            );
            if config.cores == 1 {
                // Sequential chaining concatenates the segments into one
                // stream, so residency crosses segment boundaries; record
                // the same concatenation.
                let mut combined = p.schedules[0].clone();
                for s in &p.schedules[1..] {
                    combined.append_compatible(s);
                }
                vec![combined]
            } else {
                p.schedules
            }
        }
    };

    let cores = schedules
        .iter()
        .enumerate()
        .map(|(core, s)| record_run(&engine, s, core))
        .collect();
    LayerTrace {
        name: name.to_string(),
        gemm,
        technique,
        decision,
        report,
        capacity: engine.residency_bytes(),
        bytes_per_cycle: engine.bytes_per_cycle(),
        burst_latency: engine.burst_latency(),
        cores,
    }
}

/// Trace every distinct layer of `model` (each layer once, regardless of
/// its multiplicity), in forward order.
pub fn trace_model(
    model: &Model,
    config: &NpuConfig,
    technique: Technique,
    options: &SimOptions,
) -> Vec<LayerTrace> {
    model
        .layers
        .iter()
        .map(|layer| {
            trace_layer_backward(
                &layer.name,
                layer.gemm,
                layer.ifmap_density,
                config,
                technique,
                layer.is_first,
                options,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_tensor::TensorClass;
    use igo_workloads::{zoo, ModelId};

    #[test]
    fn traced_decision_and_reports_match_pipeline() {
        let config = NpuConfig::small_edge();
        let options = SimOptions::sequential();
        let gemm = GemmShape::new(300, 200, 180);
        let (report, decision) = simulate_layer_backward_with(
            gemm,
            1.0,
            &config,
            Technique::Rearrangement,
            false,
            &options,
        );
        let trace = trace_layer_backward(
            "layer",
            gemm,
            1.0,
            &config,
            Technique::Rearrangement,
            false,
            &options,
        );
        assert_eq!(trace.decision, decision);
        assert_eq!(trace.report, report);
        assert_eq!(trace.cores.len(), 1);
        // The recorded single-core run *is* the decided execution.
        assert_eq!(trace.cores[0].report, report);
        assert!(trace.event_count() > 0);
    }

    #[test]
    fn multicore_trace_has_one_recording_per_core() {
        let config = NpuConfig::large_server(2);
        let trace = trace_layer_backward(
            "layer",
            GemmShape::new(512, 256, 256),
            1.0,
            &config,
            Technique::Interleaving,
            false,
            &SimOptions::sequential(),
        );
        assert_eq!(trace.cores.len(), 2);
        for core in &trace.cores {
            assert!(core.metrics.total_accesses() > 0);
            assert_eq!(
                core.metrics.total_accesses(),
                core.report.spm_accesses(),
                "derived metrics must account for every engine access"
            );
        }
    }

    #[test]
    fn traced_metrics_expose_dy_reuse() {
        let config = NpuConfig::small_edge();
        let trace = trace_layer_backward(
            "layer",
            GemmShape::new(256, 128, 128),
            1.0,
            &config,
            Technique::Interleaving,
            false,
            &SimOptions::sequential(),
        );
        let m = &trace.cores[0].metrics;
        assert!(m.class(TensorClass::OutGrad).accesses > 0);
        assert_eq!(
            m.dy_timeline.len() as u64,
            m.class(TensorClass::OutGrad).accesses,
            "one timeline point per dY access"
        );
        assert!(m.occupancy_high_water <= m.capacity);
    }

    #[test]
    fn model_trace_covers_every_distinct_layer() {
        let config = NpuConfig::small_edge();
        let model = zoo::model(ModelId::Ncf, 4);
        let traces = trace_model(
            &model,
            &config,
            Technique::Baseline,
            &SimOptions::sequential(),
        );
        assert_eq!(traces.len(), model.layers.len());
        for (trace, layer) in traces.iter().zip(&model.layers) {
            assert_eq!(trace.name, layer.name);
        }
    }
}
