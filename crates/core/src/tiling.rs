//! Tile-size and loop-blocking policy.
//!
//! Every schedule in this crate is built from square `T×T` tiles with `T`
//! equal to the systolic-array side — one tile is one weight-fold of the
//! array, the natural staging granularity of SCALE-Sim-class NPUs. On top
//! of tiles, loop nests are *blocked*: super-blocks of tiles are sized so
//! their working set fits the SPM residency, which is the "tiling
//! strategies proposed in the earlier studies" that the paper folds into
//! its baseline (§6.1). The [`Blocking`] helpers pick those block factors.

use igo_npu_sim::NpuConfig;
use igo_tensor::{DataType, TileShape};

/// Tiling policy derived from an NPU configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilePolicy {
    /// Square tile side (= systolic array rows).
    pub tile: TileShape,
    /// Element type.
    pub dtype: DataType,
    /// SPM residency capacity, in *full tiles*.
    pub capacity_tiles: u64,
}

impl TilePolicy {
    /// Policy for one core of `config`: `T = PE rows`, fp32, residency of
    /// half the per-core SPM (the double-buffer convention of
    /// [`NpuConfig::residency_bytes_per_core`]).
    pub fn for_config(config: &NpuConfig) -> Self {
        let side = config.pe.rows as u64;
        let tile = TileShape::square(side);
        let tile_bytes = tile.bytes(DataType::F32);
        Self {
            tile,
            dtype: DataType::F32,
            capacity_tiles: (config.residency_bytes_per_core() / tile_bytes).max(4),
        }
    }

    /// Bytes of one full tile.
    pub fn tile_bytes(&self) -> u64 {
        self.tile.bytes(self.dtype)
    }
}

/// Block factors for a 2-D blocked GEMM loop nest.
///
/// For an output of `rows × cols` *tiles* with a reduction depth of `red`
/// tiles, the nest processes super-blocks of `b_rows × b_cols` output tiles:
/// within a block, each reduction slice's operand tiles are loaded once; an
/// operand is re-read once per block along the orthogonal output dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocking {
    /// Output-block height in tiles.
    pub b_rows: u64,
    /// Output-block width in tiles.
    pub b_cols: u64,
}

impl Blocking {
    /// Choose block factors for a blocked GEMM with `rows × cols` output
    /// tiles and reduction depth `red` (all in tiles), on a residency of
    /// `capacity` tiles.
    ///
    /// The working set of one block step is
    /// `b_rows·b_cols` accumulators + `b_rows` left-operand tiles +
    /// `b_cols` right-operand tiles (one reduction slice). Traffic is
    /// `⌈cols/b_cols⌉·|left| + ⌈rows/b_rows⌉·|right|`; the chooser searches
    /// the feasible set for the minimum, preferring to make the *smaller*
    /// re-read factor hit 1 (read-once) when possible.
    pub fn choose(rows: u64, cols: u64, red: u64, capacity: u64) -> Self {
        Self::choose_with_cost(rows, cols, red, capacity).0
    }

    /// Like [`Blocking::choose`] but also returns the estimated traffic of
    /// the chosen blocking, in tiles (used by planners that weigh
    /// alternative capacity splits against each other).
    pub fn choose_with_cost(rows: u64, cols: u64, red: u64, capacity: u64) -> (Self, u64) {
        debug_assert!(rows > 0 && cols > 0 && red > 0);
        let cap = capacity.max(4);
        let mut best = Blocking {
            b_rows: 1,
            b_cols: 1,
        };
        let mut best_cost = u64::MAX;
        // Left operand is rows x red tiles, right is red x cols tiles.
        let left_tiles = rows * red;
        let right_tiles = red * cols;
        let mut b_rows = 1;
        while b_rows <= rows {
            // Working set: b_rows*b_cols + b_rows + b_cols <= cap, so even
            // b_cols = 1 needs 2*b_rows + 1 <= cap.
            if 2 * b_rows + 1 > cap {
                break;
            }
            let max_cols = ((cap - b_rows) / (b_rows + 1)).min(cols);
            for b_cols in [1, max_cols / 2, max_cols] {
                let b_cols = b_cols.clamp(1, max_cols);
                let cost = cols.div_ceil(b_cols) * left_tiles + rows.div_ceil(b_rows) * right_tiles;
                if cost < best_cost {
                    best_cost = cost;
                    best = Blocking { b_rows, b_cols };
                }
            }
            b_rows = (b_rows * 2).min(b_rows + cap); // geometric sweep
        }
        (best, best_cost)
    }

    /// Iterate block origins `(row0, col0)` in row-major block order.
    pub fn blocks(&self, rows: u64, cols: u64) -> impl Iterator<Item = (u64, u64)> {
        let (br, bc) = (self.b_rows, self.b_cols);
        (0..rows.div_ceil(br))
            .flat_map(move |r| (0..cols.div_ceil(bc)).map(move |c| (r * br, c * bc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_matches_table3_shapes() {
        let small = TilePolicy::for_config(&NpuConfig::small_edge());
        assert_eq!(small.tile, TileShape::square(45));
        // 512 KiB residency / 8100-byte tiles = 64 tiles.
        assert_eq!(small.capacity_tiles, 64);

        let large = TilePolicy::for_config(&NpuConfig::large_single_core());
        assert_eq!(large.tile, TileShape::square(128));
        // 4 MiB residency / 64 KiB tiles = 64 tiles.
        assert_eq!(large.capacity_tiles, 64);
    }

    #[test]
    fn blocking_fits_capacity() {
        for (rows, cols, red, cap) in [
            (32, 32, 8, 64),
            (196, 5, 1, 64),
            (6400, 1, 1, 64),
            (8, 256, 4, 16),
        ] {
            let b = Blocking::choose(rows, cols, red, cap);
            assert!(
                b.b_rows * b.b_cols + b.b_rows + b.b_cols <= cap,
                "({rows},{cols},{red}) cap {cap}: {b:?}"
            );
            assert!(b.b_rows >= 1 && b.b_cols >= 1);
        }
    }

    #[test]
    fn small_reduction_gets_read_once_cols() {
        // Conv-like: 196 output rows, 5 cols, plenty of capacity: the whole
        // column dimension should be one block so the left operand is read
        // once.
        let b = Blocking::choose(196, 5, 1, 64);
        assert_eq!(b.b_cols, 5, "{b:?}");
    }

    #[test]
    fn blocks_cover_output() {
        let b = Blocking {
            b_rows: 3,
            b_cols: 4,
        };
        let origins: Vec<_> = b.blocks(7, 9).collect();
        assert_eq!(origins.len(), 3 * 3);
        assert_eq!(origins[0], (0, 0));
        assert_eq!(*origins.last().unwrap(), (6, 8));
    }

    #[test]
    fn tiny_capacity_degrades_to_unit_blocks() {
        let b = Blocking::choose(100, 100, 10, 4);
        assert_eq!(
            (b.b_rows, b.b_cols),
            (1, 1),
            "capacity 4 leaves room for nothing bigger"
        );
    }
}
