//! KNN-based data-partitioning selection (paper §5, "Selection mechanism").
//!
//! The paper trains a K-nearest-neighbour classifier to predict the best of
//! the three Figure-11 partitioning schemes per layer, using "the
//! dimensions of dX, dW, and dY as features", a random 80/20
//! workload split, and 1000 repetitions (mean accuracy ≈ 91%). It then
//! reports that on a dual-core NPU the KNN-selected partitioning achieves
//! 21.5% improvement versus 22.4% for an oracle that always picks the best
//! scheme.
//!
//! [`label_layers`] simulates all three schemes per layer to produce the
//! ground truth; [`knn_partition_experiment`] reproduces the full protocol.

use crate::partition::PartitionScheme;
use crate::schedule::{BackwardOrder, LayerTensors};
use crate::select::select_order;
use crate::tiling::TilePolicy;
use igo_knn::{repeated_accuracy, Classifier, Split};
use igo_npu_sim::{run_multicore, run_sequential_partitions, NpuConfig, Schedule};
use igo_tensor::GemmShape;
use igo_tensor::SplitMix64;

/// Feature vector for one layer: `log2` of the six tensor dimensions the
/// paper names — dX(M,K), dW(K,N), dY(M,N).
pub fn layer_features(gemm: GemmShape) -> Vec<f64> {
    let lg = |v: u64| (v as f64).log2();
    vec![
        lg(gemm.m()),
        lg(gemm.k()),
        lg(gemm.k()),
        lg(gemm.n()),
        lg(gemm.m()),
        lg(gemm.n()),
    ]
}

/// Ground truth for one layer: cycles under each scheme, and the best.
#[derive(Debug, Clone)]
pub struct LabeledLayer {
    /// The layer's forward GEMM.
    pub gemm: GemmShape,
    /// Cycles per scheme, indexed like [`PartitionScheme::ALL`].
    pub cycles: [u64; 3],
    /// The fastest scheme.
    pub label: PartitionScheme,
}

impl LabeledLayer {
    /// Cycles of the labelled (best) scheme.
    pub fn best_cycles(&self) -> u64 {
        *self.cycles.iter().min().expect("three schemes")
    }

    /// Cycles of an arbitrary scheme.
    pub fn cycles_of(&self, scheme: PartitionScheme) -> u64 {
        let idx = PartitionScheme::ALL
            .iter()
            .position(|&s| s == scheme)
            .expect("scheme in ALL");
        self.cycles[idx]
    }
}

/// Simulate the three partitioning schemes for one layer on `config` with
/// `parts` partitions (Algorithm-1 ordering per sub-GEMM) and label the
/// fastest.
pub fn label_layer(gemm: GemmShape, config: &NpuConfig, parts: u64) -> LabeledLayer {
    let policy = TilePolicy::for_config(config);
    let mut proto = Schedule::new("label");
    let tensors = LayerTensors::register(&mut proto, "l");
    let mut cycles = [0u64; 3];
    for (idx, scheme) in PartitionScheme::ALL.iter().enumerate() {
        let sub = gemm.split(scheme.split_dim(), parts)[0];
        let order = BackwardOrder::from(select_order(sub));
        let p = crate::partition::partition_backward(
            &proto, tensors, gemm, policy, *scheme, parts, order, false,
        );
        let mc = if config.cores > 1 {
            run_multicore(config, &p.schedules, p.reduction)
        } else {
            run_sequential_partitions(config, &p.schedules, p.reduction)
        };
        cycles[idx] = mc.cycles;
    }
    let best = (0..3).min_by_key(|&i| cycles[i]).expect("three schemes");
    LabeledLayer {
        gemm,
        cycles,
        label: PartitionScheme::ALL[best],
    }
}

/// Label a whole set of layers (deduplicated by shape).
pub fn label_layers(gemms: &[GemmShape], config: &NpuConfig, parts: u64) -> Vec<LabeledLayer> {
    let mut seen = std::collections::HashSet::new();
    gemms
        .iter()
        .filter(|g| seen.insert(**g))
        .map(|g| label_layer(*g, config, parts))
        .collect()
}

/// Outcome of the §5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnPartitionOutcome {
    /// Mean prediction accuracy over the repeated 80/20 splits.
    pub accuracy: f64,
    /// Test-set cycles when always using the oracle-best scheme.
    pub ideal_cycles: u64,
    /// Test-set cycles when using the KNN-predicted scheme.
    pub knn_cycles: u64,
    /// Test-set cycles of the *conventional* partitioning — batch
    /// (weight-sharing) data parallelism with the rearranged order — the
    /// §5 reference for "performance improvement achieved from data
    /// partitioning".
    pub reference_cycles: u64,
    /// Number of labelled layers.
    pub layers: usize,
}

impl KnnPartitionOutcome {
    /// Improvement of the oracle selection over the reference, as a
    /// fraction in `[0, 1)`.
    pub fn ideal_improvement(&self) -> f64 {
        1.0 - self.ideal_cycles as f64 / self.reference_cycles as f64
    }

    /// Improvement of the KNN selection over the reference.
    pub fn knn_improvement(&self) -> f64 {
        1.0 - self.knn_cycles as f64 / self.reference_cycles as f64
    }
}

/// Reproduce the paper's §5 protocol on `gemms`.
///
/// * label every distinct layer by simulating the three schemes at
///   `config.cores` partitions;
/// * measure mean KNN accuracy over `repeats` random 80/20 splits;
/// * on one final split, compare test-set cycles under oracle and KNN
///   selection against the conventional batch (weight-sharing)
///   partitioning.
///
/// # Panics
///
/// Panics if fewer than two distinct layers are supplied.
pub fn knn_partition_experiment(
    gemms: &[GemmShape],
    config: &NpuConfig,
    k: usize,
    repeats: usize,
    seed: u64,
) -> KnnPartitionOutcome {
    let labeled = label_layers(gemms, config, config.cores as u64);
    assert!(labeled.len() >= 2, "need at least two distinct layers");
    let features: Vec<Vec<f64>> = labeled.iter().map(|l| layer_features(l.gemm)).collect();
    let labels: Vec<PartitionScheme> = labeled.iter().map(|l| l.label).collect();

    let mut rng = SplitMix64::new(seed);
    let accuracy = repeated_accuracy(k, &features, &labels, 0.8, repeats, &mut rng)
        .expect("non-empty dataset");

    // One representative split for the cycle comparison.
    let split = Split::random(labeled.len(), 0.8, &mut rng);
    let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| features[i].clone()).collect();
    let train_y: Vec<PartitionScheme> = split.train.iter().map(|&i| labels[i]).collect();
    let knn = Classifier::fit(k, train_x, train_y).expect("non-empty training set");

    let mut ideal = 0u64;
    let mut predicted = 0u64;
    let mut reference = 0u64;
    for &i in &split.test {
        let layer = &labeled[i];
        ideal += layer.best_cycles();
        predicted += layer.cycles_of(*knn.predict(&features[i]));
        // Conventional NPUs partition on a batch basis (§5): the reference
        // is weight-sharing across the same cores.
        reference += layer.cycles_of(PartitionScheme::WeightSharing);
    }

    KnnPartitionOutcome {
        accuracy,
        ideal_cycles: ideal,
        knn_cycles: predicted,
        reference_cycles: reference,
        layers: labeled.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layers() -> Vec<GemmShape> {
        vec![
            GemmShape::new(4096, 1024, 4096),
            GemmShape::new(4096, 4096, 1024),
            GemmShape::new(16, 479, 1024),
            GemmShape::new(16, 1024, 1024),
            GemmShape::new(25088, 576, 64),
            GemmShape::new(6272, 1152, 128),
            GemmShape::new(1568, 2304, 256),
            GemmShape::new(16, 26, 512),
            GemmShape::new(392, 4608, 512),
            GemmShape::new(16, 2048, 1000),
        ]
    }

    #[test]
    fn features_are_log_dims() {
        let f = layer_features(GemmShape::new(8, 16, 32));
        assert_eq!(f, vec![3.0, 4.0, 4.0, 5.0, 3.0, 5.0]);
    }

    #[test]
    fn labeling_produces_the_minimum() {
        let config = NpuConfig::large_server(2);
        let l = label_layer(GemmShape::new(4096, 1024, 4096), &config, 2);
        assert_eq!(l.best_cycles(), *l.cycles.iter().min().unwrap());
        assert_eq!(l.cycles_of(l.label), l.best_cycles());
    }

    #[test]
    fn dedup_removes_identical_shapes() {
        let config = NpuConfig::large_server(2);
        let g = GemmShape::new(256, 256, 256);
        let labeled = label_layers(&[g, g, g], &config, 2);
        assert_eq!(labeled.len(), 1);
    }

    #[test]
    fn knn_experiment_runs_and_orders_correctly() {
        let config = NpuConfig::large_server(2);
        let out = knn_partition_experiment(&sample_layers(), &config, 3, 10, 42);
        assert!(out.accuracy > 0.0 && out.accuracy <= 1.0);
        assert!(
            out.knn_cycles >= out.ideal_cycles,
            "prediction can never beat the oracle"
        );
        assert_eq!(out.layers, 10);
    }
}
