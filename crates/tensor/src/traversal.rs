//! Tile traversal orders.
//!
//! §4.3 of the paper classifies the `dY` tile access pattern of each gradient
//! computation as *row-major* (the natural order for `dX = dY × Wᵀ`) or
//! *column-major* (the natural order for `dW = Xᵀ × dY`). The
//! *rearrangement* step forces both computations onto one common order —
//! `dXmajor` (both row-major over `dY`) or `dWmajor` (both column-major).
//! [`Major`] is that order; [`TraversalOrder`] names the three resulting
//! schedule families of Figure 10.

use crate::{TileCoord, TileGrid};
/// A traversal order over the tiles of one matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Major {
    /// Sweep columns within a row, then advance the row.
    Row,
    /// Sweep rows within a column, then advance the column.
    Col,
}

impl Major {
    /// Enumerate the grid's coordinates in this order.
    pub fn iter(self, grid: &TileGrid) -> Box<dyn Iterator<Item = TileCoord> + '_> {
        match self {
            Major::Row => Box::new(grid.iter_row_major()),
            Major::Col => Box::new(grid.iter_col_major()),
        }
    }

    /// The opposite order.
    pub fn flipped(self) -> Major {
        match self {
            Major::Row => Major::Col,
            Major::Col => Major::Row,
        }
    }
}

impl core::fmt::Display for Major {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Major::Row => "row-major",
            Major::Col => "col-major",
        })
    }
}

/// The three interleaved tile-access orders of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraversalOrder {
    /// Figure 10 (a): each gradient keeps its traditional order — `dX`
    /// row-major over `dY`, `dW` column-major over `dY`.
    Traditional,
    /// Figure 10 (b): both gradients traverse `dY` row-major, favouring `dX`
    /// reuse at the cost of `dW` partial-sum tiles.
    DxMajor,
    /// Figure 10 (c): both gradients traverse `dY` column-major, favouring
    /// `dW` reuse at the cost of `dX` partial-sum tiles.
    DwMajor,
}

impl TraversalOrder {
    /// All orders, in the order Figure 10 presents them.
    pub const ALL: [TraversalOrder; 3] = [
        TraversalOrder::Traditional,
        TraversalOrder::DxMajor,
        TraversalOrder::DwMajor,
    ];

    /// The shared `dY` traversal major, when one exists (`None` for
    /// [`TraversalOrder::Traditional`], whose two streams disagree).
    pub fn shared_major(self) -> Option<Major> {
        match self {
            TraversalOrder::Traditional => None,
            TraversalOrder::DxMajor => Some(Major::Row),
            TraversalOrder::DwMajor => Some(Major::Col),
        }
    }
}

impl core::fmt::Display for TraversalOrder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            TraversalOrder::Traditional => "interleave",
            TraversalOrder::DxMajor => "interleave+dXmajor",
            TraversalOrder::DwMajor => "interleave+dWmajor",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatrixDims, TileShape};

    #[test]
    fn major_iter_matches_grid_iters() {
        let g = TileGrid::new(MatrixDims::new(10, 30), TileShape::square(10));
        let row: Vec<_> = Major::Row.iter(&g).collect();
        let col: Vec<_> = Major::Col.iter(&g).collect();
        assert_eq!(row, g.iter_row_major().collect::<Vec<_>>());
        assert_eq!(col, g.iter_col_major().collect::<Vec<_>>());
    }

    #[test]
    fn flipping_is_involutive() {
        assert_eq!(Major::Row.flipped(), Major::Col);
        assert_eq!(Major::Row.flipped().flipped(), Major::Row);
    }

    #[test]
    fn shared_majors() {
        assert_eq!(TraversalOrder::Traditional.shared_major(), None);
        assert_eq!(TraversalOrder::DxMajor.shared_major(), Some(Major::Row));
        assert_eq!(TraversalOrder::DwMajor.shared_major(), Some(Major::Col));
    }

    #[test]
    fn display_names() {
        assert_eq!(TraversalOrder::DxMajor.to_string(), "interleave+dXmajor");
        assert_eq!(Major::Col.to_string(), "col-major");
    }
}
