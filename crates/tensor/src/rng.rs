//! A tiny deterministic PRNG so the workspace needs no external `rand`
//! dependency (the build environment has no registry access).
//!
//! [`SplitMix64`] is Steele, Lea & Flood's SplitMix generator (also the
//! seeding PRNG of `xoshiro`): one 64-bit state word, a Weyl increment and
//! a 3-round finalizer. It is not cryptographic — it exists to drive
//! reproducible test sampling, dataset shuffles and synthetic weights.

/// SplitMix64: a fast, seedable, fully deterministic 64-bit PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[lo, hi)`. Uses the widening-multiply range
    /// reduction; the tiny modulo bias is irrelevant for test sampling.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f64() as f32
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_stream_from_seed_zero() {
        // Reference values from the published SplitMix64 test vector.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let x = rng.range_f32(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "a 50-element shuffle should move something");
    }
}
