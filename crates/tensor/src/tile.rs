//! Tile decomposition of matrices.
//!
//! The SPM is far smaller than the tensors of a training step, so every
//! matrix is processed at *tile* granularity (paper §2.3, §4.2). A
//! [`TileGrid`] partitions a `rows x cols` matrix into a grid of tiles of a
//! nominal [`TileShape`]; edge tiles are clipped ("ragged"), so the grid
//! covers the matrix exactly and without overlap — a property the test suite
//! checks exhaustively and by property testing.

use crate::{DataType, MatrixDims};
/// Nominal tile dimensions (rows x cols), before edge clipping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Nominal tile rows.
    pub rows: u64,
    /// Nominal tile cols.
    pub cols: u64,
}

impl TileShape {
    /// Create a tile shape.
    ///
    /// # Panics
    ///
    /// Panics if either extent is zero.
    pub fn new(rows: u64, cols: u64) -> Self {
        assert!(rows > 0 && cols > 0, "tile extents must be positive");
        Self { rows, cols }
    }

    /// A square tile `side x side`.
    pub fn square(side: u64) -> Self {
        Self::new(side, side)
    }

    /// Byte footprint of a *full* (unclipped) tile at `dtype`.
    pub const fn bytes(self, dtype: DataType) -> u64 {
        dtype.matrix_bytes(self.rows, self.cols)
    }
}

impl core::fmt::Display for TileShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Grid coordinates of one tile within a [`TileGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Tile-row index (0-based).
    pub r: u32,
    /// Tile-column index (0-based).
    pub c: u32,
}

impl TileCoord {
    /// Create a coordinate.
    pub const fn new(r: u32, c: u32) -> Self {
        Self { r, c }
    }
}

impl core::fmt::Display for TileCoord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({},{})", self.r, self.c)
    }
}

/// Decomposition of a matrix into a grid of tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileGrid {
    matrix: MatrixDims,
    tile: TileShape,
    tile_rows: u32,
    tile_cols: u32,
}

impl TileGrid {
    /// Build the grid covering `matrix` with tiles of nominal shape `tile`.
    ///
    /// # Panics
    ///
    /// Panics if the tile-count along either axis overflows `u32`
    /// (a matrix would need > 4·10⁹ tiles on one axis — far beyond any
    /// realistic workload).
    pub fn new(matrix: MatrixDims, tile: TileShape) -> Self {
        let tile_rows = matrix.rows.div_ceil(tile.rows);
        let tile_cols = matrix.cols.div_ceil(tile.cols);
        assert!(
            tile_rows <= u32::MAX as u64 && tile_cols <= u32::MAX as u64,
            "tile grid too large: {tile_rows}x{tile_cols}"
        );
        Self {
            matrix,
            tile,
            tile_rows: tile_rows as u32,
            tile_cols: tile_cols as u32,
        }
    }

    /// The matrix this grid covers.
    pub const fn matrix(&self) -> MatrixDims {
        self.matrix
    }

    /// The nominal tile shape.
    pub const fn tile(&self) -> TileShape {
        self.tile
    }

    /// Number of tile rows.
    pub const fn rows(&self) -> u32 {
        self.tile_rows
    }

    /// Number of tile columns.
    pub const fn cols(&self) -> u32 {
        self.tile_cols
    }

    /// Total number of tiles.
    pub const fn num_tiles(&self) -> u64 {
        self.tile_rows as u64 * self.tile_cols as u64
    }

    /// Actual (clipped) dimensions of the tile at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `coord` lies outside the grid.
    pub fn tile_dims(&self, coord: TileCoord) -> MatrixDims {
        assert!(
            coord.r < self.tile_rows && coord.c < self.tile_cols,
            "tile {coord} outside {}x{} grid",
            self.tile_rows,
            self.tile_cols
        );
        let row_start = coord.r as u64 * self.tile.rows;
        let col_start = coord.c as u64 * self.tile.cols;
        MatrixDims::new(
            self.tile.rows.min(self.matrix.rows - row_start),
            self.tile.cols.min(self.matrix.cols - col_start),
        )
    }

    /// Byte footprint of the (clipped) tile at `coord` for elements of
    /// `dtype`.
    pub fn tile_bytes(&self, coord: TileCoord, dtype: DataType) -> u64 {
        self.tile_dims(coord).bytes(dtype)
    }

    /// Iterate all coordinates in row-major order (row 0 left→right, then
    /// row 1, ...).
    pub fn iter_row_major(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let (rows, cols) = (self.tile_rows, self.tile_cols);
        (0..rows).flat_map(move |r| (0..cols).map(move |c| TileCoord::new(r, c)))
    }

    /// Iterate all coordinates in column-major order (col 0 top→bottom, then
    /// col 1, ...).
    pub fn iter_col_major(&self) -> impl Iterator<Item = TileCoord> + '_ {
        let (rows, cols) = (self.tile_rows, self.tile_cols);
        (0..cols).flat_map(move |c| (0..rows).map(move |r| TileCoord::new(r, c)))
    }

    /// Sum of the clipped byte footprints of all tiles — always equal to the
    /// byte footprint of the matrix itself (exact cover).
    pub fn total_bytes(&self, dtype: DataType) -> u64 {
        self.iter_row_major()
            .map(|c| self.tile_bytes(c, dtype))
            .sum()
    }
}

impl core::fmt::Display for TileGrid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} in {} tiles ({}x{})",
            self.matrix, self.tile, self.tile_rows, self.tile_cols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn exact_division() {
        let g = TileGrid::new(MatrixDims::new(256, 512), TileShape::square(128));
        assert_eq!((g.rows(), g.cols()), (2, 4));
        assert_eq!(g.num_tiles(), 8);
        assert_eq!(g.tile_dims(TileCoord::new(1, 3)), MatrixDims::new(128, 128));
    }

    #[test]
    fn ragged_edges_are_clipped() {
        let g = TileGrid::new(MatrixDims::new(300, 130), TileShape::square(128));
        assert_eq!((g.rows(), g.cols()), (3, 2));
        assert_eq!(g.tile_dims(TileCoord::new(0, 0)), MatrixDims::new(128, 128));
        assert_eq!(g.tile_dims(TileCoord::new(2, 0)), MatrixDims::new(44, 128));
        assert_eq!(g.tile_dims(TileCoord::new(0, 1)), MatrixDims::new(128, 2));
        assert_eq!(g.tile_dims(TileCoord::new(2, 1)), MatrixDims::new(44, 2));
    }

    #[test]
    fn tiny_matrix_single_tile() {
        let g = TileGrid::new(MatrixDims::new(8, 13), TileShape::square(128));
        assert_eq!(g.num_tiles(), 1);
        assert_eq!(g.tile_dims(TileCoord::new(0, 0)), MatrixDims::new(8, 13));
    }

    #[test]
    fn row_major_order() {
        let g = TileGrid::new(MatrixDims::new(200, 300), TileShape::square(100));
        let order: Vec<_> = g.iter_row_major().collect();
        assert_eq!(
            order,
            vec![
                TileCoord::new(0, 0),
                TileCoord::new(0, 1),
                TileCoord::new(0, 2),
                TileCoord::new(1, 0),
                TileCoord::new(1, 1),
                TileCoord::new(1, 2),
            ]
        );
    }

    #[test]
    fn col_major_order() {
        let g = TileGrid::new(MatrixDims::new(200, 300), TileShape::square(100));
        let order: Vec<_> = g.iter_col_major().collect();
        assert_eq!(
            order,
            vec![
                TileCoord::new(0, 0),
                TileCoord::new(1, 0),
                TileCoord::new(0, 1),
                TileCoord::new(1, 1),
                TileCoord::new(0, 2),
                TileCoord::new(1, 2),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_coord_panics() {
        let g = TileGrid::new(MatrixDims::new(10, 10), TileShape::square(4));
        let _ = g.tile_dims(TileCoord::new(3, 0));
    }

    /// The grid covers the matrix exactly: summed clipped tile areas
    /// equal the matrix area, for sampled matrix/tile shapes.
    #[test]
    fn tiles_cover_matrix_exactly() {
        let mut rng = SplitMix64::new(0xC0FE);
        for _ in 0..64 {
            let m = MatrixDims::new(rng.range_u64(1, 2000), rng.range_u64(1, 2000));
            let g = TileGrid::new(
                m,
                TileShape::new(rng.range_u64(1, 300), rng.range_u64(1, 300)),
            );
            let area: u64 = g.iter_row_major().map(|c| g.tile_dims(c).elems()).sum();
            assert_eq!(area, m.elems());
            assert_eq!(g.total_bytes(DataType::F32), m.bytes(DataType::F32));
        }
    }

    /// Row-major and column-major traversals visit the same set of
    /// coordinates exactly once.
    #[test]
    fn traversals_are_permutations() {
        let mut rng = SplitMix64::new(0xBEE);
        for _ in 0..64 {
            let g = TileGrid::new(
                MatrixDims::new(rng.range_u64(1, 500), rng.range_u64(1, 500)),
                TileShape::square(rng.range_u64(1, 100)),
            );
            let mut a: Vec<_> = g.iter_row_major().collect();
            let mut b: Vec<_> = g.iter_col_major().collect();
            assert_eq!(a.len() as u64, g.num_tiles());
            a.sort();
            b.sort();
            assert_eq!(&a, &b);
            a.dedup();
            assert_eq!(a.len() as u64, g.num_tiles());
        }
    }

    /// No clipped tile exceeds the nominal shape.
    #[test]
    fn clipped_tiles_never_exceed_nominal() {
        let mut rng = SplitMix64::new(0xD1CE);
        for _ in 0..64 {
            let (tr, tc) = (rng.range_u64(1, 200), rng.range_u64(1, 200));
            let g = TileGrid::new(
                MatrixDims::new(rng.range_u64(1, 1000), rng.range_u64(1, 1000)),
                TileShape::new(tr, tc),
            );
            for coord in g.iter_row_major() {
                let d = g.tile_dims(coord);
                assert!(d.rows >= 1 && d.rows <= tr);
                assert!(d.cols >= 1 && d.cols <= tc);
            }
        }
    }
}
