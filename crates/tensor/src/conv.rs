//! Convolution layers and their im2col lowering to GEMM.
//!
//! The paper (§2.1, §6.1) assumes "all convolution layer computations are
//! transformed into GEMM operations by applying im2col". For a convolution
//! with batch `B`, input channels `C`, output channels `F`, kernel
//! `KH x KW`, and output spatial size `OH x OW`, the lowered GEMM is
//!
//! ```text
//!   X(M,K) × W(K,N) → Y(M,N)
//!   M = B · OH · OW      (one row per output pixel per image)
//!   K = C · KH · KW      (one column per receptive-field element)
//!   N = F                (one output column per filter)
//! ```
//!
//! Grouped (depthwise) convolutions lower to `groups` independent GEMMs; we
//! expose the per-group GEMM plus the group count so schedulers can account
//! for the replication.

use crate::GemmShape;
/// Shape of a (possibly grouped) 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size `B`.
    pub batch: u64,
    /// Input channels `C` (total, across groups).
    pub in_channels: u64,
    /// Input spatial height.
    pub in_h: u64,
    /// Input spatial width.
    pub in_w: u64,
    /// Output channels `F` (total, across groups).
    pub out_channels: u64,
    /// Kernel height.
    pub kernel_h: u64,
    /// Kernel width.
    pub kernel_w: u64,
    /// Stride (same in both spatial dims).
    pub stride: u64,
    /// Symmetric zero padding.
    pub padding: u64,
    /// Convolution groups (`1` = dense, `in_channels` = depthwise).
    pub groups: u64,
}

impl ConvShape {
    /// A dense (ungrouped) convolution.
    ///
    /// # Panics
    ///
    /// Panics if any extent or the stride is zero, or the kernel (plus
    /// padding) does not fit in the input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        batch: u64,
        in_channels: u64,
        in_h: u64,
        in_w: u64,
        out_channels: u64,
        kernel: u64,
        stride: u64,
        padding: u64,
    ) -> Self {
        Self::grouped(
            batch,
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel,
            stride,
            padding,
            1,
        )
    }

    /// A grouped convolution (`groups == in_channels` models depthwise).
    ///
    /// # Panics
    ///
    /// Panics on zero extents, zero stride/groups, indivisible channel
    /// counts, or a kernel larger than the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn grouped(
        batch: u64,
        in_channels: u64,
        in_h: u64,
        in_w: u64,
        out_channels: u64,
        kernel: u64,
        stride: u64,
        padding: u64,
        groups: u64,
    ) -> Self {
        assert!(
            batch > 0 && in_channels > 0 && in_h > 0 && in_w > 0,
            "zero input extent"
        );
        assert!(
            out_channels > 0 && kernel > 0 && stride > 0 && groups > 0,
            "zero parameter"
        );
        assert!(
            in_channels.is_multiple_of(groups) && out_channels.is_multiple_of(groups),
            "channels ({in_channels}->{out_channels}) must divide groups ({groups})"
        );
        assert!(
            in_h + 2 * padding >= kernel && in_w + 2 * padding >= kernel,
            "kernel {kernel} larger than padded input {in_h}x{in_w}+{padding}"
        );
        Self {
            batch,
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
            groups,
        }
    }

    /// Output spatial height: `⌊(H + 2P − KH)/S⌋ + 1`.
    pub fn out_h(&self) -> u64 {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output spatial width: `⌊(W + 2P − KW)/S⌋ + 1`.
    pub fn out_w(&self) -> u64 {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Trainable parameter count (`C/g · KH · KW · F`).
    pub fn params(&self) -> u64 {
        (self.in_channels / self.groups) * self.kernel_h * self.kernel_w * self.out_channels
    }

    /// The im2col GEMM of **one group**.
    ///
    /// For dense convolutions (`groups == 1`) this is the whole layer. For
    /// grouped convolutions, the layer executes [`ConvShape::groups`] copies
    /// of this GEMM.
    ///
    /// ```
    /// use igo_tensor::ConvShape;
    /// // ResNet-50 conv1: 3->64, 7x7/2, 224x224 input, batch 8.
    /// let c = ConvShape::new(8, 3, 224, 224, 64, 7, 2, 3);
    /// let g = c.to_gemm();
    /// assert_eq!(g.m(), 8 * 112 * 112);
    /// assert_eq!(g.k(), 3 * 7 * 7);
    /// assert_eq!(g.n(), 64);
    /// ```
    pub fn to_gemm(&self) -> GemmShape {
        let m = self.batch * self.out_h() * self.out_w();
        let k = (self.in_channels / self.groups) * self.kernel_h * self.kernel_w;
        let n = self.out_channels / self.groups;
        GemmShape::new(m, k, n)
    }

    /// Forward MAC count across all groups.
    pub fn macs(&self) -> u64 {
        self.to_gemm().macs() * self.groups
    }

    /// Ratio of the *raw* (NCHW) input-feature-map bytes to the im2col
    /// matrix bytes, clamped to 1.
    ///
    /// The im2col lowering replicates each input pixel once per receptive
    /// field that covers it, but the tensor stored in DRAM is the raw
    /// feature map (the paper adopts PyTorch's data layout, §6.1) and the
    /// replication happens on the fly while staging tiles. DRAM traffic
    /// for `X` — and for the `dX` written back through col2im — therefore
    /// costs `density × im2col bytes` with
    /// `density = (IH·IW) / (OH·OW·KH·KW)`, e.g. `1/9` for a stride-1 3×3
    /// convolution. Fully-connected layers have density 1.
    pub fn ifmap_density(&self) -> f64 {
        let raw = (self.in_h * self.in_w) as f64;
        let expanded = (self.out_h() * self.out_w() * self.kernel_h * self.kernel_w) as f64;
        (raw / expanded).min(1.0)
    }
}

impl core::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "conv {}x{}s{} {}→{} @{}x{} (B={}, g={})",
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.in_channels,
            self.out_channels,
            self.in_h,
            self.in_w,
            self.batch,
            self.groups
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_conv1_output_size() {
        let c = ConvShape::new(1, 3, 224, 224, 64, 7, 2, 3);
        assert_eq!(c.out_h(), 112);
        assert_eq!(c.out_w(), 112);
    }

    #[test]
    fn same_padding_3x3_preserves_size() {
        let c = ConvShape::new(4, 64, 56, 56, 64, 3, 1, 1);
        assert_eq!(c.out_h(), 56);
        assert_eq!(c.out_w(), 56);
        let g = c.to_gemm();
        assert_eq!(g.m(), 4 * 56 * 56);
        assert_eq!(g.k(), 64 * 9);
        assert_eq!(g.n(), 64);
    }

    #[test]
    fn pointwise_conv_is_channel_gemm() {
        let c = ConvShape::new(2, 128, 14, 14, 256, 1, 1, 0);
        let g = c.to_gemm();
        assert_eq!((g.m(), g.k(), g.n()), (2 * 14 * 14, 128, 256));
    }

    #[test]
    fn depthwise_groups() {
        let c = ConvShape::grouped(1, 32, 112, 112, 32, 3, 1, 1, 32);
        let g = c.to_gemm();
        assert_eq!((g.k(), g.n()), (9, 1));
        assert_eq!(c.params(), 9 * 32);
        assert_eq!(c.macs(), 32 * (112 * 112 * 9));
    }

    #[test]
    fn params_count() {
        let c = ConvShape::new(1, 64, 56, 56, 128, 3, 1, 1);
        assert_eq!(c.params(), 64 * 9 * 128);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_panics() {
        let _ = ConvShape::new(1, 3, 4, 4, 8, 7, 1, 0);
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn indivisible_groups_panic() {
        let _ = ConvShape::grouped(1, 10, 8, 8, 10, 3, 1, 1, 3);
    }

    #[test]
    fn display_is_nonempty() {
        let c = ConvShape::new(1, 3, 8, 8, 8, 3, 1, 1);
        assert!(c.to_string().contains("conv"));
    }

    #[test]
    fn ifmap_density_stride1_3x3() {
        // Same-padded stride-1 3x3: every pixel replicated 9x.
        let c = ConvShape::new(4, 64, 56, 56, 64, 3, 1, 1);
        assert!((c.ifmap_density() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn ifmap_density_pointwise_is_one() {
        let c = ConvShape::new(2, 128, 14, 14, 256, 1, 1, 0);
        assert_eq!(c.ifmap_density(), 1.0);
    }

    #[test]
    fn ifmap_density_strided_pointwise_clamps() {
        // 1x1 stride 2 touches a quarter of the pixels; traffic is capped
        // at the im2col footprint, never above.
        let c = ConvShape::new(2, 128, 14, 14, 256, 1, 2, 0);
        assert_eq!(c.ifmap_density(), 1.0);
    }

    #[test]
    fn ifmap_density_resnet_stem() {
        // 7x7 stride-2 with padding 3: 224^2 / (112^2 * 49) = 4/49.
        let c = ConvShape::new(8, 3, 224, 224, 64, 7, 2, 3);
        assert!((c.ifmap_density() - 4.0 / 49.0).abs() < 1e-12);
    }
}
