//! Forward GEMM shapes and their derived backward GEMMs.
//!
//! Following the paper's notation (Table 1 and Eq. (1)/(2)), the forward pass
//! of a trainable layer is the GEMM
//!
//! ```text
//!   X(M,K) × W(K,N) → Y(M,N)
//! ```
//!
//! and the backward pass computes two *independent* GEMMs that share the
//! output gradient `dY(M,N)` as an operand:
//!
//! ```text
//!   dX(M,K) = dY(M,N) × Wᵀ(N,K)        (Eq. 1)
//!   dW(K,N) = Xᵀ(K,M) × dY(M,N)        (Eq. 2)
//! ```
//!
//! [`GemmShape`] carries `(M,K,N)` of the *forward* GEMM; the backward GEMMs
//! and every tensor footprint are derived from it. This mirrors how the
//! paper's Algorithm 1 reasons purely in terms of the forward `(M,K,N)`.

use crate::{DataType, TileGrid, TileShape};
/// Plain `rows x cols` dimensions of one matrix operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixDims {
    /// Number of rows.
    pub rows: u64,
    /// Number of columns.
    pub cols: u64,
}

impl MatrixDims {
    /// Create matrix dimensions.
    pub const fn new(rows: u64, cols: u64) -> Self {
        Self { rows, cols }
    }

    /// Element count (`rows * cols`).
    pub const fn elems(self) -> u64 {
        self.rows * self.cols
    }

    /// Byte footprint for elements of type `dtype`.
    pub const fn bytes(self, dtype: DataType) -> u64 {
        dtype.matrix_bytes(self.rows, self.cols)
    }

    /// Transposed dimensions.
    pub const fn transposed(self) -> Self {
        Self {
            rows: self.cols,
            cols: self.rows,
        }
    }
}

impl core::fmt::Display for MatrixDims {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// The `(M, K, N)` of a forward GEMM `X(M,K) × W(K,N) → Y(M,N)`.
///
/// # Panics
///
/// Constructors panic on zero dimensions: a zero-sized GEMM has no meaning in
/// the scheduling space and would otherwise silently produce empty schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    m: u64,
    k: u64,
    n: u64,
}

impl GemmShape {
    /// Create a forward GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any of `m`, `k`, `n` is zero.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        assert!(
            m > 0 && k > 0 && n > 0,
            "GEMM dims must be positive: ({m},{k},{n})"
        );
        Self { m, k, n }
    }

    /// `M`: rows of `X`, rows of `Y` (the batch-times-spatial dimension).
    pub const fn m(self) -> u64 {
        self.m
    }

    /// `K`: cols of `X`, rows of `W` (the reduction dimension).
    pub const fn k(self) -> u64 {
        self.k
    }

    /// `N`: cols of `W`, cols of `Y` (the output-channel dimension).
    pub const fn n(self) -> u64 {
        self.n
    }

    /// Dimensions of the input feature map `X(M,K)`.
    pub const fn x_dims(self) -> MatrixDims {
        MatrixDims::new(self.m, self.k)
    }

    /// Dimensions of the weights `W(K,N)`.
    pub const fn w_dims(self) -> MatrixDims {
        MatrixDims::new(self.k, self.n)
    }

    /// Dimensions of the output feature map `Y(M,N)` — and of `dY`.
    pub const fn y_dims(self) -> MatrixDims {
        MatrixDims::new(self.m, self.n)
    }

    /// Dimensions of the input gradient `dX(M,K)` — same as `X`.
    pub const fn dx_dims(self) -> MatrixDims {
        self.x_dims()
    }

    /// Dimensions of the weight gradient `dW(K,N)` — same as `W`.
    pub const fn dw_dims(self) -> MatrixDims {
        self.w_dims()
    }

    /// Dimensions of the output gradient `dY(M,N)` — same as `Y`.
    pub const fn dy_dims(self) -> MatrixDims {
        self.y_dims()
    }

    /// The backward GEMM computing `dX = dY × Wᵀ`, expressed as a forward
    /// shape: `dY(M,N) × Wᵀ(N,K) → dX(M,K)` is `(m=M, k=N, n=K)`.
    pub fn dx_gemm(self) -> GemmShape {
        GemmShape::new(self.m, self.n, self.k)
    }

    /// The backward GEMM computing `dW = Xᵀ × dY`, expressed as a forward
    /// shape: `Xᵀ(K,M) × dY(M,N) → dW(K,N)` is `(m=K, k=M, n=N)`.
    pub fn dw_gemm(self) -> GemmShape {
        GemmShape::new(self.k, self.m, self.n)
    }

    /// Multiply–accumulate count of the forward GEMM (`M·K·N`).
    pub const fn macs(self) -> u64 {
        self.m * self.k * self.n
    }

    /// MAC count of the whole backward pass (`dX` + `dW` GEMMs): `2·M·K·N`.
    pub const fn backward_macs(self) -> u64 {
        2 * self.macs()
    }

    /// Output rows (`M`).
    pub const fn out_rows(self) -> u64 {
        self.m
    }

    /// Output cols (`N`).
    pub const fn out_cols(self) -> u64 {
        self.n
    }

    /// Largest of `(M, K, N)`.
    pub fn max_dim(self) -> u64 {
        self.m.max(self.k).max(self.n)
    }

    /// Smallest of `(M, K, N)`.
    pub fn min_dim(self) -> u64 {
        self.m.min(self.k).min(self.n)
    }

    /// Aspect ratio `max_dim / min_dim` as a float.
    pub fn aspect_ratio(self) -> f64 {
        self.max_dim() as f64 / self.min_dim() as f64
    }

    /// The paper's `AlmostSquareComputation()` predicate (Algorithm 1):
    /// true when `max(M,N,K) / min(M,N,K) < threshold`. The paper classifies a
    /// computation as nearly square when "the largest dimension is less than
    /// four times the smallest dimension", i.e. `threshold == 4.0`.
    ///
    /// ```
    /// use igo_tensor::GemmShape;
    /// assert!(GemmShape::new(512, 256, 512).is_almost_square(4.0));
    /// assert!(!GemmShape::new(8, 512, 512).is_almost_square(4.0));
    /// ```
    pub fn is_almost_square(self, threshold: f64) -> bool {
        self.aspect_ratio() < threshold
    }

    /// Total DRAM footprint in bytes of one *forward* pass at `dtype`
    /// (read `X`, read `W`, write `Y`) assuming zero reuse — an upper bound
    /// used only for sanity reporting.
    pub fn forward_footprint_bytes(self, dtype: DataType) -> u64 {
        self.x_dims().bytes(dtype) + self.w_dims().bytes(dtype) + self.y_dims().bytes(dtype)
    }

    /// Total DRAM footprint in bytes of one *backward* pass at `dtype`
    /// reading each operand once (X, W, dY) and writing each result once
    /// (dX, dW). The paper's Figure 5 ratios are computed against this kind
    /// of per-class accounting.
    pub fn backward_footprint_bytes(self, dtype: DataType) -> u64 {
        self.x_dims().bytes(dtype)
            + self.w_dims().bytes(dtype)
            + self.dy_dims().bytes(dtype)
            + self.dx_dims().bytes(dtype)
            + self.dw_dims().bytes(dtype)
    }

    /// Tile grid over `Y` / `dY` (an `M x N` matrix).
    pub fn dy_grid(self, tile: TileShape) -> TileGrid {
        TileGrid::new(self.y_dims(), tile)
    }

    /// Tile grid over `X` / `dX` (an `M x K` matrix).
    pub fn dx_grid(self, tile: TileShape) -> TileGrid {
        TileGrid::new(self.x_dims(), tile)
    }

    /// Tile grid over `W` / `dW` (a `K x N` matrix).
    pub fn dw_grid(self, tile: TileShape) -> TileGrid {
        TileGrid::new(self.w_dims(), tile)
    }

    /// Split this GEMM along one dimension into `parts` nearly equal pieces.
    ///
    /// Returns one shape per non-empty piece (ceil-divided; the last piece
    /// may be smaller). This is the primitive under the paper's three
    /// partitioning schemes (§5): weight-sharing splits `M`, dY-sharing
    /// splits `N`, ifmap-sharing splits `K`.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn split(self, dim: GemmDim, parts: u64) -> Vec<GemmShape> {
        assert!(parts > 0, "cannot split into zero parts");
        let total = match dim {
            GemmDim::M => self.m,
            GemmDim::K => self.k,
            GemmDim::N => self.n,
        };
        let chunk = total.div_ceil(parts);
        let mut out = Vec::new();
        let mut remaining = total;
        while remaining > 0 {
            let this = chunk.min(remaining);
            out.push(match dim {
                GemmDim::M => GemmShape::new(this, self.k, self.n),
                GemmDim::K => GemmShape::new(self.m, this, self.n),
                GemmDim::N => GemmShape::new(self.m, self.k, this),
            });
            remaining -= this;
        }
        out
    }
}

impl core::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "(M={}, K={}, N={})", self.m, self.k, self.n)
    }
}

/// One of the three GEMM dimensions — the axis a partitioning scheme splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmDim {
    /// The batch-times-spatial dimension (rows of `X` and `Y`).
    M,
    /// The reduction dimension (cols of `X`, rows of `W`).
    K,
    /// The output-channel dimension (cols of `W` and `Y`).
    N,
}

impl core::fmt::Display for GemmDim {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            GemmDim::M => "M",
            GemmDim::K => "K",
            GemmDim::N => "N",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_gemms_follow_eq1_eq2() {
        let g = GemmShape::new(64, 32, 128);
        // dX = dY(M,N) x W^T(N,K): m=M=64, k=N=128, n=K=32
        let dx = g.dx_gemm();
        assert_eq!((dx.m(), dx.k(), dx.n()), (64, 128, 32));
        // dW = X^T(K,M) x dY(M,N): m=K=32, k=M=64, n=N=128
        let dw = g.dw_gemm();
        assert_eq!((dw.m(), dw.k(), dw.n()), (32, 64, 128));
    }

    #[test]
    fn backward_macs_are_twice_forward() {
        let g = GemmShape::new(10, 20, 30);
        assert_eq!(g.macs(), 6000);
        assert_eq!(g.dx_gemm().macs(), g.macs());
        assert_eq!(g.dw_gemm().macs(), g.macs());
        assert_eq!(g.backward_macs(), 2 * g.macs());
    }

    #[test]
    fn almost_square_threshold_matches_paper() {
        // Paper: nearly square iff max/min < 4.
        assert!(GemmShape::new(100, 100, 100).is_almost_square(4.0));
        assert!(GemmShape::new(100, 399, 100).is_almost_square(4.0));
        assert!(!GemmShape::new(100, 400, 100).is_almost_square(4.0));
        assert!(!GemmShape::new(8, 1024, 1024).is_almost_square(4.0));
    }

    #[test]
    fn footprints_count_each_tensor_once() {
        let g = GemmShape::new(4, 8, 16);
        let dt = DataType::F32;
        assert_eq!(
            g.backward_footprint_bytes(dt),
            (4 * 8 + 8 * 16 + 4 * 16 + 4 * 8 + 8 * 16) * 4
        );
        assert_eq!(g.forward_footprint_bytes(dt), (4 * 8 + 8 * 16 + 4 * 16) * 4);
    }

    #[test]
    fn split_m_covers_total() {
        let g = GemmShape::new(100, 7, 9);
        let parts = g.split(GemmDim::M, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.m()).sum::<u64>(), 100);
        assert!(parts.iter().all(|p| p.k() == 7 && p.n() == 9));
        // ceil(100/3) = 34 -> 34, 34, 32
        assert_eq!(parts[0].m(), 34);
        assert_eq!(parts[2].m(), 32);
    }

    #[test]
    fn split_k_and_n_cover_total() {
        let g = GemmShape::new(5, 100, 64);
        let kp = g.split(GemmDim::K, 4);
        assert_eq!(kp.iter().map(|p| p.k()).sum::<u64>(), 100);
        assert!(kp.iter().all(|p| p.m() == 5 && p.n() == 64));
        let np = g.split(GemmDim::N, 2);
        assert_eq!(np.iter().map(|p| p.n()).sum::<u64>(), 64);
        assert!(np.iter().all(|p| p.m() == 5 && p.k() == 100));
    }

    #[test]
    fn split_more_parts_than_extent_yields_fewer_parts() {
        let g = GemmShape::new(3, 10, 10);
        let parts = g.split(GemmDim::M, 8);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.m() == 1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "(M=1, K=2, N=3)");
        assert_eq!(MatrixDims::new(4, 5).to_string(), "4x5");
        assert_eq!(GemmDim::K.to_string(), "K");
    }

    #[test]
    fn matrix_dims_transpose() {
        let d = MatrixDims::new(3, 7);
        assert_eq!(d.transposed(), MatrixDims::new(7, 3));
        assert_eq!(d.elems(), 21);
    }
}
