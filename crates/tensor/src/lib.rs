//! Shape algebra for the interleaved-gradient-order (IGO) simulator.
//!
//! This crate provides the *geometry* layer that every other IGO crate is
//! built on:
//!
//! * [`DataType`] — element widths (the paper's evaluation is fp32).
//! * [`GemmShape`] — a forward GEMM `X(M,K) × W(K,N) → Y(M,N)` together with
//!   the derived backward GEMMs for the input gradient
//!   `dX = dY × Wᵀ` and the weight gradient `dW = Xᵀ × dY`.
//! * [`ConvShape`] — a convolution layer and its im2col lowering to a GEMM,
//!   following the paper's assumption that *all* convolutions are executed as
//!   GEMMs after im2col (§6.1).
//! * [`TileGrid`] / [`TileCoord`] — decomposition of a matrix into SPM-sized
//!   tiles, including ragged edge tiles.
//! * [`Major`] — row-major / column-major tile traversal orders, the knob that
//!   the paper's *rearrangement* step (dXmajor / dWmajor, §4.3) turns.
//! * [`TensorClass`] — the five tensor roles of the backward pass
//!   (X, W, dX, dW, dY) plus forward roles, used for per-class DRAM traffic
//!   accounting (Figure 5 of the paper reports traffic *per class*).
//!
//! # Example
//!
//! ```
//! use igo_tensor::{GemmShape, TileShape};
//!
//! // A BERT-style feed-forward layer: (4096 x 1024) x (1024 x 4096).
//! let fwd = GemmShape::new(4096, 1024, 4096);
//! let dx = fwd.dx_gemm(); // dY(M,N) x W^T(N,K) -> dX(M,K)
//! let dw = fwd.dw_gemm(); // X^T(K,M) x dY(M,N) -> dW(K,N)
//! assert_eq!(dx.out_rows(), 4096);
//! assert_eq!(dw.out_cols(), 4096);
//!
//! // Decompose dY into 128x128 tiles.
//! let grid = fwd.dy_grid(TileShape::square(128));
//! assert_eq!(grid.num_tiles(), 32 * 32);
//! ```

pub mod conv;
pub mod dtype;
pub mod gemm;
pub mod rng;
pub mod tile;
pub mod traversal;

pub use conv::ConvShape;
pub use dtype::DataType;
pub use gemm::{GemmDim, GemmShape, MatrixDims};
pub use rng::SplitMix64;
pub use tile::{TileCoord, TileGrid, TileShape};
pub use traversal::{Major, TraversalOrder};

/// The role a tensor plays in a training step.
///
/// The backward pass of layer *i* touches five tensors (paper Table 1 and
/// §3.2): the operands `X`, `W` and `dY` (read from DRAM) and the results
/// `dX` and `dW` (written to DRAM). The forward pass touches `X`, `W` and
/// `Y`. `Partial` marks spilled intermediate accumulator tiles created by the
/// dXmajor / dWmajor reorderings (§4.3: "intermediate results ... stored in
/// the off-chip memory, resulting in an additional memory traffic").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TensorClass {
    /// Input feature map `X` (forward operand; backward operand of `dW`).
    Ifmap,
    /// Weights `W` (forward operand; backward operand of `dX`).
    Weight,
    /// Output feature map `Y` (forward result).
    Ofmap,
    /// Input gradient `dX` (backward result).
    InGrad,
    /// Weight gradient `dW` (backward result).
    WGrad,
    /// Output gradient `dY` (the shared backward operand this paper reuses).
    OutGrad,
    /// Spilled partial-sum tiles of a reordered accumulation.
    Partial,
}

impl TensorClass {
    /// All classes, in a stable order (useful for report tables).
    pub const ALL: [TensorClass; 7] = [
        TensorClass::Ifmap,
        TensorClass::Weight,
        TensorClass::Ofmap,
        TensorClass::InGrad,
        TensorClass::WGrad,
        TensorClass::OutGrad,
        TensorClass::Partial,
    ];

    /// Short label used in printed tables (`X`, `W`, `Y`, `dX`, `dW`, `dY`, `P`).
    pub fn label(self) -> &'static str {
        match self {
            TensorClass::Ifmap => "X",
            TensorClass::Weight => "W",
            TensorClass::Ofmap => "Y",
            TensorClass::InGrad => "dX",
            TensorClass::WGrad => "dW",
            TensorClass::OutGrad => "dY",
            TensorClass::Partial => "P",
        }
    }

    /// Whether this class is a backward-pass *operand* (read-only input).
    pub fn is_backward_operand(self) -> bool {
        matches!(
            self,
            TensorClass::Ifmap | TensorClass::Weight | TensorClass::OutGrad
        )
    }

    /// Whether this class is a backward-pass *result* (written to DRAM).
    pub fn is_backward_result(self) -> bool {
        matches!(self, TensorClass::InGrad | TensorClass::WGrad)
    }
}

impl core::fmt::Display for TensorClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            TensorClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), TensorClass::ALL.len());
    }

    #[test]
    fn backward_roles_partition_correctly() {
        use TensorClass::*;
        for class in TensorClass::ALL {
            let operand = class.is_backward_operand();
            let result = class.is_backward_result();
            assert!(!(operand && result), "{class:?} cannot be both");
            if matches!(class, Ofmap | Partial) {
                assert!(!operand && !result);
            }
        }
        assert!(OutGrad.is_backward_operand());
        assert!(InGrad.is_backward_result());
        assert!(WGrad.is_backward_result());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(TensorClass::OutGrad.to_string(), "dY");
    }
}
