//! Element data types and their byte widths.
//!
//! The paper's evaluation never states a training precision; we default to
//! 32-bit floats everywhere (the conservative choice for training-era NPUs
//! like TPUv2/v3, which accumulate in fp32). The simulator is parameterised
//! over [`DataType`] so mixed-precision what-if experiments are possible.

/// Element type of a tensor stored in SPM / DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// IEEE-754 single precision (4 bytes). The evaluation default.
    #[default]
    F32,
    /// bfloat16 (2 bytes).
    Bf16,
    /// IEEE-754 half precision (2 bytes).
    F16,
    /// 8-bit integer (1 byte) — inference-style quantisation.
    I8,
}

impl DataType {
    /// Width of one element in bytes.
    ///
    /// ```
    /// use igo_tensor::DataType;
    /// assert_eq!(DataType::F32.bytes(), 4);
    /// assert_eq!(DataType::Bf16.bytes(), 2);
    /// ```
    pub const fn bytes(self) -> u64 {
        match self {
            DataType::F32 => 4,
            DataType::Bf16 | DataType::F16 => 2,
            DataType::I8 => 1,
        }
    }

    /// Total size in bytes of a matrix of `rows x cols` elements of this type.
    pub const fn matrix_bytes(self, rows: u64, cols: u64) -> u64 {
        rows * cols * self.bytes()
    }
}

impl core::fmt::Display for DataType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DataType::F32 => "f32",
            DataType::Bf16 => "bf16",
            DataType::F16 => "f16",
            DataType::I8 => "i8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(DataType::F32.bytes(), 4);
        assert_eq!(DataType::Bf16.bytes(), 2);
        assert_eq!(DataType::F16.bytes(), 2);
        assert_eq!(DataType::I8.bytes(), 1);
    }

    #[test]
    fn matrix_bytes_multiplies_out() {
        assert_eq!(DataType::F32.matrix_bytes(128, 128), 128 * 128 * 4);
        assert_eq!(DataType::I8.matrix_bytes(3, 5), 15);
        assert_eq!(DataType::F32.matrix_bytes(0, 10), 0);
    }

    #[test]
    fn default_is_f32() {
        assert_eq!(DataType::default(), DataType::F32);
    }
}
