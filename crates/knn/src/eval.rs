//! Train/test-split evaluation of the classifier.
//!
//! Mirrors the paper's protocol (§5): random 80/20 split, fit on the
//! training side, score accuracy on the test side, repeat 1000 times and
//! average.

use crate::classifier::{Classifier, FitError};
use igo_tensor::SplitMix64;

/// A train/test index split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of test samples.
    pub test: Vec<usize>,
}

impl Split {
    /// Randomly split `n` samples, putting `train_fraction` of them in the
    /// training set (at least one sample on each side).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `train_fraction` is not strictly inside (0, 1).
    pub fn random(n: usize, train_fraction: f64, rng: &mut SplitMix64) -> Self {
        assert!(n >= 2, "need at least 2 samples to split, got {n}");
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0,1), got {train_fraction}"
        );
        let mut indices: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut indices);
        let cut = ((n as f64 * train_fraction).round() as usize).clamp(1, n - 1);
        let test = indices.split_off(cut);
        Split {
            train: indices,
            test,
        }
    }
}

/// Fit on `split.train`, score on `split.test`; returns the accuracy in
/// `[0, 1]`.
///
/// # Errors
///
/// Propagates [`FitError`] from fitting on the training subset.
pub fn evaluate<L: Clone + Eq + std::hash::Hash>(
    k: usize,
    features: &[Vec<f64>],
    labels: &[L],
    split: &Split,
) -> Result<f64, FitError> {
    let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| features[i].clone()).collect();
    let train_y: Vec<L> = split.train.iter().map(|&i| labels[i].clone()).collect();
    let knn = Classifier::fit(k, train_x, train_y)?;
    if split.test.is_empty() {
        return Ok(1.0);
    }
    let correct = split
        .test
        .iter()
        .filter(|&&i| *knn.predict(&features[i]) == labels[i])
        .count();
    Ok(correct as f64 / split.test.len() as f64)
}

/// The paper's protocol: `repeats` random `train_fraction` splits, mean
/// accuracy.
///
/// # Errors
///
/// Propagates [`FitError`] (e.g. an empty dataset).
pub fn repeated_accuracy<L: Clone + Eq + std::hash::Hash>(
    k: usize,
    features: &[Vec<f64>],
    labels: &[L],
    train_fraction: f64,
    repeats: usize,
    rng: &mut SplitMix64,
) -> Result<f64, FitError> {
    assert!(repeats > 0, "need at least one repetition");
    let mut total = 0.0;
    for _ in 0..repeats {
        let split = Split::random(features.len(), train_fraction, rng);
        total += evaluate(k, features, labels, &split)?;
    }
    Ok(total / repeats as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (Vec<Vec<f64>>, Vec<u8>) {
        // Two well-separated Gaussian-ish blobs, 40 samples.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.05;
            xs.push(vec![jitter, -jitter]);
            ys.push(0u8);
            xs.push(vec![8.0 + jitter, 8.0 - jitter]);
            ys.push(1u8);
        }
        (xs, ys)
    }

    #[test]
    fn split_partitions_indices() {
        let mut rng = SplitMix64::new(7);
        let s = Split::random(10, 0.8, &mut rng);
        assert_eq!(s.train.len() + s.test.len(), 10);
        assert_eq!(s.train.len(), 8);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_always_leaves_a_test_sample() {
        let mut rng = SplitMix64::new(1);
        let s = Split::random(2, 0.99, &mut rng);
        assert_eq!(s.train.len(), 1);
        assert_eq!(s.test.len(), 1);
    }

    #[test]
    fn separable_data_scores_perfectly() {
        let (xs, ys) = dataset();
        let mut rng = SplitMix64::new(42);
        let acc = repeated_accuracy(3, &xs, &ys, 0.8, 50, &mut rng).unwrap();
        assert!(acc > 0.99, "separable blobs must classify, got {acc}");
    }

    #[test]
    fn random_labels_score_near_chance() {
        // Each feature value appears with both labels equally often, so the
        // feature carries no information: accuracy ~= 0.5.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64]).collect();
        let ys: Vec<u8> = (0..100).map(|i| ((i / 10) % 2) as u8).collect();
        let mut rng = SplitMix64::new(3);
        let acc = repeated_accuracy(3, &xs, &ys, 0.8, 100, &mut rng).unwrap();
        assert!(
            (0.3..0.7).contains(&acc),
            "chance-level expected, got {acc}"
        );
    }

    #[test]
    fn evaluate_propagates_fit_errors() {
        let split = Split {
            train: vec![],
            test: vec![0],
        };
        let err = evaluate(3, &[vec![1.0]], &[0u8], &split).unwrap_err();
        assert_eq!(err, FitError::EmptyTrainingSet);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn split_of_one_panics() {
        let mut rng = SplitMix64::new(0);
        let _ = Split::random(1, 0.8, &mut rng);
    }
}
