//! The KNN classifier.

use std::collections::HashMap;
use std::fmt;

/// Errors from [`Classifier::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// `k` was zero.
    ZeroK,
    /// No training samples were provided.
    EmptyTrainingSet,
    /// Features and labels had different lengths.
    LengthMismatch {
        /// Number of feature vectors.
        features: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Feature vectors had inconsistent dimensionality.
    RaggedFeatures {
        /// Dimensionality of the first vector.
        expected: usize,
        /// Index of the offending vector.
        index: usize,
        /// Its dimensionality.
        found: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::ZeroK => write!(f, "k must be at least 1"),
            FitError::EmptyTrainingSet => write!(f, "training set is empty"),
            FitError::LengthMismatch { features, labels } => {
                write!(f, "{features} feature vectors but {labels} labels")
            }
            FitError::RaggedFeatures {
                expected,
                index,
                found,
            } => write!(
                f,
                "feature vector {index} has {found} dims, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted K-nearest-neighbour classifier.
///
/// Prediction is brute-force (exact) over the training set: the paper's
/// training sets are a few hundred layers, for which an index structure
/// would be pure overhead.
#[derive(Debug, Clone)]
pub struct Classifier<L> {
    k: usize,
    features: Vec<Vec<f64>>,
    labels: Vec<L>,
    dims: usize,
}

impl<L: Clone + Eq + std::hash::Hash> Classifier<L> {
    /// Fit a classifier with neighbourhood size `k`.
    ///
    /// # Errors
    ///
    /// Returns a [`FitError`] if `k == 0`, the training set is empty,
    /// features and labels disagree in length, or feature vectors are
    /// ragged.
    pub fn fit(k: usize, features: Vec<Vec<f64>>, labels: Vec<L>) -> Result<Self, FitError> {
        if k == 0 {
            return Err(FitError::ZeroK);
        }
        if features.is_empty() {
            return Err(FitError::EmptyTrainingSet);
        }
        if features.len() != labels.len() {
            return Err(FitError::LengthMismatch {
                features: features.len(),
                labels: labels.len(),
            });
        }
        let dims = features[0].len();
        for (index, v) in features.iter().enumerate() {
            if v.len() != dims {
                return Err(FitError::RaggedFeatures {
                    expected: dims,
                    index,
                    found: v.len(),
                });
            }
        }
        Ok(Self {
            k,
            features,
            labels,
            dims,
        })
    }

    /// Neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the training set is empty (never true for a fitted model).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Predict the label of `query` by majority vote among the `k` nearest
    /// training samples (Euclidean distance). Ties in the vote are broken
    /// toward the nearest member of the tied labels, which makes the
    /// prediction deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dims()`.
    pub fn predict(&self, query: &[f64]) -> &L {
        assert_eq!(
            query.len(),
            self.dims,
            "query has {} dims, classifier expects {}",
            query.len(),
            self.dims
        );
        let mut dists: Vec<(f64, usize)> = self
            .features
            .iter()
            .enumerate()
            .map(|(i, v)| (euclidean_sq(query, v), i))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let neighbours = &mut dists[..k];
        neighbours.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });

        // Majority vote; ties broken by the nearest occurrence.
        let mut votes: HashMap<&L, usize> = HashMap::new();
        for (_, idx) in neighbours.iter() {
            *votes.entry(&self.labels[*idx]).or_insert(0) += 1;
        }
        let best_count = *votes.values().max().expect("k >= 1");
        neighbours
            .iter()
            .map(|(_, idx)| &self.labels[*idx])
            .find(|label| votes[*label] == best_count)
            .expect("at least one neighbour")
    }
}

fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            xs.push(vec![i as f64 * 0.01, 0.0]);
            ys.push(0u8);
            xs.push(vec![10.0 + i as f64 * 0.01, 10.0]);
            ys.push(1u8);
        }
        (xs, ys)
    }

    #[test]
    fn separable_clusters_classify_correctly() {
        let (xs, ys) = clusters();
        let knn = Classifier::fit(3, xs, ys).unwrap();
        assert_eq!(*knn.predict(&[0.5, 0.5]), 0);
        assert_eq!(*knn.predict(&[9.5, 9.5]), 1);
    }

    #[test]
    fn k_one_is_nearest_neighbour() {
        let knn = Classifier::fit(1, vec![vec![0.0], vec![10.0]], vec!["left", "right"]).unwrap();
        assert_eq!(*knn.predict(&[4.0]), "left");
        assert_eq!(*knn.predict(&[6.0]), "right");
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let knn = Classifier::fit(100, vec![vec![0.0], vec![1.0]], vec![0, 0]).unwrap();
        assert_eq!(*knn.predict(&[0.5]), 0);
    }

    #[test]
    fn tie_broken_by_nearest() {
        // k=2 with one vote each: the closer sample's label wins.
        let knn = Classifier::fit(2, vec![vec![0.0], vec![3.0]], vec!["a", "b"]).unwrap();
        assert_eq!(*knn.predict(&[1.0]), "a");
        assert_eq!(*knn.predict(&[2.0]), "b");
    }

    #[test]
    fn fit_errors() {
        assert_eq!(
            Classifier::<u8>::fit(0, vec![vec![1.0]], vec![0]).unwrap_err(),
            FitError::ZeroK
        );
        assert_eq!(
            Classifier::<u8>::fit(1, vec![], vec![]).unwrap_err(),
            FitError::EmptyTrainingSet
        );
        assert_eq!(
            Classifier::fit(1, vec![vec![1.0]], vec![0, 1]).unwrap_err(),
            FitError::LengthMismatch {
                features: 1,
                labels: 2
            }
        );
        assert!(matches!(
            Classifier::fit(1, vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]).unwrap_err(),
            FitError::RaggedFeatures { index: 1, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn wrong_query_dims_panics() {
        let knn = Classifier::fit(1, vec![vec![0.0, 0.0]], vec![0]).unwrap();
        let _ = knn.predict(&[1.0]);
    }

    #[test]
    fn fit_error_display() {
        assert!(FitError::ZeroK.to_string().contains("at least 1"));
        let e = FitError::LengthMismatch {
            features: 3,
            labels: 2,
        };
        assert!(e.to_string().contains('3'));
    }
}
