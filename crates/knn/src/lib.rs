//! K-nearest-neighbour classification for data-partitioning selection.
//!
//! §5 of the IGO paper: "we employ the K-nearest neighbors (KNN) algorithm
//! to identify an efficient data partitioning scheme for each layer",
//! using "the dimensions of dX, dW, and dY as features", an 80/20
//! train/test split, and 1000 repetitions, reporting ~91% mean accuracy.
//!
//! This crate provides the classifier itself, generically over label type:
//! [`Classifier`] for fitting/predicting, [`evaluate`] /
//! [`repeated_accuracy`] for split-and-score experiments. Feature vectors
//! are plain `Vec<f64>`; callers are expected to pre-scale (the IGO pipeline
//! feeds `log2` of the tensor dimensions, which makes Euclidean distance a
//! relative-size metric).
//!
//! # Example
//!
//! ```
//! use igo_knn::Classifier;
//!
//! let xs = vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![5.0, 5.0], vec![5.1, 4.9]];
//! let ys = vec!["small", "small", "big", "big"];
//! let knn = Classifier::fit(3, xs, ys)?;
//! assert_eq!(knn.predict(&[0.2, 0.0]), &"small");
//! assert_eq!(knn.predict(&[4.5, 5.5]), &"big");
//! # Ok::<(), igo_knn::FitError>(())
//! ```

pub mod classifier;
pub mod eval;

pub use classifier::{Classifier, FitError};
pub use eval::{evaluate, repeated_accuracy, Split};
