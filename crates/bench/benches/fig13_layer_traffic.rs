//! Figure 13: DRAM traffic vs execution time of `+Rearrangement` on the
//! most memory-intensive layers (the top 15% longest-running backward
//! layers of the large NPU, first layers excluded).
//!
//! The paper's observation: the layers split into two groups — FC / deep
//! convolution layers where the traffic reduction translates directly
//! into time (left of the line), and shallow convolutions with huge input
//! feature maps where the two gradient computations are hard to balance
//! and the time gain lags the traffic gain.

use igo_core::{simulate_layer_backward_ex, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

struct Row {
    name: String,
    base_cycles: u64,
    norm_time: f64,
    norm_traffic: f64,
    shallow: bool,
}

fn main() {
    igo_bench::header(
        "Figure 13 — traffic vs time of +Rearrangement, top-15% layers (large NPU)",
        "traffic reduction tracks time for FC/deep layers; lags for shallow convs",
    );
    let config = NpuConfig::large_single_core();
    let suite = zoo::server_suite(config.default_batch());

    let mut rows = Vec::new();
    for model in &suite {
        for layer in &model.layers {
            if layer.is_first {
                // The paper excludes first layers: no dX to interleave.
                continue;
            }
            let (base, _) = simulate_layer_backward_ex(
                layer.gemm,
                layer.ifmap_density,
                &config,
                Technique::Baseline,
                false,
            );
            let (rearr, _) = simulate_layer_backward_ex(
                layer.gemm,
                layer.ifmap_density,
                &config,
                Technique::Rearrangement,
                false,
            );
            rows.push(Row {
                name: format!("{}_{}", model.id.abbr(), layer.name),
                base_cycles: base.cycles * layer.count as u64 * layer.groups as u64,
                norm_time: rearr.cycles as f64 / base.cycles as f64,
                norm_traffic: rearr.traffic.total() as f64 / base.traffic.total() as f64,
                // The paper's "shallow" group: very large input feature
                // maps with small per-channel weights.
                shallow: layer.gemm.m() > 50 * layer.gemm.k()
                    && layer.gemm.m() > 50 * layer.gemm.n(),
            });
        }
    }

    rows.sort_by_key(|r| std::cmp::Reverse(r.base_cycles));
    let keep = (rows.len() * 15 / 100).max(10).min(rows.len());
    let (mut deep, mut shallow) = (Vec::new(), Vec::new());
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "layer", "norm time", "norm traffic", "group"
    );
    for row in rows.iter().take(keep) {
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>10}",
            row.name,
            row.norm_time,
            row.norm_traffic,
            if row.shallow { "shallow" } else { "deep/fc" }
        );
        if row.shallow {
            shallow.push((row.norm_time, row.norm_traffic));
        } else {
            deep.push((row.norm_time, row.norm_traffic));
        }
    }
    let gap = |v: &[(f64, f64)]| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|(t, q)| t - q).sum::<f64>() / v.len() as f64
    };
    println!();
    println!(
        "deep/fc group:  mean time-vs-traffic gap {:+.3} ({} layers) — time tracks traffic",
        gap(&deep),
        deep.len()
    );
    println!(
        "shallow group:  mean time-vs-traffic gap {:+.3} ({} layers) — paper: gains lag traffic",
        gap(&shallow),
        shallow.len()
    );
}
