//! Figure 16: sensitivity to batch size — the full stack vs the baseline
//! at per-core batch 8 / 16 / 32 on the single-core large NPU (compute,
//! bandwidth and SPM held constant).
//!
//! Paper: improvements are essentially flat — 14.5%, 14.7%, 14.0%.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 16 — batch-size sensitivity (large NPU, single core)",
        "avg improvement 14.5% (b8), 14.7% (b16), 14.0% (b32): no consistent trend",
    );
    let batches = [8u64, 16, 32];
    print!("{:<6}", "model");
    for b in batches {
        print!(" {:>8}", format!("b{b}"));
    }
    println!();

    let mut means = [0.0f64; 3];
    let ids = zoo::SERVER_SUITE;
    for id in ids {
        print!("{:<6}", id.abbr());
        for (idx, batch) in batches.into_iter().enumerate() {
            let config = NpuConfig::large_single_core().with_batch_per_core(batch);
            let model = zoo::model(id, batch);
            let base = simulate_model(&model, &config, Technique::Baseline);
            let ours = simulate_model(&model, &config, Technique::DataPartitioning);
            let norm = ours.normalized_to(&base);
            means[idx] += norm;
            print!(" {norm:>8.3}");
        }
        println!();
    }
    print!("{:<6}", "AVG");
    for m in means {
        print!(" {:>8.3}", m / ids.len() as f64);
    }
    println!("   <- paper avg: 0.855 / 0.853 / 0.860 (flat)");
}
