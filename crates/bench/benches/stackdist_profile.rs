//! Profile-once vs replay-per-rung: the capacity-oblivious stack-distance
//! profiler ([`CapacityProfile`]) answers an entire SPM ladder from a
//! single pass over a schedule's access stream, where the solo analytic
//! replay pays a full next-use back-scan and residency walk per rung.
//!
//! Two ladders bracket the profiler's wall-clock win on a fixed schedule.
//! On the roomy ladder every barrier region fits every rung, so the
//! shared back-scan pre-resolves the whole no-eviction path once and the
//! rungs ride its aggregates; what remains per rung is exact timeline
//! advancement (each rung's memory/compute race differs), so the speedup
//! settles around the shared work's share of a solo replay (~1.5-1.7x on
//! this layer, asymptotic in ladder width). On the tight ladder every
//! rung additionally walks its own OPT residency model and only the
//! back-scan is shared, so the single pass roughly breaks even on wall
//! time — its win there is the collapsed analytic-run count (one run
//! instead of eight) and the reusable [`CapacityProfile`] artifact.
//! (The `igo-sim sweep` grid sits between the brackets and nearer the
//! tight one, because its blockings adapt to capacity so rungs rarely
//! share one schedule — see docs/simulator.md §6.)

use igo_bench::wallclock::time_per_iter;
use igo_core::{BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
use igo_npu_sim::{
    AnalyticCollector, AnalyticScratch, CapacityProfile, Engine, LadderScratch, NpuConfig, Schedule,
};
use igo_tensor::GemmShape;

/// Collect the fused interleaved backward stream of one BERT-large-sized
/// FFN layer (the zoo's heaviest single-layer schedule class).
fn collect(config: &NpuConfig, gemm: GemmShape) -> AnalyticCollector {
    let policy = TilePolicy::for_config(config);
    let mut proto = Schedule::new("bench");
    let tensors = LayerTensors::register(&mut proto, "l");
    let builder = BackwardBuilder::new(gemm, policy, tensors);
    let mut collector = AnalyticCollector::new();
    builder.register_grids(&mut collector);
    builder.emit(BackwardOrder::Interleaved, false, &mut collector);
    collector
}

fn main() {
    igo_bench::header(
        "Stack-distance profiler — profile-once vs replay-per-rung",
        "reproduction-internal performance, no paper counterpart",
    );

    let config = NpuConfig::large_single_core();
    let gemm = GemmShape::new(1024, 4096, 1024);
    let collector = collect(&config, gemm);
    let machine = Engine::new(&config);
    let base = machine.residency_bytes();

    let ladders: [(&str, Vec<u64>); 2] = [
        (
            "roomy (2x..256x, fits)",
            (0..8).map(|i| (base * 2) << i).collect(),
        ),
        (
            "tight (1/8x..1x, evicts)",
            (1..=8).map(|i| base / 8 * i).collect(),
        ),
    ];

    for (name, caps) in ladders {
        // Per-rung reference engines (`cores == 1`: residency is spm/2);
        // construction stays outside both timed loops.
        let rung_engines: Vec<Engine> = caps
            .iter()
            .map(|&cap| Engine::new(&config.clone().with_spm_bytes(cap * 2)))
            .collect();

        // Sanity: every profiled rung must equal its solo replay.
        let mut ladder_scratch = LadderScratch::new();
        let mut scratch = AnalyticScratch::new();
        let profile = CapacityProfile::compute(&collector, &machine, &caps, &mut ladder_scratch);
        for (&cap, engine) in caps.iter().zip(&rung_engines) {
            assert_eq!(
                profile.query(cap),
                collector.replay(engine, &mut scratch),
                "profiled rung {cap} diverged from solo replay"
            );
        }

        let t_profile = time_per_iter(20, || {
            std::hint::black_box(CapacityProfile::compute(
                std::hint::black_box(&collector),
                &machine,
                &caps,
                &mut ladder_scratch,
            ));
        });
        let t_solo = time_per_iter(20, || {
            for engine in &rung_engines {
                std::hint::black_box(std::hint::black_box(&collector).replay(engine, &mut scratch));
            }
        });
        println!(
            "{name:<26} : profile-once {:>9.1} us, {}x solo replay {:>9.1} us, speedup {:>5.2}x",
            t_profile * 1e6,
            caps.len(),
            t_solo * 1e6,
            t_solo / t_profile
        );
    }
}
