//! Table 2: prior DNN-scheduling studies vs this work.
//!
//! A static capability matrix; printed for completeness so the full set of
//! tables regenerates from `cargo bench`.

fn main() {
    igo_bench::header(
        "Table 2 — prior studies for DNN scheduling space",
        "reuse-in-independent-operations / training / tiling flags",
    );
    println!(
        "{:<14} {:^28} {:^10} {:^8}",
        "study", "reuse in independent ops", "training", "tiling"
    );
    let rows = [
        ("Maestro", false, false, true),
        ("MARVEL", false, false, true),
        ("Timeloop", false, false, true),
        ("Interstellar", false, false, true),
        ("Ours (IGO)", true, true, true),
    ];
    for (name, inter_op, training, tiling) in rows {
        let mark = |b: bool| if b { "yes" } else { "-" };
        println!(
            "{:<14} {:^28} {:^10} {:^8}",
            name,
            mark(inter_op),
            mark(training),
            mark(tiling)
        );
    }
}
