//! Table 3: the evaluated NPU configurations, as constructed by
//! `igo_npu_sim::NpuConfig` presets.

use igo_npu_sim::NpuConfig;

fn print_config(label: &str, c: &NpuConfig) {
    println!("{label}");
    println!(
        "  compute unit        {} x ({} x {} PE)",
        c.cores, c.pe.rows, c.pe.cols
    );
    println!(
        "  DRAM bandwidth      {:.0} GB/s total ({:.0} GB/s per core)",
        c.dram.bandwidth_bytes_per_sec / 1e9,
        c.dram.bandwidth_bytes_per_sec / 1e9 / c.cores as f64
    );
    println!("  frequency           {:.0} MHz", c.freq_hz / 1e6);
    println!(
        "  scratchpad memory   {} MiB total ({} MiB per core)",
        c.spm_bytes >> 20,
        c.spm_bytes_per_core() >> 20
    );
    println!(
        "  batch               {} ({} per core)",
        c.default_batch(),
        c.batch_per_core
    );
}

fn main() {
    igo_bench::header(
        "Table 3 — NPU configurations",
        "Small NPU: 45x45 PE, 22 GB/s, 1 GHz, 1 MB; Large NPU: 1-8 x 128x128 PE, 150 GB/s/core, 1050 MHz, 8 MB/core",
    );
    print_config(
        "Small NPU (edge, ARM Ethos-N77-class):",
        &NpuConfig::small_edge(),
    );
    println!();
    print_config(
        "Large NPU x1 (server, TPU-class):",
        &NpuConfig::large_single_core(),
    );
    println!();
    print_config(
        "Large NPU x4 (the Figure 14 quad-core):",
        &NpuConfig::large_server(4),
    );
}
