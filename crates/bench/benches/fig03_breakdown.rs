//! Figure 3: training-step time decomposition on an A100-class GPU
//! (batch 256), per model and averaged.
//!
//! Paper averages: forward 27.6%, backward 56.5%, memcopy 3.0%,
//! loss 2.6%, update 10.3%.

use igo_gpu_sim::breakdown::{average_fractions, training_breakdown, GpuConfig};
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 3 — A100 training-step breakdown (batch 256)",
        "avg: fwd 27.6% / bwd 56.5% / memcopy 3.0% / loss 2.6% / update 10.3%",
    );
    let gpu = GpuConfig::a100();
    let suite = zoo::server_suite(256);
    println!(
        "{:<6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "model", "fwd", "bwd", "memcopy", "loss", "update"
    );
    for model in &suite {
        let f = training_breakdown(model, &gpu).fractions();
        println!(
            "{:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            model.id.abbr(),
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0,
            f[4] * 100.0
        );
    }
    let avg = average_fractions(&suite, &gpu);
    println!(
        "{:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%   <- paper: 27.6 / 56.5 / 3.0 / 2.6 / 10.3",
        "AVG",
        avg[0] * 100.0,
        avg[1] * 100.0,
        avg[2] * 100.0,
        avg[3] * 100.0,
        avg[4] * 100.0
    );
}
