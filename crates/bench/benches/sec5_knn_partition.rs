//! §5 text experiment: KNN selection of the data-partitioning scheme.
//!
//! Paper protocol: features are the dimensions of dX/dW/dY, 80/20 random
//! split, 1000 repetitions — mean accuracy ≈ 91%; on a dual-core NPU the
//! ideal (oracle) partitioning improves 22.4%, the KNN-predicted one
//! 21.5%.

use igo_core::partition_select::knn_partition_experiment;
use igo_npu_sim::NpuConfig;
use igo_tensor::GemmShape;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Section 5 — KNN partition-scheme selection (dual-core large NPU)",
        "accuracy ~91% over 1000 trials; improvement 22.4% ideal vs 21.5% KNN",
    );
    let config = NpuConfig::large_server(2);
    // All distinct backward-eligible layer shapes across the server suite.
    let gemms: Vec<GemmShape> = zoo::server_suite(config.default_batch())
        .iter()
        .flat_map(|m| {
            m.layers
                .iter()
                .filter(|l| !l.is_first)
                .map(|l| l.gemm)
                .collect::<Vec<_>>()
        })
        .collect();

    let out = knn_partition_experiment(&gemms, &config, 3, 1000, 20230701);
    println!("distinct layers labelled : {}", out.layers);
    println!(
        "KNN accuracy (1000 x 80/20): {:.1}%   <- paper: ~91%",
        out.accuracy * 100.0
    );
    println!("test-set improvement vs conventional weight-sharing partitioning:");
    println!(
        "  oracle selection : {}   <- paper: 22.4%",
        igo_bench::improvement(out.ideal_cycles as f64 / out.reference_cycles as f64)
    );
    println!(
        "  KNN selection    : {}   <- paper: 21.5%",
        igo_bench::improvement(out.knn_cycles as f64 / out.reference_cycles as f64)
    );
}
