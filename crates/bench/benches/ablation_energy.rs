//! Extension study: the technique ladder in *energy* terms.
//!
//! The paper motivates SPM reuse with throughput and power efficiency
//! (§2.1). All techniques perform identical MACs, so energy differences
//! come from the DRAM term — on DRAM-expensive edge devices the energy
//! ladder is at least as pronounced as the time ladder.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::{EnergyModel, EnergyReport, NpuConfig};
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Extension — training-step energy per technique",
        "not in the paper's evaluation; quantifies the §2.1 power-efficiency motivation",
    );
    for (config, suite) in [
        (NpuConfig::small_edge(), zoo::edge_suite(4)),
        (NpuConfig::large_single_core(), zoo::server_suite(8)),
    ] {
        let model_energy = EnergyModel::for_config(&config);
        println!(
            "-- {} (DRAM {} pJ/B) --",
            config.name, model_energy.pj_per_dram_byte
        );
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>10}",
            "model", "base (mJ)", "ours (mJ)", "saved", "dram share"
        );
        let mut base_total = 0.0;
        let mut ours_total = 0.0;
        for model in &suite {
            let energy_of = |technique| {
                let report = simulate_model(model, &config, technique);
                let mut e = EnergyReport::default();
                for layer in &report.layers {
                    e.add(&model_energy.estimate(&layer.forward.scaled(layer.multiplicity)));
                    e.add(&model_energy.estimate(&layer.backward.scaled(layer.multiplicity)));
                }
                e
            };
            let base = energy_of(Technique::Baseline);
            let ours = energy_of(Technique::DataPartitioning);
            base_total += base.total_mj();
            ours_total += ours.total_mj();
            println!(
                "{:<6} {:>12.2} {:>12.2} {:>11.1}% {:>9.1}%",
                model.id.abbr(),
                base.total_mj(),
                ours.total_mj(),
                (1.0 - ours.total_pj() / base.total_pj()) * 100.0,
                base.dram_fraction() * 100.0
            );
        }
        println!(
            "suite total: {base_total:.1} mJ -> {ours_total:.1} mJ ({:.1}% saved)\n",
            (1.0 - ours_total / base_total) * 100.0
        );
    }
}
