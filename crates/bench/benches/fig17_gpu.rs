//! Figure 17: GPU validation — the technique ladder applied to an
//! RTX-3090-class shared-memory kernel model, backward pass only, with the
//! small-NPU batch (4). The baseline is the better of two sequential
//! kernels and one sequential fused kernel, so kernel-launch savings are
//! excluded and only the dY-reuse benefit remains.
//!
//! Paper: cumulative improvements 8.6% / 20.3% / 30.3%.

use igo_gpu_sim::breakdown::GpuConfig;
use igo_gpu_sim::kernels::{backward_ladder, suite_ladder, SmemConfig};
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 17 — GPU (RTX-3090-class) backward-pass ladder",
        "cumulative improvement: interleaving 8.6%, +rearrangement 20.3%, +partitioning 30.3%",
    );
    let gpu = GpuConfig::rtx3090();
    let smem = SmemConfig::default();
    let suite = zoo::edge_suite(4);
    println!(
        "{:<6} {:>13} {:>15} {:>18}",
        "model", "Interleaving", "+Rearrangement", "+DataPartitioning"
    );
    for model in &suite {
        let l = backward_ladder(model, &gpu, &smem);
        println!(
            "{:<6} {:>13.3} {:>15.3} {:>18.3}",
            model.id.abbr(),
            l.interleaving,
            l.rearrangement,
            l.partitioning
        );
    }
    let avg = suite_ladder(&suite, &gpu, &smem);
    println!(
        "{:<6} {:>13.3} {:>15.3} {:>18.3}   <- paper: 0.914 / 0.797 / 0.697",
        "AVG", avg.interleaving, avg.rearrangement, avg.partitioning
    );
}
