//! Micro-benchmarks: simulator throughput and transformation cost. These
//! measure the *reproduction's own* performance (ops/sec of the engine,
//! schedule-generation cost, KNN prediction latency), not the paper's
//! results. Timed with the in-repo `igo_bench::wallclock` helper so the
//! harness needs no external benchmarking crate.

use igo_bench::wallclock::time_per_iter;
use igo_core::{BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
use igo_knn::Classifier;
use igo_npu_sim::{Engine, NpuConfig, Schedule};
use igo_tensor::GemmShape;

fn build_backward(order: BackwardOrder) -> Schedule {
    let config = NpuConfig::large_single_core();
    let policy = TilePolicy::for_config(&config);
    let mut s = Schedule::new("bench");
    let tensors = LayerTensors::register(&mut s, "l");
    BackwardBuilder::new(GemmShape::new(4096, 1024, 4096), policy, tensors)
        .emit(order, false, &mut s);
    s
}

fn main() {
    igo_bench::header(
        "Micro-benchmarks — engine / schedule-build / KNN throughput",
        "reproduction-internal performance, no paper counterpart",
    );

    let config = NpuConfig::large_single_core();
    let engine = Engine::new(&config);
    let schedule = build_backward(BackwardOrder::Baseline);
    let t = time_per_iter(50, || {
        std::hint::black_box(engine.run(std::hint::black_box(&schedule)));
    });
    println!(
        "engine/run_bert_ffn_baseline : {:>10.1} us/iter ({:.0} ops/sec over {} ops)",
        t * 1e6,
        schedule.len() as f64 / t,
        schedule.len()
    );

    for (name, order) in [
        ("baseline", BackwardOrder::Baseline),
        ("interleaved", BackwardOrder::Interleaved),
        ("dx_major", BackwardOrder::DxMajor),
    ] {
        let t = time_per_iter(50, || {
            std::hint::black_box(build_backward(std::hint::black_box(order)));
        });
        println!("schedule_build/{name:<12} : {:>10.1} us/iter", t * 1e6);
    }

    let features: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, (i % 29) as f64])
        .collect();
    let labels: Vec<u8> = (0..200).map(|i| (i % 3) as u8).collect();
    let knn = Classifier::fit(3, features, labels).expect("valid training set");
    let t = time_per_iter(10_000, || {
        std::hint::black_box(knn.predict(std::hint::black_box(&[3.0, 2.0, 11.0])));
    });
    println!("knn_predict                  : {:>10.3} us/iter", t * 1e6);
}
