//! Criterion micro-benchmarks: simulator throughput and transformation
//! cost. These measure the *reproduction's own* performance (ops/sec of
//! the engine, schedule-generation cost, KNN prediction latency), not the
//! paper's results.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use igo_core::{BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
use igo_knn::Classifier;
use igo_npu_sim::{Engine, NpuConfig, Schedule};
use igo_tensor::GemmShape;

fn build_backward(order: BackwardOrder) -> Schedule {
    let config = NpuConfig::large_single_core();
    let policy = TilePolicy::for_config(&config);
    let mut s = Schedule::new("bench");
    let tensors = LayerTensors::register(&mut s, "l");
    BackwardBuilder::new(GemmShape::new(4096, 1024, 4096), policy, tensors)
        .emit(order, false, &mut s);
    s
}

fn bench_engine(c: &mut Criterion) {
    let config = NpuConfig::large_single_core();
    let engine = Engine::new(&config);
    let schedule = build_backward(BackwardOrder::Baseline);
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(schedule.len() as u64));
    group.bench_function("run_bert_ffn_baseline", |b| {
        b.iter(|| engine.run(std::hint::black_box(&schedule)))
    });
    group.finish();
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_build");
    for (name, order) in [
        ("baseline", BackwardOrder::Baseline),
        ("interleaved", BackwardOrder::Interleaved),
        ("dx_major", BackwardOrder::DxMajor),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| build_backward(std::hint::black_box(order)))
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let features: Vec<Vec<f64>> = (0..200)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, (i % 29) as f64])
        .collect();
    let labels: Vec<u8> = (0..200).map(|i| (i % 3) as u8).collect();
    let knn = Classifier::fit(3, features, labels).expect("valid training set");
    c.bench_function("knn_predict", |b| {
        b.iter(|| knn.predict(std::hint::black_box(&[3.0, 2.0, 11.0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine, bench_schedule_build, bench_knn
}
criterion_main!(benches);
