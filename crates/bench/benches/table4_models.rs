//! Table 4: the evaluated DNN models, rebuilt from the zoo with their
//! measured parameter counts next to the paper's.

use igo_workloads::{zoo, ModelId};

fn row(id: ModelId, batch: u64, paper_params: &str) {
    let m = zoo::model(id, batch);
    let params = m.params();
    let human = if params >= 1_000_000_000 {
        format!("{:.1}B", params as f64 / 1e9)
    } else {
        format!("{:.0}M", params as f64 / 1e6)
    };
    println!(
        "{:<22} {:>5}  paper {:>6}  ours {:>7}  ({} distinct layers, {} total)",
        m.name,
        m.id.abbr(),
        paper_params,
        human,
        m.distinct_layers(),
        m.total_layers()
    );
}

fn main() {
    igo_bench::header(
        "Table 4 — evaluated DNN models",
        "parameter counts per Table 4",
    );
    println!("-- server-suite variants (batch 8) --");
    row(ModelId::FasterRcnn, 8, "19M");
    row(ModelId::GoogleNet, 8, "62M");
    row(ModelId::Ncf, 8, "3B");
    row(ModelId::Resnet50, 8, "25M");
    row(ModelId::Dlrm, 8, "25B");
    row(ModelId::MobileNet, 8, "13M");
    row(ModelId::YoloV5, 8, "47M");
    row(ModelId::BertLarge, 8, "340M");
    row(ModelId::T5Large, 8, "770M");
    println!("-- edge-suite size variants (batch 4) --");
    row(ModelId::YoloV2Tiny, 4, "11M");
    row(ModelId::BertTiny, 4, "14M");
    row(ModelId::T5Small, 4, "60M");
}
