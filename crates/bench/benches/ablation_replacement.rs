//! Ablation: SPM residency model — compiler-managed (Belady/OPT, the
//! default) vs a hardware-cache-style LRU.
//!
//! DESIGN.md motivates modelling the software-managed SPM as an OPT cache
//! over the known schedule. This harness quantifies the difference: the
//! baseline benefits most from OPT (its two sequential kernels have long,
//! compiler-visible reuse distances), so reproductions that model SPM as
//! LRU overstate the techniques' gains.

use igo_core::{BackwardBuilder, BackwardOrder, LayerTensors, TilePolicy};
use igo_npu_sim::{Engine, NpuConfig, Replacement, Schedule};
use igo_tensor::GemmShape;
use igo_workloads::zoo;

fn run(
    gemm: GemmShape,
    density: f64,
    config: &NpuConfig,
    order: BackwardOrder,
    repl: Replacement,
) -> u64 {
    let policy = TilePolicy::for_config(config);
    let mut s = Schedule::new("abl");
    let tensors = LayerTensors::register(&mut s, "l");
    BackwardBuilder::new(gemm, policy, tensors)
        .with_ifmap_density(density)
        .emit(order, false, &mut s);
    Engine::new(config).with_replacement(repl).run(&s).cycles
}

fn main() {
    igo_bench::header(
        "Ablation — SPM residency: compiler-managed (OPT) vs LRU",
        "methodological: how much the baseline gains from software SPM management",
    );
    let config = NpuConfig::large_single_core();
    let model = zoo::model(igo_workloads::ModelId::Resnet50, 8);
    println!(
        "{:<16} {:>12} {:>12} {:>10} | {:>18}",
        "layer", "base(OPT)", "base(LRU)", "LRU/OPT", "rearr gain OPT/LRU"
    );
    let mut opt_gain = Vec::new();
    let mut lru_gain = Vec::new();
    for layer in model.layers.iter().filter(|l| !l.is_first).take(12) {
        let b_opt = run(
            layer.gemm,
            layer.ifmap_density,
            &config,
            BackwardOrder::Baseline,
            Replacement::Opt,
        );
        let b_lru = run(
            layer.gemm,
            layer.ifmap_density,
            &config,
            BackwardOrder::Baseline,
            Replacement::Lru,
        );
        let order = BackwardOrder::from(igo_core::select_order(layer.gemm));
        let r_opt = run(
            layer.gemm,
            layer.ifmap_density,
            &config,
            order,
            Replacement::Opt,
        );
        let r_lru = run(
            layer.gemm,
            layer.ifmap_density,
            &config,
            order,
            Replacement::Lru,
        );
        let g_opt = 1.0 - r_opt as f64 / b_opt as f64;
        let g_lru = 1.0 - r_lru as f64 / b_lru as f64;
        opt_gain.push(g_opt);
        lru_gain.push(g_lru);
        println!(
            "{:<16} {:>12} {:>12} {:>10.3} | {:>+8.1}% / {:>+6.1}%",
            layer.name,
            b_opt,
            b_lru,
            b_lru as f64 / b_opt as f64,
            g_opt * 100.0,
            g_lru * 100.0
        );
    }
    println!(
        "mean rearrangement gain: {:+.1}% under OPT, {:+.1}% under LRU",
        igo_bench::mean(&opt_gain) * 100.0,
        igo_bench::mean(&lru_gain) * 100.0
    );
}
