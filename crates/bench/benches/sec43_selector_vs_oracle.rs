//! §4.3 text experiment: Algorithm 1's static order selection vs the
//! per-layer oracle that actually runs all three orders.
//!
//! Paper: rearrangement with Algorithm 1 improves fwd+bwd by 23.8% (edge)
//! and 10.9% (server); the per-layer oracle reaches 25.1% and 12.4% — the
//! static selector captures almost all of the headroom.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Section 4.3 — Algorithm 1 vs per-layer oracle order selection",
        "edge: 23.8% vs 25.1% ideal; server: 10.9% vs 12.4% ideal",
    );
    for (config, suite) in [
        (NpuConfig::small_edge(), zoo::edge_suite(4)),
        (NpuConfig::large_single_core(), zoo::server_suite(8)),
    ] {
        println!("-- {} --", config.name);
        let mut alg = Vec::new();
        let mut oracle = Vec::new();
        let mut agreements = 0usize;
        let mut layers = 0usize;
        for model in &suite {
            let base = simulate_model(model, &config, Technique::Baseline);
            let a = simulate_model(model, &config, Technique::Rearrangement);
            let o = simulate_model(model, &config, Technique::RearrangementOracle);
            alg.push(a.normalized_to(&base));
            oracle.push(o.normalized_to(&base));
            for (la, lo) in a.layers.iter().zip(&o.layers) {
                layers += 1;
                if la.decision.order == lo.decision.order {
                    agreements += 1;
                }
            }
            println!(
                "{:<6} algorithm1 {:>6.3}  oracle {:>6.3}",
                model.id.abbr(),
                a.normalized_to(&base),
                o.normalized_to(&base)
            );
        }
        println!(
            "AVG    algorithm1 {} vs oracle {} | selector agreement {:.0}% of {layers} layers",
            igo_bench::improvement(igo_bench::mean(&alg)),
            igo_bench::improvement(igo_bench::mean(&oracle)),
            100.0 * agreements as f64 / layers as f64,
        );
        println!();
    }
}
