//! Figure 15: sensitivity to DRAM bandwidth — the full stack vs the
//! baseline at 1x / 0.5x / 0.25x of the large NPU's 150 GB/s.
//!
//! Paper: improvements grow as bandwidth shrinks — 14.5%, 19.3%, 22.7%.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 15 — DRAM bandwidth sensitivity (large NPU, single core)",
        "avg improvement 14.5% (1x), 19.3% (0.5x), 22.7% (0.25x)",
    );
    let scales = [1.0f64, 0.5, 0.25];
    print!("{:<6}", "model");
    for s in scales {
        print!(" {:>8}", format!("{s}x"));
    }
    println!();

    let suite = zoo::server_suite(8);
    let mut means = [0.0f64; 3];
    for model in &suite {
        print!("{:<6}", model.id.abbr());
        for (idx, scale) in scales.into_iter().enumerate() {
            let config = NpuConfig::large_single_core().with_bandwidth_scale(scale);
            let base = simulate_model(model, &config, Technique::Baseline);
            let ours = simulate_model(model, &config, Technique::DataPartitioning);
            let norm = ours.normalized_to(&base);
            means[idx] += norm;
            print!(" {norm:>8.3}");
        }
        println!();
    }
    print!("{:<6}", "AVG");
    for m in means {
        print!(" {:>8.3}", m / suite.len() as f64);
    }
    println!("   <- paper avg: 0.855 / 0.807 / 0.773");
}
