//! Figure 12: cumulative technique ladder on the two single-core NPUs,
//! execution time normalised to the baseline.
//!
//! Paper averages: small NPU — Interleaving −0.8%, +Rearrangement −23.8%,
//! +DataPartitioning −29.3%; large NPU — −7.4%, −10.9%, −14.5%.

use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 12 — single-core technique ladder (normalised exec time)",
        "small NPU avg: 0.992 / 0.762 / 0.707; large NPU avg: 0.926 / 0.891 / 0.855",
    );
    for (config, suite, paper) in [
        (
            NpuConfig::small_edge(),
            zoo::edge_suite(4),
            "paper avg: inter 0.992, +rearr 0.762, +part 0.707",
        ),
        (
            NpuConfig::large_single_core(),
            zoo::server_suite(8),
            "paper avg: inter 0.926, +rearr 0.891, +part 0.855",
        ),
    ] {
        println!("-- {} --", config.name);
        println!(
            "{:<6} {:>13} {:>15} {:>18}",
            "model", "Interleaving", "+Rearrangement", "+DataPartitioning"
        );
        let mut cols = [Vec::new(), Vec::new(), Vec::new()];
        for model in &suite {
            let (base, rest) = igo_bench::ladder(model, &config);
            let norms: Vec<f64> = rest.iter().map(|r| r.normalized_to(&base)).collect();
            for (c, n) in cols.iter_mut().zip(&norms) {
                c.push(*n);
            }
            println!(
                "{:<6} {:>13.3} {:>15.3} {:>18.3}",
                model.id.abbr(),
                norms[0],
                norms[1],
                norms[2]
            );
        }
        println!(
            "{:<6} {:>13.3} {:>15.3} {:>18.3}   <- {paper}",
            "AVG",
            igo_bench::mean(&cols[0]),
            igo_bench::mean(&cols[1]),
            igo_bench::mean(&cols[2]),
        );
        println!();
    }
}
