//! Figure 14: multi-core scalability — the full technique stack vs the
//! baseline with the same core count, for 1/2/4/8 large-NPU cores (DRAM
//! bandwidth, SPM and batch scale with cores; SPM shared).
//!
//! Paper: improvements grow from 14.5% (single core) to 27.7% (octa-core);
//! 23.7% on the TPUv4-TensorCore-like quad-core; worst case (octa-core
//! mob) still 10.5%.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 14 — multi-core scaling (normalised to same-core-count baseline)",
        "avg improvement: 14.5% (x1) -> 23.7% (x4) -> 27.7% (x8)",
    );
    print!("{:<6}", "model");
    for cores in [1u32, 2, 4, 8] {
        print!(" {:>8}", format!("x{cores}"));
    }
    println!();

    let mut means = [0.0f64; 4];
    let suite_ids = zoo::SERVER_SUITE;
    for id in suite_ids {
        print!("{:<6}", id.abbr());
        for (idx, cores) in [1u32, 2, 4, 8].into_iter().enumerate() {
            let config = NpuConfig::large_server(cores);
            let model = zoo::model(id, config.default_batch());
            let base = simulate_model(&model, &config, Technique::Baseline);
            let ours = simulate_model(&model, &config, Technique::DataPartitioning);
            let norm = ours.normalized_to(&base);
            means[idx] += norm;
            print!(" {norm:>8.3}");
        }
        println!();
    }
    print!("{:<6}", "AVG");
    for m in means {
        print!(" {:>8.3}", m / suite_ids.len() as f64);
    }
    println!("   <- paper avg: 0.855 / ~0.80 / 0.763 / 0.723");
}
