//! Figure 5: share of the output gradient `dY` in backward-pass DRAM
//! traffic under the baseline schedule, on the large NPU.
//!
//! Paper: dY is 39.0% of read+write traffic and 51.4% of read traffic on
//! average; 68.3% of reads for dlrm.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_tensor::TensorClass;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 5 — dY share of backward-pass traffic (large NPU, baseline)",
        "avg read+write 39.0%, avg read 51.4%; dlrm read 68.3%",
    );
    let config = NpuConfig::large_single_core();
    let suite = zoo::server_suite(config.default_batch());
    println!("{:<6} {:>16} {:>12}", "model", "read+write", "read-only");
    let mut rw = Vec::new();
    let mut ro = Vec::new();
    for model in &suite {
        let report = simulate_model(model, &config, Technique::Baseline);
        let t = report.backward_traffic();
        let rw_ratio = t.total_ratio(TensorClass::OutGrad);
        let read_ratio = t.read_ratio(TensorClass::OutGrad);
        rw.push(rw_ratio);
        ro.push(read_ratio);
        println!(
            "{:<6} {:>15.1}% {:>11.1}%",
            model.id.abbr(),
            rw_ratio * 100.0,
            read_ratio * 100.0
        );
    }
    println!(
        "{:<6} {:>15.1}% {:>11.1}%   <- paper avg: 39.0% / 51.4%",
        "AVG",
        igo_bench::mean(&rw) * 100.0,
        igo_bench::mean(&ro) * 100.0
    );
}
