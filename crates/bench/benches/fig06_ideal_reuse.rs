//! Figure 6: performance potential when the entire `dY` is reused — the
//! baseline schedule with the `dW` pass's `dY` reads elided (§3.3).
//!
//! Paper: average speedup 1.43x on the large NPU and 1.70x on the small
//! NPU; the smaller SPM leaves more to gain.

use igo_core::{simulate_model, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::zoo;

fn main() {
    igo_bench::header(
        "Figure 6 — hypothetical full dY reuse (normalised execution time)",
        "avg speedup 1.43x (large NPU), 1.70x (small NPU)",
    );
    for (config, suite) in [
        (NpuConfig::large_single_core(), zoo::server_suite(8)),
        (NpuConfig::small_edge(), zoo::edge_suite(4)),
    ] {
        println!("-- {} --", config.name);
        let mut speedups = Vec::new();
        for model in &suite {
            let base = simulate_model(model, &config, Technique::Baseline);
            let ideal = simulate_model(model, &config, Technique::IdealDyReuse);
            let speedup = base.total_cycles() as f64 / ideal.total_cycles() as f64;
            speedups.push(speedup);
            println!(
                "{:<6} normalised time {:>6.3}  (speedup {:>5.2}x)",
                model.id.abbr(),
                1.0 / speedup,
                speedup
            );
        }
        println!(
            "AVG    speedup {:>5.2}x   <- paper: {}",
            igo_bench::mean(&speedups),
            if config.cores == 1 && config.pe.rows == 128 {
                "1.43x"
            } else {
                "1.70x"
            }
        );
    }
}
