//! Shared utilities for the experiment harnesses.
//!
//! Every table and figure of the paper's evaluation has a dedicated bench
//! target under `benches/` (all with `harness = false`, so `cargo bench`
//! runs them and prints the same rows/series the paper reports).
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! each.

use igo_core::{simulate_model, ModelReport, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::Model;

/// Print a header naming the experiment and the paper reference.
pub fn header(id: &str, paper: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Simulate the whole technique ladder for one model; returns
/// `(baseline, [interleaving, rearrangement, partitioning])`.
pub fn ladder(model: &Model, config: &NpuConfig) -> (ModelReport, [ModelReport; 3]) {
    let base = simulate_model(model, config, Technique::Baseline);
    let rest = [
        simulate_model(model, config, Technique::Interleaving),
        simulate_model(model, config, Technique::Rearrangement),
        simulate_model(model, config, Technique::DataPartitioning),
    ];
    (base, rest)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// `1 - x` as a percentage string, e.g. `0.855 -> "+14.5%"`.
pub fn improvement(normalized: f64) -> String {
    format!("{:+.1}%", (1.0 - normalized) * 100.0)
}

/// Fixed-width model label (Table 4 abbreviation).
pub fn abbr(model: &Model) -> String {
    format!("{:>5}", model.id.abbr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_formats_signed_percent() {
        assert_eq!(improvement(0.855), "+14.5%");
        assert_eq!(improvement(1.05), "-5.0%");
    }

    #[test]
    fn mean_of_values() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
