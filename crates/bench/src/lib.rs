//! Shared utilities for the experiment harnesses.
//!
//! Every table and figure of the paper's evaluation has a dedicated bench
//! target under `benches/` (all with `harness = false`, so `cargo bench`
//! runs them and prints the same rows/series the paper reports).
//! `EXPERIMENTS.md` at the repository root records paper-vs-measured for
//! each.

use igo_core::{simulate_model, ModelReport, Technique};
use igo_npu_sim::NpuConfig;
use igo_workloads::Model;

/// Print a header naming the experiment and the paper reference.
pub fn header(id: &str, paper: &str) {
    println!("================================================================");
    println!("{id}");
    println!("paper reference: {paper}");
    println!("================================================================");
}

/// Simulate the whole technique ladder for one model; returns
/// `(baseline, [interleaving, rearrangement, partitioning])`.
pub fn ladder(model: &Model, config: &NpuConfig) -> (ModelReport, [ModelReport; 3]) {
    let base = simulate_model(model, config, Technique::Baseline);
    let rest = [
        simulate_model(model, config, Technique::Interleaving),
        simulate_model(model, config, Technique::Rearrangement),
        simulate_model(model, config, Technique::DataPartitioning),
    ];
    (base, rest)
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// `1 - x` as a percentage string, e.g. `0.855 -> "+14.5%"`.
pub fn improvement(normalized: f64) -> String {
    format!("{:+.1}%", (1.0 - normalized) * 100.0)
}

/// Fixed-width model label (Table 4 abbreviation).
pub fn abbr(model: &Model) -> String {
    format!("{:>5}", model.id.abbr())
}

/// Self-measurement: wall-clock timing plus a machine-readable JSON summary
/// of the simulator's own throughput (layers/sec, engine runs, cache
/// hit-rate). The CLI's `--timing` flag and the micro-benchmarks both feed
/// off this module, so the perf trajectory of successive PRs is comparable.
pub mod wallclock {
    use std::time::Instant;

    /// Run `f` once, returning its result and the elapsed wall seconds.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, f64) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed().as_secs_f64())
    }

    /// Mean seconds per iteration of `f` over `iters` runs (plus one
    /// untimed warm-up run).
    pub fn time_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
        assert!(iters > 0);
        f();
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_secs_f64() / iters as f64
    }

    /// One timed simulation run, summarised for machines.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Timing {
        /// What was timed (e.g. `sweep:res:server`).
        pub label: String,
        /// Elapsed wall-clock seconds.
        pub wall_seconds: f64,
        /// Distinct layer simulations requested (layer × phase counts).
        pub layers: u64,
        /// `Engine::run` invocations actually executed.
        pub engine_runs: u64,
        /// Layer-level memo-cache hits.
        pub cache_hits: u64,
        /// Layer-level memo-cache misses.
        pub cache_misses: u64,
    }

    impl Timing {
        /// Layers simulated per wall-clock second.
        pub fn layers_per_sec(&self) -> f64 {
            if self.wall_seconds > 0.0 {
                self.layers as f64 / self.wall_seconds
            } else {
                f64::INFINITY
            }
        }

        /// Fraction of layer simulations served from the memo cache.
        pub fn cache_hit_rate(&self) -> f64 {
            let total = self.cache_hits + self.cache_misses;
            if total == 0 {
                0.0
            } else {
                self.cache_hits as f64 / total as f64
            }
        }

        /// Hand-rolled single-line JSON (the workspace carries no serializer
        /// dependency by design).
        pub fn to_json(&self) -> String {
            format!(
                concat!(
                    "{{\"label\":\"{}\",\"wall_seconds\":{:.6},\"layers\":{},",
                    "\"layers_per_sec\":{:.2},\"engine_runs\":{},",
                    "\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4}}}"
                ),
                self.label.replace('"', "'"),
                self.wall_seconds,
                self.layers,
                self.layers_per_sec(),
                self.engine_runs,
                self.cache_hits,
                self.cache_misses,
                self.cache_hit_rate(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_formats_signed_percent() {
        assert_eq!(improvement(0.855), "+14.5%");
        assert_eq!(improvement(1.05), "-5.0%");
    }

    #[test]
    fn mean_of_values() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timing_json_is_well_formed() {
        let t = wallclock::Timing {
            label: "sweep:res".into(),
            wall_seconds: 2.0,
            layers: 100,
            engine_runs: 400,
            cache_hits: 30,
            cache_misses: 70,
        };
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"layers_per_sec\":50.00"));
        assert!(json.contains("\"cache_hit_rate\":0.3000"));
        assert!((t.cache_hit_rate() - 0.3).abs() < 1e-12);
    }
}
