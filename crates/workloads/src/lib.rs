//! The IGO model zoo — Table 4 of the paper.
//!
//! | Model | Abbr | Parameters (Table 4) |
//! |---|---|---|
//! | FasterRCNN | rcnn | 19M |
//! | GoogleNet | goo | 62M |
//! | NCF-recommendation | ncf | 3B |
//! | Resnet50 | res | 25M |
//! | DLRM | dlrm | 25B |
//! | Mobilenet | mob | 13M |
//! | YOLO (v5 / v2-tiny) | yolo | 47M / 11M |
//! | BERT (large / tiny) | bert | 340M / 14M |
//! | T5 (large / small) | T5 | 770M / 60M |
//!
//! Each model is reconstructed from its public architecture and lowered to
//! per-layer forward GEMMs (convolutions via im2col), parameterised by
//! batch size. Size variants follow the paper: the server (large-NPU) suite
//! uses yolov5/bert-large/t5-large, the edge suite uses
//! yolov2-tiny/bert-tiny/t5-small. See `DESIGN.md` for documented
//! deviations where Table 4's parameter counts pin down a non-default
//! variant (e.g. MobileNet width 1.75x).
//!
//! # Example
//!
//! ```
//! use igo_workloads::{zoo, ModelId};
//!
//! let bert = zoo::model(ModelId::BertLarge, 8);
//! assert!(bert.params() > 300_000_000);
//! for layer in &bert.layers {
//!     println!("{}: {} x{}", layer.name, layer.gemm, layer.count);
//! }
//! ```

pub mod layer;
pub mod models;
pub mod zoo;

pub use layer::{Layer, LayerKind, Model, ModelId};
