//! Layers and models.
//!
//! A [`Model`] is the unit the simulator trains: an ordered list of
//! [`Layer`]s, each already lowered to its forward GEMM (convolutions via
//! im2col, attention/linear blocks directly). Identical consecutive layers
//! are stored once with a `count`, which keeps simulation time proportional
//! to the number of *distinct* layer shapes (a 24-block BERT simulates one
//! block and multiplies).
//!
//! Only layers with trainable parameters appear: the paper's techniques
//! apply to "layers where weight gradients and input gradients can be
//! computed using GEMM or convolution operations" (§6.1). Embedding lookups
//! (NCF, DLRM) are parameter stores, not GEMMs; their sizes are recorded in
//! [`Model::embedding_params`] for the Table 4 parameter counts but they do
//! not generate schedules.

use igo_tensor::{ConvShape, GemmShape};
/// What kind of computation a layer is (for reporting and Figure 13's
/// shallow/deep split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A convolution, lowered via im2col.
    Conv,
    /// A depthwise/grouped convolution (lowered per group).
    DepthwiseConv,
    /// A fully-connected / linear projection.
    Fc,
}

impl core::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            LayerKind::Conv => "conv",
            LayerKind::DepthwiseConv => "dwconv",
            LayerKind::Fc => "fc",
        })
    }
}

/// One trainable layer, lowered to its forward GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name, unique within the model (e.g. `res3b_conv2`).
    pub name: String,
    /// The forward GEMM `X(M,K) × W(K,N) → Y(M,N)`.
    pub gemm: GemmShape,
    /// How many identical instances of this layer the model contains.
    pub count: u32,
    /// Computation kind.
    pub kind: LayerKind,
    /// Number of parallel GEMM groups (1 for dense layers; `groups` for a
    /// depthwise convolution, each group running `gemm` independently).
    pub groups: u32,
    /// Whether this is the model's first layer. The first layer needs no
    /// `dX` (there is no upstream layer to propagate into), so the
    /// interleaving technique does not apply there (paper §6.2).
    pub is_first: bool,
    /// Ratio of raw-layout `X`/`dX` DRAM bytes to their im2col footprint
    /// (see [`ConvShape::ifmap_density`]); 1.0 for fully-connected layers.
    pub ifmap_density: f64,
}

impl Layer {
    /// A dense convolution layer.
    pub fn conv(name: impl Into<String>, shape: ConvShape) -> Self {
        let kind = if shape.groups > 1 {
            LayerKind::DepthwiseConv
        } else {
            LayerKind::Conv
        };
        Self {
            name: name.into(),
            gemm: shape.to_gemm(),
            count: 1,
            kind,
            groups: shape.groups as u32,
            is_first: false,
            ifmap_density: shape.ifmap_density(),
        }
    }

    /// A fully-connected layer processing `batch` rows.
    pub fn fc(name: impl Into<String>, batch: u64, in_features: u64, out_features: u64) -> Self {
        Self {
            name: name.into(),
            gemm: GemmShape::new(batch, in_features, out_features),
            count: 1,
            kind: LayerKind::Fc,
            groups: 1,
            is_first: false,
            ifmap_density: 1.0,
        }
    }

    /// Set the multiplicity.
    #[must_use]
    pub fn times(mut self, count: u32) -> Self {
        assert!(count > 0, "layer count must be positive");
        self.count = count;
        self
    }

    /// Mark as the model's first layer.
    #[must_use]
    pub fn first(mut self) -> Self {
        self.is_first = true;
        self
    }

    /// Trainable parameters of one instance (`K × N` per group × groups).
    pub fn params(&self) -> u64 {
        self.gemm.k() * self.gemm.n() * self.groups as u64
    }

    /// Forward MACs of one instance across groups.
    pub fn forward_macs(&self) -> u64 {
        self.gemm.macs() * self.groups as u64
    }
}

/// Identifiers for the Table 4 model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// FasterRCNN object detector (19M parameters).
    FasterRcnn,
    /// GoogleNet / Inception-v1 classifier.
    GoogleNet,
    /// Neural collaborative filtering recommender (3B parameters, mostly
    /// embeddings).
    Ncf,
    /// ResNet-50 classifier (25M parameters).
    Resnet50,
    /// DLRM recommender (25B parameters, mostly embeddings).
    Dlrm,
    /// MobileNet classifier.
    MobileNet,
    /// YOLOv5 detector (47M parameters) — the server-NPU variant.
    YoloV5,
    /// YOLOv2-tiny detector (11M parameters) — the edge-NPU variant.
    YoloV2Tiny,
    /// BERT-large encoder (340M parameters) — the server-NPU variant.
    BertLarge,
    /// BERT-tiny encoder (14M parameters) — the edge-NPU variant.
    BertTiny,
    /// T5-large encoder-decoder (770M parameters) — the server-NPU variant.
    T5Large,
    /// T5-small encoder-decoder (60M parameters) — the edge-NPU variant.
    T5Small,
}

impl ModelId {
    /// Table 4's abbreviation for the model family.
    pub fn abbr(self) -> &'static str {
        match self {
            ModelId::FasterRcnn => "rcnn",
            ModelId::GoogleNet => "goo",
            ModelId::Ncf => "ncf",
            ModelId::Resnet50 => "res",
            ModelId::Dlrm => "dlrm",
            ModelId::MobileNet => "mob",
            ModelId::YoloV5 | ModelId::YoloV2Tiny => "yolo",
            ModelId::BertLarge | ModelId::BertTiny => "bert",
            ModelId::T5Large | ModelId::T5Small => "T5",
        }
    }
}

impl core::fmt::Display for ModelId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.abbr())
    }
}

/// A model: an ordered list of trainable layers plus embedding metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Which zoo entry this is.
    pub id: ModelId,
    /// Full name (e.g. `resnet50`).
    pub name: String,
    /// Batch size the layers were lowered with.
    pub batch: u64,
    /// Trainable GEMM/conv layers in forward order.
    pub layers: Vec<Layer>,
    /// Parameters held in embedding tables (not simulated as GEMMs).
    pub embedding_params: u64,
}

impl Model {
    /// Build a model, marking the first layer.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or layer names collide.
    pub fn new(
        id: ModelId,
        name: impl Into<String>,
        batch: u64,
        mut layers: Vec<Layer>,
        embedding_params: u64,
    ) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        let mut names = std::collections::HashSet::new();
        for layer in &layers {
            assert!(
                names.insert(layer.name.clone()),
                "duplicate layer name {}",
                layer.name
            );
        }
        layers[0].is_first = true;
        Self {
            id,
            name: name.into(),
            batch,
            layers,
            embedding_params,
        }
    }

    /// Total trainable parameters (GEMM weights × counts + embeddings).
    pub fn params(&self) -> u64 {
        self.embedding_params
            + self
                .layers
                .iter()
                .map(|l| l.params() * l.count as u64)
                .sum::<u64>()
    }

    /// Total forward MACs per training step.
    pub fn forward_macs(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward_macs() * l.count as u64)
            .sum()
    }

    /// Number of distinct layer shapes.
    pub fn distinct_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of layer instances (sum of counts).
    pub fn total_layers(&self) -> u64 {
        self.layers.iter().map(|l| l.count as u64).sum()
    }
}

impl core::fmt::Display for Model {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (batch {}, {} layers, {:.1}M params)",
            self.name,
            self.batch,
            self.total_layers(),
            self.params() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_layer_params() {
        let l = Layer::fc("head", 8, 2048, 1000);
        assert_eq!(l.params(), 2048 * 1000);
        assert_eq!(l.forward_macs(), 8 * 2048 * 1000);
        assert_eq!(l.kind, LayerKind::Fc);
    }

    #[test]
    fn conv_layer_params_match_conv_shape() {
        let c = ConvShape::new(4, 64, 56, 56, 128, 3, 1, 1);
        let l = Layer::conv("c", c);
        assert_eq!(l.params(), c.params());
        assert_eq!(l.forward_macs(), c.macs());
        assert_eq!(l.kind, LayerKind::Conv);
    }

    #[test]
    fn depthwise_conv_detected() {
        let c = ConvShape::grouped(1, 32, 28, 28, 32, 3, 1, 1, 32);
        let l = Layer::conv("dw", c);
        assert_eq!(l.kind, LayerKind::DepthwiseConv);
        assert_eq!(l.groups, 32);
        assert_eq!(l.params(), c.params());
    }

    #[test]
    fn model_marks_first_layer() {
        let m = Model::new(
            ModelId::Resnet50,
            "toy",
            4,
            vec![Layer::fc("a", 4, 8, 8), Layer::fc("b", 4, 8, 8)],
            0,
        );
        assert!(m.layers[0].is_first);
        assert!(!m.layers[1].is_first);
    }

    #[test]
    fn counts_multiply_params_and_macs() {
        let m = Model::new(
            ModelId::BertTiny,
            "toy",
            4,
            vec![Layer::fc("block", 4, 128, 128).times(6)],
            0,
        );
        assert_eq!(m.params(), 6 * 128 * 128);
        assert_eq!(m.total_layers(), 6);
        assert_eq!(m.distinct_layers(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_names_panic() {
        let _ = Model::new(
            ModelId::Ncf,
            "dup",
            4,
            vec![Layer::fc("x", 4, 8, 8), Layer::fc("x", 4, 8, 8)],
            0,
        );
    }

    #[test]
    fn abbreviations_match_table4() {
        assert_eq!(ModelId::FasterRcnn.abbr(), "rcnn");
        assert_eq!(ModelId::YoloV5.abbr(), "yolo");
        assert_eq!(ModelId::YoloV2Tiny.abbr(), "yolo");
        assert_eq!(ModelId::T5Small.abbr(), "T5");
        assert_eq!(ModelId::Dlrm.abbr(), "dlrm");
    }

    #[test]
    fn embeddings_count_toward_params() {
        let m = Model::new(
            ModelId::Dlrm,
            "emb",
            4,
            vec![Layer::fc("mlp", 4, 13, 512)],
            1_000_000,
        );
        assert_eq!(m.params(), 1_000_000 + 13 * 512);
    }
}
