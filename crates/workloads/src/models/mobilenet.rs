//! MobileNet (Howard et al., 2017) — Table 4 "mob".
//!
//! MobileNetV1 alternates depthwise 3×3 convolutions with pointwise 1×1
//! convolutions. Table 4 lists 13M parameters, which matches MobileNetV1
//! with a width multiplier of ~1.75–2.0 (the 1.0× network has 4.2M); we use
//! 1.75× and document the reconstruction in DESIGN.md. The *shapes* are the
//! interesting part for the IGO techniques: depthwise layers have tiny
//! per-group GEMMs (K=9, N=1) while pointwise layers are channel-skewed
//! GEMMs — both exercise the non-square paths of Algorithm 1.

use crate::layer::{Layer, Model, ModelId};
use igo_tensor::ConvShape;

fn width(base: u64, multiplier: f64) -> u64 {
    // Round to a multiple of 8 as the MobileNet reference implementations do.
    let w = (base as f64 * multiplier / 8.0).round() as u64 * 8;
    w.max(8)
}

/// Build MobileNetV1 (width multiplier 1.75) at the given batch size.
pub fn build(batch: u64) -> Model {
    const MULT: f64 = 1.75;
    let mut layers = Vec::new();
    let c32 = width(32, MULT);
    layers.push(Layer::conv(
        "conv1",
        ConvShape::new(batch, 3, 224, 224, c32, 3, 2, 1),
    ));

    // (in, out, spatial-in, stride, repeat) of each dw+pw pair.
    let blocks: [(u64, u64, u64, u64, u32); 7] = [
        (32, 64, 112, 1, 1),
        (64, 128, 112, 2, 1),
        (128, 128, 56, 1, 1),
        (128, 256, 56, 2, 1),
        (256, 256, 28, 1, 1),
        (256, 512, 28, 2, 1),
        (512, 512, 14, 1, 5),
    ];
    for (i, &(c_in, c_out, size, stride, repeat)) in blocks.iter().enumerate() {
        let (c_in, c_out) = (width(c_in, MULT), width(c_out, MULT));
        let out_size = size / stride;
        layers.push(
            Layer::conv(
                format!("dw{}", i + 1),
                ConvShape::grouped(batch, c_in, size, size, c_in, 3, stride, 1, c_in),
            )
            .times(repeat),
        );
        layers.push(
            Layer::conv(
                format!("pw{}", i + 1),
                ConvShape::new(batch, c_in, out_size, out_size, c_out, 1, 1, 0),
            )
            .times(repeat),
        );
    }

    // Final pair down to 7x7 and the classifier.
    let c512 = width(512, MULT);
    let c1024 = width(1024, MULT);
    layers.push(Layer::conv(
        "dw8",
        ConvShape::grouped(batch, c512, 14, 14, c512, 3, 2, 1, c512),
    ));
    layers.push(Layer::conv(
        "pw8",
        ConvShape::new(batch, c512, 7, 7, c1024, 1, 1, 0),
    ));
    layers.push(Layer::conv(
        "dw9",
        ConvShape::grouped(batch, c1024, 7, 7, c1024, 3, 1, 1, c1024),
    ));
    layers.push(Layer::conv(
        "pw9",
        ConvShape::new(batch, c1024, 7, 7, c1024, 1, 1, 0),
    ));
    layers.push(Layer::fc("fc1000", batch, c1024, 1000));

    Model::new(ModelId::MobileNet, "mobilenet", batch, layers, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn parameter_count_near_table4() {
        let m = build(8);
        let params = m.params() as f64 / 1e6;
        assert!(
            (10.0..17.0).contains(&params),
            "expected ~13M params, got {params:.1}M"
        );
    }

    #[test]
    fn alternates_depthwise_and_pointwise() {
        let m = build(4);
        let dw = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::DepthwiseConv)
            .count();
        let pw = m
            .layers
            .iter()
            .filter(|l| l.kind == LayerKind::Conv && l.name.starts_with("pw"))
            .count();
        assert_eq!(dw, 9);
        assert_eq!(pw, 9);
    }

    #[test]
    fn depthwise_gemm_is_per_channel() {
        let m = build(4);
        let dw = m.layers.iter().find(|l| l.name == "dw1").unwrap();
        assert_eq!(dw.gemm.k(), 9);
        assert_eq!(dw.gemm.n(), 1);
        assert_eq!(dw.groups as u64, width(32, 1.75));
    }

    #[test]
    fn width_rounds_to_multiple_of_8() {
        assert_eq!(width(32, 1.75), 56);
        assert_eq!(width(3, 1.0), 8);
        assert_eq!(width(1024, 1.75), 1792);
    }
}
