//! Per-model builders. Use [`crate::zoo::model`] for dispatch by id.

pub mod googlenet;
pub mod mobilenet;
pub mod rcnn;
pub mod recsys;
pub mod resnet;
pub mod transformer;
pub mod yolo;
