//! FasterRCNN object detector — Table 4 "rcnn", 19M parameters.
//!
//! Reconstruction: a ResNet-18 backbone (the parameter budget of Table 4
//! rules out the VGG-16 and ResNet-50 variants), a region proposal network
//! (3×3 conv + objectness/box 1×1 heads), and the RoI detection head
//! (two fully-connected layers over pooled 7×7 features plus the class and
//! box regressors), at 640×640 input. RoI-pooled head GEMMs use a nominal
//! 128 proposals per image, the torchvision training default's
//! `box_batch_size_per_image / 4` regime.

use crate::layer::{Layer, Model, ModelId};
use igo_tensor::ConvShape;

#[allow(clippy::too_many_arguments)]
fn basic_block(
    name: &str,
    batch: u64,
    c_in: u64,
    c_out: u64,
    size_in: u64,
    stride: u64,
    repeat_rest: u32,
    layers: &mut Vec<Layer>,
) {
    let size_out = size_in / stride;
    // First block of the stage (may downsample).
    layers.push(Layer::conv(
        format!("{name}a_conv1"),
        ConvShape::new(batch, c_in, size_in, size_in, c_out, 3, stride, 1),
    ));
    layers.push(Layer::conv(
        format!("{name}a_conv2"),
        ConvShape::new(batch, c_out, size_out, size_out, c_out, 3, 1, 1),
    ));
    if stride != 1 || c_in != c_out {
        layers.push(Layer::conv(
            format!("{name}a_proj"),
            ConvShape::new(batch, c_in, size_in, size_in, c_out, 1, stride, 0),
        ));
    }
    // Remaining identity blocks.
    layers.push(
        Layer::conv(
            format!("{name}b_conv"),
            ConvShape::new(batch, c_out, size_out, size_out, c_out, 3, 1, 1),
        )
        .times(repeat_rest * 2),
    );
}

/// Build FasterRCNN (ResNet-18 backbone) at the given batch size.
pub fn build(batch: u64) -> Model {
    let mut layers = Vec::new();
    // Backbone stem at 640x640.
    layers.push(Layer::conv(
        "conv1",
        ConvShape::new(batch, 3, 640, 640, 64, 7, 2, 3),
    ));
    // ResNet-18 stages (after 2x max-pool: 160x160).
    basic_block("res2", batch, 64, 64, 160, 1, 1, &mut layers);
    basic_block("res3", batch, 64, 128, 160, 2, 1, &mut layers);
    basic_block("res4", batch, 128, 256, 80, 2, 1, &mut layers);
    basic_block("res5", batch, 256, 512, 40, 2, 1, &mut layers);

    // Region proposal network on the stride-32 map (20x20).
    layers.push(Layer::conv(
        "rpn_conv",
        ConvShape::new(batch, 512, 20, 20, 512, 3, 1, 1),
    ));
    layers.push(Layer::conv(
        "rpn_cls",
        ConvShape::new(batch, 512, 20, 20, 9, 1, 1, 0),
    ));
    layers.push(Layer::conv(
        "rpn_box",
        ConvShape::new(batch, 512, 20, 20, 36, 1, 1, 0),
    ));

    // RoI head: 128 proposals per image, 512x7x7 pooled features.
    let rois = batch * 128;
    layers.push(Layer::fc("head_fc1", rois, 512 * 49, 256));
    layers.push(Layer::fc("head_fc2", rois, 256, 256));
    layers.push(Layer::fc("head_cls", rois, 256, 91));
    layers.push(Layer::fc("head_box", rois, 256, 364));

    Model::new(ModelId::FasterRcnn, "faster-rcnn", batch, layers, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_near_table4() {
        let m = build(8);
        let params = m.params() as f64 / 1e6;
        assert!(
            (15.0..26.0).contains(&params),
            "expected ~19M params, got {params:.1}M"
        );
    }

    #[test]
    fn roi_head_scales_with_proposals() {
        let m = build(4);
        let fc1 = m.layers.iter().find(|l| l.name == "head_fc1").unwrap();
        assert_eq!(fc1.gemm.m(), 4 * 128);
        assert_eq!(fc1.gemm.k(), 512 * 49);
    }

    #[test]
    fn rpn_present() {
        let m = build(4);
        assert!(m.layers.iter().any(|l| l.name == "rpn_conv"));
        assert!(m.layers.iter().any(|l| l.name == "rpn_cls"));
    }

    #[test]
    fn backbone_projections_exist_on_downsample_stages() {
        let m = build(4);
        assert!(!m.layers.iter().any(|l| l.name == "res2a_proj"));
        assert!(m.layers.iter().any(|l| l.name == "res3a_proj"));
    }
}
