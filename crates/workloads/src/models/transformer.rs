//! Transformer language models — Table 4 "bert" (large 340M / tiny 14M) and
//! "T5" (large 770M / small 60M).
//!
//! Only the *weighted* projections appear as layers: QKV, attention output,
//! and the two feed-forward GEMMs (for T5 decoders also the cross-attention
//! projections). The attention score/context matmuls (`QKᵀ`, `PV`) carry no
//! trainable weights, so they have no `dW` and the paper's interleaving
//! does not apply to them (§6.1 applies the techniques to "layers where
//! weight gradients and input gradients can be computed").
//!
//! Embedding matrices count toward [`crate::Model::embedding_params`]
//! (they are gathered in training steps, and their gradient is a sparse
//! scatter, not a GEMM).

use crate::layer::{Layer, Model, ModelId};

/// Hyper-parameters of one encoder/decoder stack.
#[derive(Debug, Clone, Copy)]
struct StackConfig {
    hidden: u64,
    ffn: u64,
    layers: u32,
    cross_attention: bool,
}

fn stack(prefix: &str, rows: u64, cfg: StackConfig, out: &mut Vec<Layer>) {
    let h = cfg.hidden;
    out.push(Layer::fc(format!("{prefix}_qkv"), rows, h, 3 * h).times(cfg.layers));
    out.push(Layer::fc(format!("{prefix}_attn_out"), rows, h, h).times(cfg.layers));
    if cfg.cross_attention {
        out.push(Layer::fc(format!("{prefix}_xattn_q"), rows, h, h).times(cfg.layers));
        out.push(Layer::fc(format!("{prefix}_xattn_kv"), rows, h, 2 * h).times(cfg.layers));
        out.push(Layer::fc(format!("{prefix}_xattn_out"), rows, h, h).times(cfg.layers));
    }
    out.push(Layer::fc(format!("{prefix}_ffn_up"), rows, h, cfg.ffn).times(cfg.layers));
    out.push(Layer::fc(format!("{prefix}_ffn_down"), rows, cfg.ffn, h).times(cfg.layers));
}

fn bert(id: ModelId, name: &str, batch: u64, seq: u64, hidden: u64, ffn: u64, depth: u32) -> Model {
    let mut layers = Vec::new();
    stack(
        "enc",
        batch * seq,
        StackConfig {
            hidden,
            ffn,
            layers: depth,
            cross_attention: false,
        },
        &mut layers,
    );
    layers.push(Layer::fc("pooler", batch, hidden, hidden));
    // WordPiece vocabulary + positions + segments.
    let embeddings = (30_522 + 512 + 2) * hidden;
    Model::new(id, name, batch, layers, embeddings)
}

/// BERT-large: 24 layers, hidden 1024, FFN 4096, sequence 512.
pub fn build_bert_large(batch: u64) -> Model {
    bert(ModelId::BertLarge, "bert-large", batch, 512, 1024, 4096, 24)
}

/// BERT-tiny (edge variant): 4 layers, hidden 312, FFN 1200, sequence 128 —
/// the TinyBERT-4 configuration, ~14M parameters as in Table 4.
pub fn build_bert_tiny(batch: u64) -> Model {
    bert(ModelId::BertTiny, "bert-tiny", batch, 128, 312, 1200, 4)
}

#[allow(clippy::too_many_arguments)]
fn t5(
    id: ModelId,
    name: &str,
    batch: u64,
    seq: u64,
    hidden: u64,
    ffn: u64,
    depth: u32,
    vocab: u64,
) -> Model {
    let mut layers = Vec::new();
    stack(
        "enc",
        batch * seq,
        StackConfig {
            hidden,
            ffn,
            layers: depth,
            cross_attention: false,
        },
        &mut layers,
    );
    stack(
        "dec",
        batch * seq,
        StackConfig {
            hidden,
            ffn,
            layers: depth,
            cross_attention: true,
        },
        &mut layers,
    );
    // LM head. T5 ties it with the input embedding, so the shared matrix is
    // counted once — here, as the head GEMM (its gradient is a dense GEMM).
    layers.push(Layer::fc("lm_head", batch * seq, hidden, vocab));
    Model::new(id, name, batch, layers, 0)
}

/// T5-large: 24+24 layers, hidden 1024, FFN 4096, sequence 512.
pub fn build_t5_large(batch: u64) -> Model {
    t5(
        ModelId::T5Large,
        "t5-large",
        batch,
        512,
        1024,
        4096,
        24,
        32_128,
    )
}

/// T5-small (edge variant): 6+6 layers, hidden 512, FFN 2048, sequence 128.
pub fn build_t5_small(batch: u64) -> Model {
    t5(
        ModelId::T5Small,
        "t5-small",
        batch,
        128,
        512,
        2048,
        6,
        32_128,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_params_match_table4() {
        let m = build_bert_large(8);
        let params = m.params() as f64 / 1e6;
        assert!(
            (300.0..360.0).contains(&params),
            "expected ~340M, got {params:.0}M"
        );
    }

    #[test]
    fn bert_tiny_params_match_table4() {
        let m = build_bert_tiny(4);
        let params = m.params() as f64 / 1e6;
        assert!(
            (11.0..17.0).contains(&params),
            "expected ~14M, got {params:.1}M"
        );
    }

    #[test]
    fn t5_large_params_match_table4() {
        let m = build_t5_large(8);
        let params = m.params() as f64 / 1e6;
        assert!(
            (650.0..820.0).contains(&params),
            "expected ~770M, got {params:.0}M"
        );
    }

    #[test]
    fn t5_small_params_match_table4() {
        let m = build_t5_small(4);
        let params = m.params() as f64 / 1e6;
        assert!(
            (50.0..70.0).contains(&params),
            "expected ~60M, got {params:.0}M"
        );
    }

    #[test]
    fn gemm_rows_are_batch_times_seq() {
        let m = build_bert_large(8);
        let qkv = m.layers.iter().find(|l| l.name == "enc_qkv").unwrap();
        assert_eq!(qkv.gemm.m(), 8 * 512);
        assert_eq!(qkv.gemm.n(), 3 * 1024);
        assert_eq!(qkv.count, 24);
    }

    #[test]
    fn t5_decoder_has_cross_attention() {
        let m = build_t5_small(4);
        assert!(m.layers.iter().any(|l| l.name == "dec_xattn_kv"));
        assert!(!m.layers.iter().any(|l| l.name == "enc_xattn_kv"));
    }
}
