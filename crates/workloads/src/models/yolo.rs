//! YOLO object detectors — Table 4 "yolo": YOLOv5(-large) for the server
//! NPU and YOLOv2-tiny for the edge NPU.
//!
//! * **YOLOv2-tiny** is the canonical nine-conv darknet: alternating 3×3
//!   convolutions and pools from 16 to 1024 channels at 416×416 input
//!   (~11M parameters — Table 4's edge entry).
//! * **YOLOv5l** is reconstructed from its CSP backbone + PANet neck at
//!   640×640: the C3 blocks are expanded into their 1×1/3×3 bottleneck
//!   convolutions with counts (~47M parameters — Table 4's server entry).

use crate::layer::{Layer, Model, ModelId};
use igo_tensor::ConvShape;

/// Build YOLOv2-tiny (edge variant) at the given batch size.
pub fn build_v2_tiny(batch: u64) -> Model {
    let mut layers = Vec::new();
    // (name, c_in, c_out, spatial-in) with 2x2 max-pool between stages.
    let convs: [(&str, u64, u64, u64); 8] = [
        ("conv1", 3, 16, 416),
        ("conv2", 16, 32, 208),
        ("conv3", 32, 64, 104),
        ("conv4", 64, 128, 52),
        ("conv5", 128, 256, 26),
        ("conv6", 256, 512, 13),
        ("conv7", 512, 1024, 13),
        ("conv8", 1024, 1024, 13),
    ];
    for &(name, c_in, c_out, size) in &convs {
        layers.push(Layer::conv(
            name,
            ConvShape::new(batch, c_in, size, size, c_out, 3, 1, 1),
        ));
    }
    // Detection head: 1x1 to 5 anchors x (5 + 80 classes).
    layers.push(Layer::conv(
        "conv9_det",
        ConvShape::new(batch, 1024, 13, 13, 425, 1, 1, 0),
    ));
    Model::new(ModelId::YoloV2Tiny, "yolov2-tiny", batch, layers, 0)
}

/// One CSP C3 block: split 1x1s plus `n` bottlenecks (1x1 -> 3x3).
fn c3_block(name: &str, batch: u64, c: u64, size: u64, n: u32, layers: &mut Vec<Layer>) {
    let half = c / 2;
    layers.push(Layer::conv(
        format!("{name}_cv1"),
        ConvShape::new(batch, c, size, size, half, 1, 1, 0),
    ));
    layers.push(Layer::conv(
        format!("{name}_cv2"),
        ConvShape::new(batch, c, size, size, half, 1, 1, 0),
    ));
    layers.push(
        Layer::conv(
            format!("{name}_b1x1"),
            ConvShape::new(batch, half, size, size, half, 1, 1, 0),
        )
        .times(n),
    );
    layers.push(
        Layer::conv(
            format!("{name}_b3x3"),
            ConvShape::new(batch, half, size, size, half, 3, 1, 1),
        )
        .times(n),
    );
    layers.push(Layer::conv(
        format!("{name}_cv3"),
        ConvShape::new(batch, c, size, size, c, 1, 1, 0),
    ));
}

/// Build YOLOv5l (server variant) at the given batch size.
pub fn build_v5(batch: u64) -> Model {
    let mut layers = Vec::new();
    // Stem (6x6/2 in v6.0 releases).
    layers.push(Layer::conv(
        "stem",
        ConvShape::new(batch, 3, 640, 640, 64, 6, 2, 2),
    ));
    // Backbone: downsample conv + C3 at each scale (depth multiple 1.0,
    // width multiple 1.0 for the large model).
    let stages: [(&str, u64, u64, u32); 4] = [
        ("p2", 128, 160, 3),
        ("p3", 256, 80, 6),
        ("p4", 512, 40, 9),
        ("p5", 1024, 20, 3),
    ];
    for &(name, c, size, depth) in &stages {
        layers.push(Layer::conv(
            format!("{name}_down"),
            ConvShape::new(batch, c / 2, size * 2, size * 2, c, 3, 2, 1),
        ));
        c3_block(name, batch, c, size, depth, &mut layers);
    }
    // SPPF: two 1x1 convs around pooling.
    layers.push(Layer::conv(
        "sppf_cv1",
        ConvShape::new(batch, 1024, 20, 20, 512, 1, 1, 0),
    ));
    layers.push(Layer::conv(
        "sppf_cv2",
        ConvShape::new(batch, 2048, 20, 20, 1024, 1, 1, 0),
    ));
    // PANet neck: top-down then bottom-up C3 blocks.
    layers.push(Layer::conv(
        "neck_cv_p5",
        ConvShape::new(batch, 1024, 20, 20, 512, 1, 1, 0),
    ));
    c3_block("neck_td_p4", batch, 512, 40, 3, &mut layers);
    layers.push(Layer::conv(
        "neck_cv_p4",
        ConvShape::new(batch, 512, 40, 40, 256, 1, 1, 0),
    ));
    c3_block("neck_td_p3", batch, 256, 80, 3, &mut layers);
    layers.push(Layer::conv(
        "neck_down_p3",
        ConvShape::new(batch, 256, 80, 80, 256, 3, 2, 1),
    ));
    c3_block("neck_bu_p4", batch, 512, 40, 3, &mut layers);
    layers.push(Layer::conv(
        "neck_down_p4",
        ConvShape::new(batch, 512, 40, 40, 512, 3, 2, 1),
    ));
    c3_block("neck_bu_p5", batch, 1024, 20, 3, &mut layers);
    // Detection heads at three scales: 1x1 to 3 anchors x 85.
    for (name, c, size) in [
        ("det_p3", 256u64, 80u64),
        ("det_p4", 512, 40),
        ("det_p5", 1024, 20),
    ] {
        layers.push(Layer::conv(
            name,
            ConvShape::new(batch, c, size, size, 255, 1, 1, 0),
        ));
    }
    Model::new(ModelId::YoloV5, "yolov5l", batch, layers, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_parameter_count_near_table4() {
        let m = build_v2_tiny(4);
        let params = m.params() as f64 / 1e6;
        // Table 4 lists 11M for the tiny variant; the canonical network has
        // ~15.8M raw conv weights (11M is the common compressed figure).
        assert!(
            (9.0..17.0).contains(&params),
            "expected ~11-16M params, got {params:.1}M"
        );
    }

    #[test]
    fn v5_parameter_count_near_table4() {
        let m = build_v5(8);
        let params = m.params() as f64 / 1e6;
        assert!(
            (38.0..56.0).contains(&params),
            "expected ~47M params, got {params:.1}M"
        );
    }

    #[test]
    fn tiny_is_nine_convs() {
        let m = build_v2_tiny(4);
        assert_eq!(m.total_layers(), 9);
        assert_eq!(m.layers[0].name, "conv1");
    }

    #[test]
    fn v5_heads_cover_three_scales() {
        let m = build_v5(8);
        let heads: Vec<_> = m
            .layers
            .iter()
            .filter(|l| l.name.starts_with("det_"))
            .collect();
        assert_eq!(heads.len(), 3);
        assert!(heads.iter().all(|l| l.gemm.n() == 255));
    }

    #[test]
    fn early_layers_have_huge_m() {
        // The Figure 13 discussion: shallow conv layers have very large
        // input feature maps (M) but tiny weights per channel (K, N).
        let m = build_v5(8);
        let stem = &m.layers[0];
        assert_eq!(stem.gemm.m(), 8 * 320 * 320);
        assert!(stem.gemm.m() > 1000 * stem.gemm.k());
    }
}
