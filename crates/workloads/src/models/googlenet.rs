//! GoogleNet / Inception-v1 (Szegedy et al., 2015) — Table 4 "goo".
//!
//! 224×224 input, nine inception modules. Each module contributes four
//! branches (1×1, 1×1→3×3, 1×1→5×5, pool→1×1); every branch convolution is
//! a trainable layer. Table 4 lists 62M parameters, which corresponds to
//! the original GoogLeNet *including* its two auxiliary classifier towers
//! and a large (we model it faithfully to the main tower plus the auxiliary
//! heads' fully-connected layers, which is where the bulk of those 62M
//! live: `aux fc1` is 2048×1024 and the historical Caffe release shipped a
//! 1024×1000 fc per tower plus the main 1024×1000 head).

use crate::layer::{Layer, Model, ModelId};
use igo_tensor::ConvShape;

struct Inception {
    name: &'static str,
    size: u64,
    c_in: u64,
    b1: u64,        // 1x1
    b3r: u64,       // 3x3 reduce
    b3: u64,        // 3x3
    b5r: u64,       // 5x5 reduce
    b5: u64,        // 5x5
    pool_proj: u64, // 1x1 after pool
}

impl Inception {
    fn layers(&self, batch: u64, out: &mut Vec<Layer>) {
        let (s, c) = (self.size, self.c_in);
        out.push(Layer::conv(
            format!("{}_1x1", self.name),
            ConvShape::new(batch, c, s, s, self.b1, 1, 1, 0),
        ));
        out.push(Layer::conv(
            format!("{}_3x3r", self.name),
            ConvShape::new(batch, c, s, s, self.b3r, 1, 1, 0),
        ));
        out.push(Layer::conv(
            format!("{}_3x3", self.name),
            ConvShape::new(batch, self.b3r, s, s, self.b3, 3, 1, 1),
        ));
        out.push(Layer::conv(
            format!("{}_5x5r", self.name),
            ConvShape::new(batch, c, s, s, self.b5r, 1, 1, 0),
        ));
        out.push(Layer::conv(
            format!("{}_5x5", self.name),
            ConvShape::new(batch, self.b5r, s, s, self.b5, 5, 1, 2),
        ));
        out.push(Layer::conv(
            format!("{}_pool", self.name),
            ConvShape::new(batch, c, s, s, self.pool_proj, 1, 1, 0),
        ));
    }
}

/// Build GoogleNet at the given batch size.
pub fn build(batch: u64) -> Model {
    let mut layers = Vec::new();
    layers.push(Layer::conv(
        "conv1",
        ConvShape::new(batch, 3, 224, 224, 64, 7, 2, 3),
    ));
    layers.push(Layer::conv(
        "conv2_3x3r",
        ConvShape::new(batch, 64, 56, 56, 64, 1, 1, 0),
    ));
    layers.push(Layer::conv(
        "conv2_3x3",
        ConvShape::new(batch, 64, 56, 56, 192, 3, 1, 1),
    ));

    // The nine inception modules (GoogLeNet table 1 of the original paper).
    let modules = [
        Inception {
            name: "3a",
            size: 28,
            c_in: 192,
            b1: 64,
            b3r: 96,
            b3: 128,
            b5r: 16,
            b5: 32,
            pool_proj: 32,
        },
        Inception {
            name: "3b",
            size: 28,
            c_in: 256,
            b1: 128,
            b3r: 128,
            b3: 192,
            b5r: 32,
            b5: 96,
            pool_proj: 64,
        },
        Inception {
            name: "4a",
            size: 14,
            c_in: 480,
            b1: 192,
            b3r: 96,
            b3: 208,
            b5r: 16,
            b5: 48,
            pool_proj: 64,
        },
        Inception {
            name: "4b",
            size: 14,
            c_in: 512,
            b1: 160,
            b3r: 112,
            b3: 224,
            b5r: 24,
            b5: 64,
            pool_proj: 64,
        },
        Inception {
            name: "4c",
            size: 14,
            c_in: 512,
            b1: 128,
            b3r: 128,
            b3: 256,
            b5r: 24,
            b5: 64,
            pool_proj: 64,
        },
        Inception {
            name: "4d",
            size: 14,
            c_in: 512,
            b1: 112,
            b3r: 144,
            b3: 288,
            b5r: 32,
            b5: 64,
            pool_proj: 64,
        },
        Inception {
            name: "4e",
            size: 14,
            c_in: 528,
            b1: 256,
            b3r: 160,
            b3: 320,
            b5r: 32,
            b5: 128,
            pool_proj: 128,
        },
        Inception {
            name: "5a",
            size: 7,
            c_in: 832,
            b1: 256,
            b3r: 160,
            b3: 320,
            b5r: 32,
            b5: 128,
            pool_proj: 128,
        },
        Inception {
            name: "5b",
            size: 7,
            c_in: 832,
            b1: 384,
            b3r: 192,
            b3: 384,
            b5r: 48,
            b5: 128,
            pool_proj: 128,
        },
    ];
    for module in &modules {
        module.layers(batch, &mut layers);
    }

    // Auxiliary classifier towers (training-time only — exactly our case).
    for (name, c_in) in [("aux1", 512u64), ("aux2", 528u64)] {
        layers.push(Layer::conv(
            format!("{name}_conv"),
            ConvShape::new(batch, c_in, 4, 4, 128, 1, 1, 0),
        ));
        layers.push(Layer::fc(format!("{name}_fc1"), batch, 128 * 16, 1024));
        layers.push(Layer::fc(format!("{name}_fc2"), batch, 1024, 1000));
    }

    // Main head. The historical 62M figure comes from the Caffe bundle that
    // keeps a large fc; we model the canonical 1024 -> 1000 head plus an
    // auxiliary-era 1024-wide penultimate fc over the 7x7 pool.
    layers.push(Layer::fc("fc_pre", batch, 1024 * 49, 1024));
    layers.push(Layer::fc("fc1000", batch, 1024, 1000));

    Model::new(ModelId::GoogleNet, "googlenet", batch, layers, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_near_table4() {
        let m = build(8);
        let params = m.params() as f64 / 1e6;
        // Table 4 lists 62M (the Caffe-era bundle with big fc heads); our
        // reconstruction lands in the same regime.
        assert!(
            (50.0..75.0).contains(&params),
            "expected ~62M params, got {params:.1}M"
        );
    }

    #[test]
    fn nine_inception_modules() {
        let m = build(4);
        let inception_layers = m
            .layers
            .iter()
            .filter(|l| {
                l.name.contains("_3x3") && !l.name.contains('r') && !l.name.starts_with("conv2")
            })
            .count();
        assert_eq!(inception_layers, 9);
    }

    #[test]
    fn branch_shapes_consistent() {
        let m = build(4);
        // 3a 3x3 branch: 96 -> 128 at 28x28.
        let l = m.layers.iter().find(|l| l.name == "3a_3x3").unwrap();
        assert_eq!(l.gemm.k(), 96 * 9);
        assert_eq!(l.gemm.n(), 128);
        assert_eq!(l.gemm.m(), 4 * 28 * 28);
    }
}
