//! Recommendation models — Table 4 "ncf" (3B parameters) and "dlrm" (25B).
//!
//! Both models are *embedding-dominated*: the billions of parameters live in
//! lookup tables that are gathered, not multiplied, so they contribute to
//! [`crate::Model::embedding_params`] but not to the GEMM layer list. The
//! trainable GEMMs are the MLP towers, whose row count is the batch size —
//! the extreme `M ≪ K,N` regime in which the paper's dY-sharing and
//! ifmap-sharing partitionings beat conventional batch partitioning
//! ("if the dimension M is smaller than the width of a systolic array,
//! splitting M does not improve performance at all", §5).
//!
//! * **NCF** (He et al., 2017, NeuMF variant): GMF + 4-layer MLP over
//!   128-dim user/item embeddings; 3B parameters ≈ 11.7M users + items at
//!   dim 128 in two towers.
//! * **DLRM** (Naumov et al., 2019): the open-sourced RM-2-like
//!   configuration — bottom MLP 13→512→256→128, 26 sparse features with
//!   pairwise feature interaction, top MLP 479→1024→1024→512→256→1; 25B
//!   parameters ≈ 26 tables × ~15M rows × dim 64.

use crate::layer::{Layer, Model, ModelId};

/// Samples per configured batch unit: recommendation models train on
/// sample batches (user-item pairs / click events), not image batches. A
/// Table-3 "batch" of 8 corresponds to 8x256 = 2048 samples — DLRM's
/// standard training batch — which also reproduces Figure 5's observation
/// that dY dominates dlrm's backward reads (68.3%).
pub const SAMPLES_PER_BATCH_UNIT: u64 = 256;

/// Build NCF (NeuMF) at the given batch size (in Table-3 batch units).
pub fn build_ncf(batch: u64) -> Model {
    let batch_units = batch;
    let batch = batch * SAMPLES_PER_BATCH_UNIT;
    const EMB_DIM: u64 = 128;
    // 3B params split across GMF and MLP user/item tables.
    const EMBEDDING_PARAMS: u64 = 3_000_000_000;
    let layers = vec![
        // MLP tower over concatenated [user, item] embeddings.
        Layer::fc("mlp_fc1", batch, 2 * EMB_DIM, 256),
        Layer::fc("mlp_fc2", batch, 256, 128),
        Layer::fc("mlp_fc3", batch, 128, 64),
        // NeuMF head over [GMF output, MLP output].
        Layer::fc("neumf_out", batch, EMB_DIM + 64, 1),
    ];
    Model::new(ModelId::Ncf, "ncf", batch_units, layers, EMBEDDING_PARAMS)
}

/// Build DLRM at the given batch size (in Table-3 batch units).
pub fn build_dlrm(batch: u64) -> Model {
    let batch_units = batch;
    let batch = batch * SAMPLES_PER_BATCH_UNIT;
    const EMBEDDING_PARAMS: u64 = 25_000_000_000;
    // 26 sparse features + 1 dense bottom output -> 27*26/2 = 351 pairwise
    // interaction terms, concatenated with the 128-dim bottom output.
    let top_in = 351 + 128;
    let layers = vec![
        Layer::fc("bot_fc1", batch, 13, 512),
        Layer::fc("bot_fc2", batch, 512, 256),
        Layer::fc("bot_fc3", batch, 256, 128),
        Layer::fc("top_fc1", batch, top_in, 1024),
        Layer::fc("top_fc2", batch, 1024, 1024),
        Layer::fc("top_fc3", batch, 1024, 512),
        Layer::fc("top_fc4", batch, 512, 256),
        Layer::fc("top_out", batch, 256, 1),
    ];
    Model::new(ModelId::Dlrm, "dlrm", batch_units, layers, EMBEDDING_PARAMS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncf_params_match_table4() {
        let m = build_ncf(8);
        let b = m.params() as f64 / 1e9;
        assert!((2.9..3.1).contains(&b), "expected ~3B, got {b:.2}B");
    }

    #[test]
    fn dlrm_params_match_table4() {
        let m = build_dlrm(8);
        let b = m.params() as f64 / 1e9;
        assert!((24.9..25.1).contains(&b), "expected ~25B, got {b:.2}B");
    }

    #[test]
    fn mlp_rows_are_sample_batch() {
        for m in [build_ncf(4), build_dlrm(4)] {
            for l in &m.layers {
                assert_eq!(
                    l.gemm.m(),
                    4 * SAMPLES_PER_BATCH_UNIT,
                    "layer {} of {}",
                    l.name,
                    m.name
                );
            }
        }
    }

    #[test]
    fn layers_are_extremely_skewed() {
        // The regime that motivates alternative partitionings: M tiny.
        let m = build_dlrm(8);
        let bot1 = m.layers.iter().find(|l| l.name == "bot_fc1").unwrap();
        assert!(!bot1.gemm.is_almost_square(4.0));
        assert!(bot1.gemm.m() > 16 * bot1.gemm.k());
    }
}
