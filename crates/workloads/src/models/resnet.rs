//! ResNet-50 (He et al., 2016) — Table 4 "res", 25M parameters.
//!
//! Standard ImageNet configuration: 224×224 input, bottleneck blocks
//! [1×1, 3×3, 1×1] in four stages of 3/4/6/3 blocks, plus the stem and the
//! classifier head. Identical repeated blocks within a stage are stored
//! once with a count.

use crate::layer::{Layer, Model, ModelId};
use igo_tensor::ConvShape;

/// Build ResNet-50 at the given batch size.
#[allow(clippy::vec_init_then_push)]
pub fn build(batch: u64) -> Model {
    let mut layers = Vec::new();
    // Stem: 7x7/2, 3 -> 64, 224 -> 112.
    layers.push(Layer::conv(
        "conv1",
        ConvShape::new(batch, 3, 224, 224, 64, 7, 2, 3),
    ));

    // Stage 2 (56x56, 3 blocks): in 64 -> [64, 64, 256].
    // First block sees 64 channels (after 3x3/2 max-pool) and has a
    // projection shortcut; later blocks see 256.
    layers.push(Layer::conv(
        "res2a_branch1",
        ConvShape::new(batch, 64, 56, 56, 256, 1, 1, 0),
    ));
    layers.push(Layer::conv(
        "res2a_conv1",
        ConvShape::new(batch, 64, 56, 56, 64, 1, 1, 0),
    ));
    layers.push(Layer::conv("res2_conv2", ConvShape::new(batch, 64, 56, 56, 64, 3, 1, 1)).times(3));
    layers.push(
        Layer::conv(
            "res2_conv3",
            ConvShape::new(batch, 64, 56, 56, 256, 1, 1, 0),
        )
        .times(3),
    );
    layers.push(
        Layer::conv(
            "res2bc_conv1",
            ConvShape::new(batch, 256, 56, 56, 64, 1, 1, 0),
        )
        .times(2),
    );

    // Stage 3 (28x28, 4 blocks): [128, 128, 512].
    layers.push(Layer::conv(
        "res3a_branch1",
        ConvShape::new(batch, 256, 56, 56, 512, 1, 2, 0),
    ));
    layers.push(Layer::conv(
        "res3a_conv1",
        ConvShape::new(batch, 256, 56, 56, 128, 1, 2, 0),
    ));
    layers.push(
        Layer::conv(
            "res3_conv2",
            ConvShape::new(batch, 128, 28, 28, 128, 3, 1, 1),
        )
        .times(4),
    );
    layers.push(
        Layer::conv(
            "res3_conv3",
            ConvShape::new(batch, 128, 28, 28, 512, 1, 1, 0),
        )
        .times(4),
    );
    layers.push(
        Layer::conv(
            "res3bcd_conv1",
            ConvShape::new(batch, 512, 28, 28, 128, 1, 1, 0),
        )
        .times(3),
    );

    // Stage 4 (14x14, 6 blocks): [256, 256, 1024].
    layers.push(Layer::conv(
        "res4a_branch1",
        ConvShape::new(batch, 512, 28, 28, 1024, 1, 2, 0),
    ));
    layers.push(Layer::conv(
        "res4a_conv1",
        ConvShape::new(batch, 512, 28, 28, 256, 1, 2, 0),
    ));
    layers.push(
        Layer::conv(
            "res4_conv2",
            ConvShape::new(batch, 256, 14, 14, 256, 3, 1, 1),
        )
        .times(6),
    );
    layers.push(
        Layer::conv(
            "res4_conv3",
            ConvShape::new(batch, 256, 14, 14, 1024, 1, 1, 0),
        )
        .times(6),
    );
    layers.push(
        Layer::conv(
            "res4bf_conv1",
            ConvShape::new(batch, 1024, 14, 14, 256, 1, 1, 0),
        )
        .times(5),
    );

    // Stage 5 (7x7, 3 blocks): [512, 512, 2048].
    layers.push(Layer::conv(
        "res5a_branch1",
        ConvShape::new(batch, 1024, 14, 14, 2048, 1, 2, 0),
    ));
    layers.push(Layer::conv(
        "res5a_conv1",
        ConvShape::new(batch, 1024, 14, 14, 512, 1, 2, 0),
    ));
    layers.push(Layer::conv("res5_conv2", ConvShape::new(batch, 512, 7, 7, 512, 3, 1, 1)).times(3));
    layers.push(
        Layer::conv(
            "res5_conv3",
            ConvShape::new(batch, 512, 7, 7, 2048, 1, 1, 0),
        )
        .times(3),
    );
    layers.push(
        Layer::conv(
            "res5bc_conv1",
            ConvShape::new(batch, 2048, 7, 7, 512, 1, 1, 0),
        )
        .times(2),
    );

    // Classifier head.
    layers.push(Layer::fc("fc1000", batch, 2048, 1000));

    Model::new(ModelId::Resnet50, "resnet50", batch, layers, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_table4() {
        let m = build(8);
        let params = m.params() as f64 / 1e6;
        // ResNet-50 has ~25.5M parameters; Table 4 lists 25M.
        assert!(
            (23.0..27.0).contains(&params),
            "expected ~25M params, got {params:.1}M"
        );
    }

    #[test]
    fn first_layer_is_stem() {
        let m = build(4);
        assert_eq!(m.layers[0].name, "conv1");
        assert!(m.layers[0].is_first);
    }

    #[test]
    fn block_structure_counts() {
        let m = build(4);
        // 1 stem + 16 bottleneck blocks x 3 convs + 4 projections + 1 fc.
        assert_eq!(m.total_layers(), 1 + 48 + 4 + 1);
    }

    #[test]
    fn gemm_dims_scale_with_batch() {
        let m4 = build(4);
        let m8 = build(8);
        for (a, b) in m4.layers.iter().zip(&m8.layers) {
            assert_eq!(b.gemm.m(), 2 * a.gemm.m(), "layer {}", a.name);
            assert_eq!(a.gemm.k(), b.gemm.k());
            assert_eq!(a.gemm.n(), b.gemm.n());
        }
    }
}
