//! The model zoo: Table 4 dispatch and the edge/server evaluation suites.

use crate::layer::{Model, ModelId};
use crate::models;

/// Build any zoo model at a given batch size.
///
/// ```
/// use igo_workloads::{zoo, ModelId};
/// let m = zoo::model(ModelId::Resnet50, 8);
/// assert_eq!(m.batch, 8);
/// ```
pub fn model(id: ModelId, batch: u64) -> Model {
    match id {
        ModelId::FasterRcnn => models::rcnn::build(batch),
        ModelId::GoogleNet => models::googlenet::build(batch),
        ModelId::Ncf => models::recsys::build_ncf(batch),
        ModelId::Resnet50 => models::resnet::build(batch),
        ModelId::Dlrm => models::recsys::build_dlrm(batch),
        ModelId::MobileNet => models::mobilenet::build(batch),
        ModelId::YoloV5 => models::yolo::build_v5(batch),
        ModelId::YoloV2Tiny => models::yolo::build_v2_tiny(batch),
        ModelId::BertLarge => models::transformer::build_bert_large(batch),
        ModelId::BertTiny => models::transformer::build_bert_tiny(batch),
        ModelId::T5Large => models::transformer::build_t5_large(batch),
        ModelId::T5Small => models::transformer::build_t5_small(batch),
    }
}

/// The nine workloads evaluated on the **server** (large) NPU: the large
/// variants of yolo/bert/T5 (§6.1: "For models with different sizes ... we
/// utilize different sizes for large NPU and small NPU").
pub const SERVER_SUITE: [ModelId; 9] = [
    ModelId::FasterRcnn,
    ModelId::GoogleNet,
    ModelId::Ncf,
    ModelId::Resnet50,
    ModelId::Dlrm,
    ModelId::MobileNet,
    ModelId::YoloV5,
    ModelId::BertLarge,
    ModelId::T5Large,
];

/// The nine workloads evaluated on the **edge** (small) NPU: the tiny/small
/// variants of yolo/bert/T5.
pub const EDGE_SUITE: [ModelId; 9] = [
    ModelId::FasterRcnn,
    ModelId::GoogleNet,
    ModelId::Ncf,
    ModelId::Resnet50,
    ModelId::Dlrm,
    ModelId::MobileNet,
    ModelId::YoloV2Tiny,
    ModelId::BertTiny,
    ModelId::T5Small,
];

/// Build the whole server suite at one batch size.
pub fn server_suite(batch: u64) -> Vec<Model> {
    SERVER_SUITE.iter().map(|&id| model(id, batch)).collect()
}

/// Build the whole edge suite at one batch size.
pub fn edge_suite(batch: u64) -> Vec<Model> {
    EDGE_SUITE.iter().map(|&id| model(id, batch)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_builds_at_common_batches() {
        for id in SERVER_SUITE.iter().chain(EDGE_SUITE.iter()) {
            for batch in [4, 8] {
                let m = model(*id, batch);
                assert_eq!(m.batch, batch);
                assert!(!m.layers.is_empty());
                assert!(m.layers[0].is_first);
            }
        }
    }

    #[test]
    fn suites_have_nine_workloads() {
        assert_eq!(server_suite(8).len(), 9);
        assert_eq!(edge_suite(4).len(), 9);
    }

    #[test]
    fn suites_differ_only_in_size_variants() {
        let server: Vec<&str> = SERVER_SUITE.iter().map(|m| m.abbr()).collect();
        let edge: Vec<&str> = EDGE_SUITE.iter().map(|m| m.abbr()).collect();
        assert_eq!(server, edge, "same Table 4 families in both suites");
        assert_ne!(SERVER_SUITE, EDGE_SUITE, "different size variants");
    }

    #[test]
    fn layer_names_unique_within_each_model() {
        // Model::new asserts this; building is the test.
        for id in SERVER_SUITE {
            let _ = model(id, 8);
        }
    }
}
