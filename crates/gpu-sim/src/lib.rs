//! Analytical GPU substrate for the IGO reproduction.
//!
//! Two of the paper's results run on real GPUs, which this workspace
//! cannot assume. Per the substitution policy in `DESIGN.md`, this crate
//! models the relevant first-order behaviour analytically:
//!
//! * [`breakdown`] — Figure 3: the training-step time decomposition
//!   (forward / backward / memcopy / loss / update) of an A100-class GPU,
//!   from a roofline cost model over the same Table-4 workloads.
//! * [`kernels`] — Figure 17: the RTX-3090 validation, comparing the
//!   sequential two-kernel backward pass against the fused three-input
//!   kernel that reuses `dY` in shared memory, with the interleave /
//!   rearrangement / partitioning ladder applied to thread-block tiling.

pub mod breakdown;
pub mod kernels;

pub use breakdown::{training_breakdown, GpuConfig, StepBreakdown};
pub use kernels::{backward_ladder, GpuLadder, SmemConfig};
