//! Figure 3: training-step time decomposition on an A100-class GPU.
//!
//! The paper motivates its work by profiling PyTorch training on an A100
//! (batch 256, 90 epochs) and reporting the average step decomposition:
//! forward 27.6%, backward 56.5%, memcopy 3.0%, loss 2.6%, update 10.3%.
//! We reproduce the decomposition with a roofline cost model: each phase
//! is the max of its compute time (at an effective FLOP rate) and its
//! memory time (at effective HBM / PCIe bandwidth).

use igo_workloads::Model;
/// GPU parameters for the roofline model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuConfig {
    /// Peak sustained MAC rate (multiply-accumulates per second) for GEMM
    /// kernels.
    pub macs_per_sec: f64,
    /// Sustained HBM bandwidth, bytes per second.
    pub hbm_bytes_per_sec: f64,
    /// Host-to-device (PCIe) bandwidth, bytes per second.
    pub pcie_bytes_per_sec: f64,
    /// Fixed per-kernel launch overhead in seconds.
    pub kernel_launch_sec: f64,
    /// Host/device synchronisation cost charged to the loss phase
    /// (PyTorch's `loss.item()`).
    pub host_sync_sec: f64,
}

impl GpuConfig {
    /// An NVIDIA A100-class configuration: ~120 TMAC/s effective mixed-
    /// precision GEMM throughput (156 TFLOPS TF32 peak with realistic
    /// utilisation), 1.4 TB/s effective HBM2e, PCIe 4.0 x16.
    pub fn a100() -> Self {
        Self {
            macs_per_sec: 60.0e12,
            hbm_bytes_per_sec: 1.4e12,
            pcie_bytes_per_sec: 24.0e9,
            kernel_launch_sec: 6.0e-6,
            host_sync_sec: 150.0e-6,
        }
    }

    /// An RTX-3090-class configuration. The Figure 17 kernels are the
    /// educational SMEM-blocked fp32 GEMM (Boehm's worklog) rather than
    /// cuBLAS, and the evaluation shapes are small edge-batch layers, so
    /// the achieved MAC rate is well below the 17.8 TMAC/s fp32 peak.
    pub fn rtx3090() -> Self {
        Self {
            macs_per_sec: 16.0e12,
            hbm_bytes_per_sec: 0.80e12,
            pcie_bytes_per_sec: 24.0e9,
            kernel_launch_sec: 5.0e-6,
            host_sync_sec: 150.0e-6,
        }
    }

    fn roofline_sec(&self, macs: f64, bytes: f64) -> f64 {
        (macs / self.macs_per_sec).max(bytes / self.hbm_bytes_per_sec)
    }
}

/// Seconds spent in each phase of one training step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepBreakdown {
    /// Forward pass.
    pub forward: f64,
    /// Backward pass (input + weight gradients, activation backward).
    pub backward: f64,
    /// Host-to-device input transfer.
    pub memcopy: f64,
    /// Loss computation (softmax + reduction over the logits).
    pub loss: f64,
    /// Optimiser update (Adam-style: params + grads + two moments).
    pub update: f64,
}

impl StepBreakdown {
    /// Total step seconds.
    pub fn total(&self) -> f64 {
        self.forward + self.backward + self.memcopy + self.loss + self.update
    }

    /// Fractions of the total, in phase order (forward, backward, memcopy,
    /// loss, update).
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        [
            self.forward / t,
            self.backward / t,
            self.memcopy / t,
            self.loss / t,
            self.update / t,
        ]
    }

    /// Element-wise sum (for averaging across workloads).
    pub fn add(&mut self, other: &StepBreakdown) {
        self.forward += other.forward;
        self.backward += other.backward;
        self.memcopy += other.memcopy;
        self.loss += other.loss;
        self.update += other.update;
    }
}

const BYTES: f64 = 4.0;

/// One training step of `model` on `gpu`.
///
/// Phase models:
/// * forward: per layer `max(macs/peak, (X + W + Y)/bw)` plus a launch;
/// * backward: per layer two GEMMs (`2×macs`), traffic
///   `X + W + 2·dY + dX + dW` (the sequential baseline reads `dY` twice —
///   the paper's premise), plus an element-wise activation-backward pass;
/// * memcopy: the raw input batch over PCIe;
/// * loss: softmax-like, three passes over the last layer's output;
/// * update: Adam — read params, grads and two moments, write params and
///   moments (6 accesses per parameter; embedding tables only touch the
///   gathered rows).
pub fn training_breakdown(model: &Model, gpu: &GpuConfig) -> StepBreakdown {
    let mut out = StepBreakdown::default();

    for layer in &model.layers {
        let reps = (layer.count as u64 * layer.groups as u64) as f64;
        let g = layer.gemm;
        let macs = g.macs() as f64;
        let x = g.m() as f64 * g.k() as f64 * layer.ifmap_density * BYTES;
        let w = (g.k() * g.n()) as f64 * BYTES;
        let y = (g.m() * g.n()) as f64 * BYTES;

        let fwd = gpu.roofline_sec(macs, x + w + y) + gpu.kernel_launch_sec;
        // dX and dW GEMMs, each a kernel; dY fetched by both.
        let bwd_gemms =
            gpu.roofline_sec(2.0 * macs, x + w + 2.0 * y + x + w) + 2.0 * gpu.kernel_launch_sec;
        // Activation backward: read dX and the saved activation, write dY
        // for the next layer.
        let bwd_elem = gpu.roofline_sec(0.0, 3.0 * x) + gpu.kernel_launch_sec;

        out.forward += reps * fwd;
        out.backward += reps * (bwd_gemms + bwd_elem);
    }

    // Input transfer: raw bytes of the first layer's input over PCIe.
    // PyTorch's pinned-memory pipeline overlaps roughly half of it with
    // compute.
    let first = &model.layers[0];
    let input_bytes = first.gemm.m() as f64 * first.gemm.k() as f64 * first.ifmap_density * BYTES;
    out.memcopy = 0.5 * input_bytes / gpu.pcie_bytes_per_sec;

    // Loss: softmax/CE passes over the logits plus the host
    // synchronisation PyTorch's loss.item() forces every step.
    let last = model.layers.last().expect("models are non-empty");
    let logits = (last.gemm.m() * last.gemm.n()) as f64 * BYTES;
    out.loss = gpu.roofline_sec(0.0, 3.0 * logits) + gpu.host_sync_sec;

    // Update: PyTorch's unfused Adam launches a handful of element-wise
    // kernels per parameter tensor (launch-bound for deep CNNs) and moves
    // 6 accesses per dense parameter (params, grads, two moments;
    // embedding tables only touch the gathered rows).
    let dense_params = (model.params() - model.embedding_params) as f64;
    let touched_embeddings = (model.embedding_params.min(model.batch * 27 * 64)) as f64;
    let tensors = (model.total_layers() * 2) as f64; // weight + bias
    out.update = gpu.roofline_sec(0.0, 6.0 * BYTES * (dense_params + touched_embeddings))
        + tensors * 8.0 * gpu.kernel_launch_sec;

    out
}

/// Average the per-phase fractions across a workload suite (the paper's
/// Figure 3 averages over its models).
pub fn average_fractions(models: &[Model], gpu: &GpuConfig) -> [f64; 5] {
    let mut sum = [0.0f64; 5];
    for model in models {
        let f = training_breakdown(model, gpu).fractions();
        for i in 0..5 {
            sum[i] += f[i];
        }
    }
    for s in &mut sum {
        *s /= models.len() as f64;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_workloads::{zoo, ModelId};

    #[test]
    fn backward_dominates() {
        let gpu = GpuConfig::a100();
        for id in [ModelId::Resnet50, ModelId::BertLarge, ModelId::GoogleNet] {
            let model = zoo::model(id, 256);
            let b = training_breakdown(&model, &gpu);
            let f = b.fractions();
            assert!(
                f[1] > f[0],
                "{id}: backward ({:.2}) must dominate forward ({:.2})",
                f[1],
                f[0]
            );
            assert!(f[1] > 0.4, "{id}: backward should be the biggest phase");
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let gpu = GpuConfig::a100();
        let model = zoo::model(ModelId::MobileNet, 256);
        let f = training_breakdown(&model, &gpu).fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(f.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn fwd_plus_bwd_is_most_of_the_step() {
        // Paper: forward + backward > 84% of step time on average.
        let gpu = GpuConfig::a100();
        let suite = zoo::server_suite(256);
        let avg = average_fractions(&suite, &gpu);
        assert!(
            avg[0] + avg[1] > 0.7,
            "fwd+bwd should dominate, got {:.2}",
            avg[0] + avg[1]
        );
    }

    #[test]
    fn update_matters_for_big_dense_models() {
        let gpu = GpuConfig::a100();
        let res = zoo::model(ModelId::Resnet50, 256);
        let f = training_breakdown(&res, &gpu).fractions();
        assert!(f[4] > 0.02, "per-tensor optimiser launches must be visible");
    }

    #[test]
    fn memcopy_small_but_nonzero() {
        let gpu = GpuConfig::a100();
        let res = zoo::model(ModelId::Resnet50, 256);
        let f = training_breakdown(&res, &gpu).fractions();
        assert!(f[2] > 0.0 && f[2] < 0.3);
    }
}
