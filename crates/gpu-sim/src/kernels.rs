//! Figure 17: GPU shared-memory validation of the interleaved order.
//!
//! The paper ports its three techniques to CUDA: a *three-input* kernel
//! `(X, W, dY) → (dX, dW)` that interleaves both gradient GEMMs inside one
//! kernel and keeps the shared `dY` block in shared memory. The baseline
//! is the better of (a) two sequential GEMM kernels and (b) one sequential
//! fused kernel — deliberately excluding the kernel-launch saving, so the
//! measured benefit is pure `dY` reuse. Reported cumulative improvements:
//! interleaving 8.6%, +rearrangement 20.3%, +partitioning 30.3%
//! (backward pass only, small-NPU batch).
//!
//! We model kernels with the classic SMEM-blocked GEMM traffic formula
//! (the Boehm worklog implementation the paper modifies): a `C = A×B`
//! kernel with `T×T` thread-block tiles moves
//! `|A|·(N/T) + |B|·(M/T) + |C|` bytes of DRAM. The fused kernels adjust
//! which operand is re-read and whether partial sums spill, exactly
//! mirroring the NPU-side schedule families.

use crate::breakdown::GpuConfig;
use igo_tensor::GemmShape;
use igo_workloads::Model;

/// Shared-memory tiling parameters of the GEMM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmemConfig {
    /// Thread-block output tile side (the worklog's 2-D block tiling uses
    /// 128×128).
    pub block_tile: u64,
    /// Thread-block tile side available to the *fused* kernel: it must
    /// stage two working sets (dX and dW sides) in the same shared memory,
    /// so its tiles are smaller.
    pub fused_tile: u64,
}

impl Default for SmemConfig {
    fn default() -> Self {
        Self {
            block_tile: 128,
            fused_tile: 80,
        }
    }
}

const B: f64 = 4.0;

fn ceil_div(a: u64, b: u64) -> f64 {
    a.div_ceil(b) as f64
}

/// DRAM bytes of one SMEM-blocked GEMM `(m,k) x (k,n)` with tile `t`.
fn gemm_bytes(m: u64, k: u64, n: u64, t: u64) -> f64 {
    let a = (m * k) as f64 * B;
    let b = (k * n) as f64 * B;
    let c = (m * n) as f64 * B;
    a * ceil_div(n, t) + b * ceil_div(m, t) + c
}

/// Cumulative normalised backward-pass times of the GPU ladder for one
/// layer (baseline = 1.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuLadder {
    /// Interleaving only.
    pub interleaving: f64,
    /// Interleaving + rearrangement.
    pub rearrangement: f64,
    /// Interleaving + rearrangement + data partitioning.
    pub partitioning: f64,
}

fn layer_ladder(
    g: GemmShape,
    density: f64,
    gpu: &GpuConfig,
    smem: &SmemConfig,
) -> (f64, GpuLadder) {
    let (m, k, n) = (g.m(), g.k(), g.n());
    let t = smem.block_tile;
    let tf = smem.fused_tile;
    let macs = 2.0 * g.macs() as f64; // both gradient GEMMs

    // Raw-layout scaling of X / dX traffic (same convention as the NPU
    // side).
    let scale_x = |bytes: f64| bytes * density;

    // Baseline: two sequential GEMM kernels (dX: dY(m,n) x W^T(n,k);
    // dW: X^T(k,m) x dY(m,n)), each SMEM-blocked. dY is fetched by both.
    let dx_bytes = gemm_bytes(m, n, k, t) - (m * k) as f64 * B + scale_x((m * k) as f64 * B);
    let dw_bytes = {
        let raw = gemm_bytes(k, m, n, t);
        // The A operand here is X^T, whose DRAM footprint is raw-layout.
        let a_term = (k * m) as f64 * B * ceil_div(n, t);
        raw - a_term + scale_x(a_term)
    };
    let baseline_bytes = dx_bytes + dw_bytes;
    let baseline = (macs / gpu.macs_per_sec).max(baseline_bytes / gpu.hbm_bytes_per_sec);

    // Interleaving: one fused kernel; each dY block is loaded once and
    // consumed by both gradients; the smaller fused tiles make the non-dY
    // operands re-read slightly more.
    let fused = |tile: u64| -> f64 {
        let dy = (m * n) as f64 * B; // once
        let w = (k * n) as f64 * B * ceil_div(m, tile);
        let x = scale_x((m * k) as f64 * B) * ceil_div(n, tile);
        let outs = scale_x((m * k) as f64 * B) + (k * n) as f64 * B;
        dy + w + x + outs
    };
    let inter_bytes = fused(tf);
    let interleaving = (macs / gpu.macs_per_sec).max(inter_bytes / gpu.hbm_bytes_per_sec);

    // Rearrangement: pick the fused traversal (dXmajor / dWmajor) that
    // keeps one operand's accumulation resident. The protected side is
    // read once; freeing its double-buffered staging lets the other side
    // use the full-size block tile again.
    let w_once = (k * n) as f64 * B;
    let x_once = scale_x((m * k) as f64 * B);
    let w_full = w_once * ceil_div(m, t);
    let x_full = x_once * ceil_div(n, t);
    let fixed =
        (m * n) as f64 * B + w_once + x_once + (k * n) as f64 * B + scale_x((m * k) as f64 * B); // dY once + both outputs + one read of each operand
                                                                                                 // Protect whichever side saves more.
    let rearr_bytes = fixed + (w_full - w_once).min(x_full - x_once);
    let rearr_bytes = rearr_bytes.min(inter_bytes);
    let rearrangement = (macs / gpu.macs_per_sec).max(rearr_bytes / gpu.hbm_bytes_per_sec);

    // Partitioning: re-map the grid along the dimension the selected
    // scheme splits. This cuts the surviving re-read traffic (~60% of it)
    // and, just as importantly on a GPU, balances the thread-block waves —
    // raising achieved occupancy and coalescing on both rooflines (the
    // paper's grid-level dY-/ifmap-sharing analogue).
    const PARTITION_OCCUPANCY_BOOST: f64 = 1.12;
    let remaining = (rearr_bytes - fixed).max(0.0);
    let part_bytes = (fixed + 0.4 * remaining).max((m * n) as f64 * B);
    let partitioning = (macs / (gpu.macs_per_sec * PARTITION_OCCUPANCY_BOOST))
        .max(part_bytes / (gpu.hbm_bytes_per_sec * PARTITION_OCCUPANCY_BOOST));

    (
        baseline,
        GpuLadder {
            interleaving: interleaving / baseline,
            rearrangement: rearrangement / baseline,
            partitioning: partitioning / baseline,
        },
    )
}

/// The Figure 17 experiment: backward-pass-only ladder over a model,
/// normalised to the per-layer best sequential baseline.
pub fn backward_ladder(model: &Model, gpu: &GpuConfig, smem: &SmemConfig) -> GpuLadder {
    let mut base_total = 0.0;
    let mut inter = 0.0;
    let mut rearr = 0.0;
    let mut part = 0.0;
    for layer in &model.layers {
        if layer.is_first {
            continue; // no dX => nothing to interleave (paper §6.2)
        }
        let reps = (layer.count as u64 * layer.groups as u64) as f64;
        let (base, ladder) = layer_ladder(layer.gemm, layer.ifmap_density, gpu, smem);
        base_total += reps * base;
        // Never worse than baseline per layer: the GPU implementation
        // falls back to the sequential kernels when fusion loses (the
        // baseline is defined as the better of the two configurations).
        inter += reps * base * ladder.interleaving.min(1.0);
        rearr += reps * base * ladder.rearrangement.min(1.0);
        part += reps * base * ladder.partitioning.min(1.0);
    }
    GpuLadder {
        interleaving: inter / base_total,
        rearrangement: rearr / base_total,
        partitioning: part / base_total,
    }
}

/// Average the ladder over a suite (the paper reports suite-average
/// improvements of 8.6% / 20.3% / 30.3%).
pub fn suite_ladder(models: &[Model], gpu: &GpuConfig, smem: &SmemConfig) -> GpuLadder {
    let mut sum = GpuLadder {
        interleaving: 0.0,
        rearrangement: 0.0,
        partitioning: 0.0,
    };
    for model in models {
        let l = backward_ladder(model, gpu, smem);
        sum.interleaving += l.interleaving;
        sum.rearrangement += l.rearrangement;
        sum.partitioning += l.partitioning;
    }
    let n = models.len() as f64;
    GpuLadder {
        interleaving: sum.interleaving / n,
        rearrangement: sum.rearrangement / n,
        partitioning: sum.partitioning / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igo_workloads::{zoo, ModelId};

    fn setup() -> (GpuConfig, SmemConfig) {
        (GpuConfig::rtx3090(), SmemConfig::default())
    }

    #[test]
    fn ladder_is_cumulative_and_improving() {
        let (gpu, smem) = setup();
        for id in [ModelId::Resnet50, ModelId::BertTiny, ModelId::Dlrm] {
            let model = zoo::model(id, 4);
            let l = backward_ladder(&model, &gpu, &smem);
            assert!(l.interleaving <= 1.0, "{id}: {l:?}");
            assert!(l.rearrangement <= l.interleaving, "{id}: {l:?}");
            assert!(l.partitioning <= l.rearrangement, "{id}: {l:?}");
            assert!(l.partitioning > 0.2, "{id}: improvements must be bounded");
        }
    }

    #[test]
    fn suite_average_in_paper_regime() {
        let (gpu, smem) = setup();
        let suite = zoo::edge_suite(4);
        let l = suite_ladder(&suite, &gpu, &smem);
        // Paper: 8.6% / 20.3% / 30.3%. Require the right ordering and
        // magnitudes within a loose band.
        assert!(
            (0.02..0.35).contains(&(1.0 - l.interleaving)),
            "interleaving {l:?}"
        );
        assert!(
            (1.0 - l.partitioning) > (1.0 - l.interleaving),
            "cumulative: {l:?}"
        );
        assert!((0.1..0.6).contains(&(1.0 - l.partitioning)), "{l:?}");
    }

    #[test]
    fn gemm_bytes_formula() {
        // 256x256x256 with 128-tiles: A and B re-read twice, C once.
        let bytes = gemm_bytes(256, 256, 256, 128);
        let mat = 256.0 * 256.0 * 4.0;
        assert!((bytes - (2.0 * mat + 2.0 * mat + mat)).abs() < 1.0);
    }

    #[test]
    fn first_layer_excluded() {
        let (gpu, smem) = setup();
        let model = zoo::model(ModelId::YoloV2Tiny, 4);
        // Just ensure it runs and the exclusion leaves layers to measure.
        let l = backward_ladder(&model, &gpu, &smem);
        assert!(l.partitioning.is_finite());
    }
}
