//! # igo — Interleaved Gradient Order
//!
//! A full reproduction of *"Improving Data Reuse in NPU On-chip Memory with
//! Interleaved Gradient Order for DNN Training"* (MICRO 2023): a cycle-level
//! NPU training simulator plus the paper's dataflow-transformation stack.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`tensor`] — shape algebra, im2col, tile grids, traversal orders.
//! * [`sim`] — the cycle-level NPU simulator substrate (systolic array,
//!   SPM, DRAM, double-buffered engine, multi-core).
//! * [`workloads`] — the Table-4 model zoo.
//! * [`core`] — the paper's contribution: interleaving, rearrangement
//!   (Algorithm 1), data partitioning with KNN selection, and the
//!   end-to-end training-step pipeline.
//! * [`knn`] — the K-nearest-neighbour classifier used by §5.
//! * [`gpu`] — the GPU analytical substrate for Figures 3 and 17.
//!
//! # Quickstart
//!
//! ```
//! use igo::prelude::*;
//!
//! let config = NpuConfig::large_single_core();
//! let model = zoo::model(ModelId::Resnet50, config.default_batch());
//! let baseline = simulate_model(&model, &config, Technique::Baseline);
//! let ours = simulate_model(&model, &config, Technique::DataPartitioning);
//! assert!(ours.total_cycles() < baseline.total_cycles());
//! ```

pub use igo_core as core;
pub use igo_gpu_sim as gpu;
pub use igo_knn as knn;
pub use igo_npu_sim as sim;
pub use igo_tensor as tensor;
pub use igo_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use igo_core::{
        simulate_layer_backward, simulate_model, ModelReport, Technique, TrainingPhase,
    };
    pub use igo_npu_sim::{NpuConfig, SimReport};
    pub use igo_tensor::{ConvShape, DataType, GemmShape, TensorClass};
    pub use igo_workloads::{zoo, Layer, Model, ModelId};
}
