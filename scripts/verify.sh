#!/usr/bin/env bash
# Offline verification gate for the IGO workspace.
#
# Runs the same checks CI would: formatting, lints (warnings are errors),
# a release build, and the full test suite (unit + integration + doc).
# Everything is hermetic — path-only dependencies, no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "== fixed-seed differential fuzz-audit =="
./target/release/igo-sim audit --seeds 200

echo "verify: all checks passed"
