#!/usr/bin/env bash
# Offline verification gate for the IGO workspace.
#
# Runs the same checks CI would: formatting, lints (warnings are errors),
# a release build, and the full test suite (unit + integration + doc).
# Everything is hermetic — path-only dependencies, no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo bench --no-run (bench-rot gate) =="
# The Criterion-style harnesses are excluded from `cargo test`; compiling
# them here keeps them from rotting without paying their runtime in CI.
cargo bench -p igo-bench --no-run

echo "== cargo test =="
cargo test -q

echo "== fixed-seed differential fuzz-audit =="
# Tee the JSON summary to a file so CI can print it and upload it as an
# artifact on failure; `pipefail` preserves the audit's exit code.
./target/release/igo-sim audit --seeds 200 | tee audit-summary.json

echo "verify: all checks passed"
