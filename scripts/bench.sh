#!/usr/bin/env bash
# Performance benchmark for the IGO workspace.
#
# Runs `igo-sim perf` (the cold-cache SPM-ladder sweeps that compare the
# engine path against the analytic fast path, and flat per-rung replay
# against the capacity-oblivious profiler) plus a design-space sweep
# micro-benchmark in both execution modes (profiled vs --no-profile),
# and records the numbers in BENCH_<N>.json at the repo root so the perf
# trajectory is tracked across PRs. Hermetic: no network.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
BENCH_ID="${BENCH_ID:-5}"
OUT="BENCH_${BENCH_ID}.json"

cargo build --release -q -p igo-cli

echo "== igo-sim perf server =="
PERF_LOG="$(mktemp)"
./target/release/igo-sim perf server | tee "$PERF_LOG"

engine_s="$(awk '/^engine-path/   { sub(/s$/, "", $2); print $2 }' "$PERF_LOG")"
analytic_s="$(awk '/^analytic-path/ { sub(/s$/, "", $2); print $2 }' "$PERF_LOG")"
speedup="$(awk '/analytic speedup/ { for (i=1;i<=NF;i++) if ($i=="speedup") { sub(/x$/, "", $(i+1)); print $(i+1) } }' "$PERF_LOG")"
identical="$(awk -F': *' '/^bit-identical.*analytic speedup/ { split($2, a, " "); print (a[1]=="yes") ? "true" : "false" }' "$PERF_LOG")"

# The capacity-oblivious profiler arm: flat replay-per-rung vs one
# profiling pass per candidate schedule, memoization off in both.
flat_s="$(awk '/^flat-replay/ { sub(/s$/, "", $2); print $2 }' "$PERF_LOG")"
profiled_s="$(awk '/^profiled/ { sub(/s$/, "", $2); print $2 }' "$PERF_LOG")"
profile_speedup="$(awk '/profile speedup/ { for (i=1;i<=NF;i++) if ($i=="speedup") { sub(/x$/, "", $(i+1)); print $(i+1) } }' "$PERF_LOG")"
profile_identical="$(awk -F': *' '/^bit-identical.*profile speedup/ { split($2, a, " "); print (a[1]=="yes") ? "true" : "false" }' "$PERF_LOG")"

echo "== igo-sim sweep zoo (micro-benchmark: profiled vs --no-profile) =="
SWEEP_DIR="$(mktemp -d)"
run_sweep() { # run_sweep <subdir> [extra flags...]; echoes the run's wall seconds
  local sub="$1"
  shift
  ./target/release/igo-sim sweep zoo --spm 3,6,12,24 --out "$SWEEP_DIR/$sub" "$@" >/dev/null
  grep -o '"wall_seconds":[0-9.]*' "$SWEEP_DIR/$sub/summary.json" | cut -d: -f2
}
# Interleave the two modes and keep the min of two runs each, so a noisy
# box does not bias the recorded comparison toward either mode.
p1="$(run_sweep prof)"
f1="$(run_sweep flat --no-profile)"
p2="$(run_sweep prof)"
f2="$(run_sweep flat --no-profile)"
prof_wall="$(printf '%s\n%s\n' "$p1" "$p2" | sort -g | head -1)"
flat_wall="$(printf '%s\n%s\n' "$f1" "$f2" | sort -g | head -1)"
sweep_speedup="$(awk -v f="$flat_wall" -v p="$prof_wall" 'BEGIN { printf "%.3f", f / p }')"
SWEEP_SUMMARY="$(cat "$SWEEP_DIR/prof/summary.json")"
FLAT_SUMMARY="$(cat "$SWEEP_DIR/flat/summary.json")"
best_prof="$(grep -o '"best":.*' "$SWEEP_DIR/prof/summary.json")"
best_flat="$(grep -o '"best":.*' "$SWEEP_DIR/flat/summary.json")"
if [ "$best_prof" = "$best_flat" ]; then frontier_identical=true; else frontier_identical=false; fi
echo "profiled ${prof_wall}s vs flat ${flat_wall}s  (speedup ${sweep_speedup}x, frontier identical: ${frontier_identical})"

cat > "$OUT" <<JSON
{
  "bench": ${BENCH_ID},
  "perf_ladder": {
    "engine_seconds": ${engine_s},
    "analytic_seconds": ${analytic_s},
    "analytic_speedup": ${speedup},
    "bit_identical": ${identical}
  },
  "perf_profile": {
    "flat_replay_seconds": ${flat_s},
    "profiled_seconds": ${profiled_s},
    "profile_speedup": ${profile_speedup},
    "bit_identical": ${profile_identical}
  },
  "sweep_profile": {
    "profiled_wall_seconds": ${prof_wall},
    "no_profile_wall_seconds": ${flat_wall},
    "profiled_speedup": ${sweep_speedup},
    "frontier_identical": ${frontier_identical}
  },
  "sweep_zoo": ${SWEEP_SUMMARY},
  "sweep_zoo_no_profile": ${FLAT_SUMMARY}
}
JSON
rm -rf "$PERF_LOG" "$SWEEP_DIR"

echo "bench: wrote ${OUT}"
