#!/usr/bin/env bash
# Performance benchmark for the IGO workspace.
#
# Runs `igo-sim perf` (the cold-cache SPM-ladder sweep that compares the
# engine path against the analytic fast path) plus a design-space sweep
# micro-benchmark, and records the numbers in BENCH_<N>.json at the repo
# root so the perf trajectory is tracked across PRs. Hermetic: no network.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
BENCH_ID="${BENCH_ID:-4}"
OUT="BENCH_${BENCH_ID}.json"

cargo build --release -q -p igo-cli

echo "== igo-sim perf server =="
PERF_LOG="$(mktemp)"
./target/release/igo-sim perf server | tee "$PERF_LOG"

engine_s="$(awk '/^engine-path/   { sub(/s$/, "", $2); print $2 }' "$PERF_LOG")"
analytic_s="$(awk '/^analytic-path/ { sub(/s$/, "", $2); print $2 }' "$PERF_LOG")"
speedup="$(awk '/analytic speedup/ { for (i=1;i<=NF;i++) if ($i=="speedup") { sub(/x$/, "", $(i+1)); print $(i+1) } }' "$PERF_LOG")"
identical="$(awk -F': *' '/^bit-identical/ { split($2, a, " "); print (a[1]=="yes") ? "true" : "false" }' "$PERF_LOG" | tail -1)"

echo "== igo-sim sweep zoo (micro-benchmark) =="
SWEEP_DIR="$(mktemp -d)"
./target/release/igo-sim sweep zoo --spm 3,6,12,24 --out "$SWEEP_DIR" >/dev/null
SWEEP_SUMMARY="$(cat "$SWEEP_DIR/summary.json")"

cat > "$OUT" <<JSON
{
  "bench": ${BENCH_ID},
  "perf_ladder": {
    "engine_seconds": ${engine_s},
    "analytic_seconds": ${analytic_s},
    "analytic_speedup": ${speedup},
    "bit_identical": ${identical}
  },
  "sweep_zoo": ${SWEEP_SUMMARY}
}
JSON
rm -rf "$PERF_LOG" "$SWEEP_DIR"

echo "bench: wrote ${OUT}"
